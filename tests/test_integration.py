"""End-to-end integration tests across the whole library.

These tests exercise the paths a downstream user follows: build an MLLM
workload, run it on EdgeMM and the baselines, calibrate pruning from an
activation trace, schedule a stream, and check that the headline claims of
the paper hold in shape.
"""

import pytest

from repro import EdgeMM, InferenceRequest, get_mllm
from repro.baselines import SnitchBaseline, homo_cc_simulator, homo_mc_simulator, rtx3060_laptop
from repro.models import available_mllms
from repro.scheduling import TokenLengthScheduler


REQUEST = InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=32)


class TestEndToEndHeadlines:
    """The paper's headline claims, checked end to end in shape."""

    @pytest.fixture(scope="class")
    def systems(self, sphinx_tiny):
        edgemm = EdgeMM.default()
        gpu = rtx3060_laptop()
        results = {
            "edgemm": edgemm.run(sphinx_tiny, REQUEST),
            "gpu": gpu.run_request(sphinx_tiny, REQUEST),
            "homo_cc": homo_cc_simulator().run_request(sphinx_tiny, REQUEST),
            "homo_mc": homo_mc_simulator().run_request(sphinx_tiny, REQUEST),
            "snitch": SnitchBaseline().run_request(sphinx_tiny, REQUEST),
        }
        calibration = edgemm.calibrate_pruning(n_tokens=2)
        results["edgemm_pruned"] = edgemm.enable_pruning(calibration).run(
            sphinx_tiny, REQUEST
        )
        return results

    def test_edgemm_beats_the_gpu(self, systems):
        assert systems["edgemm"].total_latency_s < systems["gpu"].total_latency_s

    def test_pruning_widens_the_gpu_gap(self, systems):
        unpruned_speedup = systems["gpu"].total_latency_s / systems["edgemm"].total_latency_s
        pruned_speedup = (
            systems["gpu"].total_latency_s / systems["edgemm_pruned"].total_latency_s
        )
        assert pruned_speedup > unpruned_speedup

    def test_pruned_speedup_in_paper_band(self, systems):
        """Paper: 2.84x over the RTX 3060 with pruning (we accept 2x-4x)."""
        speedup = systems["gpu"].total_latency_s / systems["edgemm_pruned"].total_latency_s
        assert 2.0 <= speedup <= 4.0

    def test_heterogeneous_beats_homogeneous(self, systems):
        assert systems["edgemm"].total_latency_s < systems["homo_cc"].total_latency_s
        assert systems["edgemm"].total_latency_s < systems["homo_mc"].total_latency_s

    def test_everything_beats_the_snitch_baseline(self, systems):
        for name in ("edgemm", "homo_cc", "homo_mc"):
            assert systems[name].total_latency_s < systems["snitch"].total_latency_s

    def test_decode_dominates_edgemm_latency(self, systems):
        result = systems["edgemm"]
        assert result.decode_latency_s > 0.5 * result.total_latency_s

    def test_throughput_above_gpu(self, systems):
        assert (
            systems["edgemm_pruned"].tokens_per_second
            > systems["gpu"].tokens_per_second
        )


class TestAllCatalogueModelsRun:
    @pytest.mark.parametrize("model_name", sorted(available_mllms()))
    def test_every_mllm_runs_on_edgemm(self, model_name, edgemm_system):
        model = get_mllm(model_name)
        request = InferenceRequest(images=1, prompt_text_tokens=16, output_tokens=4)
        result = edgemm_system.run(model, request)
        assert result.total_latency_s > 0
        assert result.phase("llm_decode").dram_bytes > 0

    @pytest.mark.parametrize("model_name", ["sphinx-tiny", "karmavlm"])
    def test_paper_workloads_run_on_gpu_baseline(self, model_name, gpu_baseline):
        model = get_mllm(model_name)
        request = InferenceRequest(images=1, prompt_text_tokens=16, output_tokens=4)
        assert gpu_baseline.run_request(model, request).total_latency_s > 0


class TestSchedulerIntegration:
    def test_scheduler_end_to_end(self, edgemm_system, sphinx_tiny):
        scheduler = TokenLengthScheduler(
            edgemm_system.pipeline(sphinx_tiny),
            candidate_batch_sizes=(1, 2, 4, 8),
            max_latency_overhead=0.6,
        )
        schedules = scheduler.sweep([8, 128, 512])
        # Throughput must not decrease as we allow the policy more output.
        assert schedules[512].tokens_per_second >= schedules[8].tokens_per_second

    def test_pruning_keep_fraction_flows_into_scheduler(self, edgemm_system, sphinx_tiny):
        calibration = edgemm_system.calibrate_pruning(n_tokens=1)
        pipeline = edgemm_system.pipeline(sphinx_tiny)
        pruned_scheduler = TokenLengthScheduler(
            pipeline, keep_fraction=calibration.average_keep_fraction
        )
        full_scheduler = TokenLengthScheduler(pipeline)
        pruned = pruned_scheduler.schedule(64)
        full = full_scheduler.schedule(64)
        assert pruned.request_latency_s < full.request_latency_s


class TestReproducibility:
    def test_same_request_gives_identical_results(self, sphinx_tiny):
        first = EdgeMM.default().run(sphinx_tiny, REQUEST)
        second = EdgeMM.default().run(sphinx_tiny, REQUEST)
        assert first.total_latency_s == second.total_latency_s
        assert first.total_dram_bytes == second.total_dram_bytes

    def test_calibration_is_deterministic(self):
        a = EdgeMM.default().calibrate_pruning(n_tokens=2)
        b = EdgeMM.default().calibrate_pruning(n_tokens=2)
        assert a.average_keep_fraction == b.average_keep_fraction
