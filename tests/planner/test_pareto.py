"""Property tests for the Pareto-dominance utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.planner import dominates, pareto_frontier

vectors = st.lists(
    st.tuples(*[st.integers(min_value=-3, max_value=3)] * 3),
    min_size=1,
    max_size=24,
)


def test_dominates_basics():
    assert dominates((1.0, 0.0), (0.0, 0.0))
    assert not dominates((0.0, 0.0), (0.0, 0.0))  # equal vectors: neither
    assert not dominates((1.0, -1.0), (0.0, 0.0))  # trade-off: neither
    with pytest.raises(ValueError):
        dominates((1.0,), (1.0, 2.0))


@given(vectors)
def test_frontier_members_are_mutually_non_dominated(items):
    frontier = pareto_frontier(items, lambda item: item)
    assert frontier  # a finite non-empty set always has a maximal element
    for a in frontier:
        assert not any(dominates(b, a) for b in items if b != a)


@given(vectors)
def test_every_excluded_item_is_dominated_by_a_frontier_member(items):
    frontier = pareto_frontier(items, lambda item: item)
    for item in items:
        if item not in frontier:
            assert any(dominates(kept, item) for kept in frontier)


@given(vectors)
def test_frontier_is_order_independent_as_a_set(items):
    forward = pareto_frontier(items, lambda item: item)
    backward = pareto_frontier(list(reversed(items)), lambda item: item)
    assert set(forward) == set(backward)


def test_exact_ties_are_all_kept():
    items = [(1, 1), (1, 1), (0, 0)]
    assert pareto_frontier(items, lambda item: item) == [(1, 1), (1, 1)]
