"""Content-addressed plan store: keys, round-trips, audit and planning.

The store's contract is *byte-identity by construction*: an object is
keyed by a SHA-256 over exactly the inputs exact simulation is a pure
function of, so a hit can replace a simulation without any tolerance.
These tests cover the key derivation (what enters it and — for static
fleets — what deliberately does not), object round-trips, hit/miss
accounting, corruption detection through ``validate``/``gc``, and the
end-to-end guarantee: a warm re-plan performs zero simulations and
returns the byte-identical report modulo the store counters.
"""

from __future__ import annotations

import json

import pytest

from repro.planner import (
    ChipDesign,
    FleetOption,
    PlanStore,
    PlannerConfig,
    candidate_key,
    evaluate_candidate,
    plan_scenario,
)
from repro.planner.store import STORE_VERSION, StoreProblem
from repro.scenarios import (
    ArrivalSpec,
    FleetSpec,
    ScenarioSpec,
    SLOSpec,
    WorkloadComponent,
)
from repro.scenarios.compile import compile_scenario


def tiny_spec(name: str = "store-test", ttft_target: float = 0.8) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        n_requests=8,
        mix=(
            WorkloadComponent(
                name="chat",
                images=0,
                prompt_token_range=(8, 32),
                output_token_choices=(4, 8),
                output_token_weights=(0.5, 0.5),
            ),
        ),
        arrival=ArrivalSpec(kind="poisson", rate_rps=4.0),
        fleet=FleetSpec(n_chips=1, max_batch_size=4, context_bucket=32),
        slo=SLOSpec(ttft_p99_s=ttft_target),
    )


def tiny_config() -> PlannerConfig:
    return PlannerConfig(
        chip_grid=(ChipDesign(1, 1, 1), ChipDesign(1, 1, 2)),
        min_chips=1,
        max_chips=1,
        include_autoscaled=False,
    )


def one_outcome(spec):
    """One exact CandidateOutcome plus the (design, option) that made it."""
    design = ChipDesign(1, 1, 1)
    option = FleetOption(n_chips=1)
    compiled = compile_scenario(spec)
    outcome = evaluate_candidate(
        spec, compiled.trace, design, option, spec.slo.targets(), warm={}
    )
    return design, option, outcome


class TestCandidateKey:
    def test_static_option_ignores_ttft_target(self):
        design = ChipDesign(1, 1, 1)
        option = FleetOption(n_chips=2)
        a = candidate_key("spec", design, option, ttft_target_s=0.5)
        b = candidate_key("spec", design, option, ttft_target_s=2.0)
        assert a == b

    def test_autoscaled_option_keys_the_set_point(self):
        design = ChipDesign(1, 1, 1)
        option = FleetOption(n_chips=4, autoscaled=True, min_chips=1)
        a = candidate_key("spec", design, option, ttft_target_s=0.5)
        b = candidate_key("spec", design, option, ttft_target_s=2.0)
        assert a != b

    def test_key_separates_every_input(self):
        design = ChipDesign(1, 1, 1)
        option = FleetOption(n_chips=1)
        base = candidate_key("spec", design, option)
        assert candidate_key("other-spec", design, option) != base
        assert candidate_key("spec", ChipDesign(2, 1, 1), option) != base
        assert candidate_key("spec", design, FleetOption(n_chips=2)) != base
        assert (
            candidate_key("spec", ChipDesign(1, 1, 1, keep_fraction=0.5), option)
            != base
        )

    def test_key_is_hex_sha256(self):
        key = candidate_key("spec", ChipDesign(1, 1, 1), FleetOption(n_chips=1))
        assert len(key) == 64
        int(key, 16)  # hex digest


class TestPlanStoreObjects:
    def test_round_trip_and_counters(self, tmp_path):
        spec = tiny_spec()
        design, option, outcome = one_outcome(spec)
        store = PlanStore(tmp_path / "store")
        key = candidate_key(spec.spec_hash(), design, option)

        assert store.get(key) is None
        assert store.counters.misses == 1 and store.counters.hits == 0

        store.put(key, spec.spec_hash(), outcome)
        assert len(store) == 1
        assert store.get(key) == outcome
        assert store.counters.hits == 1 and store.counters.misses == 1

    def test_objects_fan_out_by_key_prefix(self, tmp_path):
        spec = tiny_spec()
        design, option, outcome = one_outcome(spec)
        store = PlanStore(tmp_path)
        key = candidate_key(spec.spec_hash(), design, option)
        store.put(key, spec.spec_hash(), outcome)
        path = tmp_path / "objects" / key[:2] / f"{key}.json"
        assert path.is_file()
        payload = json.loads(path.read_text())
        assert payload["version"] == STORE_VERSION
        assert payload["key"] == key
        assert payload["spec"] == spec.spec_hash()

    def test_put_is_idempotent_and_atomic(self, tmp_path):
        spec = tiny_spec()
        design, option, outcome = one_outcome(spec)
        store = PlanStore(tmp_path)
        key = candidate_key(spec.spec_hash(), design, option)
        store.put(key, spec.spec_hash(), outcome)
        store.put(key, spec.spec_hash(), outcome)
        assert len(store) == 1
        # No temp files left behind.
        leftovers = [
            p for p in store.objects_dir.rglob("*") if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_corrupt_object_is_a_miss_not_an_error(self, tmp_path):
        spec = tiny_spec()
        design, option, outcome = one_outcome(spec)
        store = PlanStore(tmp_path)
        key = candidate_key(spec.spec_hash(), design, option)
        store.put(key, spec.spec_hash(), outcome)
        store._object_path(key).write_text("{not json")
        assert store.get(key) is None
        assert store.counters.misses == 1


class TestValidateAndGc:
    def populated(self, tmp_path):
        spec = tiny_spec()
        design, option, outcome = one_outcome(spec)
        store = PlanStore(tmp_path)
        key = candidate_key(spec.spec_hash(), design, option)
        store.put(key, spec.spec_hash(), outcome)
        return store, key, spec, outcome

    def test_validate_healthy_store(self, tmp_path):
        store, _, _, _ = self.populated(tmp_path)
        assert store.validate() == []

    def test_validate_flags_bad_json(self, tmp_path):
        store, key, _, _ = self.populated(tmp_path)
        store._object_path(key).write_text("{not json")
        (problem,) = store.validate()
        assert isinstance(problem, StoreProblem)
        assert "JSON" in problem.reason

    def test_validate_flags_renamed_object(self, tmp_path):
        store, key, _, _ = self.populated(tmp_path)
        path = store._object_path(key)
        bogus = "ab" + "0" * 62
        target = store.objects_dir / "ab" / f"{bogus}.json"
        target.parent.mkdir(parents=True, exist_ok=True)
        path.rename(target)
        reasons = {problem.reason for problem in store.validate()}
        assert any("does not match file name" in reason for reason in reasons)

    def test_validate_flags_version_mismatch(self, tmp_path):
        store, key, _, _ = self.populated(tmp_path)
        path = store._object_path(key)
        payload = json.loads(path.read_text())
        payload["version"] = STORE_VERSION + 1
        path.write_text(json.dumps(payload))
        (problem,) = store.validate()
        assert "version" in problem.reason

    def test_validate_flags_wrong_fan_directory(self, tmp_path):
        store, key, _, _ = self.populated(tmp_path)
        path = store._object_path(key)
        wrong = store.objects_dir / "zz"
        wrong.mkdir()
        path.rename(wrong / path.name)
        reasons = {problem.reason for problem in store.validate()}
        assert any("fan-out" in reason for reason in reasons)

    def test_validate_flags_truncated_outcome(self, tmp_path):
        store, key, _, _ = self.populated(tmp_path)
        path = store._object_path(key)
        payload = json.loads(path.read_text())
        del payload["outcome"]["ttft_p99_s"]
        path.write_text(json.dumps(payload))
        (problem,) = store.validate()
        assert "round-trip" in problem.reason

    def test_gc_removes_defective_objects_and_empty_fans(self, tmp_path):
        store, key, _, _ = self.populated(tmp_path)
        path = store._object_path(key)
        path.write_text("{not json")
        removed = store.gc()
        assert removed == [path]
        assert len(store) == 0
        assert not path.parent.exists()  # empty fan dir collected too

    def test_gc_keep_specs_retires_stale_scenarios(self, tmp_path):
        store, key, spec, outcome = self.populated(tmp_path)
        design, option, other_outcome = one_outcome(tiny_spec(name="other"))
        other_key = candidate_key("dead-spec-hash", design, option)
        store.put(other_key, "dead-spec-hash", other_outcome)
        assert len(store) == 2
        removed = store.gc(keep_specs={spec.spec_hash()})
        assert [p.name for p in removed] == [f"{other_key}.json"]
        assert store.get(key) == outcome

    def test_stats_counts_objects_and_specs(self, tmp_path):
        store, _, spec, _ = self.populated(tmp_path)
        stats = store.stats()
        assert stats["n_objects"] == 1
        assert stats["total_bytes"] > 0
        assert stats["by_spec"] == {spec.spec_hash(): 1}


class TestPlanningWithStore:
    def test_cold_then_warm_plan(self, tmp_path):
        spec = tiny_spec()
        config = tiny_config()
        store = PlanStore(tmp_path)

        cold = plan_scenario(spec, config, store=store)
        assert cold.store_hits == 0
        assert cold.store_misses == cold.n_simulated > 0

        warm = plan_scenario(spec, config, store=store)
        assert warm.n_simulated == 0
        assert warm.store_misses == 0
        assert warm.store_hits == cold.n_simulated
        # Byte-identical modulo the store counters and simulation count.
        strip = {"store_hits", "store_misses", "n_simulated"}
        cold_data = {
            k: v for k, v in json.loads(cold.to_json()).items() if k not in strip
        }
        warm_data = {
            k: v for k, v in json.loads(warm.to_json()).items() if k not in strip
        }
        assert warm_data == cold_data

    def test_no_store_reports_no_counters(self):
        report = plan_scenario(tiny_spec(), tiny_config())
        assert report.store_hits is None
        assert report.store_misses is None
        assert "store_hits" not in json.loads(report.to_json())

    def test_tampered_object_is_resimulated(self, tmp_path):
        spec = tiny_spec()
        config = tiny_config()
        store = PlanStore(tmp_path)
        cold = plan_scenario(spec, config, store=store)
        victim = next(iter(store.iter_paths()))
        victim.write_text("{not json")

        healed = plan_scenario(spec, config, store=store)
        assert healed.n_simulated == 1  # only the tampered candidate
        assert healed.store_hits == cold.n_simulated - 1
        assert healed.best == cold.best
        assert healed.frontier == cold.frontier
        assert store.validate() == []  # the fresh write healed the object

    def test_slo_tweak_hits_for_static_fleets(self, tmp_path):
        # Static fleets ignore the TTFT set point, so changing the target
        # re-judges stored outcomes without re-simulating anything.
        spec = tiny_spec(ttft_target=0.8)
        config = tiny_config()
        store = PlanStore(tmp_path)
        plan_scenario(spec, config, store=store)

        tweaked = plan_scenario(
            spec, config, slo=SLOSpec(ttft_p99_s=0.9), store=store
        )
        assert tweaked.n_simulated == 0

    def test_different_scenarios_do_not_collide(self, tmp_path):
        config = tiny_config()
        store = PlanStore(tmp_path)
        first = plan_scenario(tiny_spec(name="scenario-a"), config, store=store)
        second = plan_scenario(tiny_spec(name="scenario-b"), config, store=store)
        assert second.store_hits == 0
        assert len(store) == first.n_simulated + second.n_simulated


class TestStoreCli:
    def populated(self, tmp_path):
        from repro.planner.__main__ import main

        spec = tiny_spec()
        design, option, outcome = one_outcome(spec)
        store = PlanStore(tmp_path / "store")
        key = candidate_key(spec.spec_hash(), design, option)
        store.put(key, spec.spec_hash(), outcome)
        return main, store, key, spec

    def test_store_validate_healthy(self, tmp_path, capsys):
        main, store, _, _ = self.populated(tmp_path)
        assert main(["store-validate", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "1 objects" in out
        assert "0 problems" in out

    def test_store_validate_flags_corruption(self, tmp_path, capsys):
        main, store, key, _ = self.populated(tmp_path)
        store._object_path(key).write_text("{not json")
        assert main(["store-validate", str(store.root)]) == 1
        out = capsys.readouterr().out
        assert "BAD" in out
        assert "1 problems" in out

    def test_store_gc_collects_defects(self, tmp_path, capsys):
        main, store, key, _ = self.populated(tmp_path)
        store._object_path(key).write_text("{not json")
        assert main(["store-gc", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "1 objects collected, 0 kept" in out

    def test_store_gc_keep_spec(self, tmp_path, capsys):
        main, store, _, spec = self.populated(tmp_path)
        design, option, other = one_outcome(tiny_spec(name="other"))
        store.put(candidate_key("dead", design, option), "dead", other)
        assert (
            main(["store-gc", str(store.root), "--keep-spec", spec.spec_hash()])
            == 0
        )
        out = capsys.readouterr().out
        assert "1 objects collected, 1 kept" in out
