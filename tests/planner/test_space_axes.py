"""The four-axis chip design space and its CLI surface.

PR 7 widened :class:`ChipDesign` from pure geometry to the full candidate
space the branch-and-bound planner searches — DRAM bandwidth tiers and
activation-pruning keep fractions — with a hard compatibility constraint:
designs that leave the new axes unset must serialize, hash and name
byte-identically to the pre-axis format (golden plan reports and plan
hashes must not move).  These tests pin that constraint plus the axis
helpers (:func:`build_chip_grid`, :func:`parse_mixes`,
:meth:`PlannerConfig.from_axes`) and the CLI flags that expose them.
"""

from __future__ import annotations

import json

import pytest

from repro.planner import (
    ChipDesign,
    PlannerConfig,
    build_chip_grid,
    default_chip_grid,
    parse_mixes,
)
from repro.planner.__main__ import main
from repro.planner.space import BASE_DRAM_GBPS, DEFAULT_CHIP_MIXES, DEFAULT_GROUP_COUNTS


class TestChipDesignAxes:
    def test_optional_axes_default_to_none(self):
        design = ChipDesign(2, 2, 2)
        assert design.dram_gbps is None
        assert design.keep_fraction is None

    def test_name_is_axis_free_when_axes_unset(self):
        # Historical names key warm caches and golden reports.
        assert ChipDesign(4, 2, 2).name == "4x2cc2mc"
        assert ChipDesign(8, 2, 2, dram_gbps=204.8).name == "8x2cc2mc-d204.8"
        assert (
            ChipDesign(8, 2, 2, dram_gbps=204.8, keep_fraction=0.5).name
            == "8x2cc2mc-d204.8-k0.5"
        )

    def test_to_dict_omits_unset_axes(self):
        assert ChipDesign(2, 1, 1).to_dict() == {
            "n_groups": 2,
            "cc_per_group": 1,
            "mc_per_group": 1,
        }
        full = ChipDesign(2, 1, 1, dram_gbps=102.4, keep_fraction=0.75)
        assert full.to_dict() == {
            "n_groups": 2,
            "cc_per_group": 1,
            "mc_per_group": 1,
            "dram_gbps": 102.4,
            "keep_fraction": 0.75,
        }

    @pytest.mark.parametrize(
        "design",
        [
            ChipDesign(2, 1, 1),
            ChipDesign(2, 1, 1, dram_gbps=102.4),
            ChipDesign(2, 1, 1, keep_fraction=0.5),
            ChipDesign(1, 3, 2, dram_gbps=51.2, keep_fraction=1.0),
        ],
    )
    def test_serialization_round_trips(self, design):
        assert ChipDesign.from_dict(design.to_dict()) == design
        assert ChipDesign.from_dict(json.loads(json.dumps(design.to_dict()))) == design

    def test_axes_resolve_defaults(self):
        axes = ChipDesign(2, 1, 1).axes()
        assert axes["mix"] == (1, 1)
        assert axes["n_groups"] == 2
        assert axes["dram_gbps"] == BASE_DRAM_GBPS
        assert axes["keep_fraction"] == 1.0

    def test_axis_validation(self):
        with pytest.raises(ValueError, match="dram_gbps"):
            ChipDesign(1, 1, 1, dram_gbps=0.0)
        with pytest.raises(ValueError, match="keep_fraction"):
            ChipDesign(1, 1, 1, keep_fraction=0.0)
        with pytest.raises(ValueError, match="keep_fraction"):
            ChipDesign(1, 1, 1, keep_fraction=1.5)

    def test_dram_axis_reaches_the_system_config(self):
        slow = ChipDesign(1, 1, 1, dram_gbps=51.2).system()
        fast = ChipDesign(1, 1, 1, dram_gbps=204.8).system()
        assert slow.chip.dram.peak_bandwidth_bytes_per_s == 51.2e9
        assert fast.chip.dram.peak_bandwidth_bytes_per_s == 204.8e9

    def test_keep_axis_reaches_the_system_config(self):
        pruned = ChipDesign(1, 1, 1, keep_fraction=0.5).system()
        dense = ChipDesign(1, 1, 1).system()
        assert pruned != dense


class TestBuildChipGrid:
    def test_defaults_reproduce_the_default_grid(self):
        assert build_chip_grid() == default_chip_grid()
        assert PlannerConfig.from_axes().chip_grid == PlannerConfig().chip_grid

    def test_cross_product_size_and_order(self):
        grid = build_chip_grid(
            groups=(1, 2),
            mixes=((1, 1), (2, 1)),
            dram_gbps=(None, 204.8),
            keep_fractions=(None, 0.5),
        )
        assert len(grid) == 16
        # (groups, mixes, dram, keep), outermost first.
        assert grid[0] == ChipDesign(1, 1, 1)
        assert grid[1] == ChipDesign(1, 1, 1, keep_fraction=0.5)
        assert grid[2] == ChipDesign(1, 1, 1, dram_gbps=204.8)
        assert grid[-1] == ChipDesign(2, 2, 1, dram_gbps=204.8, keep_fraction=0.5)

    def test_large_spaces_are_one_call(self):
        grid = build_chip_grid(
            groups=range(1, 9),
            mixes=tuple((1, mc) for mc in range(1, 8)),
            dram_gbps=tuple(51.2 * i for i in range(1, 17)),
            keep_fractions=tuple(0.4 + 0.04 * i for i in range(16)),
        )
        assert len(grid) == 8 * 7 * 16 * 16
        assert len({design.name for design in grid}) == len(grid)


class TestParseMixes:
    def test_parses_comma_separated_pairs(self):
        assert parse_mixes("2:2,3:1") == ((2, 2), (3, 1))
        assert parse_mixes(" 1:1 , 1:3 ") == ((1, 1), (1, 3))

    @pytest.mark.parametrize("bad", ["", "2-2", "2:2:2", "a:b", ","])
    def test_rejects_malformed_lists(self, bad):
        with pytest.raises(ValueError):
            parse_mixes(bad)


class TestFromAxes:
    def test_default_space_is_unchanged(self):
        # The golden-plan suite depends on the default space not moving.
        assert PlannerConfig.from_axes() == PlannerConfig()

    def test_fleet_axes_pass_through(self):
        config = PlannerConfig.from_axes(
            groups=(1,),
            mixes=((1, 1),),
            min_chips=2,
            max_chips=3,
            policies=("round_robin",),
            include_autoscaled=False,
        )
        options = config.fleet_options(with_autoscaled=True)
        assert [option.label for option in options] == [
            "static2/round_robin",
            "static3/round_robin",
        ]

    def test_group_counts_of_eight_and_beyond(self):
        config = PlannerConfig.from_axes(groups=tuple(range(1, 13)), mixes=((1, 1),))
        assert len(config.chip_grid) == 12
        assert max(design.n_groups for design in config.chip_grid) == 12


class TestAxisCliFlags:
    def run_json(self, *extra):
        argv = [
            "plan", "chat-poisson",
            "--max-chips", "1", "--static-only", "--json",
            *extra,
        ]
        import io
        from contextlib import redirect_stdout

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            main(argv)
        return json.loads(buffer.getvalue())

    def test_axis_flags_shape_the_candidate_space(self):
        report = self.run_json(
            "--groups", "1,2",
            "--mixes", "1:1",
            "--dram-gbps", "102.4,204.8",
            "--keep-fractions", "0.5,1.0",
        )
        assert report["n_chip_designs"] == 2 * 1 * 2 * 2
        designs = [verdict["design"] for verdict in report["design_bounds"]]
        assert {
            "n_groups": 1,
            "cc_per_group": 1,
            "mc_per_group": 1,
            "dram_gbps": 102.4,
            "keep_fraction": 0.5,
        } in designs

    def test_search_flag_selects_bnb(self):
        flat = self.run_json("--groups", "1,2", "--mixes", "1:1")
        bnb = self.run_json("--groups", "1,2", "--mixes", "1:1", "--search", "bnb")
        assert "search" not in flat  # default emits axis-free
        assert bnb["search"] == "bnb"
        assert bnb["best"] == flat["best"]
        assert bnb["frontier"] == flat["frontier"]

    def test_policies_flag(self):
        report = self.run_json(
            "--groups", "1", "--mixes", "1:1", "--policies", "round_robin"
        )
        labels = {
            entry["fleet"]["policy"] for entry in report["frontier"]
        }
        assert labels == {"round_robin"}
