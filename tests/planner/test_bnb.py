"""Branch-and-bound search equivalence and subgrid-bound soundness.

Three contracts, property-tested on randomized small spaces:

* **bnb == flat == brute force** — branch-and-bound planning returns the
  byte-identical :class:`PlanReport` as flat search modulo the search/
  store accounting fields (bnb reports per-design bounds only for
  individually-priced designs), and both agree with exhaustive exact
  simulation on the best plan;
* **corner-bound soundness** — a subgrid corner's per-request analytic
  floors are pointwise lower bounds on every member design's floors, the
  monotonicity fact the whole-subtree prune rests on;
* **delta-warm == cold** — a warm cache delta-seeded from a one-axis
  neighbor yields float-identical simulation outcomes (and float-identical
  harvested memos) to a cold run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.simulator import PerformanceSimulator
from repro.planner import (
    ChipDesign,
    DesignWarmCache,
    PlanEntry,
    PlannerConfig,
    axis_delta,
    bnb_prune_designs,
    evaluate_candidate,
    initial_subgrids,
    plan_scenario,
    prune_designs,
)
from repro.planner.bnb import Subgrid, axis_tuple
from repro.planner.prune import trace_pricer
from repro.scenarios import (
    ArrivalSpec,
    FleetSpec,
    ScenarioSpec,
    SLOSpec,
    WorkloadComponent,
)
from repro.scenarios.compile import compile_scenario

#: PlanReport fields that legitimately differ between search modes or with
#: a store attached; equality of everything else is the bnb == flat
#: contract.
SEARCH_ACCOUNTING_FIELDS = frozenset(
    {
        "design_bounds",
        "search",
        "n_pruned_subgrids",
        "n_bound_evals",
        "store_hits",
        "store_misses",
    }
)


def report_core(report) -> dict:
    """A report's JSON data with the search/store accounting stripped."""
    data = json.loads(report.to_json())
    return {k: v for k, v in data.items() if k not in SEARCH_ACCOUNTING_FIELDS}


def small_scenario(rate_rps, ttft_target, latency_target, seed_salt):
    return ScenarioSpec(
        name="bnb-prop",
        n_requests=10,
        mix=(
            WorkloadComponent(
                name="chat",
                images=0,
                prompt_token_range=(8, 48),
                output_token_choices=(4, 8),
                output_token_weights=(0.5, 0.5),
            ),
        ),
        arrival=ArrivalSpec(kind="poisson", rate_rps=rate_rps),
        fleet=FleetSpec(n_chips=1, max_batch_size=4, context_bucket=32),
        slo=SLOSpec(ttft_p99_s=ttft_target, latency_p95_s=latency_target),
        seed_salt=seed_salt,
    )


axis_spaces = st.fixed_dictionaries(
    {
        "groups": st.sampled_from(((1,), (1, 2), (2, 3))),
        "mixes": st.sampled_from((((1, 1),), ((1, 1), (1, 2)))),
        "dram": st.sampled_from(((None,), (51.2, 102.4), (76.8, 102.4, 204.8))),
        "keep": st.sampled_from(((None,), (0.5, 1.0), (0.6, 0.8, 1.0))),
        "rate_rps": st.sampled_from((2.0, 8.0)),
        "ttft_target": st.sampled_from((0.05, 0.2, 0.8)),
        "latency_target": st.sampled_from((None, 0.3, 2.0)),
        "seed_salt": st.integers(min_value=0, max_value=3),
    }
)


def space_config(space) -> PlannerConfig:
    return PlannerConfig.from_axes(
        groups=space["groups"],
        mixes=space["mixes"],
        dram_gbps=space["dram"],
        keep_fractions=space["keep"],
        min_chips=1,
        max_chips=1,
        include_autoscaled=False,
    )


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(axis_spaces)
def test_bnb_equals_flat_equals_brute_force(space):
    spec = small_scenario(
        space["rate_rps"],
        space["ttft_target"],
        space["latency_target"],
        space["seed_salt"],
    )
    config = space_config(space)
    targets = spec.slo.targets()
    compiled = compile_scenario(spec)
    options = config.fleet_options(with_autoscaled="ttft_p99_s" in targets)

    flat = plan_scenario(spec, config, search="flat")
    bnb = plan_scenario(spec, config, search="bnb")

    # Byte-identical reports modulo the search accounting fields.
    assert report_core(bnb) == report_core(flat)
    assert bnb.frontier == flat.frontier
    assert bnb.best == flat.best
    assert bnb.n_pruned_designs == flat.n_pruned_designs
    assert bnb.search == "bnb" and flat.search == "flat"

    # Individually-priced designs carry the identical bound floats.  (The
    # set may be empty: a root box whose corner misses prunes the whole
    # space without pricing any single design.)
    flat_verdicts = {v.design.name: v for v in flat.design_bounds}
    priced = {v.design.name for v in bnb.design_bounds}
    for verdict in bnb.design_bounds:
        assert verdict == flat_verdicts[verdict.design.name]
    # Every surviving (feasible) design was individually priced.
    for verdict in flat.design_bounds:
        if verdict.feasible:
            assert verdict.design.name in priced

    # Brute force agrees on the best plan.
    warm: dict = {}
    brute_entries = [
        PlanEntry.from_outcome(
            evaluate_candidate(
                spec, compiled.trace, design, option, targets, warm=warm
            ),
            targets,
        )
        for design in config.chip_grid
        for option in options
    ]
    brute_met = [entry for entry in brute_entries if entry.slo_met]
    if not brute_met:
        assert bnb.best is None
    else:
        brute_best = min(
            brute_met,
            key=lambda entry: (
                entry.chips_provisioned,
                entry.fleet_area_mm2,
                entry.fleet_power_w,
                entry.design.name,
                entry.option.label,
            ),
        )
        assert bnb.best == brute_best


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(axis_spaces)
def test_subgrid_corner_bound_is_sound(space):
    """The corner's per-request floors lower-bound every member's floors."""
    spec = small_scenario(
        space["rate_rps"],
        space["ttft_target"],
        space["latency_target"],
        space["seed_salt"],
    )
    compiled = compile_scenario(spec)
    pricer = trace_pricer(compiled)
    designs = space_config(space).chip_grid
    for box in initial_subgrids(designs):
        members = [designs[i] for i in box.members]
        bounds = pricer.bounds(
            [box.corner_design().system()]
            + [member.system() for member in members]
        )
        for row in range(1, len(members) + 1):
            assert np.all(bounds.min_ttft_s[0] <= bounds.min_ttft_s[row])
            assert np.all(bounds.min_latency_s[0] <= bounds.min_latency_s[row])


def test_bnb_without_prunable_targets_prices_every_design():
    spec = small_scenario(4.0, 100.0, None, 0)
    compiled = compile_scenario(spec)
    designs = PlannerConfig.from_axes(
        groups=(1, 2), mixes=((1, 1),), keep_fractions=(0.5, 1.0)
    ).chip_grid
    result = bnb_prune_designs(compiled, designs, {"ttft_p99_s": 100.0})
    assert len(result.verdicts) == len(designs)
    assert result.survivors == tuple(designs)
    assert result.n_pruned_designs == 0
    assert result.n_pruned_subgrids == 0


def test_bnb_rejects_prune_false():
    spec = small_scenario(4.0, 0.5, None, 0)
    with pytest.raises(ValueError, match="bnb search"):
        plan_scenario(spec, PlannerConfig(), search="bnb", prune=False)
    with pytest.raises(ValueError, match="unknown search mode"):
        plan_scenario(spec, PlannerConfig(), search="greedy")


def test_subgrid_split_partitions_members():
    designs = PlannerConfig.from_axes(
        groups=(1, 2, 3),
        mixes=((1, 1),),
        dram_gbps=(51.2, 102.4),
        keep_fractions=(0.5, 1.0),
    ).chip_grid
    axes_of = [axis_tuple(design) for design in designs]
    (box,) = initial_subgrids(designs, axes_of)
    assert box.n_designs == 12 and not box.is_pointlike
    children = box.split(axes_of)
    assert len(children) == 2
    child_members = sorted(i for child in children for i in child.members)
    assert child_members == list(box.members)
    # Longest axis (groups, 3 values) splits first.
    assert {len(child.groups) for child in children} == {1, 2}


def test_subgrid_split_drops_empty_children_on_ragged_grids():
    # A ragged grid: the (2-group, 1.0-keep) combination has no design.
    designs = (
        ChipDesign(1, 1, 1, keep_fraction=0.5),
        ChipDesign(1, 1, 1, keep_fraction=1.0),
        ChipDesign(2, 1, 1, keep_fraction=0.5),
    )
    axes_of = [axis_tuple(design) for design in designs]
    (box,) = initial_subgrids(designs, axes_of)
    assert box.groups == (1, 2) and box.keep == (0.5, 1.0)
    for child in box.split(axes_of):
        assert child.members  # no empty child survives a split
    point = Subgrid(mix=(1, 1), groups=(1,), dram=(102.4,), keep=(0.5,), members=(0,))
    assert point.is_pointlike
    with pytest.raises(ValueError, match="point-like"):
        point.split(axes_of)


def test_corner_key_is_shared_between_parent_and_best_child():
    designs = PlannerConfig.from_axes(
        groups=(1, 2), mixes=((1, 1),), keep_fractions=(0.5, 1.0)
    ).chip_grid
    axes_of = [axis_tuple(design) for design in designs]
    (box,) = initial_subgrids(designs, axes_of)
    children = box.split(axes_of)
    assert box.corner_key() in {child.corner_key() for child in children}


def test_axis_delta_names_differing_axes():
    a = ChipDesign(1, 1, 1, keep_fraction=0.5)
    b = ChipDesign(1, 1, 1)
    c = ChipDesign(1, 1, 1, dram_gbps=204.8)
    assert axis_delta(a, b) == frozenset({"keep_fraction"})
    assert axis_delta(b, c) == frozenset({"dram_gbps"})
    assert axis_delta(a, c) == frozenset({"keep_fraction", "dram_gbps"})
    assert axis_delta(a, a) == frozenset()
    # keep_fraction=1.0 is the same axis value as "pruning off".
    assert axis_delta(ChipDesign(1, 1, 1, keep_fraction=1.0), b) == frozenset()


@pytest.mark.parametrize(
    "neighbor, memo",
    [
        (ChipDesign(1, 1, 1, keep_fraction=0.5), "cc_latencies"),
        (ChipDesign(1, 1, 1, dram_gbps=204.8), "bucket_costs"),
    ],
)
def test_delta_warm_equals_cold(neighbor, memo):
    """Delta-seeded simulation is float-identical to cold simulation."""
    spec = small_scenario(4.0, 0.8, 3.0, 1)
    compiled = compile_scenario(spec)
    base = ChipDesign(1, 1, 1)
    targets = spec.slo.targets()
    option = PlannerConfig(chip_grid=(base,), max_chips=1).fleet_options(
        with_autoscaled=False
    )[0]

    # Simulate the neighbor, harvesting its memos.
    warm: dict = {}
    evaluate_candidate(spec, compiled.trace, neighbor, option, targets, warm=warm)
    neighbor_cache = warm[neighbor.name]
    assert getattr(neighbor_cache, memo)  # the donated memo is non-empty

    # Cold baseline for the base design.
    cold_warm: dict = {}
    cold = evaluate_candidate(
        spec, compiled.trace, base, option, targets, warm=cold_warm
    )
    cold_cache = cold_warm[base.name]

    # Delta-warmed run: seed from the one-axis neighbor, then simulate.
    delta_cache = DesignWarmCache(simulator=PerformanceSimulator(base.system()))
    delta_cache.delta_seed_from(neighbor_cache, axis_delta(base, neighbor))
    donated = dict(getattr(delta_cache, memo))
    assert donated  # the transferable memo actually transferred
    warmed = evaluate_candidate(
        spec,
        compiled.trace,
        base,
        option,
        targets,
        warm={base.name: delta_cache},
    )

    assert warmed == cold
    # Every donated value is float-identical to what cold recomputed.
    cold_memo = getattr(cold_cache, memo)
    for key, value in donated.items():
        if key in cold_memo:
            assert cold_memo[key] == value


def test_delta_warm_ignores_untransferable_deltas():
    neighbor = ChipDesign(2, 1, 1, keep_fraction=0.5)  # groups AND keep differ
    base = ChipDesign(1, 1, 1)
    donor = DesignWarmCache(simulator=PerformanceSimulator(neighbor.system()))
    donor.cc_latencies[(0, 8)] = 1.0
    donor.bucket_costs[32] = (1, 2, 3.0)
    cache = DesignWarmCache(simulator=PerformanceSimulator(base.system()))
    cache.delta_seed_from(donor, axis_delta(base, neighbor))
    assert not cache.cc_latencies and not cache.bucket_costs
