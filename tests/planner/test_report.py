"""PlanReport serialization, identity hashing and the CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.planner import (
    GOLDEN_PLAN_SCENARIOS,
    ChipDesign,
    PlannerConfig,
    PlanReport,
    format_plan_report,
    plan_hash,
    plan_scenario,
)
from repro.planner.__main__ import main
from repro.scenarios import available_scenarios, get_scenario

SMALL_CONFIG = PlannerConfig(
    chip_grid=(ChipDesign(1, 1, 1), ChipDesign(1, 2, 2)),
    min_chips=1,
    max_chips=2,
)


@pytest.fixture(scope="module")
def report():
    return plan_scenario(get_scenario("chat-poisson"), SMALL_CONFIG)


def test_plan_report_json_round_trips_byte_identically(report):
    text = report.to_json()
    assert PlanReport.from_json(text).to_json() == text


def test_round_trip_preserves_every_field(report):
    rebuilt = PlanReport.from_json(report.to_json())
    assert rebuilt == report


def test_canonical_json_is_key_sorted_with_trailing_newline(report):
    text = report.to_json()
    assert text.endswith("\n")
    assert json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n" == text


def test_plan_hash_moves_with_every_identity_input(report):
    spec = get_scenario("chat-poisson")
    base = plan_hash(spec.spec_hash(), SMALL_CONFIG, dict(report.slo_targets))
    assert report.plan_hash == base
    other_config = PlannerConfig(
        chip_grid=SMALL_CONFIG.chip_grid, min_chips=1, max_chips=3
    )
    assert plan_hash(spec.spec_hash(), other_config, dict(report.slo_targets)) != base
    assert plan_hash(spec.spec_hash(), SMALL_CONFIG, {"ttft_p99_s": 9.0}) != base
    assert plan_hash("0" * 64, SMALL_CONFIG, dict(report.slo_targets)) != base


def test_planner_config_round_trips(report):
    config = report.planner
    assert PlannerConfig.from_dict(json.loads(config.canonical_json())) == config


def test_format_plan_report_mentions_the_headline_facts(report):
    text = format_plan_report(report)
    assert report.scenario in text
    assert "Pareto frontier" in text
    if report.best is not None:
        assert report.best.design.name in text


def test_golden_plan_scenarios_are_registered():
    assert set(GOLDEN_PLAN_SCENARIOS) <= set(available_scenarios())


def test_cli_plan_emits_canonical_json(capsys):
    exit_code = main(
        ["plan", "chat-poisson", "--max-chips", "1", "--static-only", "--json"]
    )
    out = capsys.readouterr().out
    parsed = PlanReport.from_json(out)
    assert parsed.scenario == "chat-poisson"
    assert exit_code == (0 if parsed.feasible else 1)
    assert parsed.to_json() == out


def test_cli_plan_human_rendering(capsys):
    main(["plan", "chat-poisson", "--max-chips", "1", "--static-only",
          "--slo-p99-ttft", "30.0", "--slo-p95-latency", "30.0"])
    out = capsys.readouterr().out
    assert "Capacity plan: chat-poisson" in out
    assert "best plan" in out


def test_cli_write_golden_round_trips(tmp_path, capsys):
    assert main(["write-golden", "--dir", str(tmp_path), "chat-poisson"]) == 0
    written = (tmp_path / "chat-poisson.json").read_text(encoding="utf-8")
    assert PlanReport.from_json(written).to_json() == written
