"""Golden-plan regression suite: canonical JSON, byte for byte.

Every scenario in :data:`repro.planner.__main__.GOLDEN_PLAN_SCENARIOS` has
a committed reference plan under ``tests/golden/planner/``; planning it
with the default config must reproduce the file *byte* identically — the
bound pass, the exact simulations, the Pareto fold and the hashing are all
deterministic, so any diff is a behaviour change.  Regenerate deliberately
with::

    PYTHONPATH=src python -m repro.planner write-golden

and commit the diff with the change that caused it.
"""

import json
from pathlib import Path

import pytest

from repro.planner import GOLDEN_PLAN_SCENARIOS, plan_scenario
from repro.scenarios import get_scenario

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden" / "planner"


def test_every_golden_plan_scenario_has_a_committed_report():
    missing = [
        name
        for name in GOLDEN_PLAN_SCENARIOS
        if not (GOLDEN_DIR / f"{name}.json").exists()
    ]
    assert not missing, (
        f"missing golden plans for {missing}; run "
        "`python -m repro.planner write-golden` and commit the files"
    )


def test_no_stale_golden_plans():
    known = {f"{name}.json" for name in GOLDEN_PLAN_SCENARIOS}
    stale = [
        path.name for path in GOLDEN_DIR.glob("*.json") if path.name not in known
    ]
    assert not stale, f"golden plans without a planned scenario: {stale}"


def test_at_least_one_golden_plan_exercises_analytic_pruning():
    """The regression net must cover the pruning path, not just simulation."""
    pruned = 0
    for name in GOLDEN_PLAN_SCENARIOS:
        report = json.loads((GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8"))
        pruned += report["n_pruned_designs"]
    assert pruned >= 1


@pytest.mark.parametrize("name", GOLDEN_PLAN_SCENARIOS)
def test_plan_report_is_byte_identical_to_golden(name):
    golden = (GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8")
    assert plan_scenario(get_scenario(name)).to_json() == golden
