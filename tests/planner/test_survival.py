"""Fault-aware planning: the survive-one-chip-loss requirement.

``--require-chip-loss`` chaos-probes every SLO-meeting candidate by
replaying the trace with chip 0 permanently failed a quarter of the way
in; the best plan must then come from the survivors.  These tests pin the
probe's semantics (single chips die by construction, probes are
deterministic), the report plumbing (annotation, flag round trip, CLI
rendering), and the headline behaviour: requiring survival never picks a
*cheaper* plan, and rules out the fragile single-chip optimum.
"""

from __future__ import annotations

import pytest

from repro.planner import PlannerConfig, plan_scenario
from repro.planner.evaluate import candidate_survives_chip_loss
from repro.planner.report import PlanReport, format_plan_report
from repro.planner.space import ChipDesign
from repro.scenarios import (
    ArrivalSpec,
    FleetSpec,
    ScenarioSpec,
    SLOSpec,
    WorkloadComponent,
)
from repro.scenarios.compile import compile_scenario

SPEC = ScenarioSpec(
    name="survival-prop",
    n_requests=24,
    mix=(
        WorkloadComponent(
            name="chat",
            images=0,
            prompt_token_range=(8, 48),
            output_token_choices=(4, 8),
            output_token_weights=(0.5, 0.5),
        ),
    ),
    arrival=ArrivalSpec(kind="poisson", rate_rps=4.0),
    fleet=FleetSpec(n_chips=1, max_batch_size=4, context_bucket=32),
    slo=SLOSpec(ttft_p99_s=1.0),
)

CONFIG = PlannerConfig(
    chip_grid=(ChipDesign(1, 2, 2), ChipDesign(2, 1, 1)),
    min_chips=1,
    max_chips=2,
    include_autoscaled=False,
)


@pytest.fixture(scope="module")
def compiled():
    return compile_scenario(SPEC)


class TestSurvivalProbe:
    def test_single_chip_fleets_die_by_construction(self, compiled):
        design = CONFIG.chip_grid[0]
        option = next(
            o for o in CONFIG.fleet_options(with_autoscaled=False) if o.n_chips == 1
        )
        assert not candidate_survives_chip_loss(
            SPEC, compiled.trace, design, option, SPEC.slo.targets()
        )

    def test_probe_is_deterministic_and_engine_independent(self, compiled):
        design = CONFIG.chip_grid[0]
        option = next(
            o for o in CONFIG.fleet_options(with_autoscaled=False) if o.n_chips == 2
        )
        verdicts = {
            candidate_survives_chip_loss(
                SPEC, compiled.trace, design, option, SPEC.slo.targets(),
                engine=engine,
            )
            for engine in ("step", "macro", "wave")
        }
        assert len(verdicts) == 1  # all engines agree, run to run too


class TestRequireChipLoss:
    @pytest.fixture(scope="class")
    def plain(self):
        return plan_scenario(SPEC, CONFIG)

    @pytest.fixture(scope="class")
    def resilient(self):
        return plan_scenario(SPEC, CONFIG, require_chip_loss=True)

    def test_flag_defaults_off_and_leaves_entries_unannotated(self, plain):
        assert plain.require_chip_loss is False
        assert all(e.survives_chip_loss is None for e in plain.frontier)

    def test_meeting_entries_are_probed_when_required(self, resilient):
        assert resilient.require_chip_loss is True
        probed = [e for e in resilient.frontier if e.slo_met]
        assert probed  # the space is small enough that something meets
        for entry in probed:
            assert entry.survives_chip_loss in (True, False)

    def test_best_plan_survives_and_never_gets_cheaper(self, plain, resilient):
        if resilient.feasible:
            assert resilient.best.survives_chip_loss is True
            assert resilient.best.option.n_chips >= 2
            assert resilient.best.fleet_area_mm2 >= plain.best.fleet_area_mm2

    def test_report_round_trips_with_the_requirement(self, resilient):
        data = resilient.to_json()
        assert PlanReport.from_json(data).to_json() == data

    def test_formatted_report_names_the_requirement(self, plain, resilient):
        text = format_plan_report(resilient)
        assert "survive one chip loss" in text
        assert "[survives chip loss]" in text or "[dies with a chip]" in text
        assert "survive one chip loss" not in format_plan_report(plain)
