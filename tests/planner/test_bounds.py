"""The analytic service-time bounds: exact pieces, sound floors.

``batch_service_time_bounds`` claims two things: its prefill and
single-stream step components are *exactly* the serving cost model's
values, and its TTFT/latency floors are *sound* — no exact simulation, on
any fleet of the bounded chip, serves a request faster.  Both claims are
asserted here against the scalar serving engine.
"""

from __future__ import annotations

import pytest

from repro.core.batch import batch_service_time_bounds
from repro.core.config import (
    default_system,
    homo_cc_system,
    homo_mc_system,
    scaled_system,
)
from repro.core.simulator import PerformanceSimulator
from repro.models.mllm import InferenceRequest, get_mllm
from repro.serving.fleet import FleetSimulator
from repro.serving.queue import ContinuousBatchingSimulator, build_trace

SHAPES = (
    InferenceRequest(images=1, prompt_text_tokens=40, output_tokens=16),
    InferenceRequest(images=0, prompt_text_tokens=300, output_tokens=70),
    InferenceRequest(images=4, prompt_text_tokens=16, output_tokens=33),
)
SYSTEMS = (
    default_system(),
    scaled_system(2, 1, 3),
    homo_cc_system(),
    homo_mc_system(),
)


@pytest.fixture(scope="module")
def bounds():
    return batch_service_time_bounds(
        get_mllm("sphinx-tiny"),
        SHAPES,
        SYSTEMS,
        cc_bandwidth_fraction=0.5,
        context_bucket=32,
    )


@pytest.mark.parametrize("point", range(len(SYSTEMS)))
def test_prefill_and_first_step_match_the_scalar_serving_model(bounds, point):
    model = get_mllm("sphinx-tiny")
    chip = ContinuousBatchingSimulator(
        PerformanceSimulator(SYSTEMS[point]),
        model,
        cc_bandwidth_fraction=0.5,
        context_bucket=32,
    )
    for column, shape in enumerate(bounds.shapes):
        assert bounds.prefill_s[point, column] == chip.cc_latency_s(shape)
        assert bounds.first_step_s[point, column] == chip.cost_model.step_latency_s(
            [model.prompt_tokens(shape)]
        )


@pytest.mark.parametrize("point", range(len(SYSTEMS)))
def test_min_latency_is_the_sum_of_single_stream_steps(bounds, point):
    model = get_mllm("sphinx-tiny")
    chip = ContinuousBatchingSimulator(
        PerformanceSimulator(SYSTEMS[point]),
        model,
        cc_bandwidth_fraction=0.5,
        context_bucket=32,
    )
    for column, shape in enumerate(bounds.shapes):
        prompt = model.prompt_tokens(shape)
        expected = chip.cc_latency_s(shape) + sum(
            chip.cost_model.step_latency_s([prompt + step])
            for step in range(shape.output_tokens)
        )
        assert bounds.min_latency_s[point, column] == pytest.approx(
            expected, rel=1e-12
        )


@pytest.mark.parametrize("n_chips", [1, 2])
def test_bounds_floor_every_exactly_simulated_record(n_chips):
    """No record of a congested exact simulation beats its analytic floor."""
    model = get_mllm("sphinx-tiny")
    system = scaled_system(2, 1, 1)
    bounds = batch_service_time_bounds(
        model, SHAPES, [system], cc_bandwidth_fraction=0.5, context_bucket=32
    )
    # A deliberately bursty trace: everything arrives at once, so queueing
    # and batched decode push every record well above its floor.
    requests = [SHAPES[index % len(SHAPES)] for index in range(24)]
    trace = build_trace([0.0] * len(requests), requests)
    fleet = FleetSimulator(
        model,
        n_chips=n_chips,
        policy="least_loaded",
        simulator_factory=lambda: PerformanceSimulator(system),
        cc_bandwidth_fraction=0.5,
        context_bucket=32,
    )
    for record in fleet.run(trace).records:
        column = bounds.shape_index(record.request)
        assert record.ttft_s >= bounds.min_ttft_s[0, column] - 1e-12
        assert record.latency_s >= bounds.min_latency_s[0, column] - 1e-12


def test_shapes_deduplicate_and_unknown_shape_raises(bounds):
    duplicated = batch_service_time_bounds(
        get_mllm("sphinx-tiny"), SHAPES + SHAPES, SYSTEMS[:1]
    )
    assert duplicated.shapes == bounds.shapes
    with pytest.raises(KeyError):
        bounds.shape_index(InferenceRequest(images=9, prompt_text_tokens=1))


def test_validation_rejects_bad_inputs():
    model = get_mllm("sphinx-tiny")
    with pytest.raises(ValueError):
        batch_service_time_bounds(model, [], SYSTEMS[:1])
    with pytest.raises(ValueError):
        batch_service_time_bounds(model, SHAPES, [])
    with pytest.raises(ValueError):
        batch_service_time_bounds(
            model, SHAPES, SYSTEMS[:1], cc_bandwidth_fraction=1.0
        )
    with pytest.raises(ValueError):
        batch_service_time_bounds(model, SHAPES, SYSTEMS[:1], context_bucket=0)
