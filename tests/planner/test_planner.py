"""End-to-end planner behaviour: soundness, optimality, determinism.

The load-bearing property is *pruning soundness*: the analytic bound pass
may only reject chip designs that exact simulation would also reject, for
every fleet option.  It is proven here by brute force on randomized small
candidate spaces — every candidate of every example is exactly simulated
and each SLO-meeting one is checked to use an un-pruned design — along
with the corollary that the planner's best plan equals brute-force search's.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.planner import (
    ChipDesign,
    PlanEntry,
    PlannerConfig,
    evaluate_candidate,
    pareto_frontier,
    plan_scenario,
    prune_designs,
    resolve_slo,
)
from repro.scenarios import (
    ArrivalSpec,
    FleetSpec,
    ScenarioSpec,
    SLOSpec,
    WorkloadComponent,
    get_scenario,
)
from repro.scenarios.compile import compile_scenario

DESIGN_POOL = (
    ChipDesign(1, 1, 1),
    ChipDesign(1, 2, 2),
    ChipDesign(2, 1, 1),
    ChipDesign(1, 1, 3),
    ChipDesign(1, 3, 1),
)

small_spaces = st.fixed_dictionaries(
    {
        "designs": st.sets(
            st.sampled_from(DESIGN_POOL), min_size=2, max_size=3
        ),
        "rate_rps": st.sampled_from((2.0, 8.0)),
        "ttft_target": st.sampled_from((0.05, 0.2, 0.8, 3.0)),
        "latency_target": st.sampled_from((None, 0.3, 2.0)),
        "seed_salt": st.integers(min_value=0, max_value=3),
    }
)


def _small_scenario(rate_rps, ttft_target, latency_target, seed_salt):
    return ScenarioSpec(
        name="planner-prop",
        n_requests=10,
        mix=(
            WorkloadComponent(
                name="chat",
                images=0,
                prompt_token_range=(8, 48),
                output_token_choices=(4, 8),
                output_token_weights=(0.5, 0.5),
            ),
            WorkloadComponent(
                name="image",
                images=1,
                prompt_token_range=(8, 16),
                output_token_choices=(4,),
                output_token_weights=(1.0,),
            ),
        ),
        arrival=ArrivalSpec(kind="poisson", rate_rps=rate_rps),
        fleet=FleetSpec(n_chips=1, max_batch_size=4, context_bucket=32),
        slo=SLOSpec(ttft_p99_s=ttft_target, latency_p95_s=latency_target),
        seed_salt=seed_salt,
    )


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(small_spaces)
def test_pruning_is_sound_and_best_matches_brute_force(space):
    spec = _small_scenario(
        space["rate_rps"],
        space["ttft_target"],
        space["latency_target"],
        space["seed_salt"],
    )
    config = PlannerConfig(
        chip_grid=tuple(sorted(space["designs"], key=lambda d: d.name)),
        min_chips=1,
        max_chips=2,
    )
    targets = spec.slo.targets()
    compiled = compile_scenario(spec)
    options = config.fleet_options(with_autoscaled="ttft_p99_s" in targets)

    # Brute force: exactly simulate EVERY candidate of the space.
    warm: dict = {}
    brute_entries = [
        PlanEntry.from_outcome(
            evaluate_candidate(
                spec, compiled.trace, design, option, targets, warm=warm
            ),
            targets,
        )
        for design in config.chip_grid
        for option in options
    ]
    accepted_designs = {
        entry.design.name for entry in brute_entries if entry.slo_met
    }

    verdicts = prune_designs(compiled, config.chip_grid, targets)
    pruned_designs = {v.design.name for v in verdicts if not v.feasible}

    # Soundness: no design hosting an SLO-meeting candidate is ever pruned.
    assert not (accepted_designs & pruned_designs)

    # Optimality corollary: the planner finds exactly brute force's best.
    report = plan_scenario(spec, config)
    brute_met = [entry for entry in brute_entries if entry.slo_met]
    if not brute_met:
        assert report.best is None
    else:
        brute_best = min(
            brute_met,
            key=lambda entry: (
                entry.chips_provisioned,
                entry.fleet_area_mm2,
                entry.fleet_power_w,
                entry.design.name,
                entry.option.label,
            ),
        )
        assert report.best == brute_best


@pytest.fixture(scope="module")
def small_plan():
    spec = _small_scenario(4.0, 0.8, None, 0)
    config = PlannerConfig(chip_grid=DESIGN_POOL[:3], min_chips=1, max_chips=2)
    return plan_scenario(spec, config)


def test_no_frontier_entry_is_dominated(small_plan):
    frontier = list(small_plan.frontier)
    assert frontier == pareto_frontier(frontier, PlanEntry.objectives)


def test_best_plan_is_on_the_frontier_and_meets_every_slo(small_plan):
    if small_plan.best is None:
        pytest.skip("space infeasible for this configuration")
    assert small_plan.best in small_plan.frontier
    assert small_plan.best.slo_met
    assert small_plan.best.n_completed == small_plan.n_requests


def test_best_plan_verdict_reproduces_under_fresh_exact_simulation(small_plan):
    """Re-simulate the chosen plan from scratch: it must still meet the SLO."""
    spec = _small_scenario(4.0, 0.8, None, 0)
    targets = dict(small_plan.slo_targets)
    compiled = compile_scenario(spec)
    fresh = PlanEntry.from_outcome(
        evaluate_candidate(
            spec, compiled.trace, small_plan.best.design,
            small_plan.best.option, targets,
        ),
        targets,
    )
    assert fresh == small_plan.best


def test_planning_is_deterministic(small_plan):
    spec = _small_scenario(4.0, 0.8, None, 0)
    config = PlannerConfig(chip_grid=DESIGN_POOL[:3], min_chips=1, max_chips=2)
    assert plan_scenario(spec, config).to_json() == small_plan.to_json()


def test_parallel_path_is_identical_to_serial(small_plan):
    spec = _small_scenario(4.0, 0.8, None, 0)
    config = PlannerConfig(chip_grid=DESIGN_POOL[:3], min_chips=1, max_chips=2)
    parallel = plan_scenario(spec, config, processes=2)
    assert parallel.to_json() == small_plan.to_json()


def test_slo_overrides_change_targets_but_not_the_trace():
    spec = get_scenario("chat-poisson")
    relaxed = resolve_slo(spec, ttft_p99_s=60.0)
    assert relaxed.ttft_p99_s == 60.0
    assert relaxed.latency_p95_s == spec.slo.latency_p95_s
    assert compile_scenario(spec).trace  # original spec still compiles

    config = PlannerConfig(chip_grid=DESIGN_POOL[:2], min_chips=1, max_chips=1)
    strict = plan_scenario(spec, config, slo=resolve_slo(spec, ttft_p99_s=1e-6))
    assert strict.best is None
    assert strict.n_pruned_designs == strict.n_chip_designs
    assert strict.n_simulated == 0


def test_queue_wait_objectives_never_prune():
    spec = _small_scenario(4.0, 0.8, None, 0)
    compiled = compile_scenario(spec)
    verdicts = prune_designs(
        compiled, DESIGN_POOL[:2], {"queue_wait_p99_s": 1e-9}
    )
    assert all(verdict.feasible for verdict in verdicts)
