"""Tests for the workload profiler (repro.models.profiler)."""

import pytest

from repro.models.mllm import InferenceRequest
from repro.models.profiler import (
    latency_breakdown,
    latency_sweep,
    memory_access_breakdown,
    phase_statistics,
    weight_traffic_breakdown,
    workload_statistics,
)


@pytest.fixture(scope="module")
def sphinx_workload(sphinx_tiny):
    request = InferenceRequest(images=1, prompt_text_tokens=16, output_tokens=8)
    return sphinx_tiny.build_workload(request)


class TestPhaseStatistics:
    def test_phase_statistics_totals(self, sphinx_workload):
        decode = sphinx_workload.phase("llm_decode")
        stats = phase_statistics(decode)
        assert stats.flops == decode.flops
        assert stats.total_bytes == decode.total_bytes
        assert stats.op_count == decode.repeat * len(decode)

    def test_decode_is_gemv_dominated(self, sphinx_workload):
        stats = phase_statistics(sphinx_workload.phase("llm_decode"))
        assert stats.gemv_flops > 0.9 * (stats.gemv_flops + stats.gemm_flops)

    def test_prefill_is_gemm_dominated(self, sphinx_workload):
        stats = phase_statistics(sphinx_workload.phase("llm_prefill"))
        assert stats.gemm_flops > 0.9 * (stats.gemv_flops + stats.gemm_flops)

    def test_decode_has_low_arithmetic_intensity(self, sphinx_workload):
        """Fig. 2(b): decode FLOPs/byte is orders of magnitude below prefill."""
        decode = phase_statistics(sphinx_workload.phase("llm_decode"))
        prefill = phase_statistics(sphinx_workload.phase("llm_prefill"))
        assert decode.arithmetic_intensity < prefill.arithmetic_intensity / 20


class TestWorkloadStatistics:
    def test_contains_all_phases(self, sphinx_workload):
        stats = workload_statistics(sphinx_workload)
        assert set(stats.phases) == set(sphinx_workload.phase_names)
        assert stats.total_flops == sum(p.flops for p in stats.phases.values())

    def test_unknown_phase_raises(self, sphinx_workload):
        stats = workload_statistics(sphinx_workload)
        with pytest.raises(KeyError):
            stats.phase("nonexistent")


class TestMemoryBreakdown:
    def test_ffn_dominates_traffic(self, sphinx_workload):
        breakdown = memory_access_breakdown(sphinx_workload)
        total = sum(breakdown.values())
        assert breakdown["ffn"] > 0.4 * total

    def test_weight_breakdown_subset_of_total(self, sphinx_workload):
        weights = weight_traffic_breakdown(sphinx_workload)
        total = memory_access_breakdown(sphinx_workload)
        for tag, value in weights.items():
            assert value <= total[tag]

    def test_kv_cache_present_but_small(self, sphinx_workload):
        breakdown = memory_access_breakdown(sphinx_workload)
        total = sum(breakdown.values())
        assert 0 < breakdown["kv_cache"] < 0.1 * total


class TestLatencyBreakdown:
    def test_breakdown_sums_phases(self, sphinx_tiny, gpu_baseline):
        request = InferenceRequest(images=1, prompt_text_tokens=16, output_tokens=8)
        breakdown = latency_breakdown(sphinx_tiny, request, gpu_baseline)
        assert breakdown.total_latency_s == pytest.approx(
            sum(breakdown.phase_latency_s.values())
        )
        assert set(breakdown.phase_latency_s) == {
            "vision_encoder",
            "projector",
            "llm_prefill",
            "llm_decode",
        }

    def test_fractions_sum_to_one(self, sphinx_tiny, gpu_baseline):
        request = InferenceRequest(images=1, prompt_text_tokens=16, output_tokens=8)
        breakdown = latency_breakdown(sphinx_tiny, request, gpu_baseline)
        total = sum(
            breakdown.fraction(name) for name in breakdown.phase_latency_s
        )
        assert total == pytest.approx(1.0)

    def test_sweep_decode_share_grows(self, sphinx_tiny, gpu_baseline):
        """Fig. 2(a): more output tokens means a larger decode share."""
        sweeps = latency_sweep(sphinx_tiny, gpu_baseline, [4, 32, 128])
        shares = [s.fraction("llm_decode") for s in sweeps]
        assert shares[0] < shares[1] < shares[2]

    def test_sweep_rejects_empty_lengths(self, sphinx_tiny, gpu_baseline):
        with pytest.raises(ValueError):
            latency_sweep(sphinx_tiny, gpu_baseline, [])

    def test_works_with_edgemm_simulator(self, sphinx_tiny, simulator):
        request = InferenceRequest(images=1, prompt_text_tokens=16, output_tokens=4)
        breakdown = latency_breakdown(
            sphinx_tiny, request, simulator, hardware_name="edgemm"
        )
        assert breakdown.hardware_name == "edgemm"
        assert breakdown.total_latency_s > 0
