"""Tests for the synthetic activation traces (repro.models.activations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.activations import (
    ActivationTraceConfig,
    ActivationTraceGenerator,
    karmavlm_trace,
    sphinx_tiny_trace,
    synthetic_ffn_weights,
)
from repro.pruning.metrics import kurtosis


class TestActivationTraceConfig:
    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            ActivationTraceConfig(outlier_fraction_first=0.1, outlier_fraction_last=0.2)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            ActivationTraceConfig(n_layers=0)

    def test_rejects_bad_scales(self):
        with pytest.raises(ValueError):
            ActivationTraceConfig(base_scale=0.0)


class TestActivationTraceGenerator:
    def test_vector_shape_and_determinism(self, small_trace):
        first = small_trace.layer_vector(2, token_index=0)
        second = small_trace.layer_vector(2, token_index=0)
        assert first.shape == (small_trace.config.d_model,)
        np.testing.assert_array_equal(first, second)

    def test_different_tokens_differ(self, small_trace):
        a = small_trace.layer_vector(2, token_index=0)
        b = small_trace.layer_vector(2, token_index=1)
        assert not np.allclose(a, b)

    def test_layer_index_bounds(self, small_trace):
        with pytest.raises(IndexError):
            small_trace.layer_vector(small_trace.config.n_layers)
        with pytest.raises(IndexError):
            small_trace.outlier_fraction(-1)

    def test_outlier_fraction_decreases_with_depth(self, small_trace):
        first = small_trace.outlier_fraction(0)
        last = small_trace.outlier_fraction(small_trace.config.n_layers - 1)
        assert last < first

    def test_outlier_scale_increases_with_depth(self, small_trace):
        first = small_trace.outlier_scale(0)
        last = small_trace.outlier_scale(small_trace.config.n_layers - 1)
        assert last > first

    def test_kurtosis_grows_with_depth(self):
        """The trace must reproduce the Fig. 3 trend used by Fig. 12(a)."""
        trace = sphinx_tiny_trace()
        shallow = np.mean(
            [kurtosis(np.abs(trace.layer_vector(layer))) for layer in range(1, 4)]
        )
        deep_layers = range(trace.config.n_layers - 3, trace.config.n_layers)
        deep = np.mean(
            [kurtosis(np.abs(trace.layer_vector(layer))) for layer in deep_layers]
        )
        assert deep > shallow

    def test_first_layer_outliers_unstable_across_tokens(self):
        trace = sphinx_tiny_trace()
        threshold = lambda v: np.abs(v) > np.abs(v).max() / 16.0
        sets = [frozenset(np.flatnonzero(threshold(trace.layer_vector(0, t)))) for t in range(3)]
        assert len(set(sets)) > 1

    def test_deep_layer_outliers_stable_across_tokens(self):
        trace = sphinx_tiny_trace()
        layer = trace.config.n_layers - 1
        stable = set(trace.stable_outlier_channels(layer).tolist())
        for token in range(3):
            vector = trace.layer_vector(layer, token)
            top = set(np.argsort(np.abs(vector))[-len(stable):].tolist())
            overlap = len(stable & top) / len(stable)
            assert overlap > 0.8

    def test_token_trace_length(self, small_trace):
        trace = small_trace.token_trace(0)
        assert len(trace) == small_trace.config.n_layers

    def test_iter_tokens(self, small_trace):
        tokens = list(small_trace.iter_tokens(3))
        assert len(tokens) == 3
        with pytest.raises(ValueError):
            list(small_trace.iter_tokens(0))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_any_seed_produces_finite_vectors(self, seed):
        trace = ActivationTraceGenerator(
            ActivationTraceConfig(n_layers=4, d_model=64, seed=seed)
        )
        for layer in range(4):
            vector = trace.layer_vector(layer)
            assert np.all(np.isfinite(vector))
            assert np.abs(vector).max() > 0


class TestModelSpecificTraces:
    def test_sphinx_tiny_matches_tinyllama_shape(self):
        trace = sphinx_tiny_trace()
        assert trace.config.n_layers == 22
        assert trace.config.d_model == 2048

    def test_karmavlm_matches_qwen_shape(self):
        trace = karmavlm_trace()
        assert trace.config.n_layers == 24
        assert trace.config.d_model == 1024


class TestSyntheticWeights:
    def test_shape_and_determinism(self):
        a = synthetic_ffn_weights(32, 64, seed=3)
        b = synthetic_ffn_weights(32, 64, seed=3)
        assert a.shape == (64, 32)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            synthetic_ffn_weights(0, 4)
