"""Tests for the MLLM compositions (repro.models.mllm)."""

import pytest

from repro.models.mllm import InferenceRequest, MLLMConfig, available_mllms, get_mllm
from repro.models.llm import get_llm
from repro.models.projector import mlp_projector
from repro.models.vision import get_vision_encoder


class TestInferenceRequest:
    def test_rejects_zero_output_tokens(self):
        with pytest.raises(ValueError):
            InferenceRequest(images=1, prompt_text_tokens=8, output_tokens=0)

    def test_rejects_empty_request(self):
        with pytest.raises(ValueError):
            InferenceRequest(images=0, prompt_text_tokens=0, output_tokens=4)

    def test_text_only_request_is_valid(self):
        request = InferenceRequest(images=0, prompt_text_tokens=8, output_tokens=4)
        assert request.images == 0


class TestCatalogue:
    def test_contains_paper_workloads(self):
        names = available_mllms()
        assert "sphinx-tiny" in names
        assert "karmavlm" in names

    def test_unknown_mllm_raises(self):
        with pytest.raises(KeyError):
            get_mllm("made-up-vlm")

    def test_sphinx_tiny_composition(self, sphinx_tiny):
        assert len(sphinx_tiny.vision_encoders) == 3
        assert sphinx_tiny.llm.name == "tinyllama-1.1b"

    def test_karmavlm_composition(self, karmavlm):
        assert len(karmavlm.vision_encoders) == 2
        assert karmavlm.llm.name == "qwen1.5-0.5b"

    def test_total_parameters_in_expected_range(self, sphinx_tiny):
        # TinyLlama 1.1B + ~1B of encoders/projector.
        assert 1.5e9 <= sphinx_tiny.parameter_count <= 3.0e9

    def test_rejects_empty_encoder_list(self):
        with pytest.raises(ValueError):
            MLLMConfig(
                name="bad",
                vision_encoders=(),
                projector=mlp_projector("p", 64, 64),
                llm=get_llm("tinyllama-1.1b"),
            )


class TestPromptComposition:
    def test_vision_tokens_zero_without_images(self, sphinx_tiny):
        assert sphinx_tiny.vision_tokens(images=0) == 0

    def test_prompt_tokens_add_text_and_vision(self, sphinx_tiny):
        request = InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=4)
        assert sphinx_tiny.prompt_tokens(request) == sphinx_tiny.vision_tokens(1) + 32

    def test_paper_prompt_length_is_about_300_tokens(self, karmavlm):
        """The paper profiles inputs of ~300 tokens, mostly vision tokens."""
        request = InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=4)
        prompt = karmavlm.prompt_tokens(request)
        assert 200 <= prompt <= 900
        assert karmavlm.vision_tokens(1) > request.prompt_text_tokens


class TestWorkloadLowering:
    def test_four_phases_with_image(self, sphinx_tiny, short_request):
        workload = sphinx_tiny.build_workload(short_request)
        assert workload.phase_names == (
            "vision_encoder",
            "projector",
            "llm_prefill",
            "llm_decode",
        )

    def test_text_only_request_skips_vision_phases(self, sphinx_tiny):
        request = InferenceRequest(images=0, prompt_text_tokens=16, output_tokens=4)
        workload = sphinx_tiny.build_workload(request)
        assert workload.phase_names == ("llm_prefill", "llm_decode")

    def test_decode_repeat_matches_output_tokens(self, sphinx_tiny, short_request):
        workload = sphinx_tiny.build_workload(short_request)
        assert workload.phase("llm_decode").repeat == short_request.output_tokens

    def test_decode_weight_traffic_dominated_by_ffn(self, sphinx_tiny, short_request):
        """Fig. 2(c): FFN weights dominate the decode-phase DRAM accesses."""
        workload = sphinx_tiny.build_workload(short_request)
        decode = workload.phase("llm_decode")
        ffn_bytes = sum(op.weight_bytes for op in decode.ops if op.tag == "ffn")
        total_weight = sum(op.weight_bytes for op in decode.ops)
        assert ffn_bytes > 0.5 * total_weight

    def test_kv_cache_is_small_fraction_for_short_context(self, sphinx_tiny, short_request):
        """Fig. 2(c): the KV cache is a small share for edge-length contexts."""
        workload = sphinx_tiny.build_workload(short_request)
        decode = workload.phase("llm_decode")
        kv_bytes = sum(op.total_bytes for op in decode.ops if op.tag == "kv_cache")
        assert kv_bytes < 0.1 * decode.total_bytes

    def test_decode_step_phase_exposed(self, sphinx_tiny):
        step = sphinx_tiny.decode_step(context_tokens=128)
        assert step.name == "llm_decode"
        assert step.repeat == 1

    def test_larger_output_increases_only_decode(self, sphinx_tiny):
        small = sphinx_tiny.build_workload(
            InferenceRequest(images=1, prompt_text_tokens=16, output_tokens=4)
        )
        large = sphinx_tiny.build_workload(
            InferenceRequest(images=1, prompt_text_tokens=16, output_tokens=16)
        )
        assert small.phase("llm_prefill").flops == large.phase("llm_prefill").flops
        assert large.phase("llm_decode").flops > small.phase("llm_decode").flops
