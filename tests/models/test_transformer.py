"""Tests for the Transformer layer builders (repro.models.transformer)."""

import pytest

from repro.models.ops import OpKind
from repro.models.transformer import (
    TransformerLayerConfig,
    decode_layer_ops,
    encoder_layer_ops,
    prefill_layer_ops,
)


@pytest.fixture
def layer_config() -> TransformerLayerConfig:
    return TransformerLayerConfig(d_model=256, n_heads=8, d_ffn=512, n_kv_heads=4)


class TestTransformerLayerConfig:
    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            TransformerLayerConfig(d_model=250, n_heads=8, d_ffn=512)

    def test_rejects_bad_kv_heads(self):
        with pytest.raises(ValueError):
            TransformerLayerConfig(d_model=256, n_heads=8, d_ffn=512, n_kv_heads=3)

    def test_kv_dim_and_head_dim(self, layer_config):
        assert layer_config.head_dim == 32
        assert layer_config.kv_dim == 128

    def test_parameter_count_gated(self, layer_config):
        attn = 256 * 256 + 2 * 256 * 128 + 256 * 256
        ffn = 3 * 256 * 512
        assert layer_config.parameter_count == attn + ffn

    def test_parameter_count_classic_mlp(self):
        config = TransformerLayerConfig(d_model=256, n_heads=8, d_ffn=512, gated_ffn=False)
        attn = 4 * 256 * 256  # Q, K, V, O with full-width KV heads
        ffn = 2 * 256 * 512
        assert config.parameter_count == attn + ffn

    def test_parameter_bytes_follow_precision(self, layer_config):
        wide = TransformerLayerConfig(
            d_model=256, n_heads=8, d_ffn=512, n_kv_heads=4, weight_bytes=2.0
        )
        assert wide.parameter_bytes == 2 * layer_config.parameter_bytes


class TestEncoderLayer:
    def test_all_matmuls_are_gemm(self, layer_config):
        ops = encoder_layer_ops(layer_config, tokens=16, layer_index=0)
        matmuls = [op for op in ops if op.kind in (OpKind.GEMM, OpKind.GEMV)]
        assert matmuls
        assert all(op.kind is OpKind.GEMM for op in matmuls)

    def test_rejects_non_positive_tokens(self, layer_config):
        with pytest.raises(ValueError):
            encoder_layer_ops(layer_config, tokens=0)

    def test_layer_index_is_propagated(self, layer_config):
        ops = encoder_layer_ops(layer_config, tokens=4, layer_index=7)
        assert all(op.layer_index == 7 for op in ops)

    def test_ffn_not_prunable_in_encoder(self, layer_config):
        ops = encoder_layer_ops(layer_config, tokens=4)
        assert not any(op.prunable for op in ops)

    def test_encoder_includes_kv_operand_traffic_in_attention(self, layer_config):
        ops = encoder_layer_ops(layer_config, tokens=16)
        scores = next(op for op in ops if op.name.endswith(".scores"))
        # Q read + K read must both be present (no separate KV-cache op).
        q_bytes = 16 * layer_config.d_model * layer_config.activation_bytes
        assert scores.activation_bytes > q_bytes


class TestPrefillLayer:
    def test_contains_kv_write(self, layer_config):
        ops = prefill_layer_ops(layer_config, prompt_tokens=32, layer_index=0)
        kv_ops = [op for op in ops if op.tag == "kv_cache"]
        assert len(kv_ops) == 1
        assert kv_ops[0].output_bytes > 0
        assert kv_ops[0].activation_bytes == 0

    def test_kv_write_size_matches_cache(self, layer_config):
        tokens = 32
        ops = prefill_layer_ops(layer_config, prompt_tokens=tokens)
        kv = next(op for op in ops if op.tag == "kv_cache")
        expected = tokens * layer_config.kv_dim * 2 * layer_config.activation_bytes
        assert kv.output_bytes == expected

    def test_prefill_work_scales_with_tokens(self, layer_config):
        small = sum(op.flops for op in prefill_layer_ops(layer_config, prompt_tokens=16))
        large = sum(op.flops for op in prefill_layer_ops(layer_config, prompt_tokens=64))
        assert large > 3 * small

    def test_rejects_non_positive_tokens(self, layer_config):
        with pytest.raises(ValueError):
            prefill_layer_ops(layer_config, prompt_tokens=0)


class TestDecodeLayer:
    def test_ffn_projections_are_prunable_gemvs(self, layer_config):
        ops = decode_layer_ops(layer_config, context_tokens=100, layer_index=0)
        prunable = [op for op in ops if op.prunable]
        assert len(prunable) == 3  # gate, up, down
        assert all(op.kind is OpKind.GEMV for op in prunable)
        assert all(op.tag == "ffn" for op in prunable)

    def test_classic_mlp_has_two_prunable_projections(self):
        config = TransformerLayerConfig(d_model=256, n_heads=8, d_ffn=512, gated_ffn=False)
        ops = decode_layer_ops(config, context_tokens=10)
        assert len([op for op in ops if op.prunable]) == 2

    def test_kv_read_grows_with_context(self, layer_config):
        short = decode_layer_ops(layer_config, context_tokens=10)
        long = decode_layer_ops(layer_config, context_tokens=1000)
        kv_short = next(op for op in short if op.tag == "kv_cache")
        kv_long = next(op for op in long if op.tag == "kv_cache")
        assert kv_long.activation_bytes > 50 * kv_short.activation_bytes

    def test_weight_traffic_independent_of_context(self, layer_config):
        short = decode_layer_ops(layer_config, context_tokens=10)
        long = decode_layer_ops(layer_config, context_tokens=1000)
        assert sum(op.weight_bytes for op in short) == sum(op.weight_bytes for op in long)

    def test_projections_are_gemv(self, layer_config):
        ops = decode_layer_ops(layer_config, context_tokens=16)
        projections = [op for op in ops if op.tag == "attn_proj"]
        assert projections
        assert all(op.kind is OpKind.GEMV for op in projections)

    def test_no_double_counting_of_kv_reads(self, layer_config):
        """Attention-core operand traffic must not duplicate the kv_cache read."""
        context = 500
        ops = decode_layer_ops(layer_config, context_tokens=context)
        kv_read = next(op for op in ops if op.tag == "kv_cache").activation_bytes
        attn_core_read = sum(
            op.activation_bytes for op in ops if op.tag == "attn_core"
        )
        expected_kv = context * layer_config.kv_dim * 2 * layer_config.activation_bytes
        assert kv_read == expected_kv
        # scores/context only read Q and the score matrix, far less than the cache.
        assert attn_core_read < expected_kv

    def test_rejects_non_positive_context(self, layer_config):
        with pytest.raises(ValueError):
            decode_layer_ops(layer_config, context_tokens=0)
