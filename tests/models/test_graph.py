"""Tests for the operator-graph utilities (repro.models.graph)."""

import pytest

from repro.models.graph import (
    build_phase_graph,
    partition_balance,
    partition_ops_round_robin,
)
from repro.models.llm import LLMConfig
from repro.models.ops import Phase, matmul_op


@pytest.fixture
def tiny_llm_phase():
    llm = LLMConfig(
        name="graph-llm", n_layers=3, d_model=64, n_heads=4, d_ffn=128, vocab_size=500
    )
    return llm.decode_step_phase(context_tokens=16)


class TestPhaseGraph:
    def test_groups_ops_by_layer(self, tiny_llm_phase):
        graph = build_phase_graph(tiny_llm_phase)
        assert graph.n_layers == 3
        assert graph.phase_name == "llm_decode"

    def test_layerless_ops_get_their_own_node(self, tiny_llm_phase):
        graph = build_phase_graph(tiny_llm_phase)
        layerless = [node for node in graph.nodes if node.layer_index is None]
        assert layerless  # the LM head has no layer index
        assert all(node.ops for node in graph.nodes)

    def test_node_lookup(self, tiny_llm_phase):
        graph = build_phase_graph(tiny_llm_phase)
        node = graph.node_for_layer(1)
        assert node.layer_index == 1
        with pytest.raises(KeyError):
            graph.node_for_layer(99)

    def test_critical_path_equals_total_flops(self, tiny_llm_phase):
        graph = build_phase_graph(tiny_llm_phase)
        assert graph.critical_path_flops() == sum(op.flops for op in tiny_llm_phase.ops)

    def test_prunable_weight_bytes_positive_for_decode(self, tiny_llm_phase):
        graph = build_phase_graph(tiny_llm_phase)
        assert graph.prunable_weight_bytes() > 0


class TestPartitioning:
    def _ops(self, count=10):
        return [matmul_op(f"op{i}", 2, 16, 16 * (i + 1)) for i in range(count)]

    def test_round_robin_covers_all_ops(self):
        ops = self._ops(10)
        partitions = partition_ops_round_robin(ops, 3)
        assert sum(len(part) for part in partitions) == 10
        names = {op.name for part in partitions for op in part}
        assert names == {op.name for op in ops}

    def test_round_robin_rejects_bad_partitions(self):
        with pytest.raises(ValueError):
            partition_ops_round_robin(self._ops(), 0)

    def test_balance_of_identical_ops_is_one(self):
        ops = [matmul_op(f"op{i}", 2, 16, 16) for i in range(8)]
        partitions = partition_ops_round_robin(ops, 4)
        assert partition_balance(partitions) == pytest.approx(1.0)

    def test_balance_never_below_one(self):
        partitions = partition_ops_round_robin(self._ops(7), 3)
        assert partition_balance(partitions) >= 1.0

    def test_lpt_ordering_beats_naive_split_in_balance(self):
        ops = self._ops(9)
        lpt = partition_ops_round_robin(ops, 3)
        naive = [ops[0:3], ops[3:6], ops[6:9]]
        assert partition_balance(lpt) <= partition_balance(naive)

    def test_balance_rejects_empty(self):
        with pytest.raises(ValueError):
            partition_balance([])
