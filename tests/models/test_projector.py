"""Tests for the projector models (repro.models.projector)."""

import pytest

from repro.models.projector import (
    LDPProjectorConfig,
    MLPProjectorConfig,
    QFormerProjectorConfig,
    available_projector_kinds,
    mlp_projector,
)


class TestMLPProjector:
    def test_two_layer_parameter_count(self):
        projector = MLPProjectorConfig(name="p", input_dim=64, output_dim=128, hidden_dim=128)
        assert projector.parameter_count == 64 * 128 + 128 * 128

    def test_single_layer_parameter_count(self):
        projector = MLPProjectorConfig(name="p", input_dim=64, output_dim=128)
        assert projector.parameter_count == 64 * 128

    def test_preserves_token_count(self):
        projector = mlp_projector("p", 64, 128)
        assert projector.output_tokens(300) == 300

    def test_phase_has_projector_tag(self):
        projector = mlp_projector("p", 64, 128)
        phase = projector.project_phase(tokens=10)
        assert phase.name == "projector"
        assert all(op.tag == "projector" for op in phase.ops)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            MLPProjectorConfig(name="p", input_dim=0, output_dim=10)

    def test_rejects_zero_tokens(self):
        with pytest.raises(ValueError):
            mlp_projector("p", 8, 8).project_phase(0)


class TestLDPProjector:
    def test_downsamples_tokens(self):
        projector = LDPProjectorConfig(name="ldp", input_dim=64, output_dim=128, downsample=2)
        assert projector.output_tokens(400) == 100

    def test_never_returns_zero_tokens(self):
        projector = LDPProjectorConfig(name="ldp", input_dim=64, output_dim=128, downsample=4)
        assert projector.output_tokens(3) == 1

    def test_rejects_bad_downsample(self):
        with pytest.raises(ValueError):
            LDPProjectorConfig(name="ldp", input_dim=64, output_dim=128, downsample=0)

    def test_phase_work_positive(self):
        projector = LDPProjectorConfig(name="ldp", input_dim=64, output_dim=128)
        assert projector.project_phase(64).flops > 0


class TestQFormerProjector:
    def test_outputs_fixed_query_count(self):
        projector = QFormerProjectorConfig(name="qf", input_dim=64, output_dim=128, n_queries=32)
        assert projector.output_tokens(1000) == 32

    def test_parameter_count_grows_with_layers(self):
        small = QFormerProjectorConfig(name="qf", input_dim=64, output_dim=128, n_layers=2)
        large = QFormerProjectorConfig(name="qf", input_dim=64, output_dim=128, n_layers=6)
        assert large.parameter_count > small.parameter_count

    def test_phase_includes_projections(self):
        projector = QFormerProjectorConfig(
            name="qf", input_dim=64, output_dim=128, n_layers=1, d_model=64, n_heads=4
        )
        names = [op.name for op in projector.project_phase(16).ops]
        assert any(name.endswith(".in_proj") for name in names)
        assert any(name.endswith(".out_proj") for name in names)

    def test_rejects_bad_layers(self):
        with pytest.raises(ValueError):
            QFormerProjectorConfig(name="qf", input_dim=64, output_dim=128, n_layers=0)


def test_available_projector_kinds():
    assert set(available_projector_kinds()) == {"mlp", "ldp", "qformer"}
