"""Tests for the operator IR (repro.models.ops)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.ops import (
    Op,
    OpKind,
    Phase,
    Workload,
    elementwise_op,
    matmul_op,
    merge_phases,
)


class TestOp:
    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            Op(name="bad", kind=OpKind.GEMM, m=0, k=1, n=1)

    def test_rejects_negative_traffic(self):
        with pytest.raises(ValueError):
            Op(name="bad", kind=OpKind.GEMM, m=1, k=1, n=1, weight_bytes=-1)

    def test_total_bytes_sums_all_traffic(self):
        op = Op(
            name="op",
            kind=OpKind.GEMM,
            m=2,
            k=2,
            n=2,
            weight_bytes=10,
            activation_bytes=20,
            output_bytes=5,
            flops=16,
        )
        assert op.total_bytes == 35

    def test_macs_is_half_of_flops(self):
        op = matmul_op("m", 4, 8, 16)
        assert op.macs == op.flops // 2
        assert op.flops == 2 * 4 * 8 * 16

    def test_arithmetic_intensity(self):
        op = Op(
            name="op",
            kind=OpKind.GEMM,
            m=1,
            k=1,
            n=1,
            weight_bytes=10,
            activation_bytes=0,
            output_bytes=0,
            flops=40,
        )
        assert op.arithmetic_intensity == pytest.approx(4.0)

    def test_arithmetic_intensity_no_traffic(self):
        op = Op(name="op", kind=OpKind.OTHER, flops=10)
        assert op.arithmetic_intensity == math.inf

    def test_kind_classification_sets(self):
        assert matmul_op("g", 4, 4, 4).is_compute_bound_kind
        assert matmul_op("v", 1, 4, 4).is_memory_bound_kind

    def test_scaled_traffic_reduces_weights_and_flops(self):
        op = matmul_op("v", 1, 100, 100, prunable=True)
        scaled = op.scaled_traffic(0.5)
        assert scaled.weight_bytes == pytest.approx(op.weight_bytes * 0.5, abs=1)
        assert scaled.flops == pytest.approx(op.flops * 0.5, abs=1)
        assert scaled.activation_bytes == op.activation_bytes

    def test_scaled_traffic_rejects_bad_fraction(self):
        op = matmul_op("v", 1, 10, 10)
        with pytest.raises(ValueError):
            op.scaled_traffic(1.5)


class TestMatmulOp:
    def test_gemv_when_single_row(self):
        assert matmul_op("v", 1, 64, 64).kind is OpKind.GEMV

    def test_gemm_when_multiple_rows(self):
        assert matmul_op("g", 2, 64, 64).kind is OpKind.GEMM

    def test_weight_bytes_use_weight_precision(self):
        op = matmul_op("g", 4, 8, 16, weight_bytes_per_element=2.0)
        assert op.weight_bytes == 8 * 16 * 2

    def test_weights_resident_moves_traffic_to_activations(self):
        op = matmul_op("a", 4, 8, 16, weights_resident=True)
        assert op.weight_bytes == 0
        assert op.activation_bytes > 0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            matmul_op("bad", 0, 1, 1)

    @given(
        m=st.integers(min_value=1, max_value=64),
        k=st.integers(min_value=1, max_value=64),
        n=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_flops_always_twice_macs(self, m, k, n):
        op = matmul_op("p", m, k, n)
        assert op.flops == 2 * m * k * n
        assert op.total_bytes > 0


class TestElementwiseOp:
    def test_traffic_scales_with_reads_and_writes(self):
        op = elementwise_op("e", 100, reads=2, writes=1, bytes_per_element=2.0)
        assert op.activation_bytes == 400
        assert op.output_bytes == 200

    def test_rejects_non_positive_elements(self):
        with pytest.raises(ValueError):
            elementwise_op("e", 0)

    def test_kind_override(self):
        op = elementwise_op("s", 10, kind=OpKind.SOFTMAX)
        assert op.kind is OpKind.SOFTMAX


class TestPhase:
    def _phase(self, repeat=1):
        phase = Phase(name="p", repeat=repeat)
        phase.add(matmul_op("a", 2, 4, 8))
        phase.add(matmul_op("b", 1, 4, 8, tag="ffn"))
        phase.add(elementwise_op("c", 16, tag="norm"))
        return phase

    def test_rejects_bad_repeat(self):
        with pytest.raises(ValueError):
            Phase(name="p", repeat=0)

    def test_len_and_iter(self):
        phase = self._phase()
        assert len(phase) == 3
        assert [op.name for op in phase] == ["a", "b", "c"]

    def test_totals_scale_with_repeat(self):
        single = self._phase(repeat=1)
        repeated = self._phase(repeat=3)
        assert repeated.flops == 3 * single.flops
        assert repeated.total_bytes == 3 * single.total_bytes

    def test_ops_by_kind_and_tag(self):
        phase = self._phase()
        assert len(phase.ops_by_kind(OpKind.GEMM)) == 1
        assert len(phase.ops_by_kind(OpKind.GEMV)) == 1
        assert [op.name for op in phase.ops_by_tag("ffn")] == ["b"]

    def test_traffic_by_tag_includes_repeat(self):
        phase = self._phase(repeat=2)
        breakdown = phase.traffic_by_tag()
        assert set(breakdown) == {"", "ffn", "norm"}
        assert breakdown["ffn"] == 2 * phase.ops[1].total_bytes

    def test_scaled_returns_new_phase_with_repeat(self):
        phase = self._phase()
        scaled = phase.scaled(repeat=5)
        assert scaled.repeat == 5
        assert scaled.ops == phase.ops
        assert phase.repeat == 1

    def test_arithmetic_intensity_positive(self):
        assert self._phase().arithmetic_intensity > 0


class TestWorkload:
    def test_phase_lookup(self):
        workload = Workload(name="w")
        phase = Phase(name="decode")
        phase.add(matmul_op("a", 1, 4, 4))
        workload.add(phase)
        assert workload.phase("decode") is phase
        assert workload.has_phase("decode")
        assert not workload.has_phase("prefill")
        with pytest.raises(KeyError):
            workload.phase("missing")

    def test_totals_sum_over_phases(self):
        workload = Workload(name="w")
        for name in ("a", "b"):
            phase = Phase(name=name)
            phase.add(matmul_op(name, 2, 4, 4))
            workload.add(phase)
        assert workload.flops == 2 * 2 * 2 * 4 * 4
        assert len(workload) == 2
        assert workload.phase_names == ("a", "b")


class TestMergePhases:
    def test_merge_expands_repeats(self):
        phase = Phase(name="step", repeat=3)
        phase.add(matmul_op("a", 1, 4, 4))
        merged = merge_phases("merged", [phase])
        assert len(merged) == 3
        assert merged.repeat == 1
        assert merged.flops == phase.flops

    def test_merge_preserves_order(self):
        first = Phase(name="one")
        first.add(matmul_op("a", 1, 4, 4))
        second = Phase(name="two")
        second.add(matmul_op("b", 1, 4, 4))
        merged = merge_phases("merged", [first, second])
        assert [op.name for op in merged] == ["a", "b"]
