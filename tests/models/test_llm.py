"""Tests for the language-model catalogue (repro.models.llm)."""

import pytest

from repro.models.llm import LLMConfig, available_llms, get_llm
from repro.models.ops import OpKind


class TestCatalogue:
    def test_contains_table1_models(self):
        names = available_llms()
        for expected in (
            "tinyllama-1.1b",
            "qwen1.5-0.5b",
            "phi-2",
            "mobilellama-2.7b",
            "vicuna-7b",
        ):
            assert expected in names

    def test_lookup_is_case_insensitive(self):
        assert get_llm("TinyLlama-1.1B") is get_llm("tinyllama-1.1b")

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_llm("gpt-42")

    def test_parameter_counts_match_model_names(self):
        """Parameter totals must land near the sizes the model names claim."""
        expectations = {
            "tinyllama-1.1b": 1.1e9,
            "qwen1.5-0.5b": 0.5e9,
            "phi-2": 2.7e9,
            "mobilellama-2.7b": 2.7e9,
            "vicuna-7b": 7.0e9,
            "deepseek-llm-1.3b": 1.3e9,
        }
        for name, expected in expectations.items():
            params = get_llm(name).parameter_count
            assert 0.6 * expected <= params <= 1.5 * expected, name


class TestLLMConfig:
    def test_rejects_bad_layers(self):
        with pytest.raises(ValueError):
            LLMConfig(
                name="bad", n_layers=0, d_model=64, n_heads=4, d_ffn=128, vocab_size=100
            )

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            LLMConfig(
                name="bad", n_layers=2, d_model=65, n_heads=4, d_ffn=128, vocab_size=100
            )

    def test_decoder_parameter_bytes_excludes_input_embedding(self):
        llm = get_llm("tinyllama-1.1b")
        assert llm.decoder_parameter_bytes < llm.parameter_bytes

    def test_ffn_weight_bytes_per_step(self):
        llm = get_llm("tinyllama-1.1b")
        expected = 22 * 3 * 2048 * 5632 * llm.weight_bytes
        assert llm.ffn_weight_bytes_per_step() == expected


@pytest.fixture
def tiny_llm() -> LLMConfig:
    return LLMConfig(
        name="test-llm",
        n_layers=2,
        d_model=64,
        n_heads=4,
        d_ffn=128,
        vocab_size=1000,
    )


class TestPrefillLowering:
    def test_phase_name_and_layer_count(self, tiny_llm):
        phase = tiny_llm.prefill_phase(prompt_tokens=16)
        assert phase.name == "llm_prefill"
        layer_indices = {op.layer_index for op in phase.ops if op.layer_index is not None}
        assert layer_indices == {0, 1}

    def test_prefill_matmuls_are_gemm(self, tiny_llm):
        phase = tiny_llm.prefill_phase(prompt_tokens=16)
        assert phase.ops_by_kind(OpKind.GEMM)
        assert not any(op.kind is OpKind.GEMV and op.tag == "ffn" for op in phase.ops)

    def test_prefill_rejects_bad_tokens(self, tiny_llm):
        with pytest.raises(ValueError):
            tiny_llm.prefill_phase(0)

    def test_prefill_includes_lm_head(self, tiny_llm):
        phase = tiny_llm.prefill_phase(prompt_tokens=16)
        assert any(op.tag == "lm_head" for op in phase.ops)


class TestDecodeLowering:
    def test_decode_step_is_gemv_dominated(self, tiny_llm):
        phase = tiny_llm.decode_step_phase(context_tokens=32)
        gemv_flops = sum(op.flops for op in phase.ops_by_kind(OpKind.GEMV))
        assert gemv_flops > 0.8 * phase.flops

    def test_decode_phase_repeat_equals_output_tokens(self, tiny_llm):
        phase = tiny_llm.decode_phase(prompt_tokens=16, output_tokens=10)
        assert phase.repeat == 10

    def test_average_context_matches_exact_total_weight_traffic(self, tiny_llm):
        averaged = tiny_llm.decode_phase(16, 9, average_context=True)
        exact = tiny_llm.decode_phase(16, 9, average_context=False)
        assert averaged.weight_bytes == exact.weight_bytes

    def test_average_context_approximates_exact_kv_traffic(self, tiny_llm):
        averaged = tiny_llm.decode_phase(16, 9, average_context=True)
        exact = tiny_llm.decode_phase(16, 9, average_context=False)
        ratio = averaged.total_bytes / exact.total_bytes
        assert 0.95 <= ratio <= 1.05

    def test_decode_work_scales_linearly_with_output_tokens(self, tiny_llm):
        short = tiny_llm.decode_phase(16, 4)
        long = tiny_llm.decode_phase(16, 8)
        assert long.weight_bytes == 2 * short.weight_bytes

    def test_decode_rejects_bad_tokens(self, tiny_llm):
        with pytest.raises(ValueError):
            tiny_llm.decode_phase(16, 0)
        with pytest.raises(ValueError):
            tiny_llm.decode_step_phase(0)

    def test_prunable_ops_only_in_ffn(self, tiny_llm):
        phase = tiny_llm.decode_step_phase(context_tokens=8)
        assert all(op.tag == "ffn" for op in phase.ops if op.prunable)
        assert any(op.prunable for op in phase.ops)
