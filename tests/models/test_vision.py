"""Tests for the vision-encoder catalogue (repro.models.vision)."""

import pytest

from repro.models.ops import OpKind
from repro.models.vision import (
    ConvNeXtEncoderConfig,
    VisionEncoderConfig,
    available_vision_encoders,
    get_vision_encoder,
)


class TestCatalogue:
    def test_contains_table1_encoders(self):
        names = available_vision_encoders()
        for expected in ("clip-vit-l14", "siglip-so400m", "dinov2-l", "clip-convnext-b"):
            assert expected in names

    def test_unknown_encoder_raises(self):
        with pytest.raises(KeyError):
            get_vision_encoder("resnet-50")

    def test_clip_vit_l14_size(self):
        clip = get_vision_encoder("clip-vit-l14")
        # CLIP ViT-L/14's visual tower is ~0.3B parameters (Table I).
        assert 0.25e9 <= clip.parameter_count <= 0.45e9

    def test_clip_vit_l14_token_count(self):
        clip = get_vision_encoder("clip-vit-l14")
        assert clip.num_patches == (224 // 14) ** 2
        assert clip.num_tokens == clip.num_patches + 1


class TestVisionEncoderConfig:
    def test_rejects_indivisible_patches(self):
        with pytest.raises(ValueError):
            VisionEncoderConfig(
                name="bad", n_layers=2, d_model=64, n_heads=4, d_ffn=128,
                image_size=225, patch_size=14,
            )

    def test_encode_phase_is_gemm_only(self):
        encoder = VisionEncoderConfig(
            name="tiny-vit", n_layers=2, d_model=64, n_heads=4, d_ffn=128,
            image_size=56, patch_size=14,
        )
        phase = encoder.encode_phase()
        assert phase.name == "vision_encoder"
        matmul_kinds = {op.kind for op in phase.ops if op.kind in (OpKind.GEMM, OpKind.GEMV)}
        assert matmul_kinds == {OpKind.GEMM}

    def test_encode_phase_scales_with_images(self):
        encoder = VisionEncoderConfig(
            name="tiny-vit", n_layers=2, d_model=64, n_heads=4, d_ffn=128,
            image_size=56, patch_size=14,
        )
        one = encoder.encode_phase(images=1)
        two = encoder.encode_phase(images=2)
        assert two.flops > 1.9 * one.flops

    def test_output_projection_optional(self):
        with_head = VisionEncoderConfig(
            name="a", n_layers=1, d_model=64, n_heads=4, d_ffn=128,
            image_size=56, patch_size=14, output_dim=32,
        )
        without_head = VisionEncoderConfig(
            name="b", n_layers=1, d_model=64, n_heads=4, d_ffn=128,
            image_size=56, patch_size=14,
        )
        assert with_head.parameter_count > without_head.parameter_count
        names_with = [op.name for op in with_head.encode_phase().ops]
        assert any(name.endswith(".head") for name in names_with)

    def test_rejects_zero_images(self):
        encoder = get_vision_encoder("clip-vit-l14")
        with pytest.raises(ValueError):
            encoder.encode_phase(images=0)


class TestConvNeXtEncoder:
    def test_default_configuration_valid(self):
        conv = ConvNeXtEncoderConfig(name="cnx")
        assert conv.parameter_count > 0
        assert conv.num_tokens == (224 // 32) ** 2

    def test_rejects_mismatched_stage_lists(self):
        with pytest.raises(ValueError):
            ConvNeXtEncoderConfig(name="bad", depths=(1, 2), dims=(64,))

    def test_encode_phase_contains_conv_ops(self):
        conv = ConvNeXtEncoderConfig(name="cnx", depths=(1, 1, 1, 1), dims=(32, 64, 128, 256))
        phase = conv.encode_phase()
        assert all(op.tag == "conv" for op in phase.ops if op.kind is OpKind.GEMM)
        assert phase.flops > 0

    def test_encode_scales_with_images(self):
        conv = ConvNeXtEncoderConfig(name="cnx", depths=(1, 1, 1, 1), dims=(32, 64, 128, 256))
        assert conv.encode_phase(images=2).flops > 1.9 * conv.encode_phase(images=1).flops

    def test_rejects_bad_image_size(self):
        with pytest.raises(ValueError):
            ConvNeXtEncoderConfig(name="bad", image_size=100)
