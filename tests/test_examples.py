"""Smoke tests: every example script must run cleanly via its main()."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def _load_module(script_name: str):
    path = EXAMPLES_DIR / script_name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_has_expected_scripts():
    assert "quickstart.py" in EXAMPLE_SCRIPTS
    assert len(EXAMPLE_SCRIPTS) >= 4


@pytest.mark.parametrize("script_name", EXAMPLE_SCRIPTS)
def test_example_runs(script_name, capsys):
    module = _load_module(script_name)
    assert hasattr(module, "main"), f"{script_name} must expose a main() function"
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"{script_name} produced no output"
