"""Tests for the layer-wise dynamic Top-k pruning algorithm (Alg. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.activations import ActivationTraceConfig, ActivationTraceGenerator
from repro.pruning.ffn import build_layer_stack
from repro.pruning.topk import (
    DynamicTopKConfig,
    DynamicTopKPruner,
    decode_traffic_reduction,
    prune_token,
)


class TestDynamicTopKConfig:
    def test_defaults_match_paper(self):
        config = DynamicTopKConfig()
        assert config.threshold == 16.0
        assert config.skip_first_layer is True

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            DynamicTopKConfig(threshold=1.0)

    def test_rejects_bad_min_keep(self):
        with pytest.raises(ValueError):
            DynamicTopKConfig(min_keep=0)


class TestDynamicTopKPruner:
    def test_first_layer_is_never_pruned(self):
        pruner = DynamicTopKPruner(d_model=64)
        pruner.start_token()
        vx = np.random.default_rng(0).normal(size=64)
        decision = pruner.prune_layer(vx, layer_index=0)
        assert decision.kept == 64
        assert decision.ratio == 0.0

    def test_k_updates_from_threshold_count(self):
        """After a layer with n channels above max/t and n < k, k becomes n."""
        pruner = DynamicTopKPruner(d_model=16, config=DynamicTopKConfig(threshold=16.0))
        pruner.start_token()
        vx = np.zeros(16)
        vx[[1, 5, 9]] = [10.0, -8.0, 6.0]  # 3 channels above 10/16
        pruner.prune_layer(vx, layer_index=0)  # skipped, but n is measured
        assert pruner.current_k == 3

    def test_k_never_increases_within_token(self):
        pruner = DynamicTopKPruner(d_model=32)
        pruner.start_token()
        rng = np.random.default_rng(1)
        previous_k = pruner.current_k
        for layer in range(6):
            vx = rng.normal(size=32)
            pruner.prune_layer(vx, layer_index=layer)
            assert pruner.current_k <= previous_k
            previous_k = pruner.current_k

    def test_start_token_resets_budget(self):
        pruner = DynamicTopKPruner(d_model=32)
        pruner.start_token()
        vx = np.zeros(32)
        vx[0] = 100.0
        pruner.prune_layer(vx, layer_index=0)
        assert pruner.current_k < 32
        pruner.start_token()
        assert pruner.current_k == 32

    def test_kept_channels_are_topk_by_magnitude(self):
        config = DynamicTopKConfig(skip_first_layer=False)
        pruner = DynamicTopKPruner(d_model=16, config=config)
        pruner.start_token()
        pruner._k = 4
        vx = np.arange(16, dtype=float)
        decision = pruner.prune_layer(vx, layer_index=3)
        assert set(decision.kept_channels.tolist()) == {12, 13, 14, 15}

    def test_min_keep_floor(self):
        config = DynamicTopKConfig(min_keep=2, skip_first_layer=False)
        pruner = DynamicTopKPruner(d_model=16, config=config)
        pruner.start_token()
        vx = np.zeros(16)
        vx[0] = 1000.0
        pruner.prune_layer(vx, layer_index=1)
        assert pruner.current_k >= 2

    def test_rejects_wrong_vector_length(self):
        pruner = DynamicTopKPruner(d_model=16)
        with pytest.raises(ValueError):
            pruner.prune_layer(np.ones(8))

    def test_rejects_bad_d_model(self):
        with pytest.raises(ValueError):
            DynamicTopKPruner(d_model=0)

    @given(
        d_model=st.integers(min_value=4, max_value=128),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_kept_count_never_exceeds_budget(self, d_model, seed):
        pruner = DynamicTopKPruner(d_model=d_model)
        pruner.start_token()
        rng = np.random.default_rng(seed)
        for layer in range(5):
            budget_before = pruner.current_k if layer > 0 else d_model
            decision = pruner.prune_layer(rng.normal(size=d_model), layer_index=layer)
            assert decision.kept <= max(budget_before, 1)
            assert 0 < decision.kept <= d_model


@pytest.fixture(scope="module")
def trace() -> ActivationTraceGenerator:
    return ActivationTraceGenerator(ActivationTraceConfig(n_layers=8, d_model=256, seed=5))


class TestPruneToken:
    def test_report_shapes(self, trace):
        report = prune_token(trace.token_trace(0))
        assert report.n_layers == 8
        assert len(report.pruning_ratios()) == 8
        assert len(report.kurtoses) == 8
        assert report.cosine_similarities == []

    def test_report_with_ffn_similarities(self, trace):
        stack = build_layer_stack(8, 256, 128, seed=1)
        report = prune_token(trace.token_trace(0), stack)
        assert len(report.cosine_similarities) == 8
        assert all(0.0 <= value <= 1.0 + 1e-9 for value in report.cosine_similarities)
        assert report.mean_cosine_similarity > 0.9

    def test_pruning_ratio_rises_with_depth(self, trace):
        """The Fig. 12(a) trend on the calibrated trace."""
        report = prune_token(trace.token_trace(0))
        ratios = report.pruning_ratios()
        assert ratios[0] == 0.0
        assert np.mean(ratios[-3:]) > np.mean(ratios[1:4])

    def test_mismatched_stack_length_raises(self, trace):
        stack = build_layer_stack(3, 256, 128)
        with pytest.raises(ValueError):
            prune_token(trace.token_trace(0), stack)

    def test_empty_activations_raise(self):
        with pytest.raises(ValueError):
            prune_token([])

    def test_kept_per_layer_matches_decisions(self, trace):
        report = prune_token(trace.token_trace(0))
        assert report.kept_per_layer() == [d.kept for d in report.decisions]


class TestTrafficReduction:
    def test_reduction_between_zero_and_one(self, trace):
        report = prune_token(trace.token_trace(0))
        reduction = decode_traffic_reduction(report, d_ffn=512)
        assert 0.0 < reduction < 1.0

    def test_no_pruning_means_no_reduction(self):
        rng = np.random.default_rng(0)
        activations = [rng.normal(size=64) for _ in range(2)]
        config = DynamicTopKConfig(threshold=1e9)  # nothing is negligible
        report = prune_token(activations, config=config)
        assert decode_traffic_reduction(report, d_ffn=128) == pytest.approx(0.0, abs=1e-9)

    def test_rejects_bad_d_ffn(self, trace):
        report = prune_token(trace.token_trace(0))
        with pytest.raises(ValueError):
            decode_traffic_reduction(report, d_ffn=0)
