"""Tests for the pruning metrics (repro.pruning.metrics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.pruning.metrics import (
    TrafficSaving,
    average_pruning_ratio,
    cosine_similarity,
    kurtosis,
    pruning_ratio,
    relative_error,
    weight_traffic_saving,
)


class TestKurtosis:
    def test_normal_samples_near_three(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=200_000)
        assert kurtosis(samples) == pytest.approx(3.0, abs=0.1)

    def test_fisher_variant_subtracts_three(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(size=50_000)
        assert kurtosis(samples, fisher=True) == pytest.approx(
            kurtosis(samples) - 3.0
        )

    def test_outliers_increase_kurtosis(self):
        base = np.random.default_rng(2).normal(size=10_000)
        spiky = base.copy()
        spiky[:10] = 100.0
        assert kurtosis(spiky) > 10 * kurtosis(base)

    def test_constant_vector(self):
        assert kurtosis(np.full(10, 3.0)) == 3.0
        assert kurtosis(np.full(10, 3.0), fisher=True) == 0.0

    def test_requires_at_least_two_values(self):
        with pytest.raises(ValueError):
            kurtosis(np.array([1.0]))


class TestCosineSimilarity:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, -v) == pytest.approx(-1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity([1.0, 0.0], [0.0, 1.0]) == pytest.approx(0.0)

    def test_zero_vector_handling(self):
        assert cosine_similarity([0.0, 0.0], [0.0, 0.0]) == 1.0
        assert cosine_similarity([0.0, 0.0], [1.0, 0.0]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            cosine_similarity([1.0], [1.0, 2.0])

    @given(
        v=arrays(
            dtype=float,
            shape=st.integers(min_value=2, max_value=32),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        ),
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_scale_invariance(self, v, scale):
        scaled = v * scale
        similarity = cosine_similarity(v, scaled)
        if np.all(v == 0):
            assert similarity == 1.0
        elif not np.allclose(scaled / scale, v, rtol=1e-6, atol=0.0):
            # Subnormal elements underflowed during scaling, so the scaled
            # vector no longer points in v's direction; the invariance
            # property is vacuous for such inputs.
            pass
        else:
            # Holds even for subnormal-magnitude vectors whose norms
            # underflow: the implementation rescales before squaring.
            assert similarity == pytest.approx(1.0, abs=1e-9)


class TestPruningRatio:
    def test_basic_values(self):
        assert pruning_ratio(25, 100) == pytest.approx(0.75)
        assert pruning_ratio(100, 100) == 0.0
        assert pruning_ratio(0, 100) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pruning_ratio(5, 0)
        with pytest.raises(ValueError):
            pruning_ratio(11, 10)

    def test_average(self):
        assert average_pruning_ratio([50, 25], 100) == pytest.approx(0.625)
        with pytest.raises(ValueError):
            average_pruning_ratio([], 100)


class TestRelativeError:
    def test_zero_for_identical(self):
        v = np.arange(5, dtype=float)
        assert relative_error(v, v) == 0.0

    def test_scales_with_perturbation(self):
        v = np.ones(10)
        small = relative_error(v, v + 0.01)
        large = relative_error(v, v + 0.1)
        assert large > small

    def test_zero_reference(self):
        assert relative_error(np.zeros(3), np.array([1.0, 0.0, 0.0])) == 1.0


class TestTrafficSaving:
    def test_saving_fraction(self):
        saving = TrafficSaving(baseline_bytes=1000, pruned_bytes=400)
        assert saving.saved_bytes == 600
        assert saving.saving_fraction == pytest.approx(0.6)

    def test_no_baseline_traffic(self):
        assert TrafficSaving(0, 0).saving_fraction == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TrafficSaving(-1, 0)


class TestWeightTrafficSaving:
    def test_only_input_projections_shrink(self):
        d_model, d_ffn = 128, 512
        saving = weight_traffic_saving(d_model, d_ffn, kept_channels=32)
        expected_baseline = (2 * d_model + d_model) * d_ffn
        expected_pruned = (2 * 32 + d_model) * d_ffn
        assert saving.baseline_bytes == expected_baseline
        assert saving.pruned_bytes == expected_pruned

    def test_keeping_everything_saves_nothing(self):
        saving = weight_traffic_saving(64, 256, kept_channels=64)
        assert saving.saving_fraction == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            weight_traffic_saving(64, 256, kept_channels=65)
