"""Tests for per-core channel partitioning (repro.pruning.partition)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pruning.partition import (
    energy_coverage,
    global_topk_selection,
    local_topk_selection,
    partition_channels,
    selection_overlap,
)


class TestPartitionChannels:
    def test_partitions_cover_all_channels_exactly_once(self):
        partitions = partition_channels(100, 6)
        covered = np.concatenate([p.channels() for p in partitions])
        np.testing.assert_array_equal(np.sort(covered), np.arange(100))

    def test_balanced_sizes(self):
        partitions = partition_channels(100, 6)
        sizes = [p.size for p in partitions]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_more_cores_than_channels(self):
        with pytest.raises(ValueError):
            partition_channels(4, 8)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            partition_channels(0, 2)
        with pytest.raises(ValueError):
            partition_channels(10, 0)


class TestLocalTopK:
    def test_local_selection_size_close_to_global_k(self):
        rng = np.random.default_rng(0)
        vx = rng.normal(size=256)
        selection = local_topk_selection(vx, k=64, n_cores=8)
        assert 64 <= selection.kept <= 64 + 8

    def test_local_selection_recovers_uniform_outliers(self):
        """When outliers spread across cores, local Top-k matches global."""
        vx = np.full(64, 0.01)
        outliers = np.arange(0, 64, 8)  # one per 8-channel slice
        vx[outliers] = 10.0
        selection = local_topk_selection(vx, k=8, n_cores=8)
        reference = global_topk_selection(vx, 8)
        assert selection_overlap(selection.kept_channels, reference) == 1.0

    def test_local_selection_misses_clustered_outliers(self):
        """Clustered outliers expose the local approximation (bounded loss)."""
        vx = np.full(64, 0.01)
        vx[:16] = 10.0  # all outliers in the first two slices
        selection = local_topk_selection(vx, k=16, n_cores=8)
        reference = global_topk_selection(vx, 16)
        overlap = selection_overlap(selection.kept_channels, reference)
        assert overlap < 1.0
        assert overlap >= 0.25

    def test_energy_coverage_of_topk_is_high_for_outlier_inputs(self):
        rng = np.random.default_rng(1)
        vx = rng.normal(size=128) * 0.01
        vx[rng.choice(128, size=8, replace=False)] = 5.0
        selection = local_topk_selection(vx, k=16, n_cores=4)
        assert energy_coverage(vx, selection.kept_channels) > 0.95

    def test_k_zero_keeps_nothing(self):
        selection = local_topk_selection(np.ones(16), k=0, n_cores=4)
        assert selection.kept == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            local_topk_selection(np.array([]), 2, 2)
        with pytest.raises(ValueError):
            local_topk_selection(np.ones(8), -1, 2)

    @given(
        seed=st.integers(min_value=0, max_value=200),
        k=st.integers(min_value=1, max_value=64),
        cores=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=50, deadline=None)
    def test_local_energy_never_worse_than_random_floor(self, seed, k, cores):
        rng = np.random.default_rng(seed)
        vx = rng.normal(size=64)
        selection = local_topk_selection(vx, k=k, n_cores=cores)
        coverage = energy_coverage(vx, selection.kept_channels)
        assert coverage >= min(1.0, selection.kept / 64) - 1e-9


class TestGlobalTopK:
    def test_global_selection_sorted_and_correct(self):
        vx = np.array([0.1, -9.0, 3.0, 0.2, -5.0])
        np.testing.assert_array_equal(global_topk_selection(vx, 2), [1, 4])

    def test_k_clamped_to_vector_size(self):
        assert global_topk_selection(np.ones(4), 10).size == 4

    def test_overlap_of_empty_reference_is_one(self):
        assert selection_overlap(np.array([1, 2]), np.array([])) == 1.0

    def test_energy_coverage_bounds(self):
        vx = np.array([1.0, 2.0, 2.0])
        assert energy_coverage(vx, np.array([])) == 0.0
        assert energy_coverage(vx, np.arange(3)) == pytest.approx(1.0)
        assert energy_coverage(np.zeros(3), np.array([0])) == 1.0
