"""Tests for the gated-MLP FFN numeric model (repro.pruning.ffn, Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pruning.ffn import GatedFFN, build_layer_stack, gelu, silu


class TestActivations:
    def test_silu_matches_definition(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(silu(x), x / (1 + np.exp(-x)))

    def test_silu_at_zero(self):
        assert silu(np.array([0.0]))[0] == 0.0

    def test_gelu_is_monotone_on_positive_axis(self):
        x = np.linspace(0, 5, 50)
        values = gelu(x)
        assert np.all(np.diff(values) > 0)

    def test_gelu_near_identity_for_large_inputs(self):
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)


class TestGatedFFN:
    def test_forward_matches_equation_1(self):
        rng = np.random.default_rng(0)
        ffn = GatedFFN.random(16, 32, seed=1)
        vx = rng.normal(size=16)
        expected = ((vx @ ffn.w_up) * silu(vx @ ffn.w_gate)) @ ffn.w_down
        np.testing.assert_allclose(ffn.forward(vx), expected, rtol=1e-12)

    def test_forward_pruned_with_all_channels_equals_forward(self):
        ffn = GatedFFN.random(16, 32, seed=2)
        vx = np.random.default_rng(3).normal(size=16)
        np.testing.assert_allclose(
            ffn.forward_pruned(vx, np.arange(16)), ffn.forward(vx), rtol=1e-12
        )

    def test_forward_pruned_with_no_channels_is_zero(self):
        ffn = GatedFFN.random(8, 16, seed=4)
        vx = np.ones(8)
        np.testing.assert_array_equal(ffn.forward_pruned(vx, []), np.zeros(8))

    def test_pruning_outlier_dominated_input_preserves_direction(self):
        """Keeping the outlier channels preserves the output direction."""
        d_model, d_ffn = 64, 128
        ffn = GatedFFN.random(d_model, d_ffn, seed=5)
        vx = np.random.default_rng(6).normal(size=d_model) * 0.01
        outliers = np.array([3, 17, 42])
        vx[outliers] = 10.0
        pruned = ffn.forward_pruned(vx, outliers)
        exact = ffn.forward(vx)
        cosine = np.dot(pruned, exact) / (np.linalg.norm(pruned) * np.linalg.norm(exact))
        assert cosine > 0.95

    def test_forward_rejects_wrong_length(self):
        ffn = GatedFFN.random(8, 16)
        with pytest.raises(ValueError):
            ffn.forward(np.ones(9))

    def test_forward_pruned_rejects_out_of_range_channels(self):
        ffn = GatedFFN.random(8, 16)
        with pytest.raises(ValueError):
            ffn.forward_pruned(np.ones(8), [8])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GatedFFN(
                w_gate=np.ones((4, 8)),
                w_up=np.ones((4, 8)),
                w_down=np.ones((4, 8)),
            )
        with pytest.raises(ValueError):
            GatedFFN(
                w_gate=np.ones((4, 8)),
                w_up=np.ones((4, 9)),
                w_down=np.ones((8, 4)),
            )

    def test_weight_byte_accounting(self):
        ffn = GatedFFN.random(16, 64, seed=7)
        assert ffn.weight_bytes() == 3 * 16 * 64
        assert ffn.pruned_weight_bytes(4) == (2 * 4 + 16) * 64
        assert ffn.pruned_weight_bytes(16) == ffn.weight_bytes()
        with pytest.raises(ValueError):
            ffn.pruned_weight_bytes(17)

    def test_custom_activation(self):
        ffn = GatedFFN.random(8, 16, seed=8, activation=gelu)
        vx = np.random.default_rng(9).normal(size=8)
        expected = ((vx @ ffn.w_up) * gelu(vx @ ffn.w_gate)) @ ffn.w_down
        np.testing.assert_allclose(ffn.forward(vx), expected, rtol=1e-12)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_random_ffn_is_deterministic_per_seed(self, seed):
        a = GatedFFN.random(8, 16, seed=seed)
        b = GatedFFN.random(8, 16, seed=seed)
        np.testing.assert_array_equal(a.w_gate, b.w_gate)
        np.testing.assert_array_equal(a.w_down, b.w_down)


class TestLayerStack:
    def test_stack_has_distinct_weights_per_layer(self):
        stack = build_layer_stack(3, 8, 16, seed=0)
        assert len(stack) == 3
        assert not np.allclose(stack[0].w_gate, stack[1].w_gate)

    def test_rejects_bad_layer_count(self):
        with pytest.raises(ValueError):
            build_layer_stack(0, 8, 16)
