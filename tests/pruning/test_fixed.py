"""Tests for the fixed-ratio pruning baselines (repro.pruning.fixed)."""

import numpy as np
import pytest

from repro.models.activations import ActivationTraceConfig, ActivationTraceGenerator
from repro.pruning.ffn import build_layer_stack
from repro.pruning.fixed import (
    FixedRatioConfig,
    FixedRatioPruner,
    ThresholdConfig,
    ThresholdPruner,
    prune_token_fixed,
    wanda_channel_scores,
)
from repro.pruning.topk import prune_token


class TestFixedRatioPruner:
    def test_keep_count_matches_ratio(self):
        pruner = FixedRatioPruner(100, FixedRatioConfig(ratio=0.7))
        assert pruner.keep_count(3) == 30

    def test_skip_first_layer_option(self):
        pruner = FixedRatioPruner(100, FixedRatioConfig(ratio=0.7, skip_first_layer=True))
        assert pruner.keep_count(0) == 100
        assert pruner.keep_count(1) == 30

    def test_keeps_top_magnitude_channels(self):
        pruner = FixedRatioPruner(10, FixedRatioConfig(ratio=0.5))
        vx = np.arange(10, dtype=float)
        decision = pruner.prune_layer(vx, layer_index=2)
        assert set(decision.kept_channels.tolist()) == {5, 6, 7, 8, 9}

    def test_zero_ratio_keeps_everything(self):
        pruner = FixedRatioPruner(16, FixedRatioConfig(ratio=0.0))
        decision = pruner.prune_layer(np.random.default_rng(0).normal(size=16), 0)
        assert decision.kept == 16

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            FixedRatioConfig(ratio=1.0)
        with pytest.raises(ValueError):
            FixedRatioConfig(ratio=-0.1)

    def test_rejects_wrong_vector_length(self):
        pruner = FixedRatioPruner(16, FixedRatioConfig(ratio=0.5))
        with pytest.raises(ValueError):
            pruner.prune_layer(np.ones(8), 0)


class TestThresholdPruner:
    def test_keeps_channels_above_threshold(self):
        pruner = ThresholdPruner(8, ThresholdConfig(threshold=0.5))
        vx = np.array([0.1, 0.6, -0.7, 0.2, 0.9, 0.0, -0.4, 0.55])
        decision = pruner.prune_layer(vx, 1)
        assert set(decision.kept_channels.tolist()) == {1, 2, 4, 7}

    def test_never_keeps_zero_channels(self):
        pruner = ThresholdPruner(8, ThresholdConfig(threshold=100.0))
        decision = pruner.prune_layer(np.ones(8) * 0.1, 1)
        assert decision.kept == 1

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            ThresholdConfig(threshold=-1.0)


class TestWandaScores:
    def test_scores_combine_activation_and_weight_norms(self):
        vx = np.array([1.0, 2.0])
        weight = np.array([[3.0, 4.0], [0.0, 1.0]])  # row norms 5 and 1
        scores = wanda_channel_scores(vx, weight)
        np.testing.assert_allclose(scores, [5.0, 2.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            wanda_channel_scores(np.ones(3), np.ones((2, 4)))


@pytest.fixture(scope="module")
def trace() -> ActivationTraceGenerator:
    return ActivationTraceGenerator(ActivationTraceConfig(n_layers=6, d_model=256, seed=3))


class TestPruneTokenFixed:
    def test_report_has_constant_ratio(self, trace):
        report = prune_token_fixed(trace.token_trace(0), ratio=0.5)
        ratios = report.pruning_ratios()
        assert all(r == pytest.approx(0.5, abs=0.01) for r in ratios)

    def test_mild_ratio_keeps_high_similarity(self, trace):
        stack = build_layer_stack(6, 256, 128, seed=2)
        report = prune_token_fixed(trace.token_trace(0), stack, ratio=0.1)
        assert report.mean_cosine_similarity > 0.99

    def test_aggressive_ratio_hurts_shallow_layers_more_than_dynamic(self, trace):
        """The Fig. 12(b) comparison on the calibrated trace."""
        stack = build_layer_stack(6, 256, 128, seed=2)
        activations = trace.token_trace(0)
        aggressive = prune_token_fixed(activations, stack, ratio=0.7)
        dynamic = prune_token(activations, stack)
        shallow = slice(1, 3)
        assert np.mean(aggressive.cosine_similarities[shallow]) < np.mean(
            dynamic.cosine_similarities[shallow]
        )

    def test_mismatched_stack_raises(self, trace):
        stack = build_layer_stack(2, 256, 128)
        with pytest.raises(ValueError):
            prune_token_fixed(trace.token_trace(0), stack, ratio=0.5)

    def test_empty_activations_raise(self):
        with pytest.raises(ValueError):
            prune_token_fixed([], ratio=0.5)
