"""SLO-aware autoscaling fleet: control behaviour and the SLO guarantee.

The headline regression (`TestHoldsSLO`) is the PR's acceptance criterion:
on a bursty trace whose p99 TTFT a static single-chip fleet misses by a
wide margin, the autoscaler — starting from that same single chip — grows
the fleet against its rolling-percentile signal and *holds* the objective.
"""

import pytest

from repro.models.mllm import get_mllm
from repro.serving import (
    AutoscalerConfig,
    AutoscalingFleetSimulator,
    BurstyArrivals,
    FleetSimulator,
    PoissonArrivals,
    RequestSampler,
    build_trace,
    static_fleet_report,
)

TARGET_P99_TTFT_S = 5.0


def bursty_trace(n=300, *, seed=7):
    arrivals = BurstyArrivals(3.0, burst_multiplier=6.0, seed=seed)
    return build_trace(
        arrivals.generate(n), RequestSampler(seed=seed).sample(n)
    )


def reactive_config(**overrides):
    defaults = dict(
        target_p99_ttft_s=TARGET_P99_TTFT_S,
        min_chips=1,
        max_chips=4,
        window=32,
        min_observations=8,
        cooldown_s=0.5,
        scale_up_ratio=0.5,
    )
    defaults.update(overrides)
    return AutoscalerConfig(**defaults)


class TestConfigValidation:
    def test_rejects_bad_bounds_and_policies(self):
        with pytest.raises(ValueError, match="target_p99_ttft_s"):
            AutoscalerConfig(target_p99_ttft_s=0.0)
        with pytest.raises(ValueError, match="max_chips"):
            AutoscalerConfig(target_p99_ttft_s=1.0, min_chips=3, max_chips=2)
        with pytest.raises(ValueError, match="admission"):
            AutoscalerConfig(target_p99_ttft_s=1.0, admission="never")
        with pytest.raises(ValueError, match="scale_down_ratio"):
            AutoscalerConfig(
                target_p99_ttft_s=1.0, scale_up_ratio=0.5, scale_down_ratio=0.5
            )


class TestHoldsSLO:
    """Acceptance: the autoscaler holds an SLO the static fleet misses."""

    def test_static_single_chip_misses_autoscaler_holds(self, sphinx_tiny):
        trace = bursty_trace()
        static_p99 = static_fleet_report(
            sphinx_tiny, trace, n_chips=1, max_batch_size=8
        ).ttft.p99
        assert static_p99 > TARGET_P99_TTFT_S  # the static fleet misses

        fleet = AutoscalingFleetSimulator(
            sphinx_tiny, autoscaler=reactive_config(), max_batch_size=8
        )
        result = fleet.run(trace)
        assert result.report.ttft.p99 <= TARGET_P99_TTFT_S  # the SLO holds
        assert result.peak_chips > 1  # because the fleet actually grew
        assert result.n_rejected == 0  # by scaling, not by shedding load
        assert result.report.n_requests == len(trace)

    def test_scaling_events_are_well_formed(self, sphinx_tiny):
        result = AutoscalingFleetSimulator(
            sphinx_tiny, autoscaler=reactive_config(), max_batch_size=8
        ).run(bursty_trace())
        assert result.n_scale_ups >= 1
        config = reactive_config()
        previous_time = float("-inf")
        for event in result.events:
            assert abs(event.n_chips_after - event.n_chips_before) == 1
            assert config.min_chips <= event.n_chips_after <= config.max_chips
            assert event.time_s - previous_time >= config.cooldown_s
            previous_time = event.time_s

    def test_runs_are_deterministic(self, sphinx_tiny):
        trace = bursty_trace(120)
        first = AutoscalingFleetSimulator(
            sphinx_tiny, autoscaler=reactive_config(), max_batch_size=8
        ).run(trace)
        second = AutoscalingFleetSimulator(
            sphinx_tiny, autoscaler=reactive_config(), max_batch_size=8
        ).run(trace)
        assert first.records == second.records
        assert first.events == second.events
        assert first.assignments == second.assignments


class TestBounds:
    def test_never_exceeds_max_chips_nor_drops_below_min(self, sphinx_tiny):
        config = reactive_config(min_chips=2, max_chips=3)
        result = AutoscalingFleetSimulator(
            sphinx_tiny, autoscaler=config, max_batch_size=8
        ).run(bursty_trace(150))
        used = {chip for chip in result.assignments if chip >= 0}
        assert used <= set(range(config.max_chips))
        assert result.final_chips >= config.min_chips
        assert result.peak_chips <= config.max_chips

    def test_calm_traffic_never_scales(self, sphinx_tiny):
        trace = build_trace(
            PoissonArrivals(0.2, seed=3).generate(30),
            RequestSampler(seed=3).sample(30),
        )
        result = AutoscalingFleetSimulator(
            sphinx_tiny,
            autoscaler=reactive_config(target_p99_ttft_s=60.0, min_chips=1),
            max_batch_size=8,
        ).run(trace)
        assert result.events == ()
        assert result.final_chips == 1
        # All work lands on the one active chip.
        assert set(result.assignments) == {0}


class TestAdmissionControl:
    def overload_trace(self, n=120):
        # 20 rps of mixed requests against a single chip: far beyond
        # capacity, so the estimated in-flight depth climbs immediately.
        arrivals = PoissonArrivals(20.0, seed=11)
        return build_trace(
            arrivals.generate(n), RequestSampler(seed=11).sample(n)
        )

    def test_reject_policy_sheds_load_beyond_depth(self, sphinx_tiny):
        config = reactive_config(
            min_chips=1, max_chips=1, max_queue_depth=8, admission="reject"
        )
        result = AutoscalingFleetSimulator(
            sphinx_tiny, autoscaler=config, max_batch_size=8
        ).run(self.overload_trace())
        assert result.n_rejected > 0
        assert 0.0 < result.rejection_rate < 1.0
        assert len(result.records) + result.n_rejected == 120
        for request_id in result.rejected_ids:
            assert result.assignments[request_id] == -1

    def test_queue_policy_admits_everything_but_delays(self, sphinx_tiny):
        config = reactive_config(
            min_chips=1, max_chips=1, max_queue_depth=8, admission="queue"
        )
        trace = self.overload_trace()
        result = AutoscalingFleetSimulator(
            sphinx_tiny, autoscaler=config, max_batch_size=8
        ).run(trace)
        assert result.n_rejected == 0
        assert result.report.n_requests == len(trace)
        # Records keep the *true* arrival time: the admission delay shows
        # up as queue wait, not as a falsified arrival.
        by_id = {record.request_id: record for record in result.records}
        for request in trace:
            assert by_id[request.request_id].arrival_s == request.arrival_s

    def test_duplicate_request_ids_dispatch_positionally(self, sphinx_tiny):
        # The parent FleetSimulator documents positional dispatch for
        # traces carrying duplicate caller-supplied ids; the autoscaler
        # must honour the same contract (records map back by position).
        from repro.models.mllm import InferenceRequest
        from repro.serving.queue import ServingRequest

        shape = InferenceRequest(images=0, prompt_text_tokens=16, output_tokens=4)
        trace = [
            ServingRequest(request_id=5, arrival_s=0.0, request=shape),
            ServingRequest(request_id=5, arrival_s=10.0, request=shape),
        ]
        result = AutoscalingFleetSimulator(
            sphinx_tiny, autoscaler=reactive_config(), max_batch_size=8
        ).run(trace)
        assert len(result.records) == 2
        assert sorted(r.arrival_s for r in result.records) == [0.0, 10.0]
        assert all(r.request_id == 5 for r in result.records)

    def test_unbounded_depth_matches_least_loaded_fleet(self, sphinx_tiny):
        # With scaling pinned (min == max) and a depth no trace reaches,
        # the controller reduces to the static least-loaded dispatcher.
        trace = bursty_trace(80)
        static = FleetSimulator(
            sphinx_tiny, n_chips=2, policy="least_loaded", max_batch_size=8
        ).run(trace)
        auto = AutoscalingFleetSimulator(
            sphinx_tiny,
            autoscaler=reactive_config(
                min_chips=2, max_chips=2, max_queue_depth=10**6
            ),
            max_batch_size=8,
        ).run(trace)
        assert auto.records == static.records
        assert auto.assignments == static.assignments


class TestParallelReplay:
    def test_process_fanout_matches_serial_replay(self, sphinx_tiny):
        # The exact per-chip replay of the controlled assignment may fan
        # out across processes; decisions and records must not move.
        trace = bursty_trace(120)
        serial = AutoscalingFleetSimulator(
            sphinx_tiny, autoscaler=reactive_config(), max_batch_size=8
        ).run(trace)
        parallel = AutoscalingFleetSimulator(
            sphinx_tiny,
            autoscaler=reactive_config(),
            max_batch_size=8,
            processes=2,
        ).run(trace)
        assert parallel.events == serial.events
        assert parallel.assignments == serial.assignments
        assert parallel.records == serial.records
        assert parallel.final_chips == serial.final_chips
