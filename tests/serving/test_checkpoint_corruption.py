"""Corruption matrix: every way a checkpoint file can be bad, one error.

A checkpoint is the one artifact that crosses process boundaries, so
every failure mode — truncation, garbage bytes, a foreign JSON shape,
an unsupported version, missing or mistyped fields, a wrong trace
digest, tampered controller state — must surface as a single
:class:`~repro.serving.runtime.checkpoint.CheckpointError` whose
message names what was wrong, never a hang, a KeyError leak or a
silently wrong resume.  ``Checkpoint.load`` additionally prefixes the
offending path.
"""

import json
from pathlib import Path

import pytest

from repro.scenarios.registry import get_scenario
from repro.serving.runtime import (
    Checkpoint,
    CheckpointError,
    resume_scenario,
    run_scenario_live,
)


@pytest.fixture(scope="module")
def checkpoint():
    """A genuine mid-run scenario checkpoint to corrupt."""
    return run_scenario_live(get_scenario("chat-poisson"), pause_after=10)


def _truncate(text):
    return text[: len(text) // 2]


def _garbage(text):
    return "\x00\xff this was never json"


def _array(text):
    return "[1, 2, 3]"


def _mutate(field, value):
    def corrupt(text):
        data = json.loads(text)
        data[field] = value
        return json.dumps(data)

    return corrupt


def _drop(field):
    def corrupt(text):
        data = json.loads(text)
        del data[field]
        return json.dumps(data)

    return corrupt


CORRUPTIONS = [
    pytest.param(_truncate, "not valid JSON", id="truncated"),
    pytest.param(_garbage, "not valid JSON", id="garbage-bytes"),
    pytest.param(_array, "JSON object", id="wrong-json-shape"),
    pytest.param(
        _mutate("version", 99), "unsupported checkpoint version", id="future-version"
    ),
    pytest.param(
        _mutate("version", "one"), "version must be an integer", id="non-int-version"
    ),
    pytest.param(_drop("kind"), "missing required field", id="missing-kind"),
    pytest.param(_drop("cursor"), "missing required field", id="missing-cursor"),
    pytest.param(
        _drop("controller"), "missing required field", id="missing-controller"
    ),
    pytest.param(
        _drop("trace_sha256"), "missing required field", id="missing-digest"
    ),
    pytest.param(
        _mutate("controller", "not a dict"), "wrong type", id="mistyped-controller"
    ),
]


class TestParseMatrix:
    @pytest.mark.parametrize("corrupt, match", CORRUPTIONS)
    def test_from_json_rejects(self, checkpoint, corrupt, match):
        with pytest.raises(CheckpointError, match=match):
            Checkpoint.from_json(corrupt(checkpoint.to_json()))

    @pytest.mark.parametrize("corrupt, match", CORRUPTIONS)
    def test_load_names_the_file(self, checkpoint, corrupt, match, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(corrupt(checkpoint.to_json()), encoding="utf-8")
        with pytest.raises(CheckpointError, match=match) as excinfo:
            Checkpoint.load(path)
        assert str(path) in str(excinfo.value)

    def test_errors_are_value_errors(self, checkpoint):
        # One catchable family: callers may keep catching ValueError.
        with pytest.raises(ValueError):
            Checkpoint.from_json("{")


class TestResumeGuards:
    def test_wrong_trace_digest(self, checkpoint):
        data = checkpoint.to_dict()
        digest = data["trace_sha256"]
        data["trace_sha256"] = ("0" if digest[0] != "0" else "1") + digest[1:]
        with pytest.raises(CheckpointError, match="digest"):
            resume_scenario(Checkpoint.from_dict(data))

    def test_tampered_controller_state(self, checkpoint):
        data = checkpoint.to_dict()
        data["controller"] = {"bogus": 1}
        with pytest.raises(CheckpointError, match="invalid or tampered"):
            resume_scenario(Checkpoint.from_dict(data))

    def test_round_trip_still_resumes(self, checkpoint, tmp_path):
        # Control leg: the uncorrupted file resumes fine.
        path = checkpoint.save(tmp_path / "good.json")
        report = resume_scenario(Checkpoint.load(path))
        assert report.n_completed == get_scenario("chat-poisson").n_requests
