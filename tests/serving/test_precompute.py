"""Serving fast paths: batched precomputation, step memo, heap dispatch.

Every optimisation here carries the same contract as the batch engine:
identical trace output, bit for bit, to the unoptimised path.
"""

from repro.core.simulator import PerformanceSimulator
from repro.models.mllm import get_mllm
from repro.serving import (
    BatchDecodeCostModel,
    ContinuousBatchingSimulator,
    FleetSimulator,
    PoissonArrivals,
    RequestSampler,
    build_trace,
)

N_REQUESTS = 40


def make_trace(seed=5, n=N_REQUESTS):
    return build_trace(
        PoissonArrivals(5.0, seed=seed).generate(n),
        RequestSampler(
            seed=seed, output_token_choices=(4, 8, 16), output_token_weights=(0.4, 0.4, 0.2)
        ).sample(n),
    )


class TestFleetPrecompute:
    def test_precomputed_traces_identical_both_policies(self):
        model = get_mllm("sphinx-tiny")
        trace = make_trace()
        for policy in ("round_robin", "least_loaded"):
            warm = FleetSimulator(model, n_chips=3, policy=policy, precompute=True)
            cold = FleetSimulator(model, n_chips=3, policy=policy, precompute=False)
            warm_result = warm.run(trace)
            cold_result = cold.run(trace)
            assert warm_result.assignments == cold_result.assignments
            assert warm_result.records == cold_result.records

    def test_precompute_seeds_every_chip(self):
        model = get_mllm("sphinx-tiny")
        trace = make_trace()
        fleet = FleetSimulator(model, n_chips=3, policy="round_robin")
        fleet.precompute_service_times(trace)
        shapes = {(r.request.images, r.request.prompt_text_tokens) for r in trace}
        for chip in fleet.chips:
            for shape in shapes:
                assert chip.has_cc_latency(shape)
            bucket = chip.cost_model.bucket_for(model.prompt_tokens(trace[0].request))
            assert chip.cost_model.has_bucket_cost(bucket)

    def test_seeded_values_bit_identical_to_lazy_ones(self):
        model = get_mllm("sphinx-tiny")
        trace = make_trace()
        fleet = FleetSimulator(model, n_chips=2, policy="least_loaded")
        fleet.precompute_service_times(trace)
        seeded = fleet.chips[0]
        lazy = ContinuousBatchingSimulator(
            model=model,
            max_batch_size=seeded.max_batch_size,
            cc_bandwidth_fraction=seeded.cc_bandwidth_fraction,
        )
        for request in trace:
            shape_latency = seeded.cc_latency_s(request.request)
            assert shape_latency == lazy.cc_latency_s(request.request)
            context = model.prompt_tokens(request.request)
            assert seeded.cost_model.step_latency_s([context]) == (
                lazy.cost_model.step_latency_s([context])
            )

    def test_assign_alone_still_precomputes_for_least_loaded(self):
        model = get_mllm("sphinx-tiny")
        trace = make_trace()
        fleet = FleetSimulator(model, n_chips=2, policy="least_loaded")
        fleet.assign(trace)
        assert any(
            fleet.chips[0].has_cc_latency(
                (r.request.images, r.request.prompt_text_tokens)
            )
            for r in trace
        )

    def test_empty_trace_precompute_is_a_noop(self):
        model = get_mllm("sphinx-tiny")
        fleet = FleetSimulator(model, n_chips=2)
        fleet.precompute_service_times([])  # must not raise


class TestHeapDispatch:
    def test_heap_matches_linear_min_scan(self):
        model = get_mllm("sphinx-tiny")
        trace = make_trace(seed=11, n=60)
        fleet = FleetSimulator(model, n_chips=4, policy="least_loaded")
        assignments = fleet.assign(trace)

        # Reference: the original O(chips) scan per request.
        reference_fleet = FleetSimulator(
            model, n_chips=4, policy="least_loaded", precompute=False
        )
        order = sorted(
            range(len(trace)), key=lambda i: (trace[i].arrival_s, trace[i].request_id)
        )
        horizon = [0.0] * reference_fleet.n_chips
        expected = [0] * len(trace)
        for index in order:
            request = trace[index]
            chip_id = min(range(reference_fleet.n_chips), key=lambda i: horizon[i])
            cost = reference_fleet._estimate_cost_s(
                reference_fleet.chips[chip_id], request.request
            )
            horizon[chip_id] = max(horizon[chip_id], request.arrival_s) + cost
            expected[index] = chip_id
        assert assignments == expected


class TestStepLatencyMemo:
    def test_step_memo_returns_identical_floats(self):
        model = get_mllm("sphinx-tiny")
        cost = BatchDecodeCostModel(PerformanceSimulator(), model)
        contexts = [64, 100, 500, 64]
        first = cost.step_latency_s(contexts)
        assert len(cost._step_cache) == 1
        assert cost.step_latency_s(contexts) == first
        fresh = BatchDecodeCostModel(PerformanceSimulator(), model)
        assert fresh.step_latency_s(contexts) == first

    def test_memo_keys_on_bucket_composition(self):
        model = get_mllm("sphinx-tiny")
        cost = BatchDecodeCostModel(
            PerformanceSimulator(), model, context_bucket=32
        )
        # 65 and 70 share the 96-token bucket: one memo entry.
        cost.step_latency_s([65, 70])
        cost.step_latency_s([66, 95])
        assert len(cost._step_cache) == 1
        cost.step_latency_s([65, 70, 95])
        assert len(cost._step_cache) == 2
