"""Wave engine: three-way bit-identity across wave, macro and step.

The wave engine batches the admission-cutoff walk into one array pass and
consumes columnar traces, but its contract is the macro engine's: exact
``==`` equivalence with the per-step oracle.  Every test here asserts
equality of ``RequestRecord`` tuples and peak-batch/decode-step counters
across all three engines — on randomized composition-churning traces over
batch sizes, bucket widths and fleet sizes — plus scale-event equality
when the autoscaler drives fleets under ``engine="wave"``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.mllm import get_mllm
from repro.serving import (
    AutoscalerConfig,
    AutoscalingFleetSimulator,
    BurstyArrivals,
    ContinuousBatchingSimulator,
    FleetSimulator,
    PoissonArrivals,
    RequestSampler,
    build_trace,
    trace_to_array,
)

MODEL = get_mllm("sphinx-tiny")

#: Shared cost-cache donor, as in test_macro_engine: seeding moves work,
#: never values, so every engine of a comparison gets identical caches.
_DONOR = {
    "cc": {},
    "buckets": {},
    "steps": {},
}


def _chip(engine, *, max_batch_size=8, context_bucket=32):
    chip = ContinuousBatchingSimulator(
        model=MODEL,
        max_batch_size=max_batch_size,
        context_bucket=context_bucket,
        engine=engine,
    )
    chip.seed_cc_latencies(_DONOR["cc"])
    chip.cost_model.seed_bucket_costs(_DONOR["buckets"])
    chip.cost_model.seed_step_cache(_DONOR["steps"])
    return chip


def _harvest(chip):
    _DONOR["cc"].update(chip.cc_latencies())
    _DONOR["buckets"].update(chip.cost_model.bucket_costs())
    _DONOR["steps"].update(chip.cost_model.step_cache())


def run_three(trace, *, max_batch_size=8, context_bucket=32):
    """(wave, macro, step) results of the same trace on triplet chips."""
    results = []
    for engine in ("wave", "macro", "step"):
        chip = _chip(
            engine,
            max_batch_size=max_batch_size,
            context_bucket=context_bucket,
        )
        results.append(chip.run(trace))
        _harvest(chip)
    return results


def assert_identical(result, reference):
    """Every observable of the two runs is ``==``-identical."""
    assert result.records == reference.records
    assert result.peak_batch_size == reference.peak_batch_size
    assert result.decode_steps == reference.decode_steps


def make_trace(
    n,
    *,
    seed,
    rate=4.0,
    bursty=False,
    images=1,
    prompt_range=(4, 64),
    output_choices=(1, 2, 8, 16, 64),
):
    arrivals = (
        BurstyArrivals(rate, burst_multiplier=6.0, seed=seed)
        if bursty
        else PoissonArrivals(rate, seed=seed)
    )
    sampler = RequestSampler(
        seed=seed,
        images=images,
        prompt_token_range=prompt_range,
        output_token_choices=output_choices,
        output_token_weights=tuple(1.0 for _ in output_choices),
    )
    return build_trace(arrivals.generate(n), sampler.sample(n))


class TestPropertyEquivalence:
    @given(
        n=st.integers(min_value=1, max_value=90),
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.2, max_value=40.0),
        bursty=st.booleans(),
        max_batch=st.integers(min_value=1, max_value=12),
        bucket=st.sampled_from((1, 4, 16, 32, 64, 96)),
        images=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=30, deadline=None)
    def test_wave_equals_macro_equals_step(
        self, n, seed, rate, bursty, max_batch, bucket, images
    ):
        # Mixed output lengths churn the batch composition constantly —
        # the regime where an unsound admission cutoff or composition
        # update would diverge fastest.
        trace = make_trace(
            n, seed=seed, rate=rate, bursty=bursty, images=images
        )
        wave, macro, step = run_three(
            trace, max_batch_size=max_batch, context_bucket=bucket
        )
        assert_identical(wave, step)
        assert_identical(macro, step)

    @given(
        n=st.integers(min_value=1, max_value=60),
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.2, max_value=20.0),
        max_batch=st.integers(min_value=1, max_value=8),
        bucket=st.sampled_from((1, 16, 64)),
    )
    @settings(max_examples=15, deadline=None)
    def test_columnar_trace_equals_object_trace(
        self, n, seed, rate, max_batch, bucket
    ):
        # The wave engine accepts the TRACE_DTYPE array directly; the
        # records must match an object-trace wave run and the oracle.
        trace = make_trace(n, seed=seed, rate=rate)
        array = trace_to_array(trace)
        from_objects = _chip(
            "wave", max_batch_size=max_batch, context_bucket=bucket
        )
        objects_result = from_objects.run(trace)
        _harvest(from_objects)
        from_array = _chip(
            "wave", max_batch_size=max_batch, context_bucket=bucket
        )
        array_result = from_array.run(array)
        oracle = _chip(
            "step", max_batch_size=max_batch, context_bucket=bucket
        )
        step_result = oracle.run(trace)
        assert_identical(array_result, objects_result)
        assert_identical(array_result, step_result)


class TestDeterministicEdges:
    def test_single_request(self):
        wave, macro, step = run_three(make_trace(1, seed=0))
        assert_identical(wave, step)

    def test_serial_batch_of_one(self):
        trace = make_trace(30, seed=2, rate=8.0)
        wave, _, step = run_three(trace, max_batch_size=1)
        assert_identical(wave, step)

    def test_long_walk_exercises_the_searchsorted_cutoff(self):
        # A slow trickle of long decodes: admissions land mid-run, with
        # runs long past SEARCH_CUTOFF_MIN, so the vectorised cutoff (not
        # the scalar walk) picks the admission boundary.
        trace = make_trace(
            10, seed=5, rate=0.05, output_choices=(200, 256)
        )
        wave, _, step = run_three(trace, context_bucket=256)
        assert_identical(wave, step)

    def test_unsorted_trace_positions(self):
        trace = list(reversed(make_trace(30, seed=4, rate=10.0)))
        wave, _, step = run_three(trace)
        assert_identical(wave, step)

    def test_empty_trace_rejected(self):
        import numpy as np

        from repro.serving.trace import TRACE_DTYPE

        chip = _chip("wave")
        with pytest.raises(ValueError, match="empty"):
            chip.run([])
        with pytest.raises(ValueError, match="empty"):
            chip.run(np.empty(0, dtype=TRACE_DTYPE))


class TestFleetEquivalence:
    @pytest.mark.parametrize("policy", ["round_robin", "least_loaded"])
    @pytest.mark.parametrize("n_chips", [1, 3])
    def test_fleet_traces_identical(self, policy, n_chips):
        trace = make_trace(80, seed=11, rate=12.0, bursty=True)
        results = []
        for engine in ("wave", "step"):
            fleet = FleetSimulator(
                MODEL, n_chips=n_chips, policy=policy, engine=engine
            )
            results.append(fleet.run(trace))
        wave, step = results
        assert wave.assignments == step.assignments
        assert wave.records == step.records
        for chip_wave, chip_step in zip(wave.per_chip, step.per_chip):
            assert chip_wave.records == chip_step.records
            assert chip_wave.peak_batch_size == chip_step.peak_batch_size
            assert chip_wave.decode_steps == chip_step.decode_steps


class TestAutoscalerEquivalence:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def test_scale_events_and_records_identical(self, seed):
        trace = make_trace(
            120, seed=seed, rate=8.0, bursty=True, output_choices=(8, 16, 64)
        )
        config = AutoscalerConfig(
            target_p99_ttft_s=2.0,
            min_chips=1,
            max_chips=3,
            window=24,
            min_observations=8,
            cooldown_s=0.5,
            scale_up_ratio=0.5,
            max_queue_depth=16,
        )
        results = []
        for engine in ("wave", "step"):
            fleet = AutoscalingFleetSimulator(
                MODEL, autoscaler=config, engine=engine
            )
            results.append(fleet.run(trace))
        wave, step = results
        assert wave.events == step.events
        assert wave.assignments == step.assignments
        assert wave.rejected_ids == step.rejected_ids
        assert wave.records == step.records
        assert wave.final_chips == step.final_chips
