"""Slow smoke: live ingestion holds up at 100k-request scale.

Marked ``slow`` (excluded from the default run by ``pytest.ini``); the
CI ``runtime`` job invokes it explicitly with ``pytest -m slow``.  The
equivalence story lives in ``test_runtime_differential.py`` — this
smoke proves the actor machinery's overhead stays bounded: a 100k
request live run over the wave engine must produce the batch result
``==``-identically while staying within 2x of the batch wall-clock
(service-time memos are warmed up front so both planes price the same
cached costs and the comparison isolates the control-plane overhead).
"""

import time

import pytest

from repro.models.mllm import get_mllm
from repro.serving import (
    FleetSimulator,
    PoissonArrivals,
    RequestSampler,
    build_trace,
)
from repro.serving.runtime import run_live

N_REQUESTS = 100_000


def _trace():
    return build_trace(
        PoissonArrivals(200.0, seed=1234).generate(N_REQUESTS),
        RequestSampler(
            seed=1234,
            prompt_token_range=(16, 48),
            output_token_choices=(8, 16),
            output_token_weights=(0.6, 0.4),
        ).sample(N_REQUESTS),
    )


@pytest.mark.slow
def test_live_ingestion_100k_within_2x_of_batch_wave():
    model = get_mllm("sphinx-tiny")
    fleet = FleetSimulator(model, n_chips=4, engine="wave")
    trace = _trace()
    # Warm the shared service-time memos outside both measurements.
    fleet.precompute_service_times(trace)

    start = time.perf_counter()
    batch = fleet.run(trace)
    batch_s = time.perf_counter() - start

    start = time.perf_counter()
    live = run_live(fleet, trace)
    live_s = time.perf_counter() - start

    assert live == batch
    assert len(live.records) == N_REQUESTS
    # The 2x budget, with a 5s floor so a very fast batch run does not
    # turn scheduler noise into flakes.
    budget = max(2.0 * batch_s, batch_s + 5.0)
    assert live_s <= budget, (
        f"live took {live_s:.1f}s vs batch {batch_s:.1f}s "
        f"(budget {budget:.1f}s)"
    )
