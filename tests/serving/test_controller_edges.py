"""Edge-branch tests for the autoscale and fault dispatch controllers.

Targeted at the branches the broad differential/property suites rarely
reach: autoscaler-config validation, the `AutoscaleResult` helper
properties, fault-autoscale scale-downs, parked arrivals surviving an
outage (and a checkpoint taken mid-outage), and the guard rails on the
fault paths' entry points.  Together with the main suites these keep
`repro.serving` above the CI coverage floor.
"""

import pytest

from repro.models.mllm import get_mllm
from repro.serving import (
    AutoscaleResult,
    AutoscalerConfig,
    AutoscalingFleetSimulator,
    FleetSimulator,
    PoissonArrivals,
    RequestSampler,
    build_trace,
)
from repro.serving.dispatch import make_controller, run_jobs_inline, sorted_order
from repro.serving.faults import FaultEvent, FaultSchedule
from repro.serving.runtime import resume_live, run_live


@pytest.fixture(scope="module")
def model():
    return get_mllm("sphinx-tiny")


def _trace(seed, n=24, rate=6.0):
    return build_trace(
        PoissonArrivals(rate, seed=seed).generate(n),
        RequestSampler(seed=seed).sample(n),
    )


def _burst_then_idle_trace(n_burst=30, n_tail=15):
    """A dense burst followed by sparse arrivals: scales up, then down."""
    times = [0.02 * i for i in range(n_burst)]
    times += [3.0 + 2.0 * i for i in range(n_tail)]
    return build_trace(
        times, RequestSampler(seed=11).sample(n_burst + n_tail)
    )


class TestAutoscalerConfigValidation:
    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"target_p99_ttft_s": 0.0}, "target_p99_ttft_s"),
            ({"min_chips": 0}, "min_chips"),
            ({"min_chips": 4, "max_chips": 2}, "max_chips"),
            ({"window": 0}, "window"),
            ({"min_observations": 0}, "window"),
            ({"cooldown_s": -1.0}, "cooldown_s"),
            ({"scale_up_ratio": 0.0}, "scale_up_ratio"),
            ({"scale_down_ratio": 2.0}, "scale_down_ratio"),
            ({"max_queue_depth": 0}, "max_queue_depth"),
            ({"admission": "tarpit"}, "admission"),
        ],
    )
    def test_invalid_knobs_rejected(self, overrides, match):
        kwargs = {"target_p99_ttft_s": 1.0, **overrides}
        with pytest.raises(ValueError, match=match):
            AutoscalerConfig(**kwargs)


class TestAutoscaleResultProperties:
    def test_all_rejected_run_reports_zeroes(self):
        result = AutoscaleResult(
            records=(),
            per_chip=(),
            assignments=(-1, -1),
            rejected_ids=(5, 7),
            events=(),
            final_chips=1,
        )
        assert result.report.n_requests == 0
        assert result.n_rejected == 2
        assert result.rejection_rate == 1.0
        assert result.peak_chips == 1
        assert result.requests_per_chip == ()

    def test_per_chip_request_counts(self, model):
        result = AutoscaleResult(
            records=(),
            per_chip=(object(), object()),
            assignments=(0, 1, 1, -1),
            rejected_ids=(3,),
            events=(),
            final_chips=2,
        )
        assert result.requests_per_chip == (1, 2)
        assert result.rejection_rate == pytest.approx(1.0)


class TestAutoscaleRunGuards:
    def test_invalid_runtime_rejected(self, model):
        fleet = AutoscalingFleetSimulator(
            model, autoscaler=AutoscalerConfig(target_p99_ttft_s=1.0)
        )
        with pytest.raises(ValueError, match="runtime"):
            fleet.run(_trace(3), runtime="warp")

    def test_empty_trace_rejected(self, model):
        fleet = AutoscalingFleetSimulator(
            model, autoscaler=AutoscalerConfig(target_p99_ttft_s=1.0)
        )
        with pytest.raises(ValueError, match="empty"):
            fleet.run([])

    def test_fault_path_rejects_empty_trace(self, model):
        fleet = AutoscalingFleetSimulator(
            model, autoscaler=AutoscalerConfig(target_p99_ttft_s=1.0)
        )
        with pytest.raises(ValueError, match="empty"):
            fleet.run([], faults=FaultSchedule())


class TestFaultAutoscaleBranches:
    CONFIG = AutoscalerConfig(
        target_p99_ttft_s=1.0,
        min_chips=1,
        max_chips=3,
        window=5,
        min_observations=3,
        cooldown_s=0.1,
        scale_up_ratio=1.0,
        scale_down_ratio=0.5,
        max_queue_depth=16,
    )

    def test_scale_down_after_the_burst(self, model):
        trace = _burst_then_idle_trace()
        fleet = AutoscalingFleetSimulator(model, autoscaler=self.CONFIG)
        batch = fleet.run(trace, faults=FaultSchedule())
        downs = sum(
            1
            for event in batch.events
            if event.n_chips_after < event.n_chips_before
        )
        ups = sum(
            1
            for event in batch.events
            if event.n_chips_after > event.n_chips_before
        )
        assert ups >= 1 and downs >= 1
        assert fleet.run(
            trace, faults=FaultSchedule(), runtime="live"
        ) == batch

    def test_outage_parks_then_flushes(self, model):
        # A 1-chip autoscaled fleet loses its only chip mid-trace under
        # dense traffic: queued entries re-dispatch into the parked
        # queue, later arrivals park directly, the chip_up flushes them
        # all, nothing is lost.
        trace = _trace(5, n=30, rate=30.0)
        horizon = max(request.arrival_s for request in trace)
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    time_s=horizon * 0.3, kind="chip_down", chip_id=0
                ),
                FaultEvent(
                    time_s=horizon * 0.6, kind="chip_up", chip_id=0
                ),
            )
        )
        config = AutoscalerConfig(
            target_p99_ttft_s=0.5,
            min_chips=1,
            max_chips=1,
            window=4,
            min_observations=2,
            cooldown_s=0.1,
        )
        fleet = AutoscalingFleetSimulator(model, autoscaler=config)
        batch = fleet.run(trace, faults=schedule)
        assert len(batch.records) == len(trace)
        live = fleet.run(trace, faults=schedule, runtime="live")
        assert live == batch

    def test_checkpoint_mid_outage_with_parked_arrivals(self, model):
        # Pause while arrivals sit parked (the only chip is down) — the
        # parked queue must survive serialization and restore.
        trace = _trace(5, n=30)
        horizon = max(request.arrival_s for request in trace)
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    time_s=horizon * 0.2, kind="chip_down", chip_id=0
                ),
                FaultEvent(
                    time_s=horizon * 0.8, kind="chip_up", chip_id=0
                ),
            )
        )
        config = AutoscalerConfig(
            target_p99_ttft_s=0.5,
            min_chips=1,
            max_chips=1,
            window=4,
            min_observations=2,
            cooldown_s=0.1,
        )
        fleet = AutoscalingFleetSimulator(model, autoscaler=config)
        batch = fleet.run(trace, faults=schedule)
        checkpoint = run_live(
            fleet, trace, faults=schedule, pause_after=15
        )
        assert checkpoint.kind == "fault_autoscale"
        resumed = resume_live(fleet, trace, checkpoint, faults=schedule)
        assert resumed == batch

    def test_trailing_chip_up_drains_parked_arrivals(self, model):
        # The only chip dies mid-trace and only recovers *after* the
        # last arrival: finish_events must apply the trailing chip_up
        # and flush the parked queue instead of raising.
        trace = _trace(5, n=20, rate=30.0)
        horizon = max(request.arrival_s for request in trace)
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    time_s=horizon * 0.5, kind="chip_down", chip_id=0
                ),
                FaultEvent(
                    time_s=horizon * 1.5, kind="chip_up", chip_id=0
                ),
            )
        )
        config = AutoscalerConfig(
            target_p99_ttft_s=0.5, min_chips=1, max_chips=1
        )
        fleet = AutoscalingFleetSimulator(model, autoscaler=config)
        batch = fleet.run(trace, faults=schedule)
        assert len(batch.records) == len(trace)
        live = fleet.run(trace, faults=schedule, runtime="live")
        assert live == batch

    def test_dying_chip_requeues_onto_survivors(self, model):
        # Scale up during the burst, then kill chip 0 while it still has
        # queued entries: they re-dispatch onto the surviving active
        # chips instead of parking.
        trace = _burst_then_idle_trace()
        schedule = FaultSchedule(
            events=(
                FaultEvent(time_s=0.4, kind="chip_down", chip_id=0),
            )
        )
        fleet = AutoscalingFleetSimulator(model, autoscaler=self.CONFIG)
        batch = fleet.run(trace, faults=schedule)
        assert len(batch.records) == len(trace)
        live = fleet.run(trace, faults=schedule, runtime="live")
        assert live == batch

    def test_permanent_outage_raises_on_both_planes(self, model):
        trace = _trace(7, n=8)
        schedule = FaultSchedule(
            events=(
                FaultEvent(time_s=0.0, kind="chip_down", chip_id=0),
            )
        )
        config = AutoscalerConfig(
            target_p99_ttft_s=0.5, min_chips=1, max_chips=1
        )
        fleet = AutoscalingFleetSimulator(model, autoscaler=config)
        with pytest.raises(ValueError, match="never dispatched"):
            fleet.run(trace, faults=schedule)
        with pytest.raises(ValueError, match="never dispatched"):
            fleet.run(trace, faults=schedule, runtime="live")

    def test_preview_is_pure_on_the_fault_autoscale_path(self, model):
        trace = _trace(9, n=20)
        fleet = AutoscalingFleetSimulator(model, autoscaler=self.CONFIG)
        schedule = FaultSchedule()
        baseline = fleet.run(trace, faults=schedule)
        controller = make_controller(fleet, trace, faults=schedule)
        assert controller.kind == "fault_autoscale"
        previews = []
        for position, index in enumerate(sorted_order(trace)):
            controller.on_arrival(index, trace[index])
            if position in (5, 12):
                previews.append(controller.preview_records())
        controller.finish_events()
        result = controller.collect(
            run_jobs_inline(controller.final_jobs())
        )
        assert result == baseline
        assert len(previews[0]) <= len(previews[1]) <= len(result.records)


class TestFaultFleetParkedCheckpoint:
    def test_checkpoint_during_total_outage(self, model):
        # Both chips down over a window; pause inside it so the static
        # fault controller checkpoints with a non-empty parked queue.
        trace = _trace(13, n=30)
        horizon = max(request.arrival_s for request in trace)
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    time_s=horizon * 0.2, kind="chip_down", chip_id=0
                ),
                FaultEvent(
                    time_s=horizon * 0.2, kind="chip_down", chip_id=1
                ),
                FaultEvent(
                    time_s=horizon * 0.8, kind="chip_up", chip_id=0
                ),
                FaultEvent(
                    time_s=horizon * 0.8, kind="chip_up", chip_id=1
                ),
            )
        )
        fleet = FleetSimulator(model, n_chips=2, policy="least_loaded")
        batch = fleet.run(trace, faults=schedule)
        checkpoint = run_live(
            fleet, trace, faults=schedule, pause_after=15
        )
        assert checkpoint.kind == "fault_fleet"
        resumed = resume_live(fleet, trace, checkpoint, faults=schedule)
        assert resumed == batch

    def test_trailing_events_apply_after_the_last_arrival(self, model):
        # A chip_up scheduled past the final arrival reaches the static
        # fault controller through finish_events, not on_arrival.
        trace = _trace(13, n=20)
        horizon = max(request.arrival_s for request in trace)
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    time_s=horizon * 0.5, kind="chip_down", chip_id=0
                ),
                FaultEvent(
                    time_s=horizon * 1.5, kind="chip_up", chip_id=0
                ),
            )
        )
        fleet = FleetSimulator(model, n_chips=2, policy="least_loaded")
        batch = fleet.run(trace, faults=schedule)
        assert len(batch.records) == len(trace)
        live = fleet.run(trace, faults=schedule, runtime="live")
        assert live == batch
