"""Unit tests of the live runtime's actors, sources and guard rails.

The differential and checkpoint suites prove the headline equivalences;
this file pins the mechanics underneath them: ingestion batching and
validation, the line/chunk trace sources, controller preview purity,
supervisor error propagation, and the ``runtime=`` plumbing on the
fleet entry points.
"""

import asyncio
import json

import pytest

from repro.models.mllm import get_mllm
from repro.scenarios.compile import compile_scenario, compile_scenario_chunks
from repro.scenarios.registry import get_scenario
from repro.serving import (
    FleetSimulator,
    PoissonArrivals,
    RequestSampler,
    build_trace,
)
from repro.serving.dispatch import (
    StaticDispatchController,
    make_controller,
    request_from_state,
    request_to_state,
    sorted_order,
)
from repro.serving.faults import FaultEvent, FaultSchedule
from repro.serving.runtime import (
    ArrivalBatch,
    IngestionActor,
    StreamEnded,
    SupervisorActor,
    TraceIngestError,
    requests_from_chunks,
    requests_from_lines,
    run_live,
)
from repro.serving.runtime.actors import Actor


@pytest.fixture(scope="module")
def model():
    return get_mllm("sphinx-tiny")


def _trace(seed, n=24):
    return build_trace(
        PoissonArrivals(6.0, seed=seed).generate(n),
        RequestSampler(seed=seed).sample(n),
    )


class _Collector(Actor):
    """Test double: records every message it receives."""

    def __init__(self):
        super().__init__("collector")
        self.received = []

    async def on_message(self, message):
        self.received.append(message)


def _ingest(arrivals, **kwargs):
    async def session():
        collector = _Collector()
        collector.start()
        ingestion = IngestionActor(arrivals, collector, **kwargs)
        ingestion.start()
        await ingestion._task
        await collector.stop()
        return collector.received

    return asyncio.run(session())


class TestIngestion:
    def test_batching_and_terminal_message(self, model):
        trace = _trace(3, n=10)
        arrivals = [(index, trace[index]) for index in sorted_order(trace)]
        received = _ingest(arrivals, batch_size=4)
        batches = [m for m in received if isinstance(m, ArrivalBatch)]
        assert [len(b.arrivals) for b in batches] == [4, 4, 2]
        flattened = [pair for b in batches for pair in b.arrivals]
        assert flattened == arrivals
        assert received[-1] == StreamEnded(total=10)

    def test_pacing_forces_batches_of_one(self, model):
        trace = _trace(3, n=6)
        arrivals = [(index, trace[index]) for index in sorted_order(trace)]
        received = _ingest(arrivals, batch_size=4, pace=1e9)
        batches = [m for m in received if isinstance(m, ArrivalBatch)]
        assert [len(b.arrivals) for b in batches] == [1] * 6

    def test_validation(self, model):
        trace = _trace(3, n=6)
        arrivals = [(index, trace[index]) for index in sorted_order(trace)]
        collector = object()
        with pytest.raises(ValueError, match="batch_size"):
            IngestionActor(arrivals, collector, batch_size=0)
        with pytest.raises(ValueError, match="pace"):
            IngestionActor(arrivals, collector, pace=0.0)
        with pytest.raises(ValueError, match="start_at"):
            IngestionActor(arrivals, collector, start_at=7)
        with pytest.raises(ValueError, match="pause_after"):
            IngestionActor(arrivals, collector, start_at=3, pause_after=3)
        with pytest.raises(ValueError, match="pause_after"):
            IngestionActor(arrivals, collector, pause_after=7)


class TestSources:
    def test_requests_from_lines_round_trip(self, model):
        trace = _trace(5, n=8)
        lines = [json.dumps(request_to_state(r)) for r in trace]
        lines.insert(3, "")  # blank lines are skipped
        lines.append("   ")
        assert requests_from_lines(lines) == list(trace)

    def test_request_state_round_trip(self, model):
        for request in _trace(5, n=4):
            assert request_from_state(request_to_state(request)) == request

    def test_requests_from_chunks_matches_compile(self):
        spec = get_scenario("chat-poisson")
        compiled = compile_scenario(spec)
        chunks = compile_scenario_chunks(spec, chunk_size=32)
        assert requests_from_chunks(chunks) == list(compiled.trace)

    def test_bad_json_names_the_line(self, model):
        lines = [json.dumps(request_to_state(r)) for r in _trace(5, n=3)]
        lines.insert(1, "{not json")
        with pytest.raises(TraceIngestError, match="line 2") as excinfo:
            requests_from_lines(lines)
        assert excinfo.value.line_no == 2
        assert excinfo.value.field is None

    def test_non_object_line_rejected(self, model):
        lines = [json.dumps(request_to_state(r)) for r in _trace(5, n=2)]
        lines.append("[1, 2, 3]")
        with pytest.raises(TraceIngestError, match="line 3"):
            requests_from_lines(lines)

    def test_missing_field_names_line_and_field(self, model):
        states = [request_to_state(r) for r in _trace(5, n=3)]
        del states[2]["output_tokens"]
        lines = [json.dumps(state) for state in states]
        with pytest.raises(TraceIngestError, match="output_tokens") as excinfo:
            requests_from_lines(lines)
        assert excinfo.value.line_no == 3
        assert excinfo.value.field == "output_tokens"

    def test_mistyped_field_names_line_and_field(self, model):
        states = [request_to_state(r) for r in _trace(5, n=2)]
        states[0]["arrival_s"] = "soon"
        lines = [json.dumps(state) for state in states]
        with pytest.raises(TraceIngestError, match="arrival_s") as excinfo:
            requests_from_lines(lines)
        assert excinfo.value.line_no == 1
        assert excinfo.value.field == "arrival_s"

    def test_ingest_error_is_a_value_error(self, model):
        # Callers may keep catching ValueError for any bad trace input.
        with pytest.raises(ValueError):
            requests_from_lines(["nope"])

    def test_lines_drive_a_live_run(self, model):
        trace = _trace(5, n=12)
        lines = [json.dumps(request_to_state(r)) for r in trace]
        fleet = FleetSimulator(model, n_chips=2)
        batch = fleet.run(trace)
        live = run_live(fleet, requests_from_lines(lines))
        assert live == batch


class TestSupervisor:
    def test_error_propagates_like_batch(self, model):
        # Chip 0 of a 1-chip fleet goes down and never returns: parked
        # requests make both planes raise the same error.
        trace = _trace(7, n=10)
        schedule = FaultSchedule(
            events=(FaultEvent(time_s=0.0, kind="chip_down", chip_id=0),)
        )
        fleet = FleetSimulator(model, n_chips=1)
        with pytest.raises(ValueError, match="never dispatched"):
            fleet.run(trace, faults=schedule)
        with pytest.raises(ValueError, match="never dispatched"):
            fleet.run(trace, faults=schedule, runtime="live")

    def test_supervisor_counts_arrivals(self, model):
        trace = _trace(7, n=10)

        async def session():
            controller = StaticDispatchController(
                FleetSimulator(model, n_chips=2)
            )
            supervisor = SupervisorActor(controller, 2)
            supervisor.start()
            arrivals = [
                (index, trace[index]) for index in sorted_order(trace)
            ]
            supervisor.post(ArrivalBatch(arrivals=tuple(arrivals)))
            supervisor.post(StreamEnded(total=len(arrivals)))
            kind, result = await supervisor.outcome
            await supervisor.stop()
            return kind, supervisor._seen, result

        kind, seen, result = asyncio.run(session())
        assert kind == "done"
        assert seen == 10
        assert len(result.records) == 10


class TestPreviewPurity:
    @pytest.mark.parametrize("kind", ["static", "fault_fleet"])
    def test_preview_does_not_perturb_the_run(self, model, kind):
        trace = _trace(9, n=20)
        faults = None
        if kind == "fault_fleet":
            horizon = max(r.arrival_s for r in trace)
            faults = FaultSchedule(
                events=(
                    FaultEvent(
                        time_s=horizon * 0.4, kind="chip_down", chip_id=0
                    ),
                    FaultEvent(
                        time_s=horizon * 0.8, kind="chip_up", chip_id=0
                    ),
                )
            )
        fleet = FleetSimulator(model, n_chips=2, policy="least_loaded")
        baseline = fleet.run(trace, faults=faults)

        controller = make_controller(fleet, trace, faults=faults)
        assert controller.kind == kind
        order = sorted_order(trace)
        previews = []
        for position, index in enumerate(order):
            controller.on_arrival(index, trace[index])
            if position in (5, 12):
                previews.append(controller.preview_records())
        controller.finish_events()
        from repro.serving.dispatch import run_jobs_inline

        result = controller.collect(
            run_jobs_inline(controller.final_jobs())
        )
        assert result == baseline
        # Previews are monotone snapshots: non-decreasing record counts.
        assert len(previews[0]) <= len(previews[1]) <= len(result.records)


class TestRuntimePlumbing:
    def test_invalid_runtime_rejected(self, model):
        trace = _trace(11, n=6)
        fleet = FleetSimulator(model, n_chips=2)
        with pytest.raises(ValueError, match="runtime"):
            fleet.run(trace, runtime="warp")

    def test_empty_trace_rejected(self, model):
        fleet = FleetSimulator(model, n_chips=2)
        with pytest.raises(ValueError, match="empty"):
            run_live(fleet, [])

    def test_cli_runtime_flag(self, capsys):
        from repro.scenarios.__main__ import main

        assert main(["run", "chat-poisson", "--json"]) == 0
        batch = capsys.readouterr().out
        assert (
            main(["run", "chat-poisson", "--json", "--runtime", "live"])
            == 0
        )
        live = capsys.readouterr().out
        assert live == batch
