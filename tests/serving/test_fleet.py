"""Fleet-simulation tests: dispatch policies and merged reporting."""

import pytest

from repro.models.mllm import get_mllm
from repro.serving import (
    ContinuousBatchingSimulator,
    FleetSimulator,
    PoissonArrivals,
    RequestSampler,
    ServingRequest,
    build_trace,
)

N_REQUESTS = 48


@pytest.fixture(scope="module")
def model():
    return get_mllm("sphinx-tiny")


@pytest.fixture(scope="module")
def trace(model):
    return build_trace(
        PoissonArrivals(6.0, seed=2).generate(N_REQUESTS),
        RequestSampler(
            seed=2, output_token_choices=(8, 16), output_token_weights=(0.6, 0.4)
        ).sample(N_REQUESTS),
    )


class TestDispatch:
    def test_round_robin_cycles_chips(self, model, trace):
        fleet = FleetSimulator(model, n_chips=3, policy="round_robin")
        assignments = fleet.assign(trace)
        expected = [index % 3 for index in range(len(trace))]
        assert assignments == expected

    def test_least_loaded_uses_every_chip(self, model, trace):
        fleet = FleetSimulator(model, n_chips=4, policy="least_loaded")
        assignments = fleet.assign(trace)
        assert set(assignments) == {0, 1, 2, 3}

    def test_duplicate_request_ids_still_dispatch_everywhere(self, model, trace):
        duplicated = [
            ServingRequest(request_id=0, arrival_s=r.arrival_s, request=r.request)
            for r in trace[:4]
        ]
        fleet = FleetSimulator(model, n_chips=2, policy="round_robin")
        assignments = fleet.assign(duplicated)
        assert sorted(assignments) == [0, 0, 1, 1]

    def test_rejects_unknown_policy(self, model):
        with pytest.raises(ValueError):
            FleetSimulator(model, policy="random")
        with pytest.raises(ValueError):
            FleetSimulator(model, n_chips=0)


class TestFleetRun:
    def test_every_request_served_once(self, model, trace):
        fleet = FleetSimulator(model, n_chips=3, policy="round_robin")
        result = fleet.run(trace)
        assert len(result.records) == len(trace)
        assert sorted(r.request_id for r in result.records) == list(
            range(len(trace))
        )
        assert sum(result.requests_per_chip) == len(trace)

    def test_fleet_reduces_latency_under_load(self, model, trace):
        single = ContinuousBatchingSimulator(model=model, max_batch_size=8).run(trace)
        fleet = FleetSimulator(
            model, n_chips=4, policy="least_loaded", max_batch_size=8
        ).run(trace)
        assert fleet.report.latency.mean < single.report.latency.mean
        assert fleet.report.ttft.p95 < single.report.ttft.p95

    def test_idle_chip_reports_do_not_crash(self, model, trace):
        # More chips than requests in the first arrivals: with only two
        # requests, chips 2 and 3 of a round-robin fleet stay idle.
        fleet = FleetSimulator(model, n_chips=4, policy="round_robin")
        result = fleet.run(trace[:2])
        reports = [chip_result.report for chip_result in result.per_chip]
        assert [report.n_requests for report in reports] == [1, 1, 0, 0]
        assert reports[2].tokens_per_second == 0.0
        assert reports[2].latency.p99 == 0.0

    def test_single_chip_fleet_matches_direct_simulation(self, model, trace):
        direct = ContinuousBatchingSimulator(model=model, max_batch_size=8).run(trace)
        fleet = FleetSimulator(
            model, n_chips=1, policy="round_robin", max_batch_size=8
        ).run(trace)
        assert fleet.records == direct.records
