"""Fleet-simulation tests: dispatch policies and merged reporting."""

import pytest

from repro.models.mllm import get_mllm
from repro.serving import (
    ContinuousBatchingSimulator,
    FleetSimulator,
    PoissonArrivals,
    RequestSampler,
    ServingRequest,
    build_trace,
)

N_REQUESTS = 48


@pytest.fixture(scope="module")
def model():
    return get_mllm("sphinx-tiny")


@pytest.fixture(scope="module")
def trace(model):
    return build_trace(
        PoissonArrivals(6.0, seed=2).generate(N_REQUESTS),
        RequestSampler(
            seed=2, output_token_choices=(8, 16), output_token_weights=(0.6, 0.4)
        ).sample(N_REQUESTS),
    )


class TestDispatch:
    def test_round_robin_cycles_chips(self, model, trace):
        fleet = FleetSimulator(model, n_chips=3, policy="round_robin")
        assignments = fleet.assign(trace)
        expected = [index % 3 for index in range(len(trace))]
        assert assignments == expected

    def test_least_loaded_uses_every_chip(self, model, trace):
        fleet = FleetSimulator(model, n_chips=4, policy="least_loaded")
        assignments = fleet.assign(trace)
        assert set(assignments) == {0, 1, 2, 3}

    def test_duplicate_request_ids_still_dispatch_everywhere(self, model, trace):
        duplicated = [
            ServingRequest(request_id=0, arrival_s=r.arrival_s, request=r.request)
            for r in trace[:4]
        ]
        fleet = FleetSimulator(model, n_chips=2, policy="round_robin")
        assignments = fleet.assign(duplicated)
        assert sorted(assignments) == [0, 0, 1, 1]

    def test_rejects_unknown_policy(self, model):
        with pytest.raises(ValueError):
            FleetSimulator(model, policy="random")
        with pytest.raises(ValueError):
            FleetSimulator(model, n_chips=0)


class TestFleetRun:
    def test_every_request_served_once(self, model, trace):
        fleet = FleetSimulator(model, n_chips=3, policy="round_robin")
        result = fleet.run(trace)
        assert len(result.records) == len(trace)
        assert sorted(r.request_id for r in result.records) == list(
            range(len(trace))
        )
        assert sum(result.requests_per_chip) == len(trace)

    def test_fleet_reduces_latency_under_load(self, model, trace):
        single = ContinuousBatchingSimulator(model=model, max_batch_size=8).run(trace)
        fleet = FleetSimulator(
            model, n_chips=4, policy="least_loaded", max_batch_size=8
        ).run(trace)
        assert fleet.report.latency.mean < single.report.latency.mean
        assert fleet.report.ttft.p95 < single.report.ttft.p95

    def test_idle_chip_reports_do_not_crash(self, model, trace):
        # More chips than requests in the first arrivals: with only two
        # requests, chips 2 and 3 of a round-robin fleet stay idle.
        fleet = FleetSimulator(model, n_chips=4, policy="round_robin")
        result = fleet.run(trace[:2])
        reports = [chip_result.report for chip_result in result.per_chip]
        assert [report.n_requests for report in reports] == [1, 1, 0, 0]
        assert reports[2].tokens_per_second == 0.0
        assert reports[2].latency.p99 == 0.0

    def test_single_chip_fleet_matches_direct_simulation(self, model, trace):
        direct = ContinuousBatchingSimulator(model=model, max_batch_size=8).run(trace)
        fleet = FleetSimulator(
            model, n_chips=1, policy="round_robin", max_batch_size=8
        ).run(trace)
        assert fleet.records == direct.records


class TestEstimateMemo:
    def test_memoized_estimates_keep_assignments_trace_identical(
        self, model, trace
    ):
        # A fleet whose estimate memo is disabled (every probe recomputed)
        # must dispatch exactly like the memoized fleet.
        memoized = FleetSimulator(model, n_chips=3, policy="least_loaded")
        uncached = FleetSimulator(model, n_chips=3, policy="least_loaded")

        def recompute(chip, request):
            prefill = chip.cc_latency_s(request)
            context = uncached.model.prompt_tokens(request)
            per_token = chip.cost_model.step_latency_s([context])
            return prefill + per_token * request.output_tokens

        uncached._estimate_cost_s = recompute
        assert memoized.assign(trace) == uncached.assign(trace)
        # The memo actually engaged, and only with (chip, shape) keys —
        # the heap probes one chip per request, so at most chips x shapes.
        shapes = {
            (r.request.images, r.request.prompt_text_tokens,
             r.request.output_tokens)
            for r in trace
        }
        assert 0 < len(memoized._estimate_cache) <= 3 * len(shapes)
        assert all(
            (images, prompt, out) in shapes
            for (_, images, prompt, out) in memoized._estimate_cache
        )

    def test_cached_estimate_equals_fresh_computation(self, model, trace):
        fleet = FleetSimulator(model, n_chips=2, policy="least_loaded")
        fleet.assign(trace)
        chip = fleet.chips[0]
        for request in {r.request for r in trace}:
            cached = fleet._estimate_cost_s(chip, request)
            fresh = (
                chip.cc_latency_s(request)
                + chip.cost_model.step_latency_s(
                    [model.prompt_tokens(request)]
                )
                * request.output_tokens
            )
            assert cached == fresh


class TestParallelChips:
    def test_process_fanout_matches_serial_run(self, model, trace):
        serial = FleetSimulator(
            model, n_chips=3, policy="least_loaded", max_batch_size=8
        ).run(trace)
        parallel = FleetSimulator(
            model, n_chips=3, policy="least_loaded", max_batch_size=8,
            processes=3,
        ).run(trace)
        assert parallel.assignments == serial.assignments
        assert parallel.records == serial.records
        for chip_parallel, chip_serial in zip(
            parallel.per_chip, serial.per_chip
        ):
            assert chip_parallel.records == chip_serial.records
            assert chip_parallel.peak_batch_size == chip_serial.peak_batch_size
            assert chip_parallel.decode_steps == chip_serial.decode_steps

    def test_single_process_stays_serial(self, model, trace):
        fleet = FleetSimulator(model, n_chips=2, processes=1)
        assert fleet.run(trace).report.n_requests == len(trace)

    def test_shard_worker_matches_in_process_chip(self, model, trace):
        # The picklable worker, called in-process, reproduces the chip's
        # run bit for bit (the fork pool calls exactly this function).
        from repro.serving import simulate_chip_shard

        chip = ContinuousBatchingSimulator(
            model=model, max_batch_size=8, chip_id=1
        )
        direct = chip.run(list(trace))
        rebuilt = simulate_chip_shard(
            system=chip.simulator.system,
            model=model,
            chip_id=1,
            max_batch_size=8,
            cc_bandwidth_fraction=chip.cc_bandwidth_fraction,
            context_bucket=chip.cost_model.context_bucket,
            engine="macro",
            shard=list(trace),
            cc_latencies=chip.cc_latencies(),
            bucket_costs=chip.cost_model.bucket_costs(),
            step_cache=chip.cost_model.step_cache(),
        )
        assert rebuilt.records == direct.records
        assert rebuilt.peak_batch_size == direct.peak_batch_size
        assert rebuilt.decode_steps == direct.decode_steps

    def test_custom_simulator_factories_fall_back_to_serial(self, model, trace):
        from repro.core.simulator import PerformanceSimulator

        class TracingSimulator(PerformanceSimulator):
            pass

        fleet = FleetSimulator(
            model, n_chips=2, processes=2,
            simulator_factory=TracingSimulator,
        )
        assert not fleet._parallelizable(fleet.chips)
        plain = FleetSimulator(model, n_chips=2, processes=2)
        result = fleet.run(trace)
        assert result.records == plain.run(trace).records

    def test_rejects_bad_process_count(self, model):
        with pytest.raises(ValueError):
            FleetSimulator(model, processes=0)
