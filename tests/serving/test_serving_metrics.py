"""Serving-metric tests: percentile math and report aggregation."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.mllm import InferenceRequest
from repro.serving import (
    PercentileStats,
    RequestRecord,
    percentile,
    summarize,
    summarize_scalar,
)


def make_record(request_id, arrival, prefill_start, prefill_end, first, finish,
                output_tokens=4):
    return RequestRecord(
        request_id=request_id,
        request=InferenceRequest(
            images=1, prompt_text_tokens=16, output_tokens=output_tokens
        ),
        arrival_s=arrival,
        prefill_start_s=prefill_start,
        prefill_end_s=prefill_end,
        first_token_s=first,
        finish_s=finish,
    )


class TestPercentile:
    def test_linear_interpolation_hand_computed(self):
        # rank = (n - 1) * q / 100 with linear interpolation between ranks.
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(values, 25) == 20.0
        assert percentile(values, 50) == 30.0
        assert percentile(values, 90) == pytest.approx(46.0)
        assert percentile([1.0, 2.0, 3.0, 4.0], 95) == pytest.approx(3.85)

    def test_accepts_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_small_inputs(self):
        assert percentile([5.0], 99) == 5.0
        assert percentile([1.0, 3.0], 50) == 2.0

    def test_endpoints(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_accepts_numpy_arrays(self):
        values = np.array([1.0, 2.0, 3.0])
        assert percentile(values, 50) == 2.0
        stats = PercentileStats.from_values(values)
        assert stats.mean == 2.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile(np.array([]), 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestPercentileStats:
    def test_from_values(self):
        stats = PercentileStats.from_values([1.0, 2.0, 3.0, 4.0])
        assert stats.p50 == 2.5
        assert stats.mean == 2.5
        assert stats.max == 4.0


class TestRequestRecord:
    def test_derived_quantities(self):
        record = make_record(0, 1.0, 2.0, 3.0, 3.5, 6.0)
        assert record.queue_wait_s == 1.0
        assert record.ttft_s == 2.5
        assert record.latency_s == 5.0
        assert record.decode_s == 3.0

    def test_rejects_non_monotonic_timestamps(self):
        with pytest.raises(ValueError):
            make_record(0, 2.0, 1.0, 3.0, 3.5, 6.0)
        with pytest.raises(ValueError):
            make_record(0, 1.0, 2.0, 3.0, 6.5, 6.0)


class TestSummarize:
    def test_aggregates_throughput_and_latency(self):
        records = [
            make_record(0, 0.0, 0.0, 1.0, 1.5, 2.0, output_tokens=10),
            make_record(1, 1.0, 1.0, 2.0, 2.5, 4.0, output_tokens=30),
        ]
        report = summarize(records)
        assert report.n_requests == 2
        assert report.makespan_s == 4.0
        assert report.total_output_tokens == 40
        assert report.requests_per_second == pytest.approx(0.5)
        assert report.tokens_per_second == pytest.approx(10.0)
        assert report.latency.p50 == pytest.approx(2.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize_scalar([])


def random_records(seed, n):
    rng = random.Random(seed)
    records = []
    for request_id in range(n):
        arrival = rng.uniform(0.0, 50.0)
        start = arrival + rng.choice([0.0, rng.uniform(0.0, 2.0)])
        end = start + rng.uniform(1e-6, 3.0)
        first = end + rng.uniform(1e-6, 1.0)
        finish = first + rng.uniform(0.0, 20.0)
        records.append(
            make_record(
                request_id, arrival, start, end, first, finish,
                output_tokens=rng.randint(1, 512),
            )
        )
    return records


class TestVectorizedIdentity:
    """The numpy ``summarize`` is value-identical to the scalar fold."""

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=40, deadline=None)
    def test_summarize_equals_scalar_fold(self, seed, n):
        records = random_records(seed, n)
        assert summarize(records) == summarize_scalar(records)

    def test_from_array_equals_from_values(self):
        rng = random.Random(13)
        values = [rng.uniform(0.0, 100.0) for _ in range(257)]
        assert PercentileStats.from_array(
            np.asarray(values, dtype=float)
        ) == PercentileStats.from_values(values)

    def test_from_array_on_zero_and_single_values(self):
        assert PercentileStats.from_array(
            np.array([0.0])
        ) == PercentileStats.from_values([0.0])
        with pytest.raises(ValueError):
            PercentileStats.from_array(np.array([]))


class TestReportEdges:
    """The report helpers behave at the empty and zero boundaries."""

    def test_from_values_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            PercentileStats.from_values([])

    def test_empty_report_rates_are_zero(self):
        from repro.serving import empty_report

        report = empty_report()
        assert report.requests_per_second == 0.0
        assert report.tokens_per_second == 0.0

    def test_format_report_renders_every_quantity(self):
        from repro.serving import format_report

        records = [
            make_record(0, 0.0, 0.0, 0.1, 0.2, 1.0),
            make_record(1, 0.5, 0.6, 0.7, 0.8, 2.0),
        ]
        text = format_report(summarize(records), title="Edge check")
        assert text.splitlines()[0] == "Edge check"
        assert "requests completed : 2" in text
        for label in ("latency", "TTFT", "queue wait", "throughput"):
            assert label in text
