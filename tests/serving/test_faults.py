"""Fault-injection unit and property tests.

Covers the schedule/event validation surface, the degraded-chip
construction, and the two properties the chaos harness leans on:

* **conservation** — across any valid fault schedule, no request is lost
  or duplicated: the merged records carry exactly the trace's ids, and
  every record was served by a chip that was alive at its service time;
* **recovery consistency** — the dent/time-to-recover metrics are a pure
  function of the raw records, re-derivable by a straight-line
  recomputation in this file.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.mllm import get_mllm
from repro.serving import (
    BurstyArrivals,
    FleetSimulator,
    PoissonArrivals,
    RequestSampler,
    build_trace,
)
from repro.serving.metrics import percentile
from repro.serving.faults import (
    RECOVERY_TOLERANCE,
    RECOVERY_WINDOW,
    FaultEvent,
    FaultSchedule,
    _degraded_chip,
    fault_recovery,
    normalize_priorities,
    run_fleet_with_faults,
)

N_REQUESTS = 60


@pytest.fixture(scope="module")
def model():
    return get_mllm("sphinx-tiny")


@pytest.fixture(scope="module")
def trace(model):
    return build_trace(
        PoissonArrivals(6.0, seed=5).generate(N_REQUESTS),
        RequestSampler(
            seed=5, output_token_choices=(8, 16), output_token_weights=(0.6, 0.4)
        ).sample(N_REQUESTS),
    )


class TestEventValidation:
    def test_rejects_unknown_kind_and_bad_coordinates(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(time_s=1.0, kind="meteor_strike", chip_id=0)
        with pytest.raises(ValueError, match="time_s"):
            FaultEvent(time_s=-0.1, kind="chip_down", chip_id=0)
        with pytest.raises(ValueError, match="chip_id"):
            FaultEvent(time_s=1.0, kind="chip_down", chip_id=-1)

    def test_factor_only_applies_to_dram_degrade(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(time_s=1.0, kind="chip_down", chip_id=0, factor=0.5)
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(time_s=1.0, kind="dram_degrade", chip_id=0, factor=0.0)
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(time_s=1.0, kind="dram_degrade", chip_id=0, factor=1.5)

    def test_round_trips_through_dict(self):
        event = FaultEvent(time_s=2.5, kind="dram_degrade", chip_id=1, factor=0.5)
        assert FaultEvent.from_dict(event.to_dict()) == event
        # chip_down omits the unused factor from its serialized form.
        down = FaultEvent(time_s=1.0, kind="chip_down", chip_id=0)
        assert "factor" not in down.to_dict()
        assert FaultEvent.from_dict(down.to_dict()) == down


class TestScheduleValidation:
    def test_rejects_bad_policy_and_unsorted_events(self):
        with pytest.raises(ValueError, match="drain_policy"):
            FaultSchedule(drain_policy="panic")
        with pytest.raises(ValueError, match="sorted"):
            FaultSchedule(
                events=(
                    FaultEvent(time_s=2.0, kind="chip_down", chip_id=0),
                    FaultEvent(time_s=1.0, kind="chip_up", chip_id=0),
                )
            )

    def test_rejects_inconsistent_alive_state(self):
        down = FaultEvent(time_s=1.0, kind="chip_down", chip_id=0)
        with pytest.raises(ValueError, match="down twice"):
            FaultSchedule(
                events=(down, FaultEvent(time_s=2.0, kind="chip_down", chip_id=0))
            )
        with pytest.raises(ValueError, match="without being down"):
            FaultSchedule(events=(FaultEvent(time_s=1.0, kind="chip_up", chip_id=0),))
        with pytest.raises(ValueError, match="degrade while down"):
            FaultSchedule(
                events=(
                    down,
                    FaultEvent(
                        time_s=2.0, kind="dram_degrade", chip_id=0, factor=0.5
                    ),
                )
            )

    def test_round_trips_through_dict(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent(time_s=1.0, kind="chip_down", chip_id=0),
                FaultEvent(
                    time_s=1.5, kind="dram_degrade", chip_id=1, factor=0.25
                ),
                FaultEvent(time_s=3.0, kind="chip_up", chip_id=0),
            ),
            drain_policy="abort",
        )
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    def test_targets_must_fit_the_fleet(self, model, trace):
        fleet = FleetSimulator(model, n_chips=2, policy="round_robin")
        schedule = FaultSchedule(
            events=(FaultEvent(time_s=1.0, kind="chip_down", chip_id=5),)
        )
        with pytest.raises(ValueError, match="chip"):
            run_fleet_with_faults(fleet, list(trace), schedule)


class TestDegradedChip:
    def test_scales_dram_and_seeds_healthy_bucket_costs(self, model):
        base = FleetSimulator(model, n_chips=1).chips[0]
        degraded = _degraded_chip(base, 0.5)
        healthy_bw = base.simulator.system.chip.dram.peak_bandwidth_bytes_per_s
        degraded_bw = degraded.simulator.system.chip.dram.peak_bandwidth_bytes_per_s
        assert degraded_bw == pytest.approx(healthy_bw * 0.5)
        # Decode bucket-cost triples carry no bandwidth term: they seed
        # verbatim from the healthy chip (the delta-warm idiom).
        assert degraded.cost_model.bucket_costs() == base.cost_model.bucket_costs()

    def test_factor_one_is_the_chip_itself(self, model):
        base = FleetSimulator(model, n_chips=1).chips[0]
        assert _degraded_chip(base, 1.0) is base


class TestNormalizePriorities:
    def test_uniform_priorities_normalize_to_exactly_one(self):
        assert normalize_priorities((3.0, 3.0, 3.0), 3) == [1.0, 1.0, 1.0]
        assert normalize_priorities(None, 3) is None

    def test_weights_scale_against_the_maximum(self):
        assert normalize_priorities((1.0, 2.0, 4.0), 3) == [0.25, 0.5, 1.0]

    def test_validates_length_and_positivity(self):
        with pytest.raises(ValueError, match="entries"):
            normalize_priorities((1.0,), 2)
        with pytest.raises(ValueError, match="positive"):
            normalize_priorities((1.0, 0.0), 2)


def _random_schedule(rng, *, n_chips, span):
    """A valid random schedule: one outage plus one degrade."""
    victim, slowpoke = rng.sample(range(n_chips), 2)
    down = round(rng.uniform(0.2, 0.6) * span, 6)
    up = round(down + rng.uniform(0.1, 0.4) * span, 6)
    degrade = round(rng.uniform(0.1, 0.8) * span, 6)
    events = sorted(
        [
            FaultEvent(time_s=down, kind="chip_down", chip_id=victim),
            FaultEvent(time_s=up, kind="chip_up", chip_id=victim),
            FaultEvent(
                time_s=degrade,
                kind="dram_degrade",
                chip_id=slowpoke,
                factor=round(rng.uniform(0.3, 0.9), 3),
            ),
        ],
        key=lambda e: (e.time_s, e.chip_id, e.kind),
    )
    policy = rng.choice(("drain", "abort"))
    return FaultSchedule(events=tuple(events), drain_policy=policy)


def _down_intervals(schedule, chip_id):
    """[start, end) outage windows of ``chip_id`` (open-ended if final)."""
    intervals, start = [], None
    for event in schedule.events:
        if event.chip_id != chip_id:
            continue
        if event.kind == "chip_down":
            start = event.time_s
        elif event.kind == "chip_up" and start is not None:
            intervals.append((start, event.time_s))
            start = None
    if start is not None:
        intervals.append((start, float("inf")))
    return intervals


class TestConservation:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_no_request_lost_or_duplicated(self, model, trace, seed):
        import random

        rng = random.Random(seed)
        schedule = _random_schedule(rng, n_chips=3, span=trace[-1].arrival_s)
        policy = rng.choice(("round_robin", "least_loaded"))
        fleet = FleetSimulator(model, n_chips=3, policy=policy, max_batch_size=8)
        result = run_fleet_with_faults(fleet, list(trace), schedule)
        assert sorted(r.request_id for r in result.records) == list(
            range(len(trace))
        )
        assert len(result.assignments) == len(trace)
        assert sum(result.requests_per_chip) == len(trace)
        # Re-dispatched and aborted requests still ended in the records.
        served = {r.request_id for r in result.records}
        assert set(result.redispatched_ids) <= served
        assert set(result.aborted_ids) <= served
        if schedule.drain_policy == "drain":
            assert result.aborted_ids == ()

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_every_record_served_by_a_living_chip(self, model, trace, seed):
        import random

        rng = random.Random(seed)
        schedule = _random_schedule(rng, n_chips=3, span=trace[-1].arrival_s)
        fleet = FleetSimulator(
            model, n_chips=3, policy="least_loaded", max_batch_size=8
        )
        result = run_fleet_with_faults(fleet, list(trace), schedule)
        chip_of = dict(zip((r.request_id for r in trace), result.assignments))
        for record in result.records:
            outages = _down_intervals(schedule, chip_of[record.request_id])
            for start, end in outages:
                # Prefill never *starts* inside an outage of its chip;
                # under "drain" in-flight work may finish past `start`.
                assert not (start <= record.prefill_start_s < end), (
                    record.request_id,
                    record.prefill_start_s,
                    (start, end),
                )


class TestRecoveryMetrics:
    def test_metrics_rederive_from_the_raw_records(self, model):
        trace = build_trace(
            BurstyArrivals(5.0, burst_multiplier=4.0, seed=9).generate(120),
            RequestSampler(seed=9).sample(120),
        )
        span = trace[-1].arrival_s
        down = FaultEvent(time_s=round(0.3 * span, 6), kind="chip_down", chip_id=0)
        up = FaultEvent(time_s=round(0.5 * span, 6), kind="chip_up", chip_id=0)
        schedule = FaultSchedule(events=(down, up))
        fleet = FleetSimulator(
            model, n_chips=2, policy="least_loaded", max_batch_size=8
        )
        result = run_fleet_with_faults(fleet, list(trace), schedule)
        (metrics,) = fault_recovery(result.records, schedule.events)
        assert metrics.event == down  # chip_up is restorative, not measured

        ordered = sorted(result.records, key=lambda r: (r.arrival_s, r.request_id))
        pre = [r.ttft_s for r in ordered if r.arrival_s < down.time_s]
        post = [r for r in ordered if r.arrival_s >= down.time_s]
        baseline = percentile(pre, 99)
        assert metrics.baseline_p99_ttft_s == baseline
        dent, recover = 0.0, None
        for start in range(0, len(post), RECOVERY_WINDOW):
            chunk = post[start : start + RECOVERY_WINDOW]
            p99 = percentile([r.ttft_s for r in chunk], 99)
            dent = max(dent, p99 - baseline)
            if recover is None and p99 <= baseline * RECOVERY_TOLERANCE:
                recover = chunk[-1].arrival_s - down.time_s
        assert metrics.dent_depth_s == dent
        assert metrics.time_to_recover_s == recover

    def test_faultless_records_measure_no_dent(self, model, trace):
        fleet = FleetSimulator(model, n_chips=2, max_batch_size=8)
        result = fleet.run(list(trace))
        event = FaultEvent(
            time_s=trace[-1].arrival_s + 1.0, kind="chip_down", chip_id=0
        )
        (metrics,) = fault_recovery(result.records, (event,))
        assert metrics.dent_depth_s == 0.0
        assert metrics.time_to_recover_s is None  # nothing arrived after it


class TestTotalOutage:
    def test_parked_requests_flush_when_a_chip_returns(self, model, trace):
        span = trace[-1].arrival_s
        events = (
            FaultEvent(time_s=round(0.2 * span, 6), kind="chip_down", chip_id=0),
            FaultEvent(time_s=round(0.25 * span, 6), kind="chip_down", chip_id=1),
            FaultEvent(time_s=round(0.6 * span, 6), kind="chip_up", chip_id=0),
            FaultEvent(time_s=round(0.7 * span, 6), kind="chip_up", chip_id=1),
        )
        fleet = FleetSimulator(model, n_chips=2, max_batch_size=8)
        result = run_fleet_with_faults(fleet, list(trace), FaultSchedule(events))
        assert sorted(r.request_id for r in result.records) == list(
            range(len(trace))
        )
        # Requests arriving during the blackout waited for the chip_up.
        up = events[2].time_s
        blackout = [
            r
            for r in result.records
            if events[1].time_s <= r.arrival_s < up
        ]
        assert blackout
        assert all(r.prefill_start_s >= up for r in blackout)

    def test_unserved_requests_raise_instead_of_vanishing(self, model, trace):
        span = trace[-1].arrival_s
        events = (
            FaultEvent(time_s=round(0.2 * span, 6), kind="chip_down", chip_id=0),
            FaultEvent(time_s=round(0.3 * span, 6), kind="chip_down", chip_id=1),
        )
        fleet = FleetSimulator(model, n_chips=2, max_batch_size=8)
        with pytest.raises(ValueError, match="never dispatched"):
            run_fleet_with_faults(fleet, list(trace), FaultSchedule(events))

    def test_empty_trace_is_rejected(self, model):
        fleet = FleetSimulator(model, n_chips=2)
        with pytest.raises(ValueError, match="empty"):
            run_fleet_with_faults(fleet, [], FaultSchedule())

    def test_recovery_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            fault_recovery((), (), window=0)


class TestAutoscaleUnderFaults:
    def _config(self, **overrides):
        from repro.serving import AutoscalerConfig

        defaults = dict(
            target_p99_ttft_s=1.0,
            min_chips=1,
            max_chips=3,
            window=16,
            min_observations=4,
            cooldown_s=0.5,
            max_queue_depth=8,
        )
        defaults.update(overrides)
        return AutoscalerConfig(**defaults)

    def _schedule(self, span):
        return FaultSchedule(
            events=(
                FaultEvent(
                    time_s=round(0.4 * span, 6), kind="chip_down", chip_id=0
                ),
                FaultEvent(
                    time_s=round(0.6 * span, 6), kind="chip_up", chip_id=0
                ),
            )
        )

    def test_scaling_continues_through_the_outage(self, model):
        from repro.serving import AutoscalingFleetSimulator, BurstyArrivals

        trace = build_trace(
            BurstyArrivals(6.0, burst_multiplier=6.0, seed=13).generate(150),
            RequestSampler(seed=13).sample(150),
        )
        fleet = AutoscalingFleetSimulator(
            model, autoscaler=self._config(), max_batch_size=8
        )
        result = fleet.run(trace, faults=self._schedule(trace[-1].arrival_s))
        assert result.n_scale_ups >= 1
        assert len(result.records) + len(result.rejected_ids) == len(trace)

    def test_reject_admission_sheds_load_during_the_outage(self, model):
        from repro.serving import AutoscalingFleetSimulator, BurstyArrivals

        trace = build_trace(
            BurstyArrivals(8.0, burst_multiplier=6.0, seed=13).generate(150),
            RequestSampler(seed=13).sample(150),
        )
        fleet = AutoscalingFleetSimulator(
            model,
            autoscaler=self._config(
                max_chips=2, max_queue_depth=2, admission="reject"
            ),
            max_batch_size=8,
        )
        result = fleet.run(trace, faults=self._schedule(trace[-1].arrival_s))
        assert result.rejected_ids
        served = {r.request_id for r in result.records}
        assert served.isdisjoint(result.rejected_ids)
        assert len(served) + len(result.rejected_ids) == len(trace)
