"""Checkpoint/restore property suite: pause anywhere, resume exactly.

The hypothesis properties pause a live scenario run at a randomized
arrival boundary, restore — in-process, chained through a second pause,
or in a **fresh subprocess with a different ``PYTHONHASHSEED``** — and
assert the final report is byte-identical to the uninterrupted batch
run's canonical JSON.  The subprocess leg is the strong claim: nothing
in a checkpoint depends on interpreter state, hash randomization or
memo caches; the JSON file alone reconstructs the computation.

Deterministic tests cover the checkpoint format itself (JSON round
trip, version gate) and the guard rails (trace digest mismatch,
controller kind mismatch, scenario-less resume).
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.mllm import get_mllm
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import run_scenario
from repro.serving import FleetSimulator, PoissonArrivals, RequestSampler, build_trace
from repro.serving.faults import FaultEvent, FaultSchedule
from repro.serving.runtime import (
    Checkpoint,
    resume_live,
    resume_scenario,
    run_live,
    run_scenario_live,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: One scenario per controller kind, all cheap on the macro engine.
POOL = (
    "chat-poisson",  # static
    "edge-kiosk-overload",  # autoscale
    "chat-chipfail",  # fault_fleet
    "tenant-tiers",  # fault_autoscale
)

_BATCH_CACHE = {}


def batch_json(name):
    if name not in _BATCH_CACHE:
        _BATCH_CACHE[name] = run_scenario(get_scenario(name)).to_json()
    return _BATCH_CACHE[name]


def boundary(name, fraction):
    n = get_scenario(name).n_requests
    return max(1, min(n - 1, int(n * fraction)))


class TestScenarioProperties:
    @given(
        name=st.sampled_from(POOL),
        fraction=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=12, deadline=None)
    def test_pause_resume_equals_uninterrupted(self, name, fraction):
        spec = get_scenario(name)
        checkpoint = run_scenario_live(
            spec, pause_after=boundary(name, fraction)
        )
        assert isinstance(checkpoint, Checkpoint)
        # Force the full JSON round trip before resuming.
        reloaded = Checkpoint.from_json(checkpoint.to_json())
        assert reloaded == checkpoint
        report = resume_scenario(reloaded)
        assert report.to_json() == batch_json(name)

    @given(
        name=st.sampled_from(POOL),
        first=st.floats(min_value=0.1, max_value=0.45),
        second=st.floats(min_value=0.55, max_value=0.9),
    )
    @settings(max_examples=6, deadline=None)
    def test_chained_pauses(self, name, first, second):
        spec = get_scenario(name)
        k1 = boundary(name, first)
        k2 = max(k1 + 1, boundary(name, second))
        middle = run_scenario_live(spec, pause_after=k1)
        second_checkpoint = resume_scenario(middle, pause_after=k2)
        assert isinstance(second_checkpoint, Checkpoint)
        assert second_checkpoint.cursor == k2
        report = resume_scenario(second_checkpoint)
        assert report.to_json() == batch_json(name)

    @given(
        name=st.sampled_from(POOL),
        fraction=st.floats(min_value=0.1, max_value=0.9),
        hashseed=st.integers(min_value=1, max_value=4294967295),
    )
    @settings(max_examples=4, deadline=None)
    def test_subprocess_resume_different_hashseed(
        self, name, fraction, hashseed
    ):
        checkpoint = run_scenario_live(
            get_scenario(name), pause_after=boundary(name, fraction)
        )
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "checkpoint.json"
            checkpoint.save(path)
            script = (
                "import sys\n"
                "from repro.serving.runtime import Checkpoint, "
                "resume_scenario\n"
                f"report = resume_scenario(Checkpoint.load({str(path)!r}))\n"
                "sys.stdout.write(report.to_json())\n"
            )
            env = dict(os.environ)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            env["PYTHONHASHSEED"] = str(hashseed)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=REPO_ROOT,
                check=False,
            )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout == batch_json(name)


class TestCheckpointFormat:
    def test_scenario_checkpoint_is_self_contained(self):
        spec = get_scenario("chat-poisson")
        checkpoint = run_scenario_live(spec, pause_after=10)
        assert checkpoint.scenario == spec.to_dict()
        assert checkpoint.engine == "macro"
        assert checkpoint.cursor == 10
        data = json.loads(checkpoint.to_json())
        assert data["version"] == 1
        assert Checkpoint.from_dict(data) == checkpoint

    def test_unsupported_version_rejected(self):
        checkpoint = run_scenario_live(
            get_scenario("chat-poisson"), pause_after=5
        )
        data = checkpoint.to_dict()
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            Checkpoint.from_dict(data)

    def test_pause_at_stream_end_resumes_cleanly(self):
        spec = get_scenario("chat-poisson")
        checkpoint = run_scenario_live(spec, pause_after=spec.n_requests)
        assert checkpoint.cursor == spec.n_requests
        report = resume_scenario(checkpoint)
        assert report.to_json() == batch_json("chat-poisson")


class TestFleetLevelGuards:
    @pytest.fixture(scope="class")
    def model(self):
        return get_mllm("sphinx-tiny")

    def _trace(self, seed, n=30):
        return build_trace(
            PoissonArrivals(6.0, seed=seed).generate(n),
            RequestSampler(seed=seed).sample(n),
        )

    def test_fleet_pause_resume(self, model):
        trace = self._trace(7)
        fleet = FleetSimulator(model, n_chips=2)
        batch = fleet.run(trace)
        checkpoint = run_live(fleet, trace, pause_after=12)
        assert isinstance(checkpoint, Checkpoint)
        assert resume_live(fleet, trace, checkpoint) == batch

    def test_fault_fleet_pause_mid_era(self, model):
        trace = self._trace(9, n=40)
        horizon = max(request.arrival_s for request in trace)
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    time_s=horizon * 0.3, kind="chip_down", chip_id=0
                ),
                FaultEvent(
                    time_s=horizon * 0.7, kind="chip_up", chip_id=0
                ),
            )
        )
        fleet = FleetSimulator(model, n_chips=2, policy="least_loaded")
        batch = fleet.run(trace, faults=schedule)
        for k in (1, 15, 39):
            checkpoint = run_live(
                fleet, trace, faults=schedule, pause_after=k
            )
            resumed = resume_live(
                fleet, trace, checkpoint, faults=schedule
            )
            assert resumed == batch, f"divergence at boundary {k}"

    def test_digest_mismatch_rejected(self, model):
        trace = self._trace(7)
        fleet = FleetSimulator(model, n_chips=2)
        checkpoint = run_live(fleet, trace, pause_after=5)
        other = self._trace(8)
        with pytest.raises(ValueError, match="different trace"):
            resume_live(fleet, other, checkpoint)

    def test_kind_mismatch_rejected(self, model):
        trace = self._trace(7)
        fleet = FleetSimulator(model, n_chips=2)
        checkpoint = run_live(fleet, trace, pause_after=5)
        with pytest.raises(ValueError, match="controller"):
            resume_live(
                fleet, trace, checkpoint, faults=FaultSchedule()
            )

    def test_scenarioless_checkpoint_needs_resume_live(self, model):
        trace = self._trace(7)
        fleet = FleetSimulator(model, n_chips=2)
        checkpoint = run_live(fleet, trace, pause_after=5)
        with pytest.raises(ValueError, match="scenario"):
            resume_scenario(checkpoint)
