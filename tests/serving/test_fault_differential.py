"""Differential chaos suite: the fault path must hide when unused.

Two families of identity, both asserted with ``==`` on the full record
tuples (no tolerances — the fault path is bit-identical or broken):

* **fault-free identity** — an empty :class:`FaultSchedule` and uniform
  priorities must reproduce the legacy simulation exactly, across every
  engine, both dispatch policies and the autoscaled fleet.  This is what
  lets the fault machinery ship inside the serving engines without
  perturbing a single committed golden.
* **engine equivalence under faults** — step, macro and wave runs of the
  same faulted trace produce identical records, assignments and scaling
  events.  Era splits are computed from engine-independent prefill
  windows, so the equivalence the engines already guarantee per era
  extends to the whole faulted timeline.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.mllm import get_mllm
from repro.serving import (
    AutoscalerConfig,
    AutoscalingFleetSimulator,
    BurstyArrivals,
    FleetSimulator,
    PoissonArrivals,
    RequestSampler,
    build_trace,
)
from repro.serving.faults import FaultEvent, FaultSchedule
from repro.serving.queue import ENGINES

seeds = st.integers(min_value=0, max_value=2**32 - 1)


@pytest.fixture(scope="module")
def model():
    return get_mllm("sphinx-tiny")


def _trace(seed, n=40):
    return build_trace(
        PoissonArrivals(6.0, seed=seed).generate(n),
        RequestSampler(
            seed=seed,
            output_token_choices=(8, 16),
            output_token_weights=(0.6, 0.4),
        ).sample(n),
    )


def _bursty_trace(seed, n=60):
    return build_trace(
        BurstyArrivals(4.0, burst_multiplier=5.0, seed=seed).generate(n),
        RequestSampler(seed=seed).sample(n),
    )


def _config():
    return AutoscalerConfig(
        target_p99_ttft_s=2.0,
        min_chips=1,
        max_chips=3,
        window=16,
        min_observations=4,
        cooldown_s=0.5,
        max_queue_depth=16,
    )


def _schedule(seed, *, n_chips, span):
    rng = random.Random(seed)
    victim, slowpoke = rng.sample(range(n_chips), 2)
    down = round(rng.uniform(0.2, 0.5) * span, 6)
    up = round(down + rng.uniform(0.1, 0.3) * span, 6)
    degrade = round(rng.uniform(0.1, 0.8) * span, 6)
    events = sorted(
        [
            FaultEvent(time_s=down, kind="chip_down", chip_id=victim),
            FaultEvent(time_s=up, kind="chip_up", chip_id=victim),
            FaultEvent(
                time_s=degrade,
                kind="dram_degrade",
                chip_id=slowpoke,
                factor=round(rng.uniform(0.3, 0.9), 3),
            ),
        ],
        key=lambda e: (e.time_s, e.chip_id, e.kind),
    )
    policy = rng.choice(("drain", "abort"))
    return FaultSchedule(events=tuple(events), drain_policy=policy)


class TestFaultFreeIdentity:
    @given(seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_static_fleet_empty_schedule_is_the_legacy_run(self, model, seed):
        trace = _trace(seed)
        rng = random.Random(seed)
        policy = rng.choice(("round_robin", "least_loaded"))
        engine = rng.choice(ENGINES)
        legacy = FleetSimulator(
            model, n_chips=3, policy=policy, max_batch_size=8, engine=engine
        ).run(trace)
        faulted = FleetSimulator(
            model, n_chips=3, policy=policy, max_batch_size=8, engine=engine
        ).run(trace, faults=FaultSchedule())
        assert faulted.records == legacy.records
        assert faulted.assignments == legacy.assignments
        assert faulted.redispatched_ids == ()
        assert faulted.aborted_ids == ()

    @given(seed=seeds)
    @settings(max_examples=6, deadline=None)
    def test_autoscaled_empty_schedule_and_uniform_priorities(self, model, seed):
        trace = _bursty_trace(seed)
        engine = random.Random(seed).choice(ENGINES)

        def run(**kwargs):
            fleet = AutoscalingFleetSimulator(
                model, autoscaler=_config(), max_batch_size=8, engine=engine
            )
            return fleet.run(trace, **kwargs)

        legacy = run()
        for faulted in (
            run(faults=FaultSchedule()),
            run(priorities=[2.0] * len(trace)),
            run(faults=FaultSchedule(), priorities=[2.0] * len(trace)),
        ):
            assert faulted.records == legacy.records
            assert faulted.assignments == legacy.assignments
            assert faulted.rejected_ids == legacy.rejected_ids
            assert faulted.events == legacy.events
            assert faulted.final_chips == legacy.final_chips


class TestEngineEquivalenceUnderFaults:
    @given(seed=seeds)
    @settings(max_examples=6, deadline=None)
    def test_static_fleet_engines_agree(self, model, seed):
        trace = _trace(seed, n=48)
        schedule = _schedule(seed, n_chips=3, span=trace[-1].arrival_s)
        results = {
            engine: FleetSimulator(
                model,
                n_chips=3,
                policy="least_loaded",
                max_batch_size=8,
                engine=engine,
            ).run(trace, faults=schedule)
            for engine in ENGINES
        }
        reference = results["step"]
        for engine in ("macro", "wave"):
            assert results[engine].records == reference.records, engine
            assert results[engine].assignments == reference.assignments, engine
            assert (
                results[engine].redispatched_ids == reference.redispatched_ids
            ), engine
            assert results[engine].aborted_ids == reference.aborted_ids, engine

    @given(seed=seeds)
    @settings(max_examples=4, deadline=None)
    def test_autoscaled_fleet_engines_agree(self, model, seed):
        trace = _bursty_trace(seed, n=48)
        schedule = _schedule(seed, n_chips=3, span=trace[-1].arrival_s)
        results = {
            engine: AutoscalingFleetSimulator(
                model, autoscaler=_config(), max_batch_size=8, engine=engine
            ).run(trace, faults=schedule)
            for engine in ENGINES
        }
        reference = results["step"]
        for engine in ("macro", "wave"):
            assert results[engine].records == reference.records, engine
            assert results[engine].assignments == reference.assignments, engine
            assert results[engine].rejected_ids == reference.rejected_ids, engine
            assert results[engine].events == reference.events, engine
