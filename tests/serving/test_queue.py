"""Continuous-batching queue tests: invariants of the serving engine."""

import pytest

from repro.core.simulator import PerformanceSimulator
from repro.models.mllm import InferenceRequest, get_mllm
from repro.serving import (
    BatchDecodeCostModel,
    ContinuousBatchingSimulator,
    PoissonArrivals,
    RequestSampler,
    ServingRequest,
    build_trace,
)

N_REQUESTS = 60


@pytest.fixture(scope="module")
def model():
    return get_mllm("sphinx-tiny")


@pytest.fixture(scope="module")
def trace(model):
    return build_trace(
        PoissonArrivals(4.0, seed=21).generate(N_REQUESTS),
        RequestSampler(
            seed=21, output_token_choices=(8, 16, 32), output_token_weights=(0.5, 0.3, 0.2)
        ).sample(N_REQUESTS),
    )


@pytest.fixture(scope="module")
def result(model, trace):
    return ContinuousBatchingSimulator(model=model, max_batch_size=8).run(trace)


class TestQueueInvariants:
    def test_every_request_completes_exactly_once(self, result, trace):
        assert len(result.records) == len(trace)
        assert sorted(r.request_id for r in result.records) == sorted(
            r.request_id for r in trace
        )

    def test_tokens_are_conserved(self, result, trace):
        generated = sum(record.output_tokens for record in result.records)
        requested = sum(request.request.output_tokens for request in trace)
        assert generated == requested

    def test_batch_size_never_exceeds_limit(self, result):
        assert 1 <= result.peak_batch_size <= 8

    def test_timestamp_trail_is_monotonic(self, result):
        # RequestRecord validates monotonicity on construction; spot-check
        # the derived quantities are non-negative too.
        for record in result.records:
            assert record.queue_wait_s >= 0
            assert record.ttft_s > 0
            assert record.latency_s >= record.ttft_s

    def test_cc_stage_is_fifo(self, result):
        ordered = sorted(result.records, key=lambda r: (r.arrival_s, r.request_id))
        starts = [record.prefill_start_s for record in ordered]
        assert starts == sorted(starts)

    def test_deterministic_across_runs(self, model, trace, result):
        again = ContinuousBatchingSimulator(model=model, max_batch_size=8).run(trace)
        assert again.records == result.records
        assert again.decode_steps == result.decode_steps

    def test_batching_improves_makespan(self, model, trace, result):
        serial = ContinuousBatchingSimulator(model=model, max_batch_size=1).run(trace)
        assert serial.peak_batch_size == 1
        batched_makespan = result.report.makespan_s
        assert batched_makespan <= serial.report.makespan_s

    def test_decode_steps_bounded_below_by_token_count(self, result, trace):
        total_tokens = sum(request.request.output_tokens for request in trace)
        assert result.decode_steps >= total_tokens / 8


class TestBatchDecodeCostModel:
    def test_batch_step_cheaper_than_independent_streams(self, model):
        cost = BatchDecodeCostModel(PerformanceSimulator(), model)
        single = cost.step_latency_s([512])
        batch = cost.step_latency_s([512] * 8)
        # Weight re-use: an 8-stream step is far cheaper than 8 single steps.
        assert batch < 8 * single
        assert batch >= single

    def test_longer_context_is_slower(self, model):
        cost = BatchDecodeCostModel(PerformanceSimulator(), model)
        assert cost.step_latency_s([2048]) > cost.step_latency_s([64])

    def test_bucket_quantization_reuses_entries(self, model):
        cost = BatchDecodeCostModel(
            PerformanceSimulator(), model, context_bucket=32
        )
        cost.step_latency_s([65, 70, 95])
        # 65, 70 and 95 all quantize to the 96-token bucket.
        assert len(cost._bucket_cost) == 1


class TestValidation:
    def test_rejects_empty_trace(self, model):
        with pytest.raises(ValueError):
            ContinuousBatchingSimulator(model=model).run([])

    def test_rejects_bad_parameters(self, model):
        with pytest.raises(ValueError):
            ContinuousBatchingSimulator(model=model, max_batch_size=0)
        with pytest.raises(ValueError):
            ContinuousBatchingSimulator(model=model, cc_bandwidth_fraction=1.0)
        with pytest.raises(ValueError):
            ContinuousBatchingSimulator(model=None)
        with pytest.raises(ValueError):
            ServingRequest(
                request_id=0,
                arrival_s=-1.0,
                request=InferenceRequest(output_tokens=4),
            )
