"""Macro-stepping engine: bit-identity against the per-step oracle.

The macro engine's contract is exact equivalence, so every test here is an
equality assertion, not a tolerance: randomized traces (arrival process,
request mixes, batch sizes, bucket widths) must produce ``==``-identical
``RequestRecord`` tuples, peak-batch/decode-step counters, fleet traces
and autoscaler scaling decisions, whichever engine runs the decode loop.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import context_bucket_for
from repro.models.mllm import get_mllm
from repro.serving import (
    AutoscalerConfig,
    AutoscalingFleetSimulator,
    BurstyArrivals,
    ContinuousBatchingSimulator,
    ENGINES,
    FleetSimulator,
    PoissonArrivals,
    RequestSampler,
    build_trace,
)

MODEL = get_mllm("sphinx-tiny")

#: Shared cost-cache donor: every chip in this module prices the same
#: model on the same default system, and the CC-latency / bucket-cost /
#: step memos are independent of batch size and bucket width, so chips
#: seed from (and harvest back into) one pool.  Seeding only moves work,
#: never values — both engines of a pair get identical caches, keeping
#: each comparison fair.
_DONOR = {
    "cc": {},
    "buckets": {},
    "steps": {},
}


def _chip(engine, *, max_batch_size=8, context_bucket=32):
    chip = ContinuousBatchingSimulator(
        model=MODEL,
        max_batch_size=max_batch_size,
        context_bucket=context_bucket,
        engine=engine,
    )
    chip.seed_cc_latencies(_DONOR["cc"])
    chip.cost_model.seed_bucket_costs(_DONOR["buckets"])
    chip.cost_model.seed_step_cache(_DONOR["steps"])
    return chip


def _harvest(chip):
    _DONOR["cc"].update(chip.cc_latencies())
    _DONOR["buckets"].update(chip.cost_model.bucket_costs())
    _DONOR["steps"].update(chip.cost_model.step_cache())


def run_both(trace, *, max_batch_size=8, context_bucket=32):
    """(macro result, step result) of the same trace on twin chips."""
    results = []
    for engine in ("macro", "step"):
        chip = _chip(
            engine,
            max_batch_size=max_batch_size,
            context_bucket=context_bucket,
        )
        results.append(chip.run(trace))
        _harvest(chip)
    return results


def assert_identical(macro, step):
    """Every observable of the two runs is ``==``-identical."""
    assert macro.records == step.records
    assert macro.peak_batch_size == step.peak_batch_size
    assert macro.decode_steps == step.decode_steps


def make_trace(
    n,
    *,
    seed,
    rate=4.0,
    bursty=False,
    images=1,
    prompt_range=(4, 64),
    output_choices=(1, 2, 8, 16, 64),
):
    arrivals = (
        BurstyArrivals(rate, burst_multiplier=6.0, seed=seed)
        if bursty
        else PoissonArrivals(rate, seed=seed)
    )
    sampler = RequestSampler(
        seed=seed,
        images=images,
        prompt_token_range=prompt_range,
        output_token_choices=output_choices,
        output_token_weights=tuple(1.0 for _ in output_choices),
    )
    return build_trace(arrivals.generate(n), sampler.sample(n))


class TestEngineSelection:
    def test_engines_tuple_and_default(self):
        assert ENGINES == ("macro", "step", "wave")
        assert ContinuousBatchingSimulator(model=MODEL).engine == "macro"

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            ContinuousBatchingSimulator(model=MODEL, engine="warp")

    def test_fleet_forwards_engine_to_chips(self):
        fleet = FleetSimulator(MODEL, n_chips=2, engine="step")
        assert all(chip.engine == "step" for chip in fleet.chips)
        assert FleetSimulator(MODEL, n_chips=1).chips[0].engine == "macro"


class TestInlinedBucketArithmetic:
    def test_matches_the_canonical_quantizer(self):
        # The engine inlines context_bucket_for's arithmetic in its hot
        # loop; the two definitions must never drift.
        for width in (1, 2, 3, 7, 16, 32, 64, 131):
            for context in list(range(0, 4 * width + 2)) + [10**6, 10**6 + 1]:
                inlined = ((max(context, 1) + width - 1) // width) * width
                assert inlined == context_bucket_for(context, width)


class TestDeterministicEquivalence:
    def test_single_request(self):
        trace = make_trace(1, seed=0)
        assert_identical(*run_both(trace))

    def test_single_token_outputs(self):
        trace = make_trace(40, seed=1, rate=20.0, output_choices=(1,))
        assert_identical(*run_both(trace))

    def test_serial_decode_batch_of_one(self):
        trace = make_trace(30, seed=2, rate=8.0)
        assert_identical(*run_both(trace, max_batch_size=1))

    def test_simultaneous_arrivals(self):
        base = make_trace(24, seed=3, rate=6.0)
        times = [0.0] * 8 + [t for t in range(1, 9) for _ in (0, 1)]
        trace = build_trace(
            [float(t) for t in times], [r.request for r in base[: len(times)]]
        )
        assert_identical(*run_both(trace, max_batch_size=3))

    def test_unsorted_trace_positions(self):
        # build_trace assigns ids positionally; feed the simulator a trace
        # whose list order disagrees with arrival order.
        trace = make_trace(30, seed=4, rate=10.0)
        shuffled = list(reversed(trace))
        macro, step = run_both(shuffled)
        assert_identical(macro, step)

    def test_wide_bucket_exercises_vectorised_fold(self):
        # Bucket width 256 with a slow trickle of arrivals produces runs
        # longer than NUMPY_FOLD_MIN, covering the np.add.accumulate path.
        trace = make_trace(
            8, seed=5, rate=0.05, output_choices=(200, 256)
        )
        assert_identical(*run_both(trace, context_bucket=256))

    def test_medium_bucket_exercises_accumulate_fold(self):
        trace = make_trace(12, seed=6, rate=0.2, output_choices=(24, 40))
        assert_identical(*run_both(trace, context_bucket=32))


class TestPropertyEquivalence:
    @given(
        n=st.integers(min_value=1, max_value=90),
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.2, max_value=40.0),
        bursty=st.booleans(),
        max_batch=st.integers(min_value=1, max_value=12),
        bucket=st.sampled_from((1, 4, 16, 32, 64, 96)),
        images=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=30, deadline=None)
    def test_macro_equals_step_on_randomized_traces(
        self, n, seed, rate, bursty, max_batch, bucket, images
    ):
        trace = make_trace(
            n, seed=seed, rate=rate, bursty=bursty, images=images
        )
        macro, step = run_both(
            trace, max_batch_size=max_batch, context_bucket=bucket
        )
        assert_identical(macro, step)


class TestFleetEquivalence:
    @pytest.mark.parametrize("policy", ["round_robin", "least_loaded"])
    def test_fleet_traces_identical(self, policy):
        trace = make_trace(80, seed=11, rate=12.0, bursty=True)
        results = []
        for engine in ("macro", "step"):
            fleet = FleetSimulator(
                MODEL, n_chips=3, policy=policy, engine=engine
            )
            results.append(fleet.run(trace))
        macro, step = results
        assert macro.assignments == step.assignments
        assert macro.records == step.records
        for chip_macro, chip_step in zip(macro.per_chip, step.per_chip):
            assert chip_macro.records == chip_step.records
            assert chip_macro.peak_batch_size == chip_step.peak_batch_size
            assert chip_macro.decode_steps == chip_step.decode_steps


class TestAutoscalerEquivalence:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def test_scale_events_and_records_identical(self, seed):
        trace = make_trace(
            120, seed=seed, rate=8.0, bursty=True, output_choices=(8, 16, 64)
        )
        config = AutoscalerConfig(
            target_p99_ttft_s=2.0,
            min_chips=1,
            max_chips=3,
            window=24,
            min_observations=8,
            cooldown_s=0.5,
            scale_up_ratio=0.5,
            max_queue_depth=16,
        )
        results = []
        for engine in ("macro", "step"):
            fleet = AutoscalingFleetSimulator(
                MODEL, autoscaler=config, engine=engine
            )
            results.append(fleet.run(trace))
        macro, step = results
        assert macro.events == step.events
        assert macro.assignments == step.assignments
        assert macro.rejected_ids == step.rejected_ids
        assert macro.records == step.records
        assert macro.final_chips == step.final_chips
