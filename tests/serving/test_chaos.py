"""Unit tests of the chaos layer: schedules, generation, injection.

The differential suite proves the headline invariant (chaos cannot
change a result); this file pins the machinery underneath it: event
and schedule validation, the serialization round trip, deterministic
schedule generation from a seed, and the injector's mailbox-boundary
mechanics (drops, delays, crashes, hangs — each firing exactly once).
"""

import asyncio

import pytest

from repro.serving.runtime.actors import Actor
from repro.serving.runtime.chaos import (
    CHAOS_ACTOR_KINDS,
    CHAOS_KINDS,
    CHAOS_MESSAGE_KINDS,
    ChaosCrash,
    ChaosEvent,
    ChaosInjector,
    ChaosSchedule,
    crash_actor,
    delay_message,
    drop_message,
    generate_chaos_schedule,
    hang_actor,
)
from repro.serving.runtime.messages import Heartbeat, Shutdown


class TestEventValidation:
    def test_kind_gate(self):
        with pytest.raises(ValueError, match="kind"):
            ChaosEvent(kind="explode", actor="chip", at=0)

    def test_actor_faults_need_valid_actor(self):
        with pytest.raises(ValueError, match="actor"):
            ChaosEvent(kind="crash_actor", actor="gremlin", at=0)
        with pytest.raises(ValueError, match="at"):
            ChaosEvent(kind="crash_actor", actor="chip", at=-1)

    def test_hang_needs_duration(self):
        with pytest.raises(ValueError, match="for_shards"):
            ChaosEvent(kind="hang_actor", actor="chip", at=0, for_shards=0)

    def test_message_faults_need_valid_message(self):
        with pytest.raises(ValueError, match="message"):
            ChaosEvent(kind="drop_message", message="Gossip", nth=0)
        with pytest.raises(ValueError, match="nth"):
            ChaosEvent(kind="drop_message", message="RunShard", nth=-1)

    def test_delay_needs_positive_duration(self):
        with pytest.raises(ValueError, match="by_s"):
            ChaosEvent(kind="delay_message", message="ShardDone", nth=0, by_s=0.0)

    def test_cross_family_fields_rejected(self):
        with pytest.raises(ValueError):
            ChaosEvent(kind="crash_actor", actor="chip", at=0, message="RunShard")
        with pytest.raises(ValueError):
            ChaosEvent(kind="drop_message", message="RunShard", nth=0, actor="chip")

    def test_helpers_build_valid_events(self):
        events = (
            crash_actor("chip", 2),
            hang_actor("supervisor", 1, 3),
            drop_message("ShardDone", 0),
            delay_message("ArrivalBatch", 1, 0.05),
        )
        for event in events:
            assert event.kind in CHAOS_KINDS

    def test_schedule_rejects_non_events(self):
        with pytest.raises(ValueError, match="ChaosEvent"):
            ChaosSchedule(events=("crash",))


class TestSerialization:
    @pytest.mark.parametrize(
        "event",
        [
            crash_actor("ingestion", 0),
            hang_actor("chip", 4, 2),
            drop_message("StreamEnded", 0),
            delay_message("ShardDone", 3, 0.125),
        ],
    )
    def test_event_round_trip(self, event):
        assert ChaosEvent.from_dict(event.to_dict()) == event

    def test_event_dict_is_minimal(self):
        data = crash_actor("chip", 1).to_dict()
        assert set(data) == {"kind", "actor", "at"}
        data = delay_message("ShardDone", 0, 0.1).to_dict()
        assert set(data) == {"kind", "message", "nth", "by_s"}

    def test_schedule_round_trip(self):
        schedule = ChaosSchedule(
            events=(crash_actor("chip", 0), drop_message("RunShard", 1))
        )
        assert ChaosSchedule.from_dict(schedule.to_dict()) == schedule

    def test_empty_schedule_is_falsy(self):
        assert not ChaosSchedule()
        assert ChaosSchedule(events=(crash_actor("chip", 0),))


class TestGeneration:
    def test_same_seed_same_schedule(self):
        kwargs = dict(
            n_chips=3,
            n_batches=8,
            n_crashes=2,
            n_hangs=1,
            n_drops=2,
            n_delays=1,
            n_supervisor_crashes=1,
        )
        assert generate_chaos_schedule(41, **kwargs) == generate_chaos_schedule(
            41, **kwargs
        )
        assert generate_chaos_schedule(41, **kwargs) != generate_chaos_schedule(
            42, **kwargs
        )

    def test_counts_and_targets(self):
        schedule = generate_chaos_schedule(
            7,
            n_chips=2,
            n_batches=4,
            n_crashes=3,
            n_hangs=2,
            n_drops=2,
            n_delays=2,
            n_supervisor_crashes=1,
        )
        kinds = [event.kind for event in schedule.events]
        assert kinds.count("crash_actor") == 4  # 3 chip + 1 supervisor
        assert kinds.count("hang_actor") == 2
        assert kinds.count("drop_message") == 2
        assert kinds.count("delay_message") == 2
        for event in schedule.events:
            if event.actor:
                assert event.actor in CHAOS_ACTOR_KINDS
            if event.message:
                assert event.message in CHAOS_MESSAGE_KINDS


class _Sink(Actor):
    """Test double: records message payloads with arrival order."""

    def __init__(self):
        super().__init__("sink")
        self.seen = []

    async def on_message(self, message):
        self.seen.append(message)


def _drive(schedule, messages, work_actor=None):
    """Post ``messages`` to a sink under ``schedule``; return what landed."""

    async def session():
        sink = _Sink()
        injector = ChaosInjector(schedule, hang_unit_s=0.01)
        injector.install(sink)
        sink.start()
        for message in messages:
            sink.post(message)
        # Give delayed deliveries a chance to land before shutdown.
        await asyncio.sleep(0.05)
        await sink.stop()
        return sink.seen, injector

    return asyncio.run(session())


class TestInjector:
    def test_actor_kind_mapping(self):
        class Named:
            def __init__(self, name):
                self.name = name

        assert ChaosInjector.actor_kind(Named("chip-3")) == "chip"
        assert ChaosInjector.actor_kind(Named("ingestion")) == "ingestion"
        assert ChaosInjector.actor_kind(Named("supervisor")) == "supervisor"

    def test_drop_removes_exactly_nth(self):
        schedule = ChaosSchedule(events=(drop_message("Heartbeat", 1),))
        beats = [Heartbeat(actor="chip-0", n_done=n) for n in range(3)]
        seen, injector = _drive(schedule, beats)
        assert seen == [beats[0], beats[2]]
        assert injector.n_fired == 1

    def test_delay_reorders_delivery(self):
        schedule = ChaosSchedule(events=(delay_message("Heartbeat", 0, 0.02),))
        beats = [Heartbeat(actor="chip-0", n_done=n) for n in range(2)]
        seen, injector = _drive(schedule, beats)
        # The delayed first beat lands after the second.
        assert seen == [beats[1], beats[0]]
        assert injector.n_fired == 1

    def test_events_fire_once(self):
        schedule = ChaosSchedule(events=(drop_message("Heartbeat", 0),))
        beats = [Heartbeat(actor="chip-0", n_done=n) for n in range(4)]
        seen, injector = _drive(schedule, beats)
        # Only the 0th is dropped; later heartbeats pass untouched.
        assert seen == beats[1:]
        assert injector.n_fired == 1

    def test_shutdown_is_never_intercepted_by_actor_faults(self):
        # A crash aimed at work unit 5 that never happens: the actor
        # still shuts down cleanly.
        schedule = ChaosSchedule(events=(crash_actor("chip", 5),))

        async def session():
            sink = _Sink()
            sink.name = "chip-0"
            injector = ChaosInjector(schedule)
            injector.install(sink)
            sink.start()
            sink.post(Shutdown())
            return await sink.stop()

        assert asyncio.run(session())

    def test_crash_raises_at_work_unit(self):
        schedule = ChaosSchedule(events=(crash_actor("chip", 1),))

        async def session():
            sink = _Sink()
            sink.name = "chip-0"
            injector = ChaosInjector(schedule)
            injector.install(sink)
            sink.start()
            for n in range(3):
                sink.post(Heartbeat(actor="x", n_done=n))
            with pytest.raises(ChaosCrash):
                await sink._task
            return sink.seen

        seen = asyncio.run(session())
        # Unit 0 processed; the crash fires before unit 1 is handled.
        assert len(seen) == 1

    def test_vanilla_actor_pays_nothing(self):
        # No injector installed: the chaos hook stays None and post()
        # takes the plain path.
        sink = _Sink()
        assert sink.chaos is None
