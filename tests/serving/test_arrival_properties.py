"""Property-based tests on the arrival generators.

Invariants that must hold for *any* parameters: generated timestamp
sequences are nondecreasing and positive, empirical rates converge to the
configured ``rate_rps``, identical seeds reproduce bit-identically, and
explicit traces survive the scenario-serialization round trip unchanged.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import ArrivalSpec, ScenarioSpec, WorkloadComponent
from repro.serving.arrival import BurstyArrivals, PoissonArrivals, TraceArrivals

rates = st.floats(min_value=0.5, max_value=50.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
sizes = st.integers(min_value=0, max_value=200)


class TestMonotonicity:
    @given(rate=rates, seed=seeds, n=sizes)
    @settings(max_examples=40, deadline=None)
    def test_poisson_timestamps_nondecreasing_and_positive(self, rate, seed, n):
        times = PoissonArrivals(rate, seed=seed).generate(n)
        assert len(times) == n
        assert all(t > 0 for t in times)
        assert all(b >= a for a, b in zip(times, times[1:]))

    @given(
        rate=rates,
        seed=seeds,
        n=sizes,
        multiplier=st.floats(min_value=1.0, max_value=16.0),
        calm=st.floats(min_value=1.0, max_value=100.0),
        burst=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_bursty_timestamps_nondecreasing_and_positive(
        self, rate, seed, n, multiplier, calm, burst
    ):
        generator = BurstyArrivals(
            rate,
            burst_multiplier=multiplier,
            mean_calm_arrivals=calm,
            mean_burst_arrivals=burst,
            seed=seed,
        )
        times = generator.generate(n)
        assert len(times) == n
        assert all(t > 0 for t in times)
        assert all(b >= a for a, b in zip(times, times[1:]))


class TestEmpiricalRate:
    @given(rate=rates, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_poisson_empirical_rate_converges(self, rate, seed):
        n = 2000
        times = PoissonArrivals(rate, seed=seed).generate(n)
        empirical = n / times[-1]
        # Mean of 2000 exponential gaps: relative standard error ~2.2%,
        # so a 20% band is a many-sigma safety margin, not a tolerance.
        assert 0.8 * rate < empirical < 1.2 * rate

    @given(rate=rates, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_bursty_empirical_rate_bounded_by_both_regimes(self, rate, seed):
        multiplier = 6.0
        times = BurstyArrivals(
            rate, burst_multiplier=multiplier, seed=seed
        ).generate(2000)
        empirical = 2000 / times[-1]
        # The MMPP rate lives between the calm and burst regimes.
        assert 0.8 * rate < empirical < 1.2 * rate * multiplier

    @given(rate=rates, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_same_seed_reproduces_bit_identically(self, rate, seed):
        assert (
            PoissonArrivals(rate, seed=seed).generate(50)
            == PoissonArrivals(rate, seed=seed).generate(50)
        )
        assert (
            BurstyArrivals(rate, seed=seed).generate(50)
            == BurstyArrivals(rate, seed=seed).generate(50)
        )


timestamp_traces = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
).map(sorted)


class TestTraceRoundTrip:
    @given(times=timestamp_traces)
    @settings(max_examples=40, deadline=None)
    def test_trace_arrivals_replay_verbatim(self, times):
        generated = TraceArrivals(times).generate(len(times))
        assert generated == [float(t) for t in times]

    @given(times=timestamp_traces)
    @settings(max_examples=40, deadline=None)
    def test_trace_survives_scenario_serialization(self, times):
        spec = ScenarioSpec(
            name="round-trip",
            n_requests=len(times),
            mix=(WorkloadComponent(name="chat", images=0),),
            arrival=ArrivalSpec(kind="trace", times=tuple(times)),
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored.arrival.times == tuple(float(t) for t in times)
        replayed = TraceArrivals(restored.arrival.times).generate(len(times))
        assert replayed == TraceArrivals(times).generate(len(times))
