"""Slow chaos smoke: a chip failure inside a 100k-request bursty trace.

Marked ``slow`` (excluded from the default run by ``pytest.ini``); CI's
chaos step invokes it explicitly with ``pytest -m slow``.  The
correctness story lives in the differential and property suites — this
smoke proves the fault path holds up at benchmark scale: the autoscaled
fleet absorbs a mid-trace chip outage, loses no requests, measures a
finite time-to-recover, and has re-converged to the SLO by the end of
the trace.
"""

import pytest

from repro.models.mllm import get_mllm
from repro.serving import (
    AutoscalerConfig,
    AutoscalingFleetSimulator,
    BurstyArrivals,
    RequestSampler,
    build_trace,
)
from repro.serving.faults import FaultEvent, FaultSchedule, fault_recovery
from repro.serving.metrics import percentile

N_REQUESTS = 100_000
TARGET_P99_TTFT_S = 5.0


@pytest.mark.slow
def test_autoscaler_reconverges_after_mid_trace_chip_failure():
    sampler = RequestSampler(
        seed=21, output_token_choices=(8, 16, 32), output_token_weights=(0.5, 0.3, 0.2)
    )
    trace = build_trace(
        BurstyArrivals(8.0, burst_multiplier=4.0, seed=21).generate(N_REQUESTS),
        sampler.sample(N_REQUESTS),
    )
    span = trace[-1].arrival_s
    down = FaultEvent(time_s=round(0.4 * span, 6), kind="chip_down", chip_id=0)
    up = FaultEvent(time_s=round(0.5 * span, 6), kind="chip_up", chip_id=0)
    schedule = FaultSchedule(events=(down, up))
    fleet = AutoscalingFleetSimulator(
        get_mllm("sphinx-tiny"),
        autoscaler=AutoscalerConfig(
            target_p99_ttft_s=TARGET_P99_TTFT_S,
            min_chips=1,
            max_chips=6,
            window=64,
            min_observations=16,
            cooldown_s=2.0,
            max_queue_depth=256,
        ),
        max_batch_size=16,
        engine="macro",
    )
    result = fleet.run(trace, faults=schedule)

    # Conservation at scale: every admitted request served exactly once.
    assert result.n_rejected == 0
    assert len(result.records) == N_REQUESTS
    assert sorted(r.request_id for r in result.records) == list(range(N_REQUESTS))

    # The outage was measured and recovered from within the trace.
    (impact,) = fault_recovery(result.records, schedule.events)
    assert impact.dent_depth_s >= 0.0
    assert impact.time_to_recover_s is not None
    assert impact.time_to_recover_s < span - down.time_s

    # Re-convergence: the final stretch of the trace meets the SLO again.
    ordered = sorted(result.records, key=lambda r: (r.arrival_s, r.request_id))
    tail = [r.ttft_s for r in ordered[-2000:]]
    assert percentile(tail, 99) <= TARGET_P99_TTFT_S
