"""Chaos differential: supervised runs under fault injection ≡ batch.

The headline invariant of the supervision layer: for any chaos
schedule — crashed actors, hung actors, dropped and delayed messages,
even supervisor crashes recovered from the auto-checkpoint ring — the
final report is byte-identical to the undisturbed batch run, modulo
the conditional ``incidents`` block (whose content is timing-dependent
by nature; ``without_incidents()`` is the comparison surface).

Three legs: a pinned spec-derived schedule across **every** registered
scenario (macro) and every engine on a per-controller-kind pool; a
hypothesis leg drawing random schedules; and a subprocess leg proving
a supervisor crash restored from a serialized ring checkpoint under a
*different* ``PYTHONHASHSEED`` still lands on the same bytes.
"""

import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios.registry import available_scenarios, get_scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ChaosSpec
from repro.serving.runtime.chaos import generate_chaos_schedule
from repro.serving.runtime.service import run_scenario_supervised
from repro.serving.runtime.supervision import SupervisionConfig

REPO_ROOT = Path(__file__).resolve().parents[2]

SCENARIOS = available_scenarios()

#: One scenario per controller kind for the cross-engine legs.
POOL = (
    "chat-poisson",  # static
    "edge-kiosk-overload",  # autoscale
    "chat-chipfail",  # fault_fleet
    "tenant-tiers",  # fault_autoscale
)

#: Cheap pinned plan: two crash recoveries, no deadline waits.
LIGHT = ChaosSpec(n_crashes=1, n_supervisor_crashes=1)

#: Every fault family at once (drops cost one job-deadline wait each).
HEAVY = ChaosSpec(
    n_crashes=2, n_hangs=1, n_drops=2, n_delays=1, n_supervisor_crashes=1
)

#: Millisecond-scale supervision so recovery runs in test time.
FAST = SupervisionConfig(
    job_deadline_s=0.5,
    stall_deadline_s=0.15,
    tick_s=0.01,
    backoff_base_s=0.005,
    backoff_cap_s=0.05,
    checkpoint_every=4,
    checkpoint_ring=3,
    seed=7,
)

_BATCH_CACHE = {}


def batch_json(spec, engine="macro"):
    key = (spec.spec_hash(), engine)
    if key not in _BATCH_CACHE:
        _BATCH_CACHE[key] = run_scenario(spec, engine=engine).to_json()
    return _BATCH_CACHE[key]


def supervised(spec, engine="macro", chaos=None):
    return run_scenario_supervised(
        spec, engine=engine, chaos=chaos, supervision=FAST, hang_unit_s=0.01
    )


class TestPinnedScheduleMatrix:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_every_scenario_macro(self, name):
        spec = replace(get_scenario(name), chaos=LIGHT)
        report = supervised(spec)
        assert report.incidents is not None  # the schedule actually fired
        assert report.without_incidents().to_json() == batch_json(spec)

    @pytest.mark.parametrize("engine", ["step", "wave"])
    @pytest.mark.parametrize("name", POOL)
    def test_controller_kinds_across_engines(self, name, engine):
        spec = replace(get_scenario(name), chaos=LIGHT)
        report = supervised(spec, engine=engine)
        assert report.incidents is not None
        assert report.without_incidents().to_json() == batch_json(spec, engine)

    @pytest.mark.parametrize("name", POOL)
    def test_heavy_schedule(self, name):
        spec = replace(get_scenario(name), chaos=HEAVY)
        report = supervised(spec)
        assert report.incidents is not None
        assert report.without_incidents().to_json() == batch_json(spec)

    def test_undisturbed_supervised_is_the_batch_report(self):
        # No chaos block, no injector: the supervised path must emit
        # the *exact* batch bytes — incidents block and all (absent).
        spec = get_scenario("chat-poisson")
        report = supervised(spec)
        assert report.incidents is None
        assert report.to_json() == batch_json(spec)


class TestRandomSchedules:
    @given(
        name=st.sampled_from(POOL),
        seed=st.integers(min_value=0, max_value=2**20),
        n_crashes=st.integers(min_value=0, max_value=2),
        n_hangs=st.integers(min_value=0, max_value=1),
        n_supervisor_crashes=st.integers(min_value=0, max_value=1),
    )
    @settings(max_examples=6, deadline=None)
    def test_any_schedule_lands_on_batch_bytes(
        self, name, seed, n_crashes, n_hangs, n_supervisor_crashes
    ):
        spec = get_scenario(name)
        n_chips = (
            spec.fleet.autoscaler.max_chips
            if spec.fleet.autoscaler is not None
            else spec.fleet.n_chips
        )
        chaos = generate_chaos_schedule(
            seed,
            n_chips=n_chips,
            n_batches=1,
            n_crashes=n_crashes,
            n_hangs=n_hangs,
            n_supervisor_crashes=n_supervisor_crashes,
            hang_shards=5,
        )
        report = supervised(spec, chaos=chaos)
        assert report.without_incidents().to_json() == batch_json(spec)


class TestSubprocessRingRestore:
    @pytest.mark.parametrize("hashseed", ["1", "271828"])
    def test_supervisor_crash_recovers_identically(self, hashseed):
        # The crash-then-restore leg: the child process runs a chaotic
        # supervised scenario whose supervisor crashes mid-run, rebuilds
        # from the serialized ring checkpoint, and must print the batch
        # bytes — under a different hash seed than this process.
        spec = replace(get_scenario("chat-poisson"), chaos=LIGHT)
        script = (
            "import sys\n"
            "from dataclasses import replace\n"
            "from repro.scenarios.registry import get_scenario\n"
            "from repro.scenarios.spec import ChaosSpec\n"
            "from repro.serving.runtime.service import run_scenario_supervised\n"
            "from repro.serving.runtime.supervision import SupervisionConfig\n"
            "spec = replace(get_scenario('chat-poisson'),\n"
            "               chaos=ChaosSpec(n_crashes=1, n_supervisor_crashes=1))\n"
            "config = SupervisionConfig(job_deadline_s=0.5, stall_deadline_s=0.15,\n"
            "                           tick_s=0.01, backoff_base_s=0.005,\n"
            "                           backoff_cap_s=0.05, checkpoint_every=4,\n"
            "                           checkpoint_ring=3, seed=7)\n"
            "report = run_scenario_supervised(spec, supervision=config,\n"
            "                                 hang_unit_s=0.01)\n"
            "kinds = {i['kind'] for i in report.incidents.to_dict()['timeline']}\n"
            "assert 'supervisor_restart' in kinds, kinds\n"
            "sys.stdout.write(report.without_incidents().to_json())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONHASHSEED"] = hashseed
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            check=False,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout == batch_json(spec)
