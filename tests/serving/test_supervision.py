"""Unit and property tests of the supervision layer.

Pins the recovery machinery the chaos differential rides on: config
validation, deterministic capped backoff, incident records, the
undisturbed-run identity (zero incidents, one session, batch-equal
result), quarantine-then-inline degradation, supervisor-crash ring
restore, stall-driven ingestion restart, bounded ``Actor.stop``, and
the conservation property — every request recorded exactly once under
*any* generated chaos schedule.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.mllm import get_mllm
from repro.serving import (
    FleetSimulator,
    PoissonArrivals,
    RequestSampler,
    build_trace,
)
from repro.serving.runtime.actors import Actor
from repro.serving.runtime.chaos import (
    ChaosSchedule,
    crash_actor,
    drop_message,
    generate_chaos_schedule,
    hang_actor,
)
from repro.serving.runtime.messages import ActorCrashed, Heartbeat
from repro.serving.runtime.service import run_supervised
from repro.serving.runtime.supervision import (
    INCIDENT_KINDS,
    ActorIncident,
    SupervisionConfig,
    backoff_s,
)

#: Millisecond-scale timeouts so recovery paths run in test time.
FAST = SupervisionConfig(
    job_deadline_s=0.5,
    stall_deadline_s=0.15,
    tick_s=0.01,
    backoff_base_s=0.005,
    backoff_cap_s=0.05,
    max_retries=3,
    quarantine_after=2,
    checkpoint_every=4,
    checkpoint_ring=3,
    seed=7,
)


@pytest.fixture(scope="module")
def model():
    return get_mllm("sphinx-tiny")


def _trace(seed, n=12):
    return build_trace(
        PoissonArrivals(6.0, seed=seed).generate(n),
        RequestSampler(seed=seed).sample(n),
    )


def _run(fleet, trace, chaos):
    return run_supervised(
        fleet,
        trace,
        chaos=chaos,
        supervision=FAST,
        batch_size=4,
        hang_unit_s=0.02,
    )


class TestConfig:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("job_deadline_s", 0.0),
            ("stall_deadline_s", 0.0),
            ("tick_s", 0.0),
            ("backoff_base_s", -1.0),
            ("backoff_cap_s", -1.0),
            ("max_retries", -1),
            ("quarantine_after", 0),
            ("checkpoint_every", 0),
            ("checkpoint_ring", 0),
            ("max_ingest_restarts", 0),
            ("max_sessions", 0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError, match="backoff|" + field):
            SupervisionConfig(**{field: value})

    def test_cap_must_cover_base(self):
        with pytest.raises(ValueError, match="backoff_cap_s"):
            SupervisionConfig(backoff_base_s=0.5, backoff_cap_s=0.1)


class TestBackoff:
    def test_deterministic(self):
        config = SupervisionConfig(seed=3)
        assert backoff_s(config, 5, 2) == backoff_s(config, 5, 2)

    def test_varies_with_job_and_seed(self):
        config = SupervisionConfig(seed=3)
        assert backoff_s(config, 5, 2) != backoff_s(config, 6, 2)
        assert backoff_s(config, 5, 2) != backoff_s(
            SupervisionConfig(seed=4), 5, 2
        )

    def test_capped(self):
        config = SupervisionConfig(backoff_base_s=0.1, backoff_cap_s=0.3)
        for attempt in range(1, 12):
            assert backoff_s(config, 0, attempt) <= 0.3

    def test_attempt_gate(self):
        with pytest.raises(ValueError, match="attempt"):
            backoff_s(SupervisionConfig(), 0, 0)


class TestIncidents:
    def test_kind_gate(self):
        with pytest.raises(ValueError, match="kind"):
            ActorIncident(session=1, actor="chip-0", kind="mystery", detail="")
        with pytest.raises(ValueError, match="session"):
            ActorIncident(session=0, actor="chip-0", kind="crash", detail="")

    def test_dict_is_minimal(self):
        bare = ActorIncident(
            session=1, actor="supervisor", kind="stall", detail="x"
        )
        assert set(bare.to_dict()) == {"session", "actor", "kind", "detail"}
        full = ActorIncident(
            session=2,
            actor="chip-1",
            kind="retry",
            detail="x",
            job_id=3,
            attempt=2,
        )
        assert set(full.to_dict()) == {
            "session",
            "actor",
            "kind",
            "detail",
            "job_id",
            "attempt",
        }

    def test_all_kinds_constructible(self):
        for kind in INCIDENT_KINDS:
            ActorIncident(session=1, actor="supervisor", kind=kind, detail="")


class TestUndisturbed:
    def test_identity_with_batch(self, model):
        trace = _trace(41)
        fleet = FleetSimulator(model, n_chips=2)
        batch = fleet.run(trace)
        run = _run(fleet, trace, chaos=None)
        assert run.result == batch
        assert run.incidents == ()
        assert run.n_sessions == 1

    def test_empty_trace_rejected(self, model):
        fleet = FleetSimulator(model, n_chips=2)
        with pytest.raises(ValueError, match="empty"):
            run_supervised(fleet, [])


class TestRecoveryPaths:
    def test_chip_crash_restart(self, model):
        trace = _trace(43)
        fleet = FleetSimulator(model, n_chips=2)
        batch = fleet.run(trace)
        run = _run(
            fleet, trace, ChaosSchedule(events=(crash_actor("chip", 0),))
        )
        assert run.result == batch
        kinds = {incident.kind for incident in run.incidents}
        assert "crash" in kinds and "restart" in kinds and "retry" in kinds

    def test_quarantine_then_inline_fallback(self, model):
        # A 1-chip fleet whose only chip crashes twice: two strikes
        # quarantine it, and with no survivors the supervisor runs the
        # job inline — degraded, never wrong.
        trace = _trace(47)
        fleet = FleetSimulator(model, n_chips=1)
        batch = fleet.run(trace)
        run = _run(
            fleet,
            trace,
            ChaosSchedule(
                events=(crash_actor("chip", 0), crash_actor("chip", 1))
            ),
        )
        assert run.result == batch
        kinds = [incident.kind for incident in run.incidents]
        assert "quarantine" in kinds
        assert "inline_fallback" in kinds

    def test_hang_triggers_redispatch(self, model):
        trace = _trace(53)
        fleet = FleetSimulator(model, n_chips=2)
        batch = fleet.run(trace)
        # Hang long enough to blow the 0.5s deadline: 30 * 0.02s.
        run = _run(
            fleet, trace, ChaosSchedule(events=(hang_actor("chip", 0, 30),))
        )
        assert run.result == batch
        kinds = {incident.kind for incident in run.incidents}
        assert "hang" in kinds and "retry" in kinds

    def test_supervisor_crash_restores_from_ring(self, model):
        trace = _trace(59, n=16)
        fleet = FleetSimulator(model, n_chips=2)
        batch = fleet.run(trace)
        run = _run(
            fleet,
            trace,
            ChaosSchedule(events=(crash_actor("supervisor", 3),)),
        )
        assert run.result == batch
        assert run.n_sessions == 2
        restarts = [
            incident
            for incident in run.incidents
            if incident.kind == "supervisor_restart"
        ]
        assert len(restarts) == 1
        assert restarts[0].session == 1

    def test_ingestion_crash_restarts_stream(self, model):
        trace = _trace(61)
        fleet = FleetSimulator(model, n_chips=2)
        batch = fleet.run(trace)
        run = _run(
            fleet,
            trace,
            ChaosSchedule(events=(crash_actor("ingestion", 1),)),
        )
        assert run.result == batch
        assert any(
            incident.kind == "stall" for incident in run.incidents
        )

    def test_retry_budget_gives_up(self, model):
        # max_retries=0: the first crash exhausts the budget and the
        # run fails with the original cause instead of looping.
        trace = _trace(79)
        fleet = FleetSimulator(model, n_chips=2)
        config = SupervisionConfig(
            job_deadline_s=0.5,
            stall_deadline_s=0.15,
            tick_s=0.01,
            max_retries=0,
            checkpoint_every=4,
            seed=7,
        )
        from repro.serving.runtime.chaos import ChaosCrash

        with pytest.raises(ChaosCrash):
            run_supervised(
                fleet,
                trace,
                chaos=ChaosSchedule(events=(crash_actor("chip", 0),)),
                supervision=config,
                batch_size=4,
            )

    def test_ingest_restart_cap_gives_up(self, model):
        # The stream dies on every restart: the watchdog's restart
        # budget runs out and the run fails instead of spinning.
        trace = _trace(83)
        fleet = FleetSimulator(model, n_chips=2)
        config = SupervisionConfig(
            job_deadline_s=0.5,
            stall_deadline_s=0.1,
            tick_s=0.01,
            max_ingest_restarts=1,
            checkpoint_every=4,
            seed=7,
        )
        chaos = ChaosSchedule(
            events=(
                crash_actor("ingestion", 0),
                crash_actor("ingestion", 1),
                crash_actor("ingestion", 2),
            )
        )
        with pytest.raises(RuntimeError, match="giving up"):
            run_supervised(
                fleet,
                trace,
                chaos=chaos,
                supervision=config,
                batch_size=4,
            )

    def test_session_cap_gives_up(self, model):
        trace = _trace(67)
        fleet = FleetSimulator(model, n_chips=2)
        config = SupervisionConfig(
            job_deadline_s=0.5,
            stall_deadline_s=0.15,
            tick_s=0.01,
            checkpoint_every=4,
            max_sessions=1,
            seed=7,
        )
        with pytest.raises(RuntimeError, match="session"):
            run_supervised(
                fleet,
                trace,
                chaos=ChaosSchedule(events=(crash_actor("supervisor", 0),)),
                supervision=config,
                batch_size=4,
            )


class TestCleanFailure:
    def test_real_ingestion_error_fails_cleanly(self, model):
        # A genuine (non-chaos) crash report from any actor must fail
        # the run with the original cause, not hang the supervisor.
        trace = _trace(71, n=4)
        fleet = FleetSimulator(model, n_chips=1)

        async def session():
            from repro.serving.dispatch import make_controller
            from repro.serving.runtime.actors import SupervisorActor

            controller = make_controller(fleet, trace)
            supervisor = SupervisorActor(controller, 1)
            supervisor.start()
            supervisor.post(
                ActorCrashed(
                    actor="ingestion",
                    error="ValueError('bad line')",
                    cause=ValueError("bad line"),
                )
            )
            try:
                await asyncio.wait_for(supervisor.outcome, timeout=5.0)
            finally:
                await supervisor.stop()

        with pytest.raises(ValueError, match="bad line"):
            asyncio.run(session())


class _Stuck(Actor):
    """Test double: blocks forever on its first message."""

    async def on_message(self, message):
        await asyncio.Event().wait()


class TestBoundedStop:
    def test_stop_times_out_and_cancels(self):
        async def session():
            actor = _Stuck("stuck")
            actor.start()
            actor.post(Heartbeat(actor="x", n_done=0))
            await asyncio.sleep(0)  # let it enter on_message
            stopped = await actor.stop(timeout_s=0.05)
            return stopped, actor._task.cancelled()

        stopped, cancelled = asyncio.run(session())
        assert stopped is False
        assert cancelled

    def test_stop_is_clean_for_idle_actor(self):
        async def session():
            actor = _Stuck("idle")
            actor.start()
            return await actor.stop(timeout_s=1.0)

        assert asyncio.run(session()) is True


class TestConservation:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_crashes=st.integers(min_value=0, max_value=2),
        n_drops=st.integers(min_value=0, max_value=1),
        n_hangs=st.integers(min_value=0, max_value=1),
    )
    @settings(max_examples=6, deadline=None)
    def test_every_request_recorded_exactly_once(
        self, seed, n_crashes, n_drops, n_hangs
    ):
        model = get_mllm("sphinx-tiny")
        trace = _trace(73, n=10)
        fleet = FleetSimulator(model, n_chips=2)
        batch = fleet.run(trace)
        chaos = generate_chaos_schedule(
            seed,
            n_chips=2,
            n_batches=3,
            n_crashes=n_crashes,
            n_drops=n_drops,
            n_hangs=n_hangs,
            hang_shards=5,
        )
        run = _run(fleet, trace, chaos)
        recorded = sorted(record.request_id for record in run.result.records)
        expected = sorted(request.request_id for request in trace)
        assert recorded == expected
        assert run.result == batch
