"""Differential suite: live actor runs ≡ batch runs, byte for byte.

The headline equivalence proof of the live runtime: for **every**
registered scenario and **every** engine (``step``/``macro``/``wave``),
``run_scenario(..., runtime="live")`` must reproduce the batch report —
dataclass ``==`` and canonical JSON byte identity, covering records,
scale events, fault eras and tenant budgets in one shot.  Below the
scenario layer, fleet-level tests assert full result-object equality
(records, per-chip results, assignments, events) for each controller
kind, including the pacing knob, which may only ever change wall-clock.

No tolerances anywhere: the live plane drives the exact stepwise
controllers the batch plane drives, so it is bit-identical or broken.
"""

import pytest

from repro.models.mllm import get_mllm
from repro.scenarios.registry import available_scenarios, get_scenario
from repro.scenarios.runner import run_scenario
from repro.serving import (
    AutoscalerConfig,
    AutoscalingFleetSimulator,
    FleetSimulator,
    PoissonArrivals,
    RequestSampler,
    build_trace,
)
from repro.serving.faults import FaultEvent, FaultSchedule
from repro.serving.queue import ENGINES

SCENARIOS = available_scenarios()


@pytest.fixture(scope="module")
def model():
    return get_mllm("sphinx-tiny")


@pytest.fixture(scope="module")
def batch_report():
    """Memoized batch reports so the matrix prices each pair once."""
    cache = {}

    def get(name, engine):
        key = (name, engine)
        if key not in cache:
            cache[key] = run_scenario(get_scenario(name), engine=engine)
        return cache[key]

    return get


def _trace(seed, n=40):
    return build_trace(
        PoissonArrivals(6.0, seed=seed).generate(n),
        RequestSampler(
            seed=seed,
            output_token_choices=(8, 16),
            output_token_weights=(0.6, 0.4),
        ).sample(n),
    )


class TestScenarioMatrix:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_live_equals_batch(self, name, engine, batch_report):
        batch = batch_report(name, engine)
        live = run_scenario(
            get_scenario(name), engine=engine, runtime="live"
        )
        assert live == batch
        assert live.to_json() == batch.to_json()


class TestFleetLevel:
    @pytest.mark.parametrize("policy", ["round_robin", "least_loaded"])
    def test_static_fleet(self, model, policy):
        trace = _trace(11)
        fleet = FleetSimulator(model, n_chips=3, policy=policy)
        assert fleet.run(trace, runtime="live") == fleet.run(trace)

    @pytest.mark.parametrize("admission", ["queue", "reject"])
    def test_autoscale(self, model, admission):
        trace = _trace(13, n=60)
        fleet = AutoscalingFleetSimulator(
            model,
            autoscaler=AutoscalerConfig(
                target_p99_ttft_s=0.4,
                max_chips=3,
                window=8,
                min_observations=4,
                cooldown_s=0.2,
                max_queue_depth=2,
                admission=admission,
            ),
        )
        live = fleet.run(trace, runtime="live")
        batch = fleet.run(trace)
        assert live == batch
        assert live.events == batch.events
        assert live.rejected_ids == batch.rejected_ids

    @pytest.mark.parametrize("drain_policy", ["drain", "abort"])
    def test_static_faults(self, model, drain_policy):
        trace = _trace(17)
        horizon = max(request.arrival_s for request in trace)
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    time_s=horizon * 0.2, kind="chip_down", chip_id=0
                ),
                FaultEvent(
                    time_s=horizon * 0.4,
                    kind="dram_degrade",
                    chip_id=1,
                    factor=0.5,
                ),
                FaultEvent(
                    time_s=horizon * 0.7, kind="chip_up", chip_id=0
                ),
            ),
            drain_policy=drain_policy,
        )
        fleet = FleetSimulator(model, n_chips=3, policy="least_loaded")
        live = fleet.run(trace, runtime="live", faults=schedule)
        batch = fleet.run(trace, faults=schedule)
        assert live == batch
        assert live.fault_events == batch.fault_events
        assert live.redispatched_ids == batch.redispatched_ids
        assert live.aborted_ids == batch.aborted_ids

    def test_autoscale_faults_with_priorities(self, model):
        trace = _trace(19, n=60)
        horizon = max(request.arrival_s for request in trace)
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    time_s=horizon * 0.3, kind="chip_down", chip_id=1
                ),
                FaultEvent(
                    time_s=horizon * 0.8, kind="chip_up", chip_id=1
                ),
            )
        )
        priorities = [
            2.0 if index % 3 == 0 else 1.0 for index in range(len(trace))
        ]
        fleet = AutoscalingFleetSimulator(
            model,
            autoscaler=AutoscalerConfig(
                target_p99_ttft_s=0.4,
                max_chips=3,
                window=8,
                min_observations=4,
                cooldown_s=0.2,
                max_queue_depth=2,
            ),
        )
        live = fleet.run(
            trace, runtime="live", faults=schedule, priorities=priorities
        )
        batch = fleet.run(trace, faults=schedule, priorities=priorities)
        assert live == batch

    def test_priorities_only_autoscale(self, model):
        trace = _trace(23, n=50)
        priorities = [1.0 + (index % 2) for index in range(len(trace))]
        fleet = AutoscalingFleetSimulator(
            model,
            autoscaler=AutoscalerConfig(
                target_p99_ttft_s=0.4,
                max_chips=2,
                window=8,
                min_observations=4,
                max_queue_depth=2,
            ),
        )
        live = fleet.run(trace, runtime="live", priorities=priorities)
        batch = fleet.run(trace, priorities=priorities)
        assert live == batch

    def test_pacing_changes_nothing(self, model):
        from repro.serving.runtime import run_live

        trace = _trace(29, n=20)
        fleet = FleetSimulator(model, n_chips=2)
        batch = fleet.run(trace)
        # Enormous acceleration: real-time pacing, negligible wall-clock.
        paced = run_live(fleet, trace, pace=1e9)
        assert paced == batch

    @pytest.mark.parametrize("engine", ENGINES)
    def test_engines_fleet_level(self, model, engine):
        trace = _trace(31)
        fleet = FleetSimulator(model, n_chips=2, engine=engine)
        assert fleet.run(trace, runtime="live") == fleet.run(trace)
