"""Slow smoke: supervised recovery holds up at 100k-request scale.

Marked ``slow`` (excluded from the default run by ``pytest.ini``); the
CI ``runtime`` job invokes it explicitly with ``pytest -m slow``.  One
run takes a chip crash, a chip hang, dropped arrival and heartbeat
messages, a delayed result and a mid-stream supervisor crash — all in
the same 100k-request wave-engine run — and must still produce the
batch result ``==``-identically with bounded wall-clock overhead (the
crash re-runs one shard, the supervisor crash rebuilds from the
auto-checkpoint ring; neither may snowball).
"""

import time

import pytest

from repro.models.mllm import get_mllm
from repro.serving import (
    FleetSimulator,
    PoissonArrivals,
    RequestSampler,
    build_trace,
)
from repro.serving.runtime.chaos import (
    ChaosSchedule,
    crash_actor,
    delay_message,
    drop_message,
    hang_actor,
)
from repro.serving.runtime.service import run_supervised
from repro.serving.runtime.supervision import SupervisionConfig

N_REQUESTS = 100_000


def _trace():
    return build_trace(
        PoissonArrivals(200.0, seed=1234).generate(N_REQUESTS),
        RequestSampler(
            seed=1234,
            prompt_token_range=(16, 48),
            output_token_choices=(8, 16),
            output_token_weights=(0.6, 0.4),
        ).sample(N_REQUESTS),
    )


#: Crash + hang + drops + delay + supervisor crash, one schedule.  The
#: supervisor crash ordinal (150) sits past the ~98 arrival batches the
#: first stream delivers, so it fires only *after* the dropped batch 5
#: has stalled the cursor, the watchdog has restarted ingestion, and
#: the re-stream is being consumed — stacking the recoveries.
SCHEDULE = ChaosSchedule(
    events=(
        crash_actor("chip", 1),
        hang_actor("chip", 2, 10),
        drop_message("ArrivalBatch", 5),
        drop_message("Heartbeat", 0),
        delay_message("ShardDone", 1, 0.05),
        crash_actor("supervisor", 150),
    )
)

#: Deadlines sized for real multi-second shard jobs; a fast stall
#: watchdog so the dropped arrival batch recovers in ~1s.
CONFIG = SupervisionConfig(
    job_deadline_s=300.0,
    stall_deadline_s=1.0,
    tick_s=0.05,
    backoff_base_s=0.01,
    backoff_cap_s=0.1,
    checkpoint_every=8192,
    checkpoint_ring=4,
    seed=7,
)


@pytest.mark.slow
def test_chaos_100k_recovers_to_batch_result_wave():
    model = get_mllm("sphinx-tiny")
    fleet = FleetSimulator(model, n_chips=4, engine="wave")
    trace = _trace()
    # Warm the shared service-time memos outside both measurements.
    fleet.precompute_service_times(trace)

    start = time.perf_counter()
    batch = fleet.run(trace)
    batch_s = time.perf_counter() - start

    start = time.perf_counter()
    run = run_supervised(
        fleet,
        trace,
        chaos=SCHEDULE,
        supervision=CONFIG,
        hang_unit_s=0.02,
    )
    supervised_s = time.perf_counter() - start

    assert run.result == batch
    assert len(run.result.records) == N_REQUESTS
    kinds = {incident.kind for incident in run.incidents}
    assert "crash" in kinds  # the chip died and was restarted
    assert "stall" in kinds  # the dropped batch tripped the watchdog
    assert "supervisor_restart" in kinds  # ring restore happened
    assert run.n_sessions >= 2

    # Recovery redoes at most a couple of shards: 3x batch plus a flat
    # 15s floor (watchdog waits, backoff, session rebuild) bounds it.
    budget = max(3.0 * batch_s, batch_s + 15.0)
    assert supervised_s <= budget, (
        f"supervised took {supervised_s:.1f}s vs batch {batch_s:.1f}s "
        f"(budget {budget:.1f}s)"
    )
