"""Columnar trace format: lossless round trips and byte-stable streaming.

Two contracts are locked here.  (1) ``trace_to_array``/``array_to_trace``
is a lossless pair: the rebuilt object trace is ``==``-identical to the
original, including the exact arrival doubles.  (2) The streaming
compiler is byte-stable: for every registered scenario and any chunk
size, the concatenated ``compile_scenario_chunks`` output equals the
one-shot ``compile_scenario`` trace column for column (spec-hash seeding
included), so chunked compilation can never fork the regression-locked
golden reports.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.mllm import InferenceRequest
from repro.scenarios import (
    available_scenarios,
    compile_scenario,
    compile_scenario_chunks,
    get_scenario,
)
from repro.serving import ServingRequest
from repro.serving.trace import (
    TRACE_DTYPE,
    array_to_trace,
    concat_trace_arrays,
    empty_trace_array,
    trace_to_array,
    validate_trace_array,
)


def _chunks_concatenated(spec, chunk_size):
    chunks = list(compile_scenario_chunks(spec, chunk_size=chunk_size))
    array = concat_trace_arrays([chunk.array for chunk in chunks])
    components = tuple(
        name for chunk in chunks for name in chunk.components
    )
    return array, components, chunks


class TestRoundTrip:
    @given(
        data=st.lists(
            st.tuples(
                st.floats(
                    min_value=0.0,
                    max_value=1e9,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                st.integers(min_value=0, max_value=64),
                # Shapes must carry an image or a prompt token; keeping
                # prompts >= 1 satisfies InferenceRequest for any images.
                st.integers(min_value=1, max_value=100_000),
                st.integers(min_value=1, max_value=100_000),
            ),
            min_size=0,
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_object_array_object_is_lossless(self, data):
        trace = [
            ServingRequest(
                request_id=index,
                arrival_s=arrival,
                request=InferenceRequest(
                    images=images,
                    prompt_text_tokens=prompt,
                    output_tokens=output,
                ),
            )
            for index, (arrival, images, prompt, output) in enumerate(data)
        ]
        rebuilt = array_to_trace(trace_to_array(trace))
        assert rebuilt == trace

    def test_arrival_doubles_survive_exactly(self):
        # Awkward doubles (subnormal sums, repeating fractions) must come
        # back bit-for-bit, not merely close.
        arrivals = [0.1 + 0.2, 1.0 / 3.0, 2.0**-40, 12345.6789]
        trace = [
            ServingRequest(
                request_id=i,
                arrival_s=arrival,
                request=InferenceRequest(
                    images=0, prompt_text_tokens=8, output_tokens=4
                ),
            )
            for i, arrival in enumerate(arrivals)
        ]
        rebuilt = array_to_trace(trace_to_array(trace))
        for original, copy in zip(trace, rebuilt):
            assert copy.arrival_s == original.arrival_s

    def test_shared_shape_instances_compare_equal(self):
        # array_to_trace memoizes InferenceRequest per shape; value
        # equality (frozen dataclass) is what the record comparisons use.
        trace = [
            ServingRequest(
                request_id=i,
                arrival_s=float(i),
                request=InferenceRequest(
                    images=1, prompt_text_tokens=16, output_tokens=8
                ),
            )
            for i in range(4)
        ]
        rebuilt = array_to_trace(trace_to_array(trace))
        assert rebuilt == trace
        assert rebuilt[0].request is rebuilt[1].request


class TestValidation:
    def test_accepts_well_formed_arrays(self):
        array = empty_trace_array(3)
        array["request_id"] = [0, 1, 2]
        array["arrival_s"] = [0.0, 1.0, 2.0]
        array["images"] = 0
        array["prompt_text_tokens"] = 8
        array["output_tokens"] = 4
        assert validate_trace_array(array) is array

    def test_rejects_wrong_dtype_and_shape(self):
        with pytest.raises(ValueError, match="TRACE_DTYPE"):
            validate_trace_array(np.zeros(4))
        with pytest.raises(ValueError, match="1-D"):
            validate_trace_array(
                np.zeros((2, 2), dtype=TRACE_DTYPE)
            )

    def test_rejects_negative_arrivals(self):
        array = empty_trace_array(1)
        array["request_id"] = 0
        array["arrival_s"] = -1.0
        array["images"] = 0
        array["prompt_text_tokens"] = 1
        array["output_tokens"] = 1
        with pytest.raises(ValueError, match=">= 0"):
            validate_trace_array(array)

    def test_empty_and_concat_edges(self):
        assert len(empty_trace_array()) == 0
        assert len(concat_trace_arrays([])) == 0
        with pytest.raises(ValueError):
            empty_trace_array(-1)


class TestStreamingCompilation:
    @pytest.mark.parametrize("name", available_scenarios())
    def test_chunked_equals_one_shot_for_every_scenario(self, name):
        spec = get_scenario(name)
        one_shot = compile_scenario(spec)
        reference = trace_to_array(one_shot.trace)
        array, components, chunks = _chunks_concatenated(spec, 64)
        assert np.array_equal(array, reference)
        assert components == one_shot.components
        assert tuple(array_to_trace(array)) == one_shot.trace
        # Chunks are bounded and cover the trace exactly once.
        assert all(len(chunk.array) <= 64 for chunk in chunks)
        assert sum(len(chunk.array) for chunk in chunks) == spec.n_requests

    @pytest.mark.parametrize("chunk_size", [1, 7, 100_000])
    def test_spec_hash_seeding_is_byte_stable_across_chunk_sizes(
        self, chunk_size
    ):
        # Same spec, any chunking -> the same bytes: every random stream
        # is seeded from the spec hash and advanced in a fixed call
        # order, independent of where chunk boundaries fall.
        spec = get_scenario("mixed-rush-hour")
        reference, ref_components, _ = _chunks_concatenated(spec, 64)
        array, components, _ = _chunks_concatenated(spec, chunk_size)
        assert array.tobytes() == reference.tobytes()
        assert components == ref_components

    def test_chunk_size_must_be_positive(self):
        spec = get_scenario("chat-poisson")
        with pytest.raises(ValueError, match="chunk_size"):
            next(compile_scenario_chunks(spec, chunk_size=0))

    def test_request_ids_are_global_across_chunks(self):
        spec = get_scenario("chat-poisson")
        array, _, _ = _chunks_concatenated(spec, 13)
        assert array["request_id"].tolist() == list(range(spec.n_requests))
