"""Arrival-process tests: determinism, ordering and rate behaviour."""

import pytest

from repro.serving import BurstyArrivals, PoissonArrivals, RequestSampler, TraceArrivals


class TestPoissonArrivals:
    def test_deterministic_under_fixed_seed(self):
        a = PoissonArrivals(5.0, seed=123).generate(500)
        b = PoissonArrivals(5.0, seed=123).generate(500)
        assert a == b

    def test_different_seeds_differ(self):
        a = PoissonArrivals(5.0, seed=1).generate(100)
        b = PoissonArrivals(5.0, seed=2).generate(100)
        assert a != b

    def test_sorted_and_positive(self):
        times = PoissonArrivals(3.0, seed=0).generate(200)
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_mean_rate_close_to_nominal(self):
        n = 4000
        times = PoissonArrivals(8.0, seed=7).generate(n)
        observed_rate = n / times[-1]
        assert observed_rate == pytest.approx(8.0, rel=0.1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(1.0).generate(-1)


class TestBurstyArrivals:
    def test_deterministic_under_fixed_seed(self):
        a = BurstyArrivals(2.0, seed=9).generate(300)
        b = BurstyArrivals(2.0, seed=9).generate(300)
        assert a == b

    def test_mean_rate_between_base_and_burst(self):
        n = 4000
        process = BurstyArrivals(2.0, burst_multiplier=10.0, seed=5)
        times = process.generate(n)
        observed_rate = n / times[-1]
        assert 2.0 < observed_rate < 20.0

    def test_burstier_than_poisson(self):
        # The squared coefficient of variation of MMPP inter-arrivals
        # exceeds the exponential's CV^2 of 1.
        times = BurstyArrivals(2.0, burst_multiplier=10.0, seed=11).generate(4000)
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        variance = sum((gap - mean) ** 2 for gap in gaps) / len(gaps)
        assert variance / mean**2 > 1.1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BurstyArrivals(2.0, burst_multiplier=0.5)
        with pytest.raises(ValueError):
            BurstyArrivals(-1.0)


class TestTraceArrivals:
    def test_replays_prefix_in_trace_order(self):
        trace = TraceArrivals([1.0, 2.0, 3.0])
        assert trace.generate(2) == [1.0, 2.0]

    def test_rejects_unsorted_traces(self):
        # Sorting would silently re-pair timestamps with request shapes.
        with pytest.raises(ValueError):
            TraceArrivals([3.0, 1.0, 2.0])

    def test_rejects_negative_timestamps_and_overruns(self):
        with pytest.raises(ValueError):
            TraceArrivals([-1.0])
        with pytest.raises(ValueError):
            TraceArrivals([1.0]).generate(2)


class TestRequestSampler:
    def test_deterministic_under_fixed_seed(self):
        a = RequestSampler(seed=4).sample(100)
        b = RequestSampler(seed=4).sample(100)
        assert a == b

    def test_shapes_within_configured_ranges(self):
        sampler = RequestSampler(
            prompt_token_range=(10, 20), output_token_choices=(8, 16),
            output_token_weights=(0.5, 0.5), seed=1,
        )
        for request in sampler.sample(200):
            assert 10 <= request.prompt_text_tokens <= 20
            assert request.output_tokens in (8, 16)
            assert request.images == 1

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            RequestSampler(output_token_choices=(8,), output_token_weights=(0.5, 0.5))
