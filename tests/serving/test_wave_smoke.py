"""Slow smoke: the wave engine digests a million-request columnar trace.

Marked ``slow`` (excluded from the default run by ``pytest.ini``); CI
invokes it explicitly with ``pytest -m slow``.  The equivalence story
lives in ``test_wave_engine.py`` — this smoke only proves the engine
holds up at the full benchmark scale from a cold cache: every request
gets exactly one record, in request-id order, with sane timestamps.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

BENCH_PATH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "test_bench_wave_engine.py"
)


def _bench_module():
    spec = importlib.util.spec_from_file_location("bench_wave", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
def test_wave_engine_million_request_smoke():
    bench = _bench_module()
    array = bench.bench_array()
    result = bench._chip("wave").run(array)

    assert len(result.records) == bench.N_REQUESTS
    assert [r.request_id for r in result.records] == list(
        range(bench.N_REQUESTS)
    )
    assert result.decode_steps > 0
    assert 0 < result.peak_batch_size <= bench.MAX_BATCH_SIZE
    for record in result.records[:: bench.N_REQUESTS // 1000]:
        assert (
            record.arrival_s
            <= record.prefill_start_s
            <= record.prefill_end_s
            <= record.first_token_s
            <= record.finish_s
        )
