"""Tests for the digital CIM macro model (repro.arch.cim, paper Eq. 3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cim import CIMMacro, CIMMacroConfig
from repro.arch.systolic import SystolicArray, SystolicArrayConfig


class TestCIMMacroConfig:
    def test_storage_capacity(self):
        config = CIMMacroConfig(
            columns=64, subarrays_per_column=16, rows_per_subarray=64, weight_bits=8
        )
        assert config.storage_bits == 64 * 16 * 64 * 8
        assert config.storage_bytes == config.storage_bits // 8

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CIMMacroConfig(columns=0)
        with pytest.raises(ValueError):
            CIMMacroConfig(activation_bits=0)

    def test_parallelism_figures(self):
        config = CIMMacroConfig(columns=32, subarrays_per_column=8)
        assert config.parallel_outputs == 32
        assert config.reduction_depth == 8
        assert config.macs_per_gemv_block == 256


class TestEquation3:
    def test_block_gemv_completes_in_w_plus_one_cycles(self):
        """GEMV on the resident block completes in W + 1 cycles (paper)."""
        macro = CIMMacro(CIMMacroConfig(activation_bits=8))
        assert macro.block_gemv_cycles() == 9

    def test_block_gemm_cycles_match_equation(self):
        """L_CIM = M * W + 1 (paper Eq. 3)."""
        macro = CIMMacro(CIMMacroConfig(activation_bits=8))
        for m in (1, 4, 64, 300):
            assert macro.block_gemm_cycles(m) == m * 8 + 1

    def test_block_gemm_rejects_bad_m(self):
        with pytest.raises(ValueError):
            CIMMacro().block_gemm_cycles(0)

    def test_gemv_tiles_over_geometry(self):
        config = CIMMacroConfig(columns=64, subarrays_per_column=16, activation_bits=8)
        macro = CIMMacro(config)
        k, n = 64, 256
        expected = math.ceil(k / 16) * math.ceil(n / 64) * 9
        assert macro.gemv_cycles(k, n) == expected

    def test_gemm_pays_bit_serial_row_factor(self):
        macro = CIMMacro(CIMMacroConfig(activation_bits=8))
        gemv = macro.gemv_cycles(64, 64)
        gemm = macro.gemm_cycles(16, 64, 64)
        assert gemm > 10 * gemv

    @given(
        k=st.integers(min_value=1, max_value=512),
        n=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=50, deadline=None)
    def test_gemv_cycles_positive_and_monotonic_in_n(self, k, n):
        macro = CIMMacro()
        cycles = macro.gemv_cycles(k, n)
        assert cycles > 0
        assert macro.gemv_cycles(k, n + macro.config.columns) > cycles


class TestCrossCoprocessorComparison:
    """The heterogeneity argument of the paper, in numbers."""

    def test_cim_beats_systolic_array_on_gemv(self):
        sa = SystolicArray(SystolicArrayConfig(rows=16, cols=16))
        cim = CIMMacro(CIMMacroConfig(columns=64, subarrays_per_column=16, activation_bits=8))
        k, n = 2048, 2048
        assert cim.gemv_cycles(k, n) < sa.gemv_cycles(k, n) / 2

    def test_systolic_array_beats_cim_on_gemm(self):
        # The default macro broadcasts BF16 activations bit-serially (W = 16),
        # which is the bit-width factor that penalises GEMM on the CIM path.
        sa = SystolicArray(SystolicArrayConfig(rows=16, cols=16))
        cim = CIMMacro(CIMMacroConfig(columns=64, subarrays_per_column=16))
        m, k, n = 256, 1024, 1024
        assert sa.gemm_cycles(m, k, n) < cim.gemm_cycles(m, k, n) / 2


class TestWeightStorage:
    def test_fits_weights(self):
        macro = CIMMacro(
            CIMMacroConfig(columns=64, subarrays_per_column=16, rows_per_subarray=64)
        )
        assert macro.fits_weights(64, 1024)
        assert not macro.fits_weights(4096, 4096)

    def test_weight_fill_cycles(self):
        macro = CIMMacro(CIMMacroConfig(weight_bits=8))
        assert macro.weight_fill_cycles(64, 64, bytes_per_cycle=64) == 64
        with pytest.raises(ValueError):
            macro.weight_fill_cycles(64, 64, bytes_per_cycle=0)

    def test_gemv_utilization_high_for_aligned_shapes(self):
        macro = CIMMacro()
        aligned_k = macro.config.subarrays_per_column * 4
        aligned_n = macro.config.columns * 4
        assert macro.gemv_utilization(aligned_k, aligned_n) > 0.9

    def test_peak_flops_positive(self):
        macro = CIMMacro()
        assert macro.peak_flops(1e9) > 0
        with pytest.raises(ValueError):
            macro.peak_flops(-1)
