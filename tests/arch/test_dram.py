"""Tests for the DRAM / effective-bandwidth model (repro.arch.dram)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.dram import DRAMConfig, DRAMModel


class TestDRAMConfig:
    def test_bytes_per_cycle(self):
        config = DRAMConfig(peak_bandwidth_bytes_per_s=64e9, frequency_hz=1e9)
        assert config.bytes_per_cycle == pytest.approx(64.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DRAMConfig(peak_bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            DRAMConfig(frequency_hz=-1)
        with pytest.raises(ValueError):
            DRAMConfig(request_overhead_cycles=-1)


class TestTransferLatency:
    def test_zero_payload_is_free(self):
        assert DRAMModel().transfer_cycles(0) == 0.0

    def test_overhead_paid_per_transfer(self):
        model = DRAMModel(DRAMConfig(request_overhead_cycles=100))
        one = model.transfer_cycles(1024, transfers=1)
        two = model.transfer_cycles(1024, transfers=2)
        assert two - one == pytest.approx(100.0)

    def test_rejects_bad_arguments(self):
        model = DRAMModel()
        with pytest.raises(ValueError):
            model.transfer_cycles(-1)
        with pytest.raises(ValueError):
            model.transfer_cycles(10, transfers=0)

    def test_seconds_conversion(self):
        config = DRAMConfig(frequency_hz=1e9)
        model = DRAMModel(config)
        cycles = model.transfer_cycles(4096)
        assert model.transfer_seconds(4096) == pytest.approx(cycles / 1e9)

    def test_transfers_for_buffer(self):
        model = DRAMModel()
        assert model.transfers_for(0, 1024) == 0
        assert model.transfers_for(1024, 1024) == 1
        assert model.transfers_for(1025, 1024) == 2
        with pytest.raises(ValueError):
            model.transfers_for(10, 0)


class TestEffectiveBandwidth:
    """The Fig. 6(b) behaviour."""

    def test_small_transfers_are_inefficient(self):
        model = DRAMModel()
        assert model.effective_bandwidth_fraction(1024) < 0.5

    def test_large_transfers_approach_ideal(self):
        model = DRAMModel()
        assert model.effective_bandwidth_fraction(4 * 1024 * 1024) > 0.95

    def test_monotonically_increasing_with_size(self):
        model = DRAMModel()
        sizes = [1024 * (2**i) for i in range(12)]
        fractions = [model.effective_bandwidth_fraction(size) for size in sizes]
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))

    def test_never_exceeds_ideal(self):
        model = DRAMModel()
        for size in (512, 4096, 1 << 20, 1 << 26):
            assert model.effective_bandwidth(size) <= model.config.peak_bandwidth_bytes_per_s

    def test_curve_matches_pointwise_queries(self):
        model = DRAMModel()
        sizes = [1024, 65536, 1 << 20]
        curve = model.effective_bandwidth_curve(sizes)
        assert len(curve) == 3
        for (size, bandwidth, fraction) in curve:
            assert bandwidth == pytest.approx(model.effective_bandwidth(size))
            assert fraction == pytest.approx(model.effective_bandwidth_fraction(size))

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            DRAMModel().effective_bandwidth(0)

    @given(size=st.integers(min_value=1, max_value=1 << 28))
    @settings(max_examples=60, deadline=None)
    def test_fraction_always_in_unit_interval(self, size):
        fraction = DRAMModel().effective_bandwidth_fraction(size)
        assert 0.0 < fraction <= 1.0


class TestMatrixHelpers:
    def test_matrix_transfer_bytes(self):
        model = DRAMModel()
        assert model.matrix_transfer_bytes(64, 64, element_bytes=2.0) == 8192
        with pytest.raises(ValueError):
            model.matrix_transfer_bytes(0, 4)
        with pytest.raises(ValueError):
            model.matrix_transfer_bytes(4, 4, element_bytes=0)
