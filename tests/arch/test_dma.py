"""Tests for the DMA engine and PMC throttling (repro.arch.dma)."""

import pytest

from repro.arch.dma import (
    BandwidthBudget,
    ThrottledDMA,
    allocate_fair_shares,
)
from repro.arch.dram import DRAMConfig, DRAMModel


@pytest.fixture
def dram() -> DRAMModel:
    return DRAMModel(DRAMConfig(peak_bandwidth_bytes_per_s=64e9, frequency_hz=1e9))


class TestBandwidthBudget:
    def test_unthrottled_has_no_cap(self):
        assert BandwidthBudget().bytes_per_cycle_cap is None

    def test_cap_is_budget_over_interval(self):
        budget = BandwidthBudget(budget_bytes=64_000, interval_cycles=1_000)
        assert budget.bytes_per_cycle_cap == pytest.approx(64.0)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BandwidthBudget(interval_cycles=0)
        with pytest.raises(ValueError):
            BandwidthBudget(budget_bytes=-1)


class TestSustainedBandwidth:
    def test_unthrottled_gets_fair_share(self, dram):
        dma = ThrottledDMA("cc0", dram)
        assert dma.sustained_bytes_per_cycle(8.0) == pytest.approx(8.0)

    def test_budget_caps_fair_share(self, dram):
        budget = BandwidthBudget(budget_bytes=4_000, interval_cycles=1_000)
        dma = ThrottledDMA("cc0", dram, budget=budget)
        assert dma.sustained_bytes_per_cycle(8.0) == pytest.approx(4.0)

    def test_generous_budget_does_not_add_bandwidth(self, dram):
        budget = BandwidthBudget(budget_bytes=1_000_000, interval_cycles=1_000)
        dma = ThrottledDMA("cc0", dram, budget=budget)
        assert dma.sustained_bytes_per_cycle(8.0) == pytest.approx(8.0)

    def test_rejects_negative_share(self, dram):
        with pytest.raises(ValueError):
            ThrottledDMA("cc0", dram).sustained_bytes_per_cycle(-1.0)


class TestTransferCycles:
    def test_chunking_by_buffer_size(self, dram):
        dma = ThrottledDMA("cc0", dram, buffer_bytes=1024)
        one_chunk = dma.transfer_cycles(1024)
        four_chunks = dma.transfer_cycles(4096)
        overhead = dram.config.request_overhead_cycles
        assert four_chunks == pytest.approx(4 * (one_chunk - overhead) + 4 * overhead)

    def test_zero_payload_free(self, dram):
        assert ThrottledDMA("cc0", dram).transfer_cycles(0) == 0.0

    def test_rejects_bad_buffer(self, dram):
        with pytest.raises(ValueError):
            ThrottledDMA("cc0", dram, buffer_bytes=0)


class TestPMCBehaviour:
    def test_transfers_block_after_budget_exhausted(self, dram):
        budget = BandwidthBudget(budget_bytes=2_048, interval_cycles=10_000)
        dma = ThrottledDMA("cc0", dram, budget=budget, buffer_bytes=4_096)
        first = dma.issue(2_048)
        second = dma.issue(2_048)
        # The second transfer must wait for the next PMC interval boundary.
        assert first.issue_cycle == 0.0
        assert second.issue_cycle >= 10_000

    def test_unthrottled_transfers_run_back_to_back(self, dram):
        dma = ThrottledDMA("cc0", dram, buffer_bytes=4_096)
        first = dma.issue(2_048)
        second = dma.issue(2_048)
        assert second.issue_cycle == pytest.approx(first.complete_cycle)

    def test_records_and_reset(self, dram):
        dma = ThrottledDMA("cc0", dram)
        dma.issue(1_000)
        dma.issue(2_000)
        assert dma.total_bytes_moved == 3_000
        assert len(dma.records) == 2
        assert dma.observed_bandwidth_bytes_per_cycle() > 0
        dma.reset()
        assert dma.total_bytes_moved == 0
        assert dma.elapsed_cycles == 0.0
        assert dma.pmc_bytes == 0

    def test_issue_rejects_non_positive(self, dram):
        with pytest.raises(ValueError):
            ThrottledDMA("cc0", dram).issue(0)

    def test_throttled_bandwidth_is_lower_than_unthrottled(self, dram):
        tight = BandwidthBudget(budget_bytes=1_024, interval_cycles=50_000)
        throttled = ThrottledDMA("cc0", dram, budget=tight, buffer_bytes=1_024)
        free = ThrottledDMA("cc1", dram, buffer_bytes=1_024)
        for _ in range(8):
            throttled.issue(1_024)
            free.issue(1_024)
        assert (
            throttled.observed_bandwidth_bytes_per_cycle()
            < free.observed_bandwidth_bytes_per_cycle()
        )


class TestFairShares:
    def test_proportional_split(self):
        shares = allocate_fair_shares(64.0, {"cc": 1.0, "mc": 3.0})
        assert shares["cc"] == pytest.approx(16.0)
        assert shares["mc"] == pytest.approx(48.0)

    def test_equal_split(self):
        shares = allocate_fair_shares(64.0, {"cc": 1.0, "mc": 1.0})
        assert shares["cc"] == shares["mc"] == pytest.approx(32.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            allocate_fair_shares(0.0, {"cc": 1.0})
        with pytest.raises(ValueError):
            allocate_fair_shares(64.0, {})
        with pytest.raises(ValueError):
            allocate_fair_shares(64.0, {"cc": -1.0})
        with pytest.raises(ValueError):
            allocate_fair_shares(64.0, {"cc": 0.0, "mc": 0.0})
