"""Tests for the hardware Act-Aware pruner (repro.arch.pruner_hw)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.arch.pruner_hw import HardwarePruner, PrunerConfig


@pytest.fixture
def pruner() -> HardwarePruner:
    return HardwarePruner(PrunerConfig(vector_length=64, threshold_divisor=16.0))


class TestPrunerConfig:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            PrunerConfig(threshold_divisor=1.0)

    def test_rejects_bad_vector_length(self):
        with pytest.raises(ValueError):
            PrunerConfig(vector_length=0)


class TestTopKEngine:
    def test_selects_largest_magnitudes(self, pruner):
        vs = np.array([0.1, -5.0, 0.2, 3.0, -0.05, 0.0, 1.0, -2.0])
        mask = pruner.topk_mask(vs, 3)
        assert mask.sum() == 3
        assert set(np.flatnonzero(mask)) == {1, 3, 7}

    def test_k_zero_returns_empty_mask(self, pruner):
        mask = pruner.topk_mask(np.ones(8), 0)
        assert mask.sum() == 0

    def test_k_larger_than_vector_keeps_all(self, pruner):
        mask = pruner.topk_mask(np.ones(8), 100)
        assert mask.sum() == 8

    def test_rejects_negative_k(self, pruner):
        with pytest.raises(ValueError):
            pruner.topk_mask(np.ones(8), -1)

    def test_rejects_oversized_vector(self, pruner):
        with pytest.raises(ValueError):
            pruner.topk_mask(np.ones(65), 1)

    def test_rejects_non_vector_input(self, pruner):
        with pytest.raises(ValueError):
            pruner.topk_mask(np.ones((4, 4)), 2)


class TestThresholdMask:
    def test_counts_channels_above_max_over_t(self, pruner):
        vs = np.array([16.0, 1.5, 0.5, -2.0, 0.9])
        # threshold = 16/16 = 1.0 -> strictly above: 16.0, 1.5, -2.0
        assert pruner.threshold_count(vs) == 3

    def test_zero_vector_counts_zero(self, pruner):
        assert pruner.threshold_count(np.zeros(8)) == 0

    def test_all_equal_vector_counts_all(self, pruner):
        assert pruner.threshold_count(np.full(8, 2.0)) == 8


class TestAddressGenerator:
    def test_addresses_follow_row_stride(self):
        pruner = HardwarePruner(
            PrunerConfig(vector_length=8, weight_row_bytes=128, base_address=1000)
        )
        mask = np.array([True, False, False, True, False, False, False, True])
        addresses = pruner.generate_addresses(mask)
        np.testing.assert_array_equal(addresses, [1000, 1000 + 3 * 128, 1000 + 7 * 128])

    def test_empty_mask_gives_no_addresses(self, pruner):
        assert pruner.generate_addresses(np.zeros(8, dtype=bool)).size == 0


class TestFullPipeline:
    def test_process_outputs_consistent(self, pruner):
        rng = np.random.default_rng(0)
        vs = rng.normal(size=64)
        result = pruner.process(vs, k=8)
        assert result.kept == 8
        assert result.selected_values.shape == (8,)
        assert result.weight_addresses.shape == (8,)
        assert result.pruning_ratio == pytest.approx(1 - 8 / 64)
        np.testing.assert_array_equal(result.selected_values, vs[result.selected_channels])

    def test_threshold_count_matches_direct_call(self, pruner):
        vs = np.linspace(-1, 1, 64)
        result = pruner.process(vs, k=4)
        assert result.above_threshold_count == pruner.threshold_count(vs)

    def test_cycles_grow_with_vector_length(self):
        short = HardwarePruner(PrunerConfig(vector_length=32)).invocation_cycles(32, 8)
        long = HardwarePruner(PrunerConfig(vector_length=128)).invocation_cycles(128, 8)
        assert long > short

    def test_invocation_cycles_validation(self, pruner):
        with pytest.raises(ValueError):
            pruner.invocation_cycles(0, 0)
        with pytest.raises(ValueError):
            pruner.invocation_cycles(10, 20)

    @given(
        vs=arrays(
            dtype=float,
            shape=st.integers(min_value=1, max_value=64),
            elements=st.floats(
                min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
            ),
        ),
        k=st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_selected_channels_are_the_top_k_by_magnitude(self, vs, k):
        pruner = HardwarePruner(PrunerConfig(vector_length=64))
        result = pruner.process(vs, min(k, vs.size))
        kept = min(k, vs.size)
        assert result.kept == kept
        if kept and kept < vs.size:
            selected_min = np.abs(vs[result.selected_channels]).min()
            unselected = np.setdiff1d(np.arange(vs.size), result.selected_channels)
            assert selected_min >= np.abs(vs[unselected]).max() - 1e-12
