"""Tests for the 22nm area/power model (repro.arch.area_power)."""

import pytest

from repro.arch.area_power import AreaPowerModel, TechnologyConfig
from repro.arch.chip import ChipConfig


@pytest.fixture(scope="module")
def model() -> AreaPowerModel:
    return AreaPowerModel(ChipConfig())


class TestTechnologyConfig:
    def test_rejects_bad_node(self):
        with pytest.raises(ValueError):
            TechnologyConfig(node_nm=0)

    def test_rejects_bad_activity(self):
        with pytest.raises(ValueError):
            TechnologyConfig(dynamic_activity_factor=0.0)


class TestAreaModel:
    def test_sa_dominates_cc_core(self, model):
        """Fig. 10: the SA coprocessor occupies ~62% of a CC-core."""
        report = model.area_report()
        assert 0.5 <= report.sa_fraction_of_cc_core <= 0.8

    def test_cim_dominates_mc_core(self, model):
        """Fig. 10: the CIM macro occupies ~81% of an MC-core."""
        report = model.area_report()
        assert 0.7 <= report.cim_fraction_of_mc_core <= 0.98

    def test_cluster_areas_exceed_core_areas(self, model):
        report = model.area_report()
        assert report.cc_cluster_mm2 > 4 * report.cc_core_mm2
        assert report.mc_cluster_mm2 > 2 * report.mc_core_mm2

    def test_chip_area_sums_breakdown(self, model):
        report = model.area_report()
        total = sum(report.breakdown_mm2.values())
        assert report.chip_mm2 == pytest.approx(total, rel=1e-6)

    def test_area_scales_with_cluster_count(self):
        small = AreaPowerModel(ChipConfig(n_groups=2)).chip_area_mm2()
        large = AreaPowerModel(ChipConfig(n_groups=4)).chip_area_mm2()
        assert large > 1.8 * small


class TestPowerModel:
    def test_power_at_decode_utilisation_near_paper_value(self, model):
        """At low compute activity the chip power should land near 112 mW."""
        report = model.power_report(utilization=0.1)
        assert 50.0 <= report.total_mw <= 250.0

    def test_power_grows_with_utilisation(self, model):
        idle = model.power_report(utilization=0.0).total_mw
        busy = model.power_report(utilization=1.0).total_mw
        assert busy > idle

    def test_power_components_sum_to_total(self, model):
        report = model.power_report(utilization=0.5)
        components = (
            report.leakage_mw
            + report.host_cores_mw
            + report.cc_compute_mw
            + report.mc_compute_mw
            + report.sram_mw
        )
        assert report.total_mw == pytest.approx(components)

    def test_power_rejects_bad_utilisation(self, model):
        with pytest.raises(ValueError):
            model.power_report(utilization=1.5)

    def test_energy_per_token(self, model):
        energy = model.energy_per_token_j(tokens_per_second=100.0)
        assert energy > 0
        assert model.tokens_per_joule(100.0) == pytest.approx(1.0 / energy)
        with pytest.raises(ValueError):
            model.energy_per_token_j(0.0)
