"""Tests for the shared auxiliary compute units (repro.arch.acu)."""

import pytest

from repro.arch.acu import ACUConfig, AuxiliaryComputeUnits, DEFAULT_OP_CYCLES


class TestACUConfig:
    def test_default_op_table_present(self):
        config = ACUConfig()
        assert set(config.op_cycles) == set(DEFAULT_OP_CYCLES)

    def test_rejects_bad_units(self):
        with pytest.raises(ValueError):
            ACUConfig(units=0)

    def test_rejects_bad_cycle_costs(self):
        with pytest.raises(ValueError):
            ACUConfig(op_cycles={"mul32": 0})


class TestAuxiliaryComputeUnits:
    def test_op_cycles_lookup(self):
        acu = AuxiliaryComputeUnits()
        assert acu.op_cycles("div32") == DEFAULT_OP_CYCLES["div32"]

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            AuxiliaryComputeUnits().op_cycles("fma128")

    def test_batch_cycles_sum_and_parallelise(self):
        acu = AuxiliaryComputeUnits(ACUConfig(units=4))
        serial = acu.batch_cycles({"mul32": 8}, requesting_cores=1)
        parallel = acu.batch_cycles({"mul32": 8}, requesting_cores=4)
        assert parallel == pytest.approx(serial / 4)

    def test_parallelism_capped_by_units(self):
        acu = AuxiliaryComputeUnits(ACUConfig(units=2))
        two = acu.batch_cycles({"exp": 8}, requesting_cores=2)
        eight = acu.batch_cycles({"exp": 8}, requesting_cores=8)
        assert two == pytest.approx(eight)

    def test_batch_rejects_bad_inputs(self):
        acu = AuxiliaryComputeUnits()
        with pytest.raises(ValueError):
            acu.batch_cycles({"mul32": -1})
        with pytest.raises(ValueError):
            acu.batch_cycles({"mul32": 1}, requesting_cores=0)

    def test_softmax_cost_scales_with_elements(self):
        acu = AuxiliaryComputeUnits()
        assert acu.softmax_cycles(200) > acu.softmax_cycles(100)
        with pytest.raises(ValueError):
            acu.softmax_cycles(0)

    def test_rmsnorm_cost_positive(self):
        acu = AuxiliaryComputeUnits()
        assert acu.rmsnorm_cycles(128) > 0
        with pytest.raises(ValueError):
            acu.rmsnorm_cycles(0)
