"""Tests for the core-level models (repro.arch.cores)."""

import pytest

from repro.arch.cores import (
    CCCore,
    CCCoreConfig,
    HostCore,
    HostCoreConfig,
    MCCore,
    MCCoreConfig,
)


class TestHostCore:
    def test_matmul_cycles_scale_with_work(self):
        core = HostCore()
        small = core.matmul_cycles(4, 16, 16)
        large = core.matmul_cycles(8, 16, 16)
        assert large == pytest.approx(2 * small)

    def test_overhead_factor_applied(self):
        lean = HostCore(HostCoreConfig(issue_overhead_factor=1.0))
        heavy = HostCore(HostCoreConfig(issue_overhead_factor=2.0))
        assert heavy.matmul_cycles(4, 16, 16) == pytest.approx(
            2 * lean.matmul_cycles(4, 16, 16)
        )

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            HostCoreConfig(simd_lanes=0)
        with pytest.raises(ValueError):
            HostCoreConfig(issue_overhead_factor=0.5)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            HostCore().matmul_cycles(0, 4, 4)
        with pytest.raises(ValueError):
            HostCore().elementwise_cycles(0)


class TestCCCore:
    def test_gemm_faster_than_host_core(self):
        cc = CCCore()
        host = HostCore()
        assert cc.gemm_cycles(64, 256, 256) < host.matmul_cycles(64, 256, 256) / 10

    def test_gemm_includes_dispatch_overhead(self):
        config = CCCoreConfig(dispatch_overhead_cycles=100)
        cc = CCCore(config)
        bare = cc.systolic.gemm_cycles(16, 16, 16)
        assert cc.gemm_cycles(16, 16, 16) == bare + 100

    def test_gemv_runs_but_is_inefficient(self):
        cc = CCCore()
        gemv = cc.gemv_cycles(256, 256)
        gemm = cc.gemm_cycles(256, 256, 256)
        # Same weight tile count, ~256x less work, but far fewer than 256x
        # fewer cycles: the array is idle most of the time.
        assert gemv > gemm / 32

    def test_elementwise_uses_vector_width(self):
        cc = CCCore()
        lanes = cc.config.systolic.cols
        assert cc.elementwise_cycles(lanes) == pytest.approx(1.0)
        assert cc.elementwise_cycles(lanes + 1) == pytest.approx(2.0)

    def test_peak_macs(self):
        cc = CCCore()
        assert cc.peak_macs_per_cycle == cc.config.systolic.rows * cc.config.systolic.cols


class TestMCCore:
    def test_gemv_faster_than_cc_core(self):
        mc = MCCore()
        cc = CCCore()
        assert mc.gemv_cycles(2048, 2048) < cc.gemv_cycles(2048, 2048)

    def test_gemm_slower_than_cc_core(self):
        mc = MCCore()
        cc = CCCore()
        assert mc.gemm_cycles(256, 1024, 1024) > cc.gemm_cycles(256, 1024, 1024)

    def test_pruned_gemv_saves_cycles(self):
        mc = MCCore()
        full = mc.gemv_cycles(2048, 2048)
        pruned = mc.pruned_gemv_cycles(2048, 2048, keep_fraction=0.25)
        assert pruned < full

    def test_pruned_gemv_includes_pruner_cost(self):
        mc = MCCore()
        nearly_full = mc.pruned_gemv_cycles(2048, 2048, keep_fraction=1.0)
        assert nearly_full > mc.gemv_cycles(2048, 2048)

    def test_pruned_gemv_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            MCCore().pruned_gemv_cycles(64, 64, keep_fraction=0.0)
        with pytest.raises(ValueError):
            MCCore().pruned_gemv_cycles(64, 64, keep_fraction=1.5)

    def test_weight_storage_matches_macro(self):
        mc = MCCore()
        assert mc.weight_storage_bytes == mc.config.cim.storage_bytes

    def test_elementwise_cycles_positive(self):
        assert MCCore().elementwise_cycles(100) > 0
        with pytest.raises(ValueError):
            MCCore().elementwise_cycles(0)

    def test_dispatch_overhead_applied(self):
        config = MCCoreConfig(dispatch_overhead_cycles=50)
        mc = MCCore(config)
        assert mc.gemv_cycles(64, 64) == mc.cim.gemv_cycles(64, 64) + 50
