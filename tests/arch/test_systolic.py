"""Tests for the systolic-array model (repro.arch.systolic, paper Eq. 2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.systolic import SystolicArray, SystolicArrayConfig


class TestSystolicArrayConfig:
    def test_defaults_match_paper_style_array(self):
        config = SystolicArrayConfig()
        assert config.pe_count == config.rows * config.cols
        assert config.matrix_registers == 4
        assert config.peak_flops_per_cycle == 2 * config.pe_count

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SystolicArrayConfig(rows=0)
        with pytest.raises(ValueError):
            SystolicArrayConfig(matrix_registers=1)
        with pytest.raises(ValueError):
            SystolicArrayConfig(weight_bits=0)


class TestEquation2:
    def test_tile_cycles_matches_paper_equation(self):
        """L_SA = 2R + C + M - 3 (paper Eq. 2)."""
        array = SystolicArray(SystolicArrayConfig(rows=16, cols=16))
        for m in (1, 8, 16, 300):
            assert array.tile_cycles(m) == 2 * 16 + 16 + m - 3

    def test_tile_cycles_general_geometry(self):
        array = SystolicArray(SystolicArrayConfig(rows=8, cols=32))
        assert array.tile_cycles(10) == 2 * 8 + 32 + 10 - 3

    def test_tile_cycles_rejects_bad_m(self):
        with pytest.raises(ValueError):
            SystolicArray().tile_cycles(0)

    def test_single_tile_gemm_equals_tile_cycles(self):
        config = SystolicArrayConfig(rows=16, cols=16)
        array = SystolicArray(config)
        assert array.gemm_cycles(12, 16, 16) == array.tile_cycles(12)

    def test_gemm_tiles_multiply(self):
        array = SystolicArray(SystolicArrayConfig(rows=16, cols=16))
        # k = 32 -> 2 weight-row tiles, n = 48 -> 3 column tiles.
        assert array.gemm_cycles(10, 32, 48) == 6 * array.tile_cycles(10)

    def test_partial_tiles_cost_full_tiles(self):
        array = SystolicArray(SystolicArrayConfig(rows=16, cols=16))
        assert array.gemm_cycles(4, 17, 17) == 4 * array.tile_cycles(4)

    def test_gemv_is_gemm_with_one_row(self):
        array = SystolicArray()
        assert array.gemv_cycles(64, 64) == array.gemm_cycles(1, 64, 64)

    @given(
        m=st.integers(min_value=1, max_value=256),
        k=st.integers(min_value=1, max_value=256),
        n=st.integers(min_value=1, max_value=256),
    )
    @settings(max_examples=60, deadline=None)
    def test_gemm_cycles_scale_with_tile_count(self, m, k, n):
        config = SystolicArrayConfig(rows=16, cols=16)
        array = SystolicArray(config)
        cycles = array.gemm_cycles(m, k, n)
        expected_tiles = math.ceil(k / 16) * math.ceil(n / 16)
        assert cycles == expected_tiles * array.tile_cycles(m)


class TestUtilization:
    def test_large_gemm_utilization_is_high(self):
        array = SystolicArray()
        assert array.gemm_utilization(512, 512, 512) > 0.8

    def test_gemv_utilization_is_poor(self):
        """The paper's motivation: GEMV leaves the PE array mostly idle."""
        array = SystolicArray()
        assert array.gemv_cycles(2048, 2048) > 0
        assert array.gemm_utilization(1, 2048, 2048) < 0.15

    def test_gemm_beats_gemv_utilization(self):
        array = SystolicArray()
        assert array.gemm_utilization(256, 256, 256) > 5 * array.gemm_utilization(1, 256, 256)

    def test_effective_macs_bounded_by_peak(self):
        array = SystolicArray()
        assert array.effective_macs_per_cycle(128, 128, 128) <= array.config.macs_per_cycle

    def test_peak_flops_scales_with_frequency(self):
        array = SystolicArray()
        assert array.peak_flops(2e9) == 2 * array.peak_flops(1e9)
        with pytest.raises(ValueError):
            array.peak_flops(0)

    def test_weight_tile_bytes(self):
        array = SystolicArray(SystolicArrayConfig(rows=16, cols=16, weight_bits=8))
        assert array.weight_tile_bytes() == 256
