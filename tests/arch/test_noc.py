"""Tests for the hierarchical interconnect model (repro.arch.noc)."""

import pytest

from repro.arch.noc import CrossbarConfig, InterconnectConfig, InterconnectModel


class TestCrossbarConfig:
    def test_aggregate_bandwidth(self):
        xbar = CrossbarConfig(name="x", ports=4, bytes_per_cycle_per_port=32.0)
        assert xbar.aggregate_bytes_per_cycle == 128.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CrossbarConfig(name="x", ports=0)
        with pytest.raises(ValueError):
            CrossbarConfig(name="x", ports=2, latency_cycles=-1)
        with pytest.raises(ValueError):
            CrossbarConfig(name="x", ports=2, bytes_per_cycle_per_port=0)


class TestInterconnectModel:
    def test_traversal_latency_sums_levels(self):
        config = InterconnectConfig()
        model = InterconnectModel(config)
        expected = sum(level.latency_cycles for level in config.levels)
        assert model.request_latency_cycles() == expected

    def test_no_contention_within_port_count(self):
        model = InterconnectModel()
        level = model.config.cluster_bus
        assert model.contention_factor(level.ports, level) == 1.0

    def test_contention_beyond_ports(self):
        model = InterconnectModel()
        level = model.config.group_crossbar
        assert model.contention_factor(2 * level.ports, level) == pytest.approx(2.0)

    def test_contention_rejects_bad_requesters(self):
        model = InterconnectModel()
        with pytest.raises(ValueError):
            model.contention_factor(0, model.config.cluster_bus)

    def test_effective_transfer_zero_payload(self):
        assert InterconnectModel().effective_transfer_cycles(0) == 0.0

    def test_effective_transfer_grows_with_contention(self):
        model = InterconnectModel()
        light = model.effective_transfer_cycles(1 << 20, active_requesters=1)
        heavy = model.effective_transfer_cycles(1 << 20, active_requesters=64)
        assert heavy > light

    def test_effective_transfer_rejects_negative_payload(self):
        with pytest.raises(ValueError):
            InterconnectModel().effective_transfer_cycles(-1)

    def test_bisection_bandwidth_positive(self):
        assert InterconnectModel().bisection_bandwidth_bytes_per_cycle() > 0

    def test_min_bytes_per_cycle_is_tightest_level(self):
        model = InterconnectModel()
        assert model.min_bytes_per_cycle() == min(
            level.aggregate_bytes_per_cycle for level in model.config.levels
        )
