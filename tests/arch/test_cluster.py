"""Tests for the cluster-level models (repro.arch.cluster)."""

import pytest

from repro.arch.cluster import (
    CCCluster,
    CCClusterConfig,
    MCCluster,
    MCClusterConfig,
    SnitchCluster,
    SnitchClusterConfig,
)


class TestClusterConfigs:
    def test_paper_core_counts(self):
        """Fig. 4 / Fig. 10: 4 CC-cores per CC-cluster, 2 MC-cores per MC-cluster."""
        assert CCClusterConfig().n_cores == 4
        assert MCClusterConfig().n_cores == 2

    def test_reject_bad_core_counts(self):
        with pytest.raises(ValueError):
            CCClusterConfig(n_cores=0)
        with pytest.raises(ValueError):
            MCClusterConfig(n_cores=0)
        with pytest.raises(ValueError):
            SnitchClusterConfig(n_cores=0)

    def test_reject_bad_memories(self):
        with pytest.raises(ValueError):
            CCClusterConfig(data_memory_bytes=0)
        with pytest.raises(ValueError):
            MCClusterConfig(shared_buffer_bytes=0)


class TestCCCluster:
    def test_work_partitioned_across_cores(self):
        cluster = CCCluster()
        single_core = cluster.core.gemm_cycles(64, 256, 256)
        split = cluster.gemm_cycles(64, 256, 256)
        assert split < single_core
        assert split >= single_core / cluster.n_cores

    def test_peak_macs_scale_with_cores(self):
        cluster = CCCluster()
        assert cluster.peak_macs_per_cycle == cluster.n_cores * cluster.core.peak_macs_per_cycle

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            CCCluster().gemm_cycles(0, 4, 4)
        with pytest.raises(ValueError):
            CCCluster().gemv_cycles(0, 4)
        with pytest.raises(ValueError):
            CCCluster().elementwise_cycles(0)


class TestMCCluster:
    def test_data_memory_is_cim_plus_buffer(self):
        cluster = MCCluster()
        expected = (
            cluster.n_cores * cluster.core.weight_storage_bytes
            + cluster.config.shared_buffer_bytes
        )
        assert cluster.data_memory_bytes == expected

    def test_mc_cluster_memory_larger_than_cc(self):
        """The paper: MC-clusters have significantly larger data memory."""
        assert MCCluster().data_memory_bytes > 4 * CCCluster().data_memory_bytes

    def test_gemv_partitioned_across_cores(self):
        cluster = MCCluster()
        single = cluster.core.gemv_cycles(2048, 2048)
        split = cluster.gemv_cycles(2048, 2048)
        assert split < single

    def test_pruned_gemv_saves_cycles(self):
        cluster = MCCluster()
        assert cluster.pruned_gemv_cycles(2048, 2048, 0.25) < cluster.gemv_cycles(2048, 2048)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            MCCluster().gemv_cycles(0, 4)
        with pytest.raises(ValueError):
            MCCluster().gemm_cycles(1, 0, 4)
        with pytest.raises(ValueError):
            MCCluster().pruned_gemv_cycles(0, 4, 0.5)


class TestClusterComparisons:
    """Cluster-level versions of the paper's Fig. 11 phase observations."""

    def test_cc_cluster_wins_gemm(self):
        cc = CCCluster()
        mc = MCCluster()
        m, k, n = 300, 2048, 2048
        assert cc.gemm_cycles(m, k, n) < mc.gemm_cycles(m, k, n) / 2

    def test_mc_cluster_wins_gemv(self):
        cc = CCCluster()
        mc = MCCluster()
        k, n = 2048, 5632
        assert mc.gemv_cycles(k, n) < cc.gemv_cycles(k, n)

    def test_extensions_beat_snitch_cluster_on_gemm(self):
        snitch = SnitchCluster()
        cc = CCCluster()
        m, k, n = 300, 1024, 1024
        assert cc.gemm_cycles(m, k, n) < snitch.gemm_cycles(m, k, n) / 10

    def test_extensions_beat_snitch_cluster_on_gemv(self):
        snitch = SnitchCluster()
        mc = MCCluster()
        assert mc.gemv_cycles(2048, 2048) < snitch.gemv_cycles(2048, 2048)


class TestSnitchCluster:
    def test_gemv_is_single_row_gemm(self):
        snitch = SnitchCluster()
        assert snitch.gemv_cycles(64, 64) == snitch.gemm_cycles(1, 64, 64)

    def test_peak_macs(self):
        snitch = SnitchCluster()
        assert snitch.peak_macs_per_cycle == (
            snitch.n_cores * snitch.core.config.macs_per_cycle
        )

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            SnitchCluster().gemm_cycles(0, 4, 4)
        with pytest.raises(ValueError):
            SnitchCluster().elementwise_cycles(0)
