"""Tests for the chip/group assembly (repro.arch.chip)."""

import pytest

from repro.arch.chip import (
    Chip,
    ChipConfig,
    GroupConfig,
    homo_cc_chip_config,
    homo_mc_chip_config,
)


class TestChipConfig:
    def test_default_matches_fig10(self):
        """4 groups x (2 CC + 2 MC clusters); 4/2 cores per cluster type."""
        config = ChipConfig()
        assert config.n_groups == 4
        assert config.n_cc_clusters == 8
        assert config.n_mc_clusters == 8
        assert config.n_cc_cores == 32
        assert config.n_mc_cores == 16

    def test_total_cores_includes_dma_hosts(self):
        config = ChipConfig()
        assert config.total_cores == 32 + 16 + 8 + 8

    def test_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            ChipConfig(n_groups=0)
        with pytest.raises(ValueError):
            ChipConfig(frequency_hz=0)

    def test_group_requires_at_least_one_cluster(self):
        with pytest.raises(ValueError):
            GroupConfig(n_cc_clusters=0, n_mc_clusters=0)


class TestHomogeneousVariants:
    def test_homo_cc_preserves_cluster_count(self):
        base = ChipConfig()
        homo = homo_cc_chip_config(base)
        assert homo.n_mc_clusters == 0
        assert homo.n_cc_clusters == base.n_cc_clusters + base.n_mc_clusters

    def test_homo_mc_preserves_cluster_count(self):
        base = ChipConfig()
        homo = homo_mc_chip_config(base)
        assert homo.n_cc_clusters == 0
        assert homo.n_mc_clusters == base.n_cc_clusters + base.n_mc_clusters

    def test_variant_names(self):
        assert homo_cc_chip_config().name == "homo_cc"
        assert homo_mc_chip_config().name == "homo_mc"


class TestChipModel:
    def test_peak_flops_in_paper_ballpark(self, default_chip):
        """Table II reports 18 TFLOP/s (BF16) for the full chip."""
        tflops = default_chip.peak_flops / 1e12
        assert 10.0 <= tflops <= 30.0

    def test_peak_flops_dominated_by_cc_pool(self, default_chip):
        assert default_chip.peak_cc_macs_per_cycle > default_chip.peak_mc_macs_per_cycle

    def test_mc_pool_has_more_data_memory(self, default_chip):
        assert default_chip.mc_data_memory_bytes > default_chip.cc_data_memory_bytes

    def test_cycles_to_seconds(self, default_chip):
        assert default_chip.cycles_to_seconds(1e9) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            default_chip.cycles_to_seconds(-1)

    def test_dram_bytes_per_cycle(self, default_chip):
        expected = (
            default_chip.config.dram.peak_bandwidth_bytes_per_s
            / default_chip.config.frequency_hz
        )
        assert default_chip.dram_bytes_per_cycle() == pytest.approx(expected)

    def test_describe_contains_structural_fields(self, default_chip):
        summary = default_chip.describe()
        for key in ("groups", "cc_clusters", "mc_clusters", "peak_tflops", "frequency_ghz"):
            assert key in summary

    def test_scaling_groups_scales_peak_flops(self):
        small = Chip(ChipConfig(n_groups=2))
        large = Chip(ChipConfig(n_groups=4))
        assert large.peak_flops == pytest.approx(2 * small.peak_flops)
