"""Doc-executability net: documentation examples and links cannot rot.

Two nets over ``README.md`` and every ``docs/*.md`` page:

* **executable examples** — every fenced ``` ```python ``` block runs in a
  fresh subprocess (isolation matters: examples may register scenarios or
  fork process pools, and must not leak into this test process).  A block
  that is intentionally illustrative opts out with an explicit
  ``` ```python no-run ``` info string — silence is never an opt-out.
* **link integrity** — every relative markdown link resolves to an
  existing file, and every in-page anchor to an existing heading.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)
FENCE = re.compile(r"^```(.*)$")
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


@dataclass(frozen=True)
class DocBlock:
    """One fenced code block of a documentation page."""

    path: Path
    line: int
    info: str
    code: str

    @property
    def label(self) -> str:
        return f"{self.path.relative_to(REPO_ROOT)}:{self.line}"


def fenced_blocks(path: Path) -> List[DocBlock]:
    """Every fenced block of a markdown file, with its info string."""
    blocks: List[DocBlock] = []
    info: str = ""
    start = 0
    body: List[str] = []
    in_fence = False
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        match = FENCE.match(line.strip())
        if match and not in_fence:
            in_fence, info, start, body = True, match.group(1).strip(), number, []
        elif match and in_fence:
            blocks.append(
                DocBlock(path=path, line=start, info=info, code="\n".join(body))
            )
            in_fence = False
        elif in_fence:
            body.append(line)
    assert not in_fence, f"{path}: unclosed code fence opened at line {start}"
    return blocks


def python_blocks() -> List[DocBlock]:
    """All runnable python blocks across the documentation set."""
    return [
        block
        for path in DOC_FILES
        for block in fenced_blocks(path)
        if block.info.split() and block.info.split()[0] == "python"
        and "no-run" not in block.info.split()
    ]


_BLOCKS = python_blocks()


def test_the_net_actually_covers_examples():
    """A refactor that breaks block extraction must fail loudly, not no-op."""
    assert len(_BLOCKS) >= 6
    assert {block.path.name for block in _BLOCKS} >= {
        "README.md",
        "capacity_planning.md",
    }


@pytest.mark.parametrize("block", _BLOCKS, ids=lambda block: block.label)
def test_documentation_python_block_executes(block):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-c", block.code],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"documentation example at {block.label} no longer runs:\n"
        f"{result.stdout}\n{result.stderr}"
    )


def _headings(path: Path) -> set:
    """GitHub-style anchor slugs of a markdown file's headings.

    Fenced code blocks are skipped: a ``#`` comment inside a code fence is
    not a heading and produces no anchor on GitHub.
    """
    slugs = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            text = line.lstrip("#").strip().lower()
            slug = re.sub(r"[^\w\- ]", "", text).replace(" ", "-")
            slugs.add(slug)
    return slugs


def _links_outside_fences(path: Path) -> List[Tuple[int, str]]:
    """(line number, target) of every markdown link outside code fences."""
    links: List[Tuple[int, str]] = []
    in_fence = False
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            links.append((number, match.group(1)))
    return links


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda path: path.name)
def test_relative_links_resolve(path):
    broken: List[str] = []
    for number, target in _links_outside_fences(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                broken.append(f"line {number}: {target} (missing file)")
                continue
        else:
            resolved = path
        if anchor and resolved.suffix == ".md":
            if anchor not in _headings(resolved):
                broken.append(f"line {number}: {target} (missing anchor)")
    assert not broken, f"{path.name} has broken links:\n" + "\n".join(broken)
