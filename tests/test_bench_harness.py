"""The benchmark harness writes a well-formed ``BENCH_results.json``."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

HARNESS_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "run.py"


@pytest.fixture(scope="module")
def harness():
    spec = importlib.util.spec_from_file_location("bench_harness", HARNESS_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestDiscovery:
    def test_discovers_every_bench_module(self, harness):
        scenarios = harness.discover_scenarios()
        names = [name for name, _, _ in scenarios]
        assert "design_sweep_batch_1000" in names
        assert "design_sweep_scalar_100" in names
        assert "serving" in names
        assert names == sorted(names)

    def test_unknown_filter_exits(self, harness, tmp_path):
        with pytest.raises(SystemExit):
            harness.run_benchmarks(
                only="no-such-scenario", output=tmp_path / "out.json"
            )


class TestCheckMode:
    def _report(self, **seconds):
        return {
            "scenarios": {
                name: {"seconds": value} for name, value in seconds.items()
            }
        }

    def test_flags_scenarios_beyond_the_factor(self, harness):
        fresh = self._report(a=0.5, b=2.1, c=1.0)
        baseline = self._report(a=0.5, b=1.0, c=1.0)
        failures = harness.check_regressions(fresh, baseline)
        assert len(failures) == 1
        assert failures[0].startswith("b:")

    def test_within_budget_passes(self, harness):
        fresh = self._report(a=0.99, b=1.9)
        baseline = self._report(a=0.5, b=1.0)
        assert harness.check_regressions(fresh, baseline) == []

    def test_added_and_removed_scenarios_are_not_regressions(self, harness):
        fresh = self._report(new_one=100.0)
        baseline = self._report(gone=0.1)
        assert harness.check_regressions(fresh, baseline) == []

    def test_sub_floor_scenarios_are_exempt_from_the_factor(self, harness):
        # Sub-millisecond scenarios regress by scheduler jitter alone;
        # the floor keeps them out of the gate.
        floor = harness.MIN_CHECK_SECONDS
        fresh = self._report(noisy=floor * 0.9 * 10, real=floor * 4)
        baseline = self._report(noisy=floor * 0.9, real=floor * 1.5)
        failures = harness.check_regressions(fresh, baseline)
        assert len(failures) == 1
        assert failures[0].startswith("real:")

    def test_main_check_exits_nonzero_on_regression(
        self, harness, tmp_path, capsys, monkeypatch
    ):
        # fig6 runs in microseconds, so drop the noise floor to let the
        # synthetic baseline regress it deterministically.
        monkeypatch.setattr(harness, "MIN_CHECK_SECONDS", 0.0)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(self._report(fig6_bandwidth=1e-9))
        )
        with pytest.raises(SystemExit) as excinfo:
            harness.main(
                [
                    "--only", "fig6",
                    "--output", str(tmp_path / "fresh.json"),
                    "--baseline", str(baseline),
                    "--check",
                ]
            )
        capsys.readouterr()
        assert excinfo.value.code == 1

    def test_main_check_passes_against_generous_baseline(
        self, harness, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(self._report(fig6_bandwidth=1e9)))
        harness.main(
            [
                "--only", "fig6",
                "--output", str(tmp_path / "fresh.json"),
                "--baseline", str(baseline),
                "--check",
            ]
        )
        out = capsys.readouterr().out
        assert "--check passed" in out

    def test_new_scenarios_warn_instead_of_failing(self, harness):
        fresh = self._report(existing=1.0, just_added=100.0)
        baseline = self._report(existing=1.0)
        warnings = harness.baseline_warnings(fresh, baseline)
        assert len(warnings) == 1
        assert warnings[0].startswith("just_added:")
        # ... and the regression check itself must not flag the newcomer.
        assert harness.check_regressions(fresh, baseline) == []

    def test_fully_covered_run_produces_no_warnings(self, harness):
        fresh = self._report(a=1.0, b=2.0)
        baseline = self._report(a=1.0, b=2.0)
        assert harness.baseline_warnings(fresh, baseline) == []

    def test_removed_scenarios_warn_instead_of_rotting(self, harness):
        # A committed scenario the fresh run no longer produces is a
        # coverage gap too: its baseline entry would otherwise linger
        # forever, pretending the benchmark still runs.
        fresh = self._report(a=1.0)
        baseline = self._report(a=1.0, retired=0.5)
        warnings = harness.baseline_warnings(fresh, baseline)
        assert len(warnings) == 1
        assert warnings[0].startswith("retired:")
        assert "no longer produced" in warnings[0]
        # ... and the regression check itself must not flag it.
        assert harness.check_regressions(fresh, baseline) == []

    def test_warnings_list_names_sorted_deterministically(self, harness):
        # Each direction lists names in sorted order — fresh-side gaps
        # first, then baseline-side gaps — so successive CI logs diff
        # cleanly regardless of dict insertion order.
        fresh = self._report(zeta=1.0, alpha=1.0, shared=1.0)
        baseline = self._report(shared=1.0, omega=0.5, beta=0.5)
        warnings = harness.baseline_warnings(fresh, baseline)
        names = [warning.split(":", 1)[0] for warning in warnings]
        assert names == ["alpha", "zeta", "beta", "omega"]

    def test_only_filter_scopes_removed_scenario_warnings(self, harness):
        # A filtered run (--only) never produced the out-of-scope
        # scenarios, so committed entries outside the filter are not
        # "removed" — only matching names warn.
        fresh = self._report(planner_a=1.0)
        baseline = self._report(
            planner_a=1.0, planner_gone=0.5, serving=2.0
        )
        warnings = harness.baseline_warnings(fresh, baseline, only="planner")
        assert len(warnings) == 1
        assert warnings[0].startswith("planner_gone:")
        # Fresh-side gaps are never filtered: the run did produce them.
        fresh = self._report(planner_a=1.0, serving_new=1.0)
        warnings = harness.baseline_warnings(fresh, baseline, only="planner")
        assert any(w.startswith("serving_new:") for w in warnings)

    def test_main_check_warns_and_passes_without_a_baseline_file(
        self, harness, tmp_path, capsys
    ):
        harness.main(
            [
                "--only", "fig6",
                "--output", str(tmp_path / "fresh.json"),
                "--baseline", str(tmp_path / "missing.json"),
                "--check",
            ]
        )
        out = capsys.readouterr().out
        assert "warning: --check baseline not found" in out
        assert "--check passed: no committed baseline" in out
        # The fresh results file is still written for future gates.
        assert (tmp_path / "fresh.json").exists()

    def test_main_check_warns_about_uncommitted_scenarios(
        self, harness, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(self._report(other_scenario=1.0)))
        harness.main(
            [
                "--only", "fig6",
                "--output", str(tmp_path / "fresh.json"),
                "--baseline", str(baseline),
                "--check",
            ]
        )
        out = capsys.readouterr().out
        assert "warning: fig6_bandwidth: no committed baseline" in out
        assert "--check passed" in out

    def test_main_check_still_fails_on_a_real_regression(
        self, harness, tmp_path, capsys, monkeypatch
    ):
        # The warn-and-pass paths must not soften the genuine gate.
        monkeypatch.setattr(harness, "MIN_CHECK_SECONDS", 0.0)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(self._report(fig6_bandwidth=1e-9)))
        with pytest.raises(SystemExit) as excinfo:
            harness.main(
                [
                    "--only", "fig6",
                    "--output", str(tmp_path / "fresh.json"),
                    "--baseline", str(baseline),
                    "--check",
                ]
            )
        capsys.readouterr()
        assert excinfo.value.code == 1

    def test_metadata_drift_warns(self, harness):
        fresh = self._report(planner=1.0)
        baseline = self._report(planner=1.0)
        fresh["scenarios"]["planner"]["candidates"] = 50_000
        baseline["scenarios"]["planner"]["candidates"] = 124_416
        warnings = harness.metadata_warnings(fresh, baseline)
        assert len(warnings) == 1
        assert "candidates drifted from committed 124416 to 50000" in warnings[0]
        assert "seconds are not comparable" in warnings[0]
        # Drift warns; it must not enter the hard regression gate.
        assert harness.check_regressions(fresh, baseline) == []

    def test_metadata_matching_produces_no_warnings(self, harness):
        fresh = self._report(planner=1.0)
        baseline = self._report(planner=1.1)
        for report in (fresh, baseline):
            report["scenarios"]["planner"].update(
                candidates=124_416, pruned=124_404, simulated=12, store_hits=0
            )
        assert harness.metadata_warnings(fresh, baseline) == []

    def test_metadata_absent_on_either_side_warns(self, harness):
        # A key only one side records is itself a workload-shape change:
        # the benchmark started (or stopped) recording what it does, so
        # the baseline no longer describes the fresh run.
        fresh = self._report(planner=1.0, legacy=2.0)
        baseline = self._report(planner=1.0, legacy=2.0)
        fresh["scenarios"]["planner"]["candidates"] = 124_416
        baseline["scenarios"]["legacy"]["candidates"] = 99
        warnings = harness.metadata_warnings(fresh, baseline)
        assert len(warnings) == 2
        assert warnings[0].startswith("legacy: candidates committed")
        assert warnings[1].startswith("planner: candidates recorded")
        # ... without entering the hard regression gate.
        assert harness.check_regressions(fresh, baseline) == []

    def test_metadata_covers_unlisted_keys(self, harness):
        # New detail keys (per-tenant tallies, fault-event counts) are
        # watched without a hand-maintained key list.
        fresh = self._report(chaos=1.0)
        baseline = self._report(chaos=1.0)
        fresh["scenarios"]["chaos"]["fault_events"] = 2
        baseline["scenarios"]["chaos"]["fault_events"] = 3
        warnings = harness.metadata_warnings(fresh, baseline)
        assert len(warnings) == 1
        assert "fault_events drifted from committed 3 to 2" in warnings[0]

    def test_metadata_ignores_float_measurements(self, harness):
        # Float details are derived measurements (speedup, wave seconds);
        # their run-to-run jitter must not masquerade as workload drift.
        fresh = self._report(serving=1.0)
        baseline = self._report(serving=1.1)
        fresh["scenarios"]["serving"].update(speedup=13.2, requests=100_000)
        baseline["scenarios"]["serving"].update(speedup=12.7, requests=100_000)
        assert harness.metadata_warnings(fresh, baseline) == []

    def test_metadata_of_uncommitted_scenarios_is_skipped(self, harness):
        fresh = self._report(just_added=1.0)
        fresh["scenarios"]["just_added"]["candidates"] = 124_416
        assert harness.metadata_warnings(fresh, self._report()) == []

    def test_main_check_prints_metadata_drift_warnings(
        self, harness, tmp_path, capsys, monkeypatch
    ):
        drift = (
            "fig6_bandwidth: candidates drifted from committed 124416 to "
            "50000; seconds are not comparable"
        )
        # main() resolves metadata_warnings from the module namespace, so a
        # stub exercises the printing path without a slow planner scenario.
        monkeypatch.setattr(harness, "metadata_warnings", lambda *_: [drift])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(self._report(fig6_bandwidth=1e9)))
        harness.main(
            [
                "--only", "fig6",
                "--output", str(tmp_path / "fresh.json"),
                "--baseline", str(baseline),
                "--check",
            ]
        )
        out = capsys.readouterr().out
        assert f"warning: {drift}" in out
        assert "--check passed" in out

    def test_committed_results_include_the_macro_benchmark(self):
        committed = HARNESS_PATH.parent / "BENCH_results.json"
        data = json.loads(committed.read_text())
        record = data["scenarios"]["serving_macro_100k"]
        assert record["requests"] == 100000
        assert record["identical_records"] is True
        # The committed trajectory must show the >= 10x acceptance headline.
        assert record["speedup"] >= 10

    def test_committed_results_include_the_wave_benchmark(self):
        committed = HARNESS_PATH.parent / "BENCH_results.json"
        data = json.loads(committed.read_text())
        record = data["scenarios"]["serving_wave_1M"]
        assert record["requests"] == 1000000
        assert record["identical_records"] is True
        # The committed trajectory must show the < 10 s acceptance headline.
        assert record["wave_seconds"] < record["time_budget_s"]


class TestResultsFile:
    def test_writes_scenario_seconds_and_machine_info(self, harness, tmp_path, capsys):
        output = tmp_path / "BENCH_results.json"
        report = harness.run_benchmarks(only="fig6", output=output)
        capsys.readouterr()
        on_disk = json.loads(output.read_text())
        assert on_disk == report
        assert "fig6_bandwidth" in on_disk["scenarios"]
        record = on_disk["scenarios"]["fig6_bandwidth"]
        assert record["seconds"] >= 0
        assert record["module"] == "test_bench_fig6_bandwidth.py"
        machine = on_disk["machine"]
        assert machine["python"] and machine["platform"]
        assert machine["cpu_count"] >= 1

    def test_scenario_details_are_recorded(self, harness, tmp_path, capsys):
        output = tmp_path / "BENCH_results.json"
        report = harness.run_benchmarks(only="design_sweep_scalar", output=output)
        capsys.readouterr()
        record = report["scenarios"]["design_sweep_scalar_100"]
        assert record["points"] == 100
        assert record["engine"] == "scalar"

    def test_committed_results_include_the_sweep_benchmark(self):
        committed = HARNESS_PATH.parent / "BENCH_results.json"
        data = json.loads(committed.read_text())
        assert "design_sweep_batch_1000" in data["scenarios"]
        assert "design_sweep_scalar_100" in data["scenarios"]
        batch = data["scenarios"]["design_sweep_batch_1000"]
        scalar = data["scenarios"]["design_sweep_scalar_100"]
        # The committed trajectory must show the >= 50x acceptance headline
        # (scalar seconds are for a 100-point sample of the 1,000 points).
        speedup = (scalar["seconds"] * 10) / batch["seconds"]
        assert speedup >= 50
