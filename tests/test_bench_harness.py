"""The benchmark harness writes a well-formed ``BENCH_results.json``."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

HARNESS_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "run.py"


@pytest.fixture(scope="module")
def harness():
    spec = importlib.util.spec_from_file_location("bench_harness", HARNESS_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestDiscovery:
    def test_discovers_every_bench_module(self, harness):
        scenarios = harness.discover_scenarios()
        names = [name for name, _, _ in scenarios]
        assert "design_sweep_batch_1000" in names
        assert "design_sweep_scalar_100" in names
        assert "serving" in names
        assert names == sorted(names)

    def test_unknown_filter_exits(self, harness, tmp_path):
        with pytest.raises(SystemExit):
            harness.run_benchmarks(
                only="no-such-scenario", output=tmp_path / "out.json"
            )


class TestResultsFile:
    def test_writes_scenario_seconds_and_machine_info(self, harness, tmp_path, capsys):
        output = tmp_path / "BENCH_results.json"
        report = harness.run_benchmarks(only="fig6", output=output)
        capsys.readouterr()
        on_disk = json.loads(output.read_text())
        assert on_disk == report
        assert "fig6_bandwidth" in on_disk["scenarios"]
        record = on_disk["scenarios"]["fig6_bandwidth"]
        assert record["seconds"] >= 0
        assert record["module"] == "test_bench_fig6_bandwidth.py"
        machine = on_disk["machine"]
        assert machine["python"] and machine["platform"]
        assert machine["cpu_count"] >= 1

    def test_scenario_details_are_recorded(self, harness, tmp_path, capsys):
        output = tmp_path / "BENCH_results.json"
        report = harness.run_benchmarks(only="design_sweep_scalar", output=output)
        capsys.readouterr()
        record = report["scenarios"]["design_sweep_scalar_100"]
        assert record["points"] == 100
        assert record["engine"] == "scalar"

    def test_committed_results_include_the_sweep_benchmark(self):
        committed = HARNESS_PATH.parent / "BENCH_results.json"
        data = json.loads(committed.read_text())
        assert "design_sweep_batch_1000" in data["scenarios"]
        assert "design_sweep_scalar_100" in data["scenarios"]
        batch = data["scenarios"]["design_sweep_batch_1000"]
        scalar = data["scenarios"]["design_sweep_scalar_100"]
        # The committed trajectory must show the >= 50x acceptance headline
        # (scalar seconds are for a 100-point sample of the 1,000 points).
        speedup = (scalar["seconds"] * 10) / batch["seconds"]
        assert speedup >= 50
