"""Shared fixtures for the EdgeMM reproduction test suite."""

from __future__ import annotations

import pytest

from repro.arch.chip import Chip, ChipConfig
from repro.baselines.gpu import rtx3060_laptop
from repro.core.edgemm import EdgeMM
from repro.core.simulator import PerformanceSimulator
from repro.models.activations import ActivationTraceConfig, ActivationTraceGenerator
from repro.models.mllm import InferenceRequest, get_mllm


@pytest.fixture(scope="session")
def default_chip() -> Chip:
    """The default EdgeMM chip model (Fig. 10 configuration)."""
    return Chip(ChipConfig())


@pytest.fixture(scope="session")
def edgemm_system() -> EdgeMM:
    """The default heterogeneous EdgeMM system."""
    return EdgeMM.default()


@pytest.fixture(scope="session")
def simulator() -> PerformanceSimulator:
    """A performance simulator on the default chip."""
    return PerformanceSimulator()


@pytest.fixture(scope="session")
def sphinx_tiny():
    """The SPHINX-Tiny MLLM configuration (the paper's main workload)."""
    return get_mllm("sphinx-tiny")


@pytest.fixture(scope="session")
def karmavlm():
    """The KarmaVLM MLLM configuration (the paper's second workload)."""
    return get_mllm("karmavlm")


@pytest.fixture(scope="session")
def short_request() -> InferenceRequest:
    """A small request used where workload size does not matter."""
    return InferenceRequest(images=1, prompt_text_tokens=16, output_tokens=8)


@pytest.fixture(scope="session")
def reference_request() -> InferenceRequest:
    """The ~300-token-prompt, 64-output-token request used for headline numbers."""
    return InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=64)


@pytest.fixture(scope="session")
def gpu_baseline():
    """The RTX 3060 laptop GPU baseline."""
    return rtx3060_laptop()


@pytest.fixture(scope="session")
def small_trace() -> ActivationTraceGenerator:
    """A reduced activation trace for fast pruning tests."""
    return ActivationTraceGenerator(
        ActivationTraceConfig(n_layers=8, d_model=256, seed=11)
    )
