"""The scenario-suite experiment: registry wiring and report rendering."""

from repro.experiments import available_experiments, get_experiment
from repro.experiments.scenario_suite import ScenarioSuiteResult, format_report
from repro.scenarios import get_scenario, run_scenario


class TestRegistration:
    def test_scenarios_experiment_is_registered(self):
        assert "scenarios" in available_experiments()
        spec = get_experiment("scenarios")
        assert "scenario" in spec.description.lower()


class TestReport:
    def test_report_tabulates_scenario_rows(self):
        # One real (fast) scenario keeps the test cheap; the full suite
        # runs through the CLI and the golden-report tests.
        result = ScenarioSuiteResult(
            reports=(run_scenario(get_scenario("chat-poisson")),)
        )
        text = format_report(result)
        assert "chat-poisson" in text
        assert "p99 TTFT" in text
        assert f"({result.n_slo_met}/1 SLOs met)" in text

    def test_slo_counter_counts_met_reports(self):
        report = run_scenario(get_scenario("chat-poisson"))
        result = ScenarioSuiteResult(reports=(report, report))
        assert result.n_slo_met == (2 if report.slo_met else 0)
