"""Tests for the ablation studies (repro.experiments.ablations)."""

import pytest

from repro.experiments import ablations


class TestThresholdAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.pruning_threshold_ablation(
            thresholds=(4.0, 16.0, 64.0), n_tokens=1, d_ffn=128
        )

    def test_larger_threshold_prunes_less(self, rows):
        assert ablations.larger_threshold_prunes_less(rows)

    def test_more_aggressive_threshold_gives_more_latency_reduction(self, rows):
        reductions = [row.decode_latency_reduction for row in rows]
        assert reductions[0] >= reductions[-1]

    def test_similarity_improves_with_larger_threshold(self, rows):
        similarities = [row.mean_cosine_similarity for row in rows]
        assert similarities[-1] >= similarities[0]

    def test_paper_threshold_is_a_good_tradeoff(self, rows):
        assert ablations.paper_threshold_is_a_good_tradeoff(rows)

    def test_rejects_empty_sweep(self):
        with pytest.raises(ValueError):
            ablations.pruning_threshold_ablation(thresholds=())


class TestBandwidthAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.dram_bandwidth_ablation(bandwidths_gbs=(25.6, 102.4, 204.8))

    def test_decode_scales_with_bandwidth(self, rows):
        assert ablations.decode_scales_with_bandwidth(rows)

    def test_decode_memory_bound_at_low_bandwidth(self, rows):
        assert rows[0].decode_bound == "memory"

    def test_throughput_increases_with_bandwidth(self, rows):
        assert rows[-1].tokens_per_second > rows[0].tokens_per_second

    def test_rejects_empty_sweep(self):
        with pytest.raises(ValueError):
            ablations.dram_bandwidth_ablation(bandwidths_gbs=())


class TestGeometryAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.systolic_geometry_ablation(geometries=((8, 32), (16, 16), (32, 8)))

    def test_constant_pe_count_keeps_peak_flops(self, rows):
        peaks = {round(row.peak_tflops, 1) for row in rows}
        assert len(peaks) == 1

    def test_prefill_latency_varies_with_aspect_ratio(self, rows):
        latencies = [row.prefill_latency_s for row in rows]
        assert max(latencies) > min(latencies)

    def test_rejects_empty_sweep(self):
        with pytest.raises(ValueError):
            ablations.systolic_geometry_ablation(geometries=())


class TestClusterMixAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.cluster_mix_ablation(mixes=((4, 0), (2, 2), (0, 4)))

    def test_mixed_clusters_beat_homogeneous(self, rows):
        assert ablations.mixed_clusters_beat_homogeneous(rows)

    def test_rejects_empty_and_invalid_mixes(self):
        with pytest.raises(ValueError):
            ablations.cluster_mix_ablation(mixes=())
        with pytest.raises(ValueError):
            ablations.cluster_mix_ablation(mixes=((0, 0),))


class TestCombinedReport:
    def test_report_renders_all_sections(self):
        result = ablations.AblationResult(
            threshold_rows=ablations.pruning_threshold_ablation(
                thresholds=(16.0,), n_tokens=1, d_ffn=64
            ),
            bandwidth_rows=ablations.dram_bandwidth_ablation(bandwidths_gbs=(102.4,)),
            geometry_rows=ablations.systolic_geometry_ablation(geometries=((16, 16),)),
            mix_rows=ablations.cluster_mix_ablation(mixes=((2, 2),)),
        )
        report = ablations.format_report(result)
        for marker in ("Ablation A1", "Ablation A2", "Ablation A3", "Ablation A4"):
            assert marker in report
