"""Tests for the experiment report utilities and CLI entry point."""

import pytest

from repro.experiments import available_experiments
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.runner import (
    ExperimentSpec,
    format_bytes,
    format_seconds,
    format_table,
    get_experiment,
    register_experiment,
)


class TestFormatTable:
    def test_alignment_and_separator(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        # Columns are aligned: every row has the separator at the same offset.
        assert lines[2].index("1") == lines[3].index("2.5")

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        table = format_table(["v"], [[0.000012], [12345.6], [1.5], [0.0]])
        assert "1.2e-05" in table
        assert "1.23e+04" in table
        assert "1.5" in table
        assert "0" in table


class TestUnitHelpers:
    def test_format_bytes(self):
        assert format_bytes(512) == "512.00 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert format_bytes(3 * 1024**3) == "3.00 GiB"
        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_format_seconds(self):
        assert format_seconds(2.0) == "2.000 s"
        assert format_seconds(0.002) == "2.000 ms"
        assert format_seconds(2e-6) == "2.00 us"
        with pytest.raises(ValueError):
            format_seconds(-0.1)


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        existing = available_experiments()[0]
        spec = get_experiment(existing)
        with pytest.raises(ValueError):
            register_experiment(
                ExperimentSpec(
                    experiment_id=existing,
                    description="duplicate",
                    run=spec.run,
                    report=spec.report,
                )
            )

    def test_specs_carry_descriptions(self):
        for experiment_id in available_experiments():
            assert get_experiment(experiment_id).description


class TestCLI:
    def test_list_option(self, capsys):
        assert experiments_main(["--list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in available_experiments():
            assert experiment_id in output

    def test_run_single_experiment(self, capsys):
        assert experiments_main(["fig6"]) == 0
        output = capsys.readouterr().out
        assert "=== fig6 ===" in output
        assert "effective bandwidth" in output.lower()

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig99"])
