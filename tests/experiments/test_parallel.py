"""Parallel experiment engine tests: identity with the serial path."""

import pytest

from repro.experiments import (
    ParallelSweepRunner,
    run_experiments_parallel,
    sweep_design_space,
)
from repro.experiments.parallel import evaluate_design_point
from repro.experiments.runner import run_and_report


def _mutable_result(experiment_id):
    return {"rows": []}


class TestParallelExperiments:
    def test_fig10_identical_to_serial(self):
        parallel = run_experiments_parallel(["fig10"], processes=2)
        assert parallel["fig10"] == run_and_report("fig10")

    def test_fig11_identical_to_serial(self):
        parallel = run_experiments_parallel(["fig11"], processes=2)
        assert parallel["fig11"] == run_and_report("fig11")

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiments_parallel(["fig99"])


class TestParallelSweepRunner:
    def test_empty_map(self):
        assert ParallelSweepRunner(processes=2).map(evaluate_design_point, []) == []

    def test_parallel_matches_serial_sweep(self):
        serial = sweep_design_space(
            n_groups_options=(2,), processes=1
        )
        parallel = sweep_design_space(
            n_groups_options=(2,), processes=2
        )
        assert serial == parallel

    def test_repeated_points_hit_the_cache(self):
        runner = ParallelSweepRunner(processes=1)
        params = {"n_groups": 2, "cc_per_group": 1, "mc_per_group": 1}
        first = runner.map(evaluate_design_point, [params, params])
        assert runner.cache_misses == 1
        assert runner.cache_hits == 1
        second = runner.map(evaluate_design_point, [params])
        assert runner.cache_hits == 2
        assert runner.cache_misses == 1
        assert first[0] == first[1] == second[0]

    def test_mutating_a_result_does_not_poison_the_cache(self):
        runner = ParallelSweepRunner(processes=1)
        params = {"experiment_id": "fig10"}
        first = runner.map(_mutable_result, [params])[0]
        first["rows"].append("corrupted")
        second = runner.map(_mutable_result, [params])[0]
        assert second == {"rows": []}
        assert runner.cache_hits == 1

    def test_rejects_bad_process_count(self):
        with pytest.raises(ValueError):
            ParallelSweepRunner(processes=0)

    def test_rejects_processes_and_runner_together(self):
        with pytest.raises(ValueError):
            sweep_design_space(processes=2, runner=ParallelSweepRunner(processes=1))
