"""Integration tests for the experiment harnesses (one per paper artifact)."""

import pytest

from repro.experiments import (
    available_experiments,
    fig2_workload,
    fig3_sparsity,
    fig6_bandwidth,
    fig10_config,
    fig11_hetero,
    fig12_pruning,
    fig13_bandwidth_mgmt,
    get_experiment,
    run_and_report,
    table2_gpu_comparison,
)
from repro.models.mllm import InferenceRequest


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        registered = set(available_experiments())
        assert {
            "fig2",
            "fig3",
            "fig6",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "table2",
        } <= registered
        assert "ablations" in registered

    def test_get_experiment_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_run_and_report_produces_text(self):
        report = run_and_report("fig6")
        assert "effective bandwidth" in report.lower()


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_workload.run_fig2(output_lengths=(8, 32, 128))

    def test_decode_share_increases_with_output_length(self, result):
        for model in ("sphinx-tiny", "karmavlm"):
            assert fig2_workload.decode_share_increases(result, model)

    def test_ffn_dominates_memory_access(self, result):
        assert fig2_workload.ffn_dominates_memory(result, "sphinx-tiny")

    def test_decode_arithmetic_intensity_far_below_prefill(self, result):
        stats = result.statistics["sphinx-tiny"]
        assert (
            stats.phase("llm_decode").arithmetic_intensity
            < stats.phase("llm_prefill").arithmetic_intensity / 20
        )

    def test_report_mentions_both_models(self, result):
        report = fig2_workload.format_report(result)
        assert "sphinx-tiny" in report and "karmavlm" in report


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_sparsity.run_fig3(n_tokens=2)

    def test_outliers_become_more_prominent_with_depth(self, result):
        assert fig3_sparsity.outliers_become_more_prominent(result)

    def test_most_channels_negligible_in_deep_layers(self, result):
        assert fig3_sparsity.most_channels_are_negligible(result)

    def test_profile_covers_all_layers(self, result):
        assert len(result.profiles) == 22

    def test_report_renders(self, result):
        assert "kurtosis" in fig3_sparsity.format_report(result)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_bandwidth.run_fig6()

    def test_bandwidth_monotonic_in_transfer_size(self, result):
        assert fig6_bandwidth.bandwidth_is_monotonic(result)

    def test_small_transfers_lose_bandwidth(self, result):
        assert fig6_bandwidth.small_transfers_lose_bandwidth(result)

    def test_mc_buffers_recover_bandwidth(self, result):
        assert fig6_bandwidth.mc_buffers_recover_bandwidth(result)

    def test_mc_buffer_more_efficient_than_cc_buffer(self, result):
        assert result.mc_buffer_fraction > result.cc_buffer_fraction


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_config.run_fig10()

    def test_configuration_matches_paper(self, result):
        assert fig10_config.configuration_matches_paper(result)

    def test_coprocessors_dominate_core_area(self, result):
        assert fig10_config.coprocessors_dominate_core_area(result)

    def test_peak_tflops_near_paper_value(self, result):
        assert 10.0 <= result.configuration["peak_tflops"] <= 30.0

    def test_power_in_paper_ballpark(self, result):
        assert 40.0 <= result.power.total_mw <= 300.0


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        request = InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=16)
        return fig11_hetero.run_fig11(request=request)

    def test_hetero_wins_full_mllm(self, result):
        assert fig11_hetero.hetero_wins_full_mllm(result)

    def test_homo_designs_win_their_phases(self, result):
        assert fig11_hetero.homo_designs_win_their_phases(result)

    def test_all_extensions_beat_baseline(self, result):
        assert fig11_hetero.all_extensions_beat_baseline(result)

    def test_report_contains_speedups(self, result):
        report = fig11_hetero.format_report(result)
        assert "homo_cc" in report and "edgemm" in report


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_pruning.run_fig12(n_tokens=2, d_ffn=256, output_tokens=16)

    def test_first_layer_not_pruned(self, result):
        assert fig12_pruning.first_layer_is_not_pruned(result)

    def test_pruning_ratio_increases_with_depth(self, result):
        assert fig12_pruning.pruning_ratio_increases_with_depth(result)

    def test_dynamic_tracks_mild_fixed_ratio(self, result):
        assert fig12_pruning.dynamic_tracks_mild_fixed_ratio(result)

    def test_aggressive_fixed_ratio_fails_shallow_layers(self, result):
        assert fig12_pruning.aggressive_fixed_ratio_fails_shallow_layers(result)

    def test_decode_latency_reduction_in_paper_ballpark(self, result):
        """Paper reports ~42% average decode-latency reduction."""
        assert 0.2 <= result.decode_latency_reduction <= 0.7


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_bandwidth_mgmt.run_fig13(output_lengths=(8, 32, 128, 512))

    def test_reallocation_helps_long_outputs(self, result):
        assert fig13_bandwidth_mgmt.reallocation_helps_long_outputs(result)

    def test_short_outputs_keep_equal_sharing(self, result):
        assert fig13_bandwidth_mgmt.short_outputs_keep_equal_sharing(result)

    def test_batching_boosts_long_output_throughput(self, result):
        assert fig13_bandwidth_mgmt.batching_boosts_long_output_throughput(result)

    def test_lb_greater_than_le(self, result):
        assert result.reallocation_limit_length > result.expected_balanced_length


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        request = InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=32)
        return table2_gpu_comparison.run_table2(request=request, calibration_tokens=2)

    def test_edgemm_beats_gpu(self, result):
        assert table2_gpu_comparison.edgemm_beats_gpu(result)

    def test_pruning_widens_the_gap(self, result):
        assert table2_gpu_comparison.pruning_widens_the_gap(result)

    def test_pruned_speedup_in_paper_ballpark(self, result):
        assert table2_gpu_comparison.pruned_speedup_in_paper_ballpark(result)

    def test_report_contains_all_rows(self, result):
        report = table2_gpu_comparison.format_report(result)
        assert "RTX 3060" in report
        assert "EdgeMM + weight pruning" in report
