"""Byte-identity of batched experiment reports with the scalar path.

PR acceptance: fig10/fig11 (and the ablation/design-space grids) now run
through the batch engine, and their formatted reports must be *byte*
identical to what the scalar per-design simulation produces.
"""

from repro.baselines.snitch import SnitchBaseline
from repro.core.config import default_system, homo_cc_system, homo_mc_system
from repro.core.simulator import PerformanceSimulator
from repro.experiments import fig10_config, fig11_hetero
from repro.experiments.ablations import cluster_mix_ablation, dram_bandwidth_ablation
from repro.experiments.parallel import (
    sweep_design_space,
    sweep_design_space_batched,
)
from repro.models.mllm import InferenceRequest, get_mllm


class TestFig11ByteIdentity:
    def scalar_fig11_result(self):
        """Fig. 11 recomputed the pre-batch way: one simulator per design."""
        request = InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=64)
        model = get_mllm("sphinx-tiny")
        designs = {
            "snitch": SnitchBaseline(),
            "homo_cc": PerformanceSimulator(homo_cc_system()),
            "homo_mc": PerformanceSimulator(homo_mc_system()),
            "edgemm": PerformanceSimulator(default_system()),
        }
        latency = {}
        for name, design in designs.items():
            result = design.run_request(model, request)
            latency[name] = {
                "vision_encoder": result.encode_latency_s,
                "llm_prefill": result.prefill_latency_s,
                "llm_decode": result.decode_latency_s,
                "full_mllm": result.total_latency_s,
            }
        baseline = latency["snitch"]
        speedup = {
            name: {
                phase: (baseline[phase] / value if value > 0 else float("inf"))
                for phase, value in phases.items()
            }
            for name, phases in latency.items()
        }
        return fig11_hetero.Fig11Result(
            model_name="sphinx-tiny",
            request=request,
            latency_s=latency,
            speedup=speedup,
        )

    def test_latencies_bit_identical_to_scalar(self):
        batched = fig11_hetero.run_fig11()
        scalar = self.scalar_fig11_result()
        assert batched.latency_s == scalar.latency_s
        assert batched.speedup == scalar.speedup

    def test_report_byte_identical_to_scalar(self):
        batched = fig11_hetero.format_report(fig11_hetero.run_fig11())
        scalar = fig11_hetero.format_report(self.scalar_fig11_result())
        assert batched == scalar


class TestFig10ByteIdentity:
    def test_report_byte_identical_to_direct_models(self):
        from repro.arch.area_power import AreaPowerModel
        from repro.arch.chip import Chip, ChipConfig

        chip_config = ChipConfig()
        direct = fig10_config.Fig10Result(
            configuration=Chip(chip_config).describe(),
            area=AreaPowerModel(chip_config).area_report(),
            power=AreaPowerModel(chip_config).power_report(utilization=0.1),
            paper_reference=dict(fig10_config.PAPER_REFERENCE),
        )
        batched = fig10_config.run_fig10()
        assert fig10_config.format_report(batched) == fig10_config.format_report(direct)
        assert fig10_config.configuration_matches_paper(batched)


class TestSweepIdentity:
    def test_batched_sweep_identical_to_process_pool(self):
        batched = sweep_design_space_batched(n_groups_options=(2,))
        pooled = sweep_design_space(n_groups_options=(2,), processes=1)
        assert batched == pooled

    def test_default_sweep_uses_batch_engine(self):
        assert sweep_design_space(n_groups_options=(2,)) == sweep_design_space_batched(
            n_groups_options=(2,)
        )


class TestAblationIdentity:
    def test_bandwidth_rows_match_scalar_recomputation(self):
        from dataclasses import replace

        from repro.arch.dram import DRAMConfig
        from repro.experiments.ablations import DEFAULT_REQUEST

        rows = dram_bandwidth_ablation(bandwidths_gbs=(51.2, 102.4))
        model = get_mllm("sphinx-tiny")
        base = default_system()
        for row in rows:
            dram = DRAMConfig(peak_bandwidth_bytes_per_s=row.bandwidth_gbs * 1e9)
            chip = replace(base.chip, dram=dram)
            system = replace(base, chip=chip, name=f"edgemm_{row.bandwidth_gbs:.0f}gbs")
            scalar = PerformanceSimulator(system).run_request(model, DEFAULT_REQUEST)
            assert row.decode_latency_s == scalar.decode_latency_s
            assert row.tokens_per_second == scalar.tokens_per_second
            assert row.decode_bound == scalar.phase("llm_decode").bound

    def test_mix_rows_match_scalar_recomputation(self):
        from repro.core.config import scaled_system
        from repro.experiments.ablations import DEFAULT_REQUEST

        rows = cluster_mix_ablation(mixes=((2, 2), (1, 3)))
        model = get_mllm("sphinx-tiny")
        for row in rows:
            system = scaled_system(
                n_groups=4,
                cc_clusters_per_group=row.cc_clusters_per_group,
                mc_clusters_per_group=row.mc_clusters_per_group,
            )
            scalar = PerformanceSimulator(system).run_request(model, DEFAULT_REQUEST)
            assert row.total_latency_s == scalar.total_latency_s
            assert row.tokens_per_second == scalar.tokens_per_second
