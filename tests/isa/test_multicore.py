"""Tests for the cluster-level multi-core executor (repro.isa.multicore)."""

import numpy as np
import pytest

from repro.isa.multicore import ClusterExecutor, _column_shards
from repro.pruning.ffn import silu


class TestColumnShards:
    def test_covers_all_columns_contiguously(self):
        shards = _column_shards(100, 4)
        assert shards[0][0] == 0
        assert shards[-1][1] == 100
        for (_, stop), (start, _) in zip(shards, shards[1:]):
            assert stop == start

    def test_tile_alignment(self):
        shards = _column_shards(96, 4, multiple_of=16)
        for start, stop in shards[:-1]:
            assert (stop - start) % 16 == 0

    def test_fewer_shards_than_cores_when_small(self):
        shards = _column_shards(3, 8)
        assert len(shards) <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            _column_shards(0, 4)
        with pytest.raises(ValueError):
            _column_shards(8, 0)


class TestClusterConstruction:
    def test_core_indices_written_to_csrs(self):
        cluster = ClusterExecutor("mc", n_cores=4)
        assert cluster.core_indices() == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ClusterExecutor("gpu")
        with pytest.raises(ValueError):
            ClusterExecutor("cc", n_cores=0)
        with pytest.raises(ValueError):
            ClusterExecutor("cc", sync_cycles=-1)

    def test_type_mismatch_raises(self):
        cc_cluster = ClusterExecutor("cc", n_cores=2)
        mc_cluster = ClusterExecutor("mc", n_cores=2)
        with pytest.raises(ValueError):
            cc_cluster.gemv(np.ones(8), np.ones((8, 8)))
        with pytest.raises(ValueError):
            mc_cluster.gemm(np.ones((16, 16)), np.ones((16, 16)))


class TestClusterGEMV:
    def test_matches_numpy_and_uses_both_cores(self):
        rng = np.random.default_rng(0)
        k, n = 48, 80
        x, w = rng.normal(size=k), rng.normal(size=(k, n))
        cluster = ClusterExecutor("mc", n_cores=2)
        result = cluster.gemv(x, w)
        np.testing.assert_allclose(result.output, x @ w, rtol=1e-10)
        assert len(result.shards) == 2
        assert result.parallel_cycles > 0

    def test_parallel_cycles_below_total_work(self):
        rng = np.random.default_rng(1)
        x, w = rng.normal(size=64), rng.normal(size=(64, 128))
        cluster = ClusterExecutor("mc", n_cores=2)
        result = cluster.gemv(x, w)
        assert result.parallel_cycles < result.total_core_cycles

    def test_more_cores_reduce_wall_clock(self):
        rng = np.random.default_rng(2)
        x, w = rng.normal(size=64), rng.normal(size=(64, 256))
        one = ClusterExecutor("mc", n_cores=1).gemv(x, w)
        two = ClusterExecutor("mc", n_cores=2).gemv(x, w)
        np.testing.assert_allclose(one.output, two.output, rtol=1e-10)
        assert two.parallel_cycles < one.parallel_cycles

    def test_balanced_shards(self):
        rng = np.random.default_rng(3)
        x, w = rng.normal(size=32), rng.normal(size=(32, 128))
        result = ClusterExecutor("mc", n_cores=2).gemv(x, w)
        assert result.load_balance < 1.2

    def test_shape_validation(self):
        cluster = ClusterExecutor("mc", n_cores=2)
        with pytest.raises(ValueError):
            cluster.gemv(np.ones(8), np.ones((9, 4)))


class TestClusterGEMM:
    def test_matches_numpy_across_four_cores(self):
        rng = np.random.default_rng(4)
        m, k, n = 32, 32, 64
        a, b = rng.normal(size=(m, k)), rng.normal(size=(k, n))
        cluster = ClusterExecutor("cc", n_cores=4)
        result = cluster.gemm(a, b)
        np.testing.assert_allclose(result.output, a @ b, rtol=1e-10)
        assert len(result.shards) == 4

    def test_rejects_unaligned_shapes(self):
        cluster = ClusterExecutor("cc", n_cores=2)
        with pytest.raises(ValueError):
            cluster.gemm(np.ones((30, 32)), np.ones((32, 32)))
        with pytest.raises(ValueError):
            cluster.gemm(np.ones((16, 16)), np.ones((8, 16)))

    def test_sync_cost_added_to_wall_clock(self):
        rng = np.random.default_rng(5)
        a, b = rng.normal(size=(16, 16)), rng.normal(size=(16, 32))
        with_sync = ClusterExecutor("cc", n_cores=2, sync_cycles=100.0).gemm(a, b)
        without_sync = ClusterExecutor("cc", n_cores=2, sync_cycles=0.0).gemm(a, b)
        assert with_sync.parallel_cycles == pytest.approx(
            without_sync.parallel_cycles + 100.0
        )


class TestClusterFFN:
    def test_sharded_ffn_matches_reference(self):
        rng = np.random.default_rng(6)
        d_model, d_ffn = 48, 96
        x = rng.normal(size=d_model) * 0.5
        w_gate = rng.normal(size=(d_model, d_ffn)) * 0.2
        w_up = rng.normal(size=(d_model, d_ffn)) * 0.2
        w_down = rng.normal(size=(d_ffn, d_model)) * 0.2
        cluster = ClusterExecutor("mc", n_cores=2)
        result = cluster.gated_ffn(x, w_gate, w_up, w_down)
        reference = ((x @ w_up) * silu(x @ w_gate)) @ w_down
        np.testing.assert_allclose(result.output, reference, rtol=1e-9)

    def test_ffn_sharding_is_invariant_to_core_count(self):
        rng = np.random.default_rng(7)
        d_model, d_ffn = 32, 64
        x = rng.normal(size=d_model) * 0.5
        w_gate = rng.normal(size=(d_model, d_ffn)) * 0.2
        w_up = rng.normal(size=(d_model, d_ffn)) * 0.2
        w_down = rng.normal(size=(d_ffn, d_model)) * 0.2
        one = ClusterExecutor("mc", n_cores=1).gated_ffn(x, w_gate, w_up, w_down)
        four = ClusterExecutor("mc", n_cores=4).gated_ffn(x, w_gate, w_up, w_down)
        np.testing.assert_allclose(one.output, four.output, rtol=1e-9)

    def test_shape_validation(self):
        cluster = ClusterExecutor("mc", n_cores=2)
        with pytest.raises(ValueError):
            cluster.gated_ffn(
                np.ones(8), np.ones((8, 16)), np.ones((8, 15)), np.ones((16, 8))
            )
        with pytest.raises(ValueError):
            cluster.gated_ffn(
                np.ones(8), np.ones((8, 16)), np.ones((8, 16)), np.ones((15, 8))
            )
