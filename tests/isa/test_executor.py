"""Tests for the functional ISA executor (repro.isa.executor)."""

import numpy as np
import pytest

from repro.isa.executor import CoreExecutor, DataMemory, ExecutionError
from repro.isa.instructions import (
    CsrWrite,
    LoadImmediate,
    MMLoad,
    MMMul,
    MMStore,
    MMZero,
    MVMul,
    MVPrune,
    MVWeightLoad,
    Sync,
    VAdd,
    VLoad,
    VMul,
    VRelu,
    VSilu,
    VStore,
)
from repro.isa.registers import CSR_ADDRESSES


class TestDataMemory:
    def test_read_write_roundtrip(self):
        memory = DataMemory(128)
        memory.write(10, np.arange(5, dtype=float))
        np.testing.assert_array_equal(memory.read(10, 5), np.arange(5, dtype=float))

    def test_matrix_roundtrip(self):
        memory = DataMemory(64)
        matrix = np.arange(12, dtype=float).reshape(3, 4)
        memory.write_matrix(0, matrix)
        np.testing.assert_array_equal(memory.read_matrix(0, 3, 4), matrix)

    def test_out_of_bounds_raises(self):
        memory = DataMemory(16)
        with pytest.raises(ExecutionError):
            memory.read(10, 10)
        with pytest.raises(ExecutionError):
            memory.write(15, np.ones(5))

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            DataMemory(0)


class TestCCExecution:
    def _make_executor(self) -> CoreExecutor:
        return CoreExecutor("cc", memory_size=4096)

    def test_mm_mul_computes_matrix_product(self):
        executor = self._make_executor()
        rows = executor.systolic.config.rows
        cols = executor.systolic.config.cols
        rng = np.random.default_rng(1)
        a = rng.normal(size=(rows, cols))
        b = rng.normal(size=(rows, cols))
        executor.memory.write_matrix(0, a)
        executor.memory.write_matrix(rows * cols, b)
        program = [
            LoadImmediate(rd=1, value=0),
            LoadImmediate(rd=2, value=rows * cols),
            LoadImmediate(rd=3, value=2 * rows * cols),
            MMLoad(md=0, rs=1),
            MMLoad(md=1, rs=2),
            MMZero(md=2),
            MMMul(md=2, ms1=0, ms2=1),
            MMStore(ms=2, rs=3),
        ]
        result = executor.run(program)
        stored = executor.memory.read_matrix(2 * rows * cols, rows, cols)
        np.testing.assert_allclose(stored, a @ b, rtol=1e-12)
        assert result.cycles > 0
        assert result.instructions_executed == len(program)

    def test_mm_mul_accumulates_into_destination(self):
        executor = self._make_executor()
        rows = executor.systolic.config.rows
        identity = np.eye(rows)
        executor.memory.write_matrix(0, identity)
        program = [
            LoadImmediate(rd=1, value=0),
            MMLoad(md=0, rs=1),
            MMLoad(md=1, rs=1),
            MMZero(md=2),
            MMMul(md=2, ms1=0, ms2=1),
            MMMul(md=2, ms1=0, ms2=1),
        ]
        executor.run(program)
        np.testing.assert_allclose(executor.state.matrix.read(2), 2 * identity)

    def test_load_plus_mul_cycles_match_equation_2(self):
        """mm.ld + mm.mul together cost L_SA = 2R + C + M - 3 with M = R."""
        executor = self._make_executor()
        sa = executor.systolic.config
        load_cycles = executor._execute(MMLoad(md=0, rs=0))
        mul_cycles = executor._execute(MMMul(md=2, ms1=0, ms2=1))
        assert load_cycles + mul_cycles == executor.systolic.tile_cycles(sa.rows)

    def test_mm_instructions_rejected_on_mc_core(self):
        executor = CoreExecutor("mc", memory_size=1024)
        with pytest.raises(ExecutionError):
            executor.run([MMZero(md=0)])

    def test_cycle_breakdown_by_mnemonic(self):
        executor = self._make_executor()
        result = executor.run([MMZero(md=0), MMZero(md=1), Sync()])
        assert result.cycles_for("mm.zero") == 2.0
        assert result.cycles_for("sync") == 1.0


class TestMCExecution:
    def _make_executor(self, vector_length=64) -> CoreExecutor:
        return CoreExecutor("mc", memory_size=1 << 16, vector_length=vector_length)

    def _write_csr_program(self, name, value, scratch=5):
        return [
            LoadImmediate(rd=scratch, value=value),
            CsrWrite(csr=CSR_ADDRESSES[name], rs=scratch),
        ]

    def test_mv_mul_computes_gemv(self):
        executor = self._make_executor()
        k, n = 32, 48
        rng = np.random.default_rng(2)
        x = rng.normal(size=k)
        w = rng.normal(size=(k, n))
        executor.memory.write(0, x)
        executor.memory.write_matrix(k, w)
        program = []
        program += self._write_csr_program("tile_k", k)
        program += self._write_csr_program("tile_n", n)
        program += self._write_csr_program("vector_length", k)
        program += [
            LoadImmediate(rd=1, value=k),
            MVWeightLoad(rs=1),
            LoadImmediate(rd=2, value=0),
            VLoad(vd=1, rs=2),
            MVMul(vd=2, vs1=1),
        ]
        executor.run(program)
        np.testing.assert_allclose(executor.state.vector.read(2)[:n], x @ w, rtol=1e-12)

    def test_mv_mul_requires_weights_loaded(self):
        executor = self._make_executor()
        with pytest.raises(ExecutionError):
            executor.run([MVMul(vd=2, vs1=1)])

    def test_mv_wld_requires_tile_csrs(self):
        executor = self._make_executor()
        with pytest.raises(ExecutionError):
            executor.run([MVWeightLoad(rs=0)])

    def test_mv_wld_rejects_oversized_block(self):
        executor = self._make_executor()
        program = self._write_csr_program("tile_k", 10_000)
        program += self._write_csr_program("tile_n", 10_000)
        program += [MVWeightLoad(rs=0)]
        with pytest.raises(ExecutionError):
            executor.run(program)

    def test_mv_prune_selects_topk_and_updates_csr(self):
        executor = self._make_executor(vector_length=16)
        values = np.zeros(16)
        values[[3, 7, 11]] = [5.0, -9.0, 2.0]
        executor.memory.write(0, values)
        program = self._write_csr_program("vector_length", 16)
        program += self._write_csr_program("prune_k", 2)
        program += [
            LoadImmediate(rd=2, value=0),
            VLoad(vd=1, rs=2),
            MVPrune(vd=3, vs1=1),
        ]
        executor.run(program)
        compacted = executor.state.vector.read(3)
        assert set(np.abs(compacted[np.abs(compacted) > 0]).tolist()) == {5.0, 9.0}
        assert executor.state.csr.read("prune_count") == 3

    def test_vector_store_roundtrip(self):
        executor = self._make_executor(vector_length=8)
        executor.memory.write(0, np.arange(8, dtype=float))
        program = self._write_csr_program("vector_length", 8)
        program += [
            LoadImmediate(rd=1, value=0),
            VLoad(vd=1, rs=1),
            LoadImmediate(rd=2, value=100),
            VStore(vs=1, rs=2),
        ]
        executor.run(program)
        np.testing.assert_array_equal(
            executor.memory.read(100, 8), np.arange(8, dtype=float)
        )


class TestVectorInstructions:
    def test_vector_arithmetic(self):
        executor = CoreExecutor("cc", memory_size=256, vector_length=8)
        executor.state.vector.write(1, np.array([1.0, -2.0, 3.0, -4.0]))
        executor.state.vector.write(2, np.array([0.5, 0.5, 0.5, 0.5]))
        executor.run(
            [
                VAdd(vd=3, vs1=1, vs2=2),
                VMul(vd=4, vs1=1, vs2=2),
                VRelu(vd=5, vs1=1),
                VSilu(vd=6, vs1=1),
            ]
        )
        np.testing.assert_allclose(
            executor.state.vector.read(3)[:4], [1.5, -1.5, 3.5, -3.5]
        )
        np.testing.assert_allclose(
            executor.state.vector.read(4)[:4], [0.5, -1.0, 1.5, -2.0]
        )
        np.testing.assert_allclose(executor.state.vector.read(5)[:4], [1.0, 0.0, 3.0, 0.0])
        silu = executor.state.vector.read(6)[:4]
        expected = np.array([1.0, -2.0, 3.0, -4.0])
        np.testing.assert_allclose(silu, expected / (1 + np.exp(-expected)), rtol=1e-12)

    def test_csr_write_from_scalar(self):
        executor = CoreExecutor("cc")
        executor.run(
            [LoadImmediate(rd=4, value=77), CsrWrite(csr=CSR_ADDRESSES["tile_m"], rs=4)]
        )
        assert executor.state.csr.read("tile_m") == 77

    def test_unknown_csr_address_raises(self):
        executor = CoreExecutor("cc")
        with pytest.raises(ExecutionError):
            executor.run([CsrWrite(csr=0x7E, rs=0)])

    def test_invalid_core_type_rejected(self):
        with pytest.raises(ValueError):
            CoreExecutor("gpu")
