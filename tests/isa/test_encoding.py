"""Tests for the instruction encoding formats (repro.isa.encoding, Fig. 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.encoding import (
    InstructionFormat,
    MAJOR_OPCODES,
    OPCODE_TO_FORMAT,
    BitField,
    decode_fields,
    encode_fields,
    field_names,
    format_fields,
)


class TestBitField:
    def test_insert_and_extract_roundtrip(self):
        field = BitField("f", lsb=4, width=5)
        word = field.insert(0, 0b10110)
        assert field.extract(word) == 0b10110

    def test_insert_preserves_other_bits(self):
        field = BitField("f", lsb=8, width=4)
        word = field.insert(0xFFFF_FFFF, 0)
        assert word == 0xFFFF_F0FF

    def test_rejects_out_of_range_value(self):
        field = BitField("f", lsb=0, width=3)
        with pytest.raises(ValueError):
            field.insert(0, 8)

    def test_rejects_field_outside_word(self):
        with pytest.raises(ValueError):
            BitField("f", lsb=30, width=4)
        with pytest.raises(ValueError):
            BitField("f", lsb=-1, width=2)

    def test_msb_and_mask(self):
        field = BitField("f", lsb=4, width=4)
        assert field.msb == 7
        assert field.mask == 0xF


class TestFormatLayouts:
    def test_all_formats_have_unique_opcodes(self):
        assert len(set(MAJOR_OPCODES.values())) == len(MAJOR_OPCODES)
        for fmt, opcode in MAJOR_OPCODES.items():
            assert OPCODE_TO_FORMAT[opcode] is fmt

    def test_every_format_has_an_opcode_field(self):
        for fmt in InstructionFormat:
            assert "opcode" in field_names(fmt)

    def test_fields_do_not_overlap(self):
        for fmt in InstructionFormat:
            used = set()
            for field in format_fields(fmt):
                bits = set(range(field.lsb, field.lsb + field.width))
                assert not (bits & used), f"{fmt} field {field.name} overlaps"
                used |= bits

    def test_mm_format_has_three_matrix_operands(self):
        names = field_names(InstructionFormat.MM)
        assert {"md", "ms1", "ms2"} <= set(names)

    def test_mv_format_has_vector_and_scalar_operands(self):
        names = field_names(InstructionFormat.MV)
        assert {"vd", "rs1", "vs1"} <= set(names)

    def test_config_format_has_csr_field(self):
        assert "csr" in field_names(InstructionFormat.CONFIG)


class TestEncodeDecode:
    def test_roundtrip_mm(self):
        word = encode_fields(InstructionFormat.MM, func=2, md=1, ms1=2, ms2=3)
        fmt, fields = decode_fields(word)
        assert fmt is InstructionFormat.MM
        assert fields["md"] == 1
        assert fields["ms1"] == 2
        assert fields["ms2"] == 3
        assert fields["func"] == 2

    def test_roundtrip_vv(self):
        word = encode_fields(InstructionFormat.VV, func=1, vd=4, vs1=5, vs2=6)
        fmt, fields = decode_fields(word)
        assert fmt is InstructionFormat.VV
        assert (fields["vd"], fields["vs1"], fields["vs2"]) == (4, 5, 6)

    def test_opcode_filled_automatically(self):
        word = encode_fields(InstructionFormat.CONFIG, func=0, csr=0x10, rs1=3)
        assert word & 0x7F == MAJOR_OPCODES[InstructionFormat.CONFIG]

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            encode_fields(InstructionFormat.MM, bogus=1)

    def test_decode_rejects_unknown_opcode(self):
        with pytest.raises(ValueError):
            decode_fields(0b0110011)  # base RISC-V OP opcode, not an extension

    def test_decode_rejects_out_of_range_word(self):
        with pytest.raises(ValueError):
            decode_fields(1 << 33)

    @given(
        vd=st.integers(min_value=0, max_value=31),
        rs1=st.integers(min_value=0, max_value=31),
        vs1=st.integers(min_value=0, max_value=31),
        func=st.integers(min_value=0, max_value=31),
    )
    @settings(max_examples=60, deadline=None)
    def test_mv_roundtrip_property(self, vd, rs1, vs1, func):
        word = encode_fields(InstructionFormat.MV, vd=vd, rs1=rs1, vs1=vs1, func=func)
        fmt, fields = decode_fields(word)
        assert fmt is InstructionFormat.MV
        assert fields["vd"] == vd
        assert fields["rs1"] == rs1
        assert fields["vs1"] == vs1
        assert fields["func"] == func
