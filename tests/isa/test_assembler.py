"""Tests for the two-way assembler (repro.isa.assembler)."""

import pytest

from repro.isa.assembler import (
    AssemblerError,
    assemble,
    assemble_to_words,
    disassemble,
    parse_line,
)
from repro.isa.decoder import decode_program
from repro.isa.instructions import (
    CsrWrite,
    LoadImmediate,
    MMLoad,
    MMMul,
    MVPrune,
    Sync,
    VSilu,
)


EXAMPLE_PROGRAM = """
# simple GEMM tile kernel
li      x1, 0
li      x2, 256
cfg.csrw 0x10, x2      # tile_m
mm.ld   m0, (x1)
mm.ld   m1, (x2)
mm.zero m2
mm.mul  m2, m0, m1
mm.st   m2, (x3)
sync
"""


class TestParseLine:
    def test_parse_mm_mul(self):
        assert parse_line("mm.mul m2, m0, m1") == MMMul(md=2, ms1=0, ms2=1)

    def test_parse_load_with_parentheses(self):
        assert parse_line("mm.ld m0, (x4)") == MMLoad(md=0, rs=4)

    def test_parse_csr_write_hex(self):
        assert parse_line("cfg.csrw 0x20, x7") == CsrWrite(csr=0x20, rs=7)

    def test_parse_li(self):
        assert parse_line("li x5, 1234") == LoadImmediate(rd=5, value=1234)

    def test_parse_prune_and_silu(self):
        assert parse_line("mv.prune v3, v1") == MVPrune(vd=3, vs1=1)
        assert parse_line("v.silu v2, v2") == VSilu(vd=2, vs1=2)

    def test_comments_are_stripped(self):
        assert parse_line("sync  # barrier") == Sync()

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(AssemblerError):
            parse_line("madd m0, m1, m2")

    def test_wrong_operand_kind_raises(self):
        with pytest.raises(AssemblerError):
            parse_line("mm.mul x2, m0, m1")

    def test_wrong_operand_count_raises(self):
        with pytest.raises(AssemblerError):
            parse_line("mm.mul m2, m0")

    def test_garbage_operand_raises(self):
        with pytest.raises(AssemblerError):
            parse_line("li x1, banana")


class TestAssembleProgram:
    def test_assemble_skips_blank_and_comment_lines(self):
        program = assemble(EXAMPLE_PROGRAM)
        assert len(program) == 9

    def test_assemble_reports_line_numbers(self):
        source = "mm.mul m2, m0, m1\nbogus m1\n"
        with pytest.raises(AssemblerError, match="line 2"):
            assemble(source)

    def test_disassemble_roundtrip(self):
        program = assemble(EXAMPLE_PROGRAM)
        text = disassemble(program)
        again = assemble(text)
        assert again == program

    def test_assemble_to_words_roundtrips_through_decoder(self):
        source = "\n".join(
            line
            for line in EXAMPLE_PROGRAM.splitlines()
            if line.strip() and not line.strip().startswith("#") and not line.strip().startswith("li")
        )
        words = assemble_to_words(source)
        decoded = decode_program(words)
        assert decoded == assemble(source)

    def test_assemble_to_words_rejects_pseudo_instructions(self):
        with pytest.raises(NotImplementedError):
            assemble_to_words("li x1, 5")
