"""Tests for instruction objects and their binary encodings."""

import pytest

from repro.isa.decoder import decode
from repro.isa.instructions import (
    INSTRUCTION_CLASSES,
    CsrWrite,
    LoadImmediate,
    MMLoad,
    MMMul,
    MMStore,
    MMZero,
    MVMul,
    MVPrune,
    MVWeightLoad,
    Sync,
    VAdd,
    VLoad,
    VMax,
    VMul,
    VRelu,
    VSilu,
    VStore,
)


class TestTextRendering:
    def test_mm_mul_text(self):
        assert MMMul(md=2, ms1=0, ms2=1).text() == "mm.mul m2, m0, m1"

    def test_mm_load_text(self):
        assert MMLoad(md=0, rs=5).text() == "mm.ld m0, (x5)"

    def test_mv_mul_text(self):
        assert MVMul(vd=2, vs1=1).text() == "mv.mul v2, v1"

    def test_csr_write_text(self):
        assert CsrWrite(csr=0x10, rs=5).text() == "cfg.csrw 0x10, x5"

    def test_li_text(self):
        assert LoadImmediate(rd=3, value=42).text() == "li x3, 42"

    def test_sync_text_has_no_operands(self):
        assert Sync().text() == "sync"


class TestEncoding:
    @pytest.mark.parametrize(
        "instruction",
        [
            MMLoad(md=1, rs=9),
            MMStore(ms=2, rs=3),
            MMMul(md=2, ms1=0, ms2=1),
            MMZero(md=3),
            MVWeightLoad(rs=7),
            MVMul(vd=4, vs1=2),
            MVPrune(vd=5, vs1=1),
            VLoad(vd=6, rs=11),
            VStore(vs=7, rs=12),
            VAdd(vd=1, vs1=2, vs2=3),
            VMul(vd=4, vs1=5, vs2=6),
            VMax(vd=7, vs1=8, vs2=9),
            VRelu(vd=10, vs1=11),
            VSilu(vd=12, vs1=13),
            CsrWrite(csr=0x21, rs=4),
            Sync(),
        ],
    )
    def test_encode_decode_roundtrip(self, instruction):
        word = instruction.encode()
        assert 0 <= word < (1 << 32)
        assert decode(word) == instruction

    def test_pseudo_instruction_has_no_encoding(self):
        with pytest.raises(NotImplementedError):
            LoadImmediate(rd=1, value=5).encode()

    def test_decode_table_covers_all_encodable_instructions(self):
        encodable = [cls for cls in INSTRUCTION_CLASSES if cls.FORMAT is not None]
        funcs = {(cls.FORMAT, cls.FUNC) for cls in encodable}
        assert len(funcs) == len(encodable), "duplicate (format, func) assignments"

    def test_distinct_instructions_have_distinct_words(self):
        words = {
            MMMul(md=2, ms1=0, ms2=1).encode(),
            MMZero(md=2).encode(),
            MVMul(vd=2, vs1=1).encode(),
            VAdd(vd=2, vs1=1, vs2=0).encode(),
            CsrWrite(csr=2, rs=1).encode(),
        }
        assert len(words) == 5

    def test_mm_load_large_scalar_register_roundtrips(self):
        # Scalar register indices above 7 are split across ms1 and uimm.
        instruction = MMLoad(md=3, rs=27)
        assert decode(instruction.encode()) == instruction
