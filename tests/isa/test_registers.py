"""Tests for the architectural register files (repro.isa.registers)."""

import numpy as np
import pytest

from repro.isa.registers import (
    CSR_ADDRESSES,
    CSRFile,
    CoreState,
    MatrixRegisterFile,
    ScalarRegisterFile,
    VectorRegisterFile,
)


class TestMatrixRegisterFile:
    def test_write_read_roundtrip(self):
        regs = MatrixRegisterFile(n_registers=4, rows=4, cols=4)
        value = np.arange(16, dtype=float).reshape(4, 4)
        regs.write(2, value)
        np.testing.assert_array_equal(regs.read(2), value)

    def test_read_returns_copy(self):
        regs = MatrixRegisterFile(rows=4, cols=4)
        regs.write(0, np.ones((4, 4)))
        view = regs.read(0)
        view[0, 0] = 99.0
        assert regs.read(0)[0, 0] == 1.0

    def test_write_rejects_wrong_shape(self):
        regs = MatrixRegisterFile(rows=4, cols=4)
        with pytest.raises(ValueError):
            regs.write(0, np.ones((3, 3)))

    def test_write_tile_zero_pads(self):
        regs = MatrixRegisterFile(rows=4, cols=4)
        regs.write_tile(1, np.ones((2, 3)))
        stored = regs.read(1)
        assert stored[:2, :3].sum() == 6.0
        assert stored.sum() == 6.0

    def test_write_tile_rejects_oversized(self):
        regs = MatrixRegisterFile(rows=4, cols=4)
        with pytest.raises(ValueError):
            regs.write_tile(0, np.ones((5, 4)))

    def test_row_access(self):
        regs = MatrixRegisterFile(rows=4, cols=4)
        regs.write(0, np.arange(16, dtype=float).reshape(4, 4))
        np.testing.assert_array_equal(regs.row(0, 1), [4.0, 5.0, 6.0, 7.0])
        with pytest.raises(IndexError):
            regs.row(0, 5)

    def test_index_bounds(self):
        regs = MatrixRegisterFile(n_registers=4, rows=2, cols=2)
        with pytest.raises(IndexError):
            regs.read(4)

    def test_reset(self):
        regs = MatrixRegisterFile(rows=2, cols=2)
        regs.write(0, np.ones((2, 2)))
        regs.reset()
        assert regs.read(0).sum() == 0.0


class TestVectorRegisterFile:
    def test_short_vectors_are_zero_padded(self):
        regs = VectorRegisterFile(length=8)
        regs.write(1, np.array([1.0, 2.0]))
        stored = regs.read(1)
        assert stored.shape == (8,)
        assert stored[:2].tolist() == [1.0, 2.0]
        assert stored[2:].sum() == 0.0

    def test_rejects_oversized_vector(self):
        regs = VectorRegisterFile(length=4)
        with pytest.raises(ValueError):
            regs.write(0, np.ones(5))

    def test_index_bounds(self):
        regs = VectorRegisterFile(n_registers=4, length=4)
        with pytest.raises(IndexError):
            regs.read(4)


class TestScalarRegisterFile:
    def test_x0_is_hardwired_to_zero(self):
        regs = ScalarRegisterFile()
        regs.write(0, 42)
        assert regs.read(0) == 0

    def test_write_read(self):
        regs = ScalarRegisterFile()
        regs.write(5, 1234)
        assert regs.read(5) == 1234

    def test_index_bounds(self):
        regs = ScalarRegisterFile()
        with pytest.raises(IndexError):
            regs.read(32)
        with pytest.raises(IndexError):
            regs.write(-1, 0)


class TestCSRFile:
    def test_read_write_by_name_and_address(self):
        csr = CSRFile()
        csr.write("tile_m", 128)
        assert csr.read("tile_m") == 128
        assert csr.read_address(CSR_ADDRESSES["tile_m"]) == 128
        csr.write_address(CSR_ADDRESSES["tile_n"], 64)
        assert csr.read("tile_n") == 64

    def test_identification_csrs_are_read_only_for_software(self):
        csr = CSRFile()
        with pytest.raises(PermissionError):
            csr.write("core_index", 3)
        csr.write("core_index", 3, hardware=True)
        assert csr.read("core_index") == 3

    def test_unknown_csr_raises(self):
        csr = CSRFile()
        with pytest.raises(KeyError):
            csr.read("nonexistent")
        with pytest.raises(KeyError):
            csr.read_address(0x7F)

    def test_initial_values(self):
        csr = CSRFile({"prune_k": 16})
        assert csr.read("prune_k") == 16

    def test_snapshot_is_a_copy(self):
        csr = CSRFile()
        snapshot = csr.snapshot()
        snapshot["tile_m"] = 999
        assert csr.read("tile_m") == 0


class TestCoreState:
    def test_reset_preserves_identity_csrs(self):
        state = CoreState()
        state.csr.write("core_index", 5, hardware=True)
        state.csr.write("tile_m", 64)
        state.scalar.write(3, 7)
        state.reset()
        assert state.csr.read("core_index") == 5
        assert state.csr.read("tile_m") == 0
        assert state.scalar.read(3) == 0
