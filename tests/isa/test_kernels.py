"""Tests for the extension kernel builders (repro.isa.kernels)."""

import numpy as np
import pytest

from repro.isa.executor import CoreExecutor
from repro.isa.kernels import (
    build_ffn_kernel,
    build_gemm_kernel,
    build_gemv_kernel,
    build_pruned_gemv_kernel,
    pack_tiles,
    simple_gemm_kernel,
    unpack_tiles,
)
from repro.pruning.ffn import silu


class TestTilePacking:
    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(32, 48))
        packed = pack_tiles(matrix, 16, 16)
        restored = unpack_tiles(packed, 32, 48, 16, 16)
        np.testing.assert_array_equal(restored, matrix)

    def test_pack_rejects_unaligned(self):
        with pytest.raises(ValueError):
            pack_tiles(np.ones((17, 16)), 16, 16)

    def test_unpack_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            unpack_tiles(np.ones(10), 4, 4, 2, 2)


class TestSimpleGEMMKernel:
    @pytest.mark.parametrize("m,k,n", [(16, 16, 16), (32, 16, 32), (16, 48, 32)])
    def test_gemm_kernel_computes_correct_product(self, m, k, n):
        tile = 16
        rng = np.random.default_rng(42)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        plan = simple_gemm_kernel(m, k, n, tile=tile)
        executor = CoreExecutor("cc", memory_size=plan.memory_words + 16)
        plan.place(executor, {"a": pack_tiles(a, tile, tile), "b": pack_tiles(b, tile, tile)})
        result = executor.run(plan.program)
        packed_c = plan.fetch(executor, "c")
        c = unpack_tiles(packed_c.ravel(), m, n, tile, tile)
        np.testing.assert_allclose(c, a @ b, rtol=1e-10)
        assert result.cycles > 0

    def test_cycles_scale_with_tile_count(self):
        small = simple_gemm_kernel(16, 16, 16)
        large = simple_gemm_kernel(16, 64, 64)
        executor_small = CoreExecutor("cc", memory_size=small.memory_words + 1)
        executor_large = CoreExecutor("cc", memory_size=large.memory_words + 1)
        cycles_small = executor_small.run(small.program).cycles
        cycles_large = executor_large.run(large.program).cycles
        assert cycles_large > 10 * cycles_small

    def test_rejects_unaligned_dimensions(self):
        with pytest.raises(ValueError):
            simple_gemm_kernel(10, 16, 16)

    def test_place_rejects_wrong_shape(self):
        plan = simple_gemm_kernel(16, 16, 16)
        executor = CoreExecutor("cc", memory_size=plan.memory_words)
        with pytest.raises(ValueError):
            plan.place(executor, {"a": np.ones((8, 8))})

    def test_place_rejects_unknown_operand(self):
        plan = simple_gemm_kernel(16, 16, 16)
        executor = CoreExecutor("cc", memory_size=plan.memory_words)
        with pytest.raises(KeyError):
            plan.place(executor, {"z": np.ones((16, 16))})


class TestBuildGEMMKernel:
    def test_layout_and_program_nonempty(self):
        plan = build_gemm_kernel(32, 32, 32)
        assert set(plan.layout) == {"a", "b", "c"}
        assert plan.memory_words == 3 * 32 * 32
        assert len(plan.program) > 0

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            build_gemm_kernel(30, 32, 32)


class TestGEMVKernel:
    def test_gemv_kernel_computes_correct_product(self):
        k, n = 48, 56
        rng = np.random.default_rng(7)
        x = rng.normal(size=k)
        w = rng.normal(size=(k, n))
        plan = build_gemv_kernel(k, n)
        executor = CoreExecutor("mc", memory_size=plan.memory_words + 16, vector_length=max(k, n))
        plan.place(executor, {"x": x, "w": w})
        executor.run(plan.program)
        np.testing.assert_allclose(plan.fetch(executor, "y"), x @ w, rtol=1e-10)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            build_gemv_kernel(0, 4)


class TestPrunedGEMVKernel:
    def test_pruned_gemv_matches_reference_on_kept_channels(self):
        k, n, keep = 64, 32, 8
        rng = np.random.default_rng(3)
        x = np.zeros(k)
        outliers = rng.choice(k, size=keep, replace=False)
        x[outliers] = rng.normal(size=keep) * 10.0
        x += rng.normal(size=k) * 0.01
        w = rng.normal(size=(k, n))

        # The pruner keeps the top-`keep` channels; compact the weight rows
        # accordingly, as the hardware address generator would.
        kept_channels = np.sort(np.argsort(np.abs(x))[-keep:])
        w_pruned = w[kept_channels, :]

        plan = build_pruned_gemv_kernel(k, n, prune_k=keep)
        executor = CoreExecutor("mc", memory_size=plan.memory_words + 16, vector_length=k)
        plan.place(executor, {"x": x, "w_pruned": w_pruned})
        executor.run(plan.program)
        y = plan.fetch(executor, "y")
        # Compaction sorts by channel index, matching the address generator.
        reference = x[kept_channels] @ w_pruned
        np.testing.assert_allclose(y, reference, rtol=1e-10)

    def test_rejects_bad_prune_k(self):
        with pytest.raises(ValueError):
            build_pruned_gemv_kernel(16, 8, prune_k=0)
        with pytest.raises(ValueError):
            build_pruned_gemv_kernel(16, 8, prune_k=32)


class TestFFNKernel:
    def test_ffn_kernel_matches_equation_1(self):
        d_model, d_ffn = 32, 48
        rng = np.random.default_rng(9)
        x = rng.normal(size=d_model) * 0.5
        w_gate = rng.normal(size=(d_model, d_ffn)) * 0.2
        w_up = rng.normal(size=(d_model, d_ffn)) * 0.2
        w_down = rng.normal(size=(d_ffn, d_model)) * 0.2
        plan = build_ffn_kernel(d_model, d_ffn)
        executor = CoreExecutor(
            "mc", memory_size=plan.memory_words + 16, vector_length=max(d_model, d_ffn)
        )
        plan.place(executor, {"x": x, "w_gate": w_gate, "w_up": w_up, "w_down": w_down})
        executor.run(plan.program)
        y = plan.fetch(executor, "y")
        expected = ((x @ w_up) * silu(x @ w_gate)) @ w_down
        np.testing.assert_allclose(y, expected, rtol=1e-9)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            build_ffn_kernel(0, 8)
