"""Decoded-kernel dispatch cache: replayed kernels skip type resolution."""

import pytest

from repro.isa.executor import CoreExecutor, ExecutionError
from repro.isa.instructions import BaseInstruction, LoadImmediate, MMZero, Sync
from repro.isa.kernels import simple_gemm_kernel


class TestDispatchCache:
    def test_replayed_kernel_results_identical(self):
        plan = simple_gemm_kernel(16, 32, 32)
        executor = CoreExecutor("cc")
        first = executor.run(plan.program)
        second = executor.run(plan.program)
        assert first.cycles == second.cycles
        assert first.cycle_breakdown == second.cycle_breakdown
        assert len(executor._kernel_cache) == 1

    def test_cached_run_matches_fresh_executor(self):
        plan = simple_gemm_kernel(16, 32, 32)
        warm = CoreExecutor("cc")
        warm.run(plan.program)
        replay = warm.run(plan.program)
        fresh = CoreExecutor("cc").run(plan.program)
        assert replay.cycles == fresh.cycles
        assert replay.instructions_executed == fresh.instructions_executed

    def test_distinct_kernels_get_distinct_entries(self):
        executor = CoreExecutor("cc")
        executor.run([MMZero(md=0), Sync()])
        executor.run([MMZero(md=0), MMZero(md=1)])
        assert len(executor._kernel_cache) == 2

    def test_decode_kernel_resolves_handlers_in_order(self):
        executor = CoreExecutor("cc")
        program = [LoadImmediate(rd=0, value=3), Sync(), MMZero(md=0)]
        handlers = executor.decode_kernel(program)
        assert len(handlers) == len(program)
        cycles = [handler(executor, instr) for handler, instr in zip(handlers, program)]
        assert cycles == [1.0, 1.0, 1.0]

    def test_unsupported_instruction_raises(self):
        class Bogus(BaseInstruction):
            MNEMONIC = "bogus"

        executor = CoreExecutor("cc")
        with pytest.raises(ExecutionError):
            executor.decode_kernel([Bogus()])
        with pytest.raises(ExecutionError):
            executor._execute(Bogus())
