"""Lightweight pydocstyle-style audit of the public entry points.

Scope: every module of ``repro.serving``, ``repro.scenarios`` and
``repro.planner``, plus ``repro.core.batch``.  The rules are deliberately
small and mechanical so the check stays fast and non-flaky:

* every public class, function, method and property defined in those
  modules carries a docstring whose first line is a non-empty summary;
* every parameter of a public *module-level* function is mentioned by name
  somewhere in its docstring (the "argument docs" floor — ``self``/``cls``
  and ``*args``/``**kwargs`` excluded).

"Public" means not underscore-prefixed and defined in (not imported into)
the audited module.  Violations list the full dotted path, so a failure
reads as a worklist.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import re
from typing import Iterator, List, Tuple

import repro.core.batch
import repro.planner
import repro.scenarios
import repro.serving

AUDITED_PACKAGES = (repro.serving, repro.scenarios, repro.planner)
AUDITED_MODULES = (repro.core.batch,)


def audited_modules() -> List[object]:
    """Every module the audit covers, packages walked recursively."""
    modules = list(AUDITED_MODULES)
    for package in AUDITED_PACKAGES:
        modules.append(package)
        for info in pkgutil.iter_modules(package.__path__):
            if info.name.startswith("_") and info.name != "__main__":
                continue
            modules.append(importlib.import_module(f"{package.__name__}.{info.name}"))
    return modules


def _has_summary(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc) and bool(doc.splitlines()[0].strip())


def _public_members(module) -> Iterator[Tuple[str, object]]:
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        yield name, obj


def _class_members(cls) -> Iterator[Tuple[str, object]]:
    for name, raw in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(raw, property):
            yield name, raw.fget
        elif isinstance(raw, (staticmethod, classmethod)):
            yield name, raw.__func__
        elif inspect.isfunction(raw):
            yield name, raw


def test_every_public_entry_point_has_a_summary_line():
    missing: List[str] = []
    for module in audited_modules():
        for name, obj in _public_members(module):
            path = f"{module.__name__}.{name}"
            if not _has_summary(obj):
                missing.append(path)
            if inspect.isclass(obj):
                for member_name, member in _class_members(obj):
                    if not _has_summary(member):
                        missing.append(f"{path}.{member_name}")
    assert not missing, (
        "public entry points without a docstring summary line:\n  "
        + "\n  ".join(sorted(missing))
    )


def test_module_level_functions_document_their_parameters():
    undocumented: List[str] = []
    for module in audited_modules():
        for name, obj in _public_members(module):
            if not inspect.isfunction(obj):
                continue
            doc = inspect.getdoc(obj) or ""
            for parameter in inspect.signature(obj).parameters.values():
                if parameter.kind in (
                    inspect.Parameter.VAR_POSITIONAL,
                    inspect.Parameter.VAR_KEYWORD,
                ):
                    continue
                if not re.search(rf"\b{re.escape(parameter.name)}\b", doc):
                    undocumented.append(
                        f"{module.__name__}.{name}({parameter.name})"
                    )
    assert not undocumented, (
        "module-level public functions with undocumented parameters:\n  "
        + "\n  ".join(sorted(undocumented))
    )
