"""Tests for the streaming pipeline model (repro.core.pipeline)."""

import pytest

from repro.core.pipeline import PipelineModel


@pytest.fixture(scope="module")
def pipeline(edgemm_system, sphinx_tiny) -> PipelineModel:
    return edgemm_system.pipeline(sphinx_tiny, prompt_text_tokens=32)


class TestStageLatencies:
    def test_cc_stage_independent_of_output_tokens(self, pipeline):
        assert pipeline.cc_stage_latency_s(8, 0.5) == pytest.approx(
            pipeline.cc_stage_latency_s(128, 0.5), rel=1e-6
        )

    def test_mc_stage_scales_with_output_tokens(self, pipeline):
        short = pipeline.mc_stage_latency_s(8, 0.5)
        long = pipeline.mc_stage_latency_s(64, 0.5)
        assert long > 6 * short

    def test_more_bandwidth_shortens_decode(self, pipeline):
        slow = pipeline.mc_stage_latency_s(32, 0.5)
        fast = pipeline.mc_stage_latency_s(32, 0.875)
        assert fast < slow

    def test_pruning_shortens_decode(self, pipeline):
        full = pipeline.mc_stage_latency_s(32, 0.5)
        pruned = pipeline.mc_stage_latency_s(32, 0.5, keep_fraction=0.3)
        assert pruned < full

    def test_stage_latency_validation(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.cc_stage_latency_s(8, 0.0)
        with pytest.raises(ValueError):
            pipeline.mc_stage_latency_s(8, 1.5)
        with pytest.raises(ValueError):
            pipeline.mc_stage_latency_s(8, 0.5, batch_size=0)


class TestPipelinePoints:
    def test_request_latency_is_sum_of_stages(self, pipeline):
        point = pipeline.evaluate(32)
        assert point.request_latency_s == pytest.approx(
            point.cc_stage_latency_s + point.mc_stage_latency_s
        )

    def test_interval_is_slower_stage(self, pipeline):
        point = pipeline.evaluate(64)
        assert point.pipeline_interval_s == max(
            point.cc_stage_latency_s, point.mc_stage_latency_s
        )

    def test_throughput_definition(self, pipeline):
        point = pipeline.evaluate(64, batch_size=2)
        expected = 2 * 64 / point.pipeline_interval_s
        assert point.tokens_per_second == pytest.approx(expected)
        assert point.requests_per_second == pytest.approx(2 / point.pipeline_interval_s)

    def test_imbalance_at_long_outputs(self, pipeline):
        point = pipeline.evaluate(256, cc_bandwidth_fraction=0.5)
        assert point.mc_stage_latency_s > point.cc_stage_latency_s
        assert point.imbalance > 1.0

    def test_reallocation_helps_when_decode_dominates(self, pipeline):
        """Giving MC more bandwidth must shorten a decode-dominated pipeline."""
        equal = pipeline.evaluate(128, cc_bandwidth_fraction=0.5)
        skewed = pipeline.evaluate(128, cc_bandwidth_fraction=0.125)
        assert skewed.request_latency_s < equal.request_latency_s
        assert skewed.tokens_per_second > equal.tokens_per_second

    def test_batching_boosts_throughput_for_long_outputs(self, pipeline):
        unbatched = pipeline.evaluate(512, cc_bandwidth_fraction=0.125, batch_size=1)
        batched = pipeline.evaluate(512, cc_bandwidth_fraction=0.125, batch_size=4)
        assert batched.tokens_per_second > 2 * unbatched.tokens_per_second

    def test_batching_costs_some_latency(self, pipeline):
        unbatched = pipeline.evaluate(512, cc_bandwidth_fraction=0.125, batch_size=1)
        batched = pipeline.evaluate(512, cc_bandwidth_fraction=0.125, batch_size=4)
        assert batched.request_latency_s > unbatched.request_latency_s

    def test_mc_fraction_complement(self, pipeline):
        point = pipeline.evaluate(16, cc_bandwidth_fraction=0.25)
        assert point.mc_bandwidth_fraction == pytest.approx(0.75)

    def test_rejects_bad_output_tokens(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.evaluate(0)


class TestBalancedLength:
    def test_balanced_length_positive(self, pipeline):
        le = pipeline.balanced_token_length()
        assert le >= 1

    def test_skewed_bandwidth_raises_balanced_length(self, pipeline):
        """Reallocating bandwidth to MC extends the balanced range (le -> lb)."""
        le = pipeline.balanced_token_length(cc_bandwidth_fraction=0.5)
        lb = pipeline.balanced_token_length(cc_bandwidth_fraction=0.125)
        assert lb > le
