"""Tests for the top-level EdgeMM driver (repro.core.edgemm)."""

import pytest

from repro.core.edgemm import EdgeMM
from repro.models.activations import ActivationTraceConfig, ActivationTraceGenerator
from repro.models.mllm import InferenceRequest


class TestConstructors:
    def test_default_is_heterogeneous(self):
        system = EdgeMM.default()
        assert system.simulator.has_cc and system.simulator.has_mc

    def test_homogeneous_variants(self):
        assert not EdgeMM.homo_cc().simulator.has_mc
        assert not EdgeMM.homo_mc().simulator.has_cc

    def test_with_pruning(self):
        system = EdgeMM.with_pruning(0.25)
        assert system.system.pruning.enabled
        assert system.system.pruning.average_keep_fraction == 0.25


class TestInference:
    def test_run_produces_result(self, edgemm_system, sphinx_tiny, short_request):
        result = edgemm_system.run(sphinx_tiny, short_request)
        assert result.total_latency_s > 0
        assert result.hardware_name == "edgemm"

    def test_run_workload_matches_run(self, edgemm_system, sphinx_tiny, short_request):
        workload = sphinx_tiny.build_workload(short_request)
        via_workload = edgemm_system.run_workload(workload)
        via_request = edgemm_system.run(sphinx_tiny, short_request)
        assert via_workload.total_latency_s == pytest.approx(via_request.total_latency_s)

    def test_run_phase(self, edgemm_system, sphinx_tiny, short_request):
        workload = sphinx_tiny.build_workload(short_request)
        result = edgemm_system.run_phase(workload.phase("llm_decode"))
        assert result.latency_s > 0

    def test_tokens_per_joule_accessor(self, edgemm_system, sphinx_tiny, short_request):
        result = edgemm_system.run(sphinx_tiny, short_request)
        assert edgemm_system.tokens_per_joule(result) > 0


class TestPruningCalibration:
    @pytest.fixture(scope="class")
    def calibration(self, edgemm_system, small_trace):
        return edgemm_system.calibrate_pruning(small_trace, n_tokens=3)

    def test_calibration_fields(self, calibration, small_trace):
        assert 0.0 < calibration.average_keep_fraction < 1.0
        assert 0.0 < calibration.mean_pruning_ratio < 1.0
        assert calibration.average_keep_fraction == pytest.approx(
            1.0 - calibration.mean_pruning_ratio, abs=0.02
        )
        assert len(calibration.per_layer_keep_fraction) == small_trace.config.n_layers

    def test_first_layer_is_kept(self, calibration):
        assert calibration.per_layer_keep_fraction[0] == pytest.approx(1.0)

    def test_enable_pruning_speeds_up_decode(
        self, edgemm_system, calibration, sphinx_tiny, short_request
    ):
        baseline = edgemm_system.run(sphinx_tiny, short_request)
        pruned_system = edgemm_system.enable_pruning(calibration)
        pruned = pruned_system.run(sphinx_tiny, short_request)
        assert pruned.decode_latency_s < baseline.decode_latency_s
        # Encoder and prefill are untouched by decode-side weight pruning.
        assert pruned.prefill_latency_s == pytest.approx(baseline.prefill_latency_s)

    def test_calibration_rejects_bad_token_count(self, edgemm_system, small_trace):
        with pytest.raises(ValueError):
            edgemm_system.calibrate_pruning(small_trace, n_tokens=0)

    def test_default_trace_calibration(self, edgemm_system):
        calibration = edgemm_system.calibrate_pruning(n_tokens=1)
        assert 0.0 < calibration.average_keep_fraction < 1.0


class TestDescribe:
    def test_describe_contains_key_figures(self, edgemm_system):
        summary = edgemm_system.describe()
        for key in (
            "system",
            "groups",
            "peak_tflops",
            "chip_area_mm2",
            "sa_fraction_of_cc_core",
            "cim_fraction_of_mc_core",
            "power_mw_at_60pct",
            "pruning_enabled",
        ):
            assert key in summary
        assert summary["pruning_enabled"] is False

    def test_pipeline_factory(self, edgemm_system, sphinx_tiny):
        pipeline = edgemm_system.pipeline(sphinx_tiny)
        point = pipeline.evaluate(8)
        assert point.request_latency_s > 0
