"""Tests for the mapping explorer (repro.core.mapping)."""

import pytest

from repro.core.mapping import MappingExplorer
from repro.core.simulator import PerformanceSimulator
from repro.core.config import homo_cc_system
from repro.models.ops import Op, OpKind, elementwise_op, matmul_op


@pytest.fixture(scope="module")
def explorer() -> MappingExplorer:
    return MappingExplorer(PerformanceSimulator())


class TestExploreOp:
    def test_best_choice_is_minimum_cycle_candidate(self, explorer):
        decision = explorer.explore_op(matmul_op("g", 64, 512, 512))
        assert decision.best.cycles == min(c.cycles for c in decision.candidates)

    def test_large_gemm_prefers_cc_pool(self, explorer):
        decision = explorer.explore_op(matmul_op("g", 300, 2048, 2048))
        assert decision.best.pool == "cc"

    def test_memory_bound_gemv_prefers_mc_pool_or_ties(self, explorer):
        decision = explorer.explore_op(matmul_op("v", 1, 2048, 5632))
        mc_best = min(
            (c for c in decision.candidates if c.pool == "mc"), key=lambda c: c.cycles
        )
        assert decision.best.cycles <= mc_best.cycles + 1e-9

    def test_candidates_cover_both_pools(self, explorer):
        decision = explorer.explore_op(matmul_op("g", 32, 256, 256))
        pools = {c.pool for c in decision.candidates}
        assert pools == {"cc", "mc"}

    def test_cluster_counts_are_powers_of_two_up_to_total(self, explorer):
        decision = explorer.explore_op(matmul_op("g", 32, 256, 256))
        cc_counts = sorted({c.n_clusters for c in decision.candidates if c.pool == "cc"})
        assert cc_counts[0] == 1
        assert cc_counts[-1] == explorer.simulator.chip.n_cc_clusters

    def test_small_op_not_spread_across_all_clusters(self, explorer):
        """Tiny operators should not be forced onto the whole pool."""
        decision = explorer.explore_op(matmul_op("tiny", 2, 16, 16))
        assert decision.best.n_clusters <= explorer.simulator.chip.n_cc_clusters

    def test_data_movement_op_keeps_default_pool(self, explorer):
        op = Op(name="kv", kind=OpKind.OTHER, m=8, activation_bytes=1024)
        decision = explorer.explore_op(op)
        assert decision.best.compute_cycles == 0.0

    def test_homogeneous_chip_only_offers_its_pool(self):
        explorer = MappingExplorer(PerformanceSimulator(homo_cc_system()))
        decision = explorer.explore_op(matmul_op("v", 1, 256, 256))
        assert {c.pool for c in decision.candidates} == {"cc"}


class TestExploreMany:
    def test_explore_ops_returns_one_decision_per_op(self, explorer):
        ops = [matmul_op(f"g{i}", 16, 128, 128) for i in range(4)]
        decisions = explorer.explore_ops(ops)
        assert len(decisions) == 4
        assert {d.op_name for d in decisions} == {op.name for op in ops}

    def test_total_cycles_sums_best_choices(self, explorer):
        ops = [
            matmul_op("a", 16, 128, 128),
            elementwise_op("b", 4096),
        ]
        total = explorer.total_cycles(ops)
        per_op = sum(d.cycles for d in explorer.explore_ops(ops))
        assert total == pytest.approx(per_op)

    def test_explored_best_never_worse_than_simulator_default(self, explorer):
        """The explorer must never pick a mapping slower than the default."""
        ops = [
            matmul_op("gemm", 128, 1024, 1024),
            matmul_op("gemv", 1, 2048, 5632),
        ]
        for op in ops:
            default = explorer.simulator.execute_op(op)
            explored = explorer.explore_op(op)
            assert explored.cycles <= default.cycles * 1.001
