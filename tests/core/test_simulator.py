"""Tests for the phase-level performance simulator (repro.core.simulator)."""

import pytest

from repro.core.config import default_system, homo_cc_system, homo_mc_system
from repro.core.simulator import PerformanceSimulator
from repro.models.mllm import InferenceRequest
from repro.models.ops import OpKind, Phase, elementwise_op, matmul_op


class TestPoolSelection:
    def test_gemm_goes_to_cc(self, simulator):
        op = matmul_op("g", 64, 256, 256)
        assert simulator.pool_for(op) == "cc"

    def test_gemv_goes_to_mc(self, simulator):
        op = matmul_op("v", 1, 256, 256)
        assert simulator.pool_for(op) == "mc"

    def test_homo_cc_runs_everything_on_cc(self):
        sim = PerformanceSimulator(homo_cc_system())
        assert sim.pool_for(matmul_op("v", 1, 256, 256)) == "cc"

    def test_homo_mc_runs_everything_on_mc(self):
        sim = PerformanceSimulator(homo_mc_system())
        assert sim.pool_for(matmul_op("g", 64, 256, 256)) == "mc"

    def test_missing_pool_rejected_explicitly(self):
        sim = PerformanceSimulator(homo_cc_system())
        with pytest.raises(ValueError):
            sim.execute_op(matmul_op("v", 1, 64, 64), pool="mc")


class TestOpExecution:
    def test_memory_bound_gemv(self, simulator):
        """A decode-style FFN GEMV must be memory bound on the MC pool."""
        op = matmul_op("ffn", 1, 2048, 5632, prunable=True, tag="ffn")
        execution = simulator.execute_op(op)
        assert execution.pool == "mc"
        assert execution.memory_cycles > execution.compute_cycles

    def test_compute_bound_gemm(self, simulator):
        """A prefill-style GEMM must be compute bound on the CC pool."""
        op = matmul_op("prefill", 300, 2048, 2048)
        execution = simulator.execute_op(op)
        assert execution.pool == "cc"
        assert execution.compute_cycles > execution.memory_cycles

    def test_cycles_is_max_of_legs(self, simulator):
        op = matmul_op("g", 32, 256, 256)
        execution = simulator.execute_op(op)
        assert execution.cycles == max(execution.compute_cycles, execution.memory_cycles)

    def test_bandwidth_fraction_scales_memory_leg(self, simulator):
        op = matmul_op("v", 1, 2048, 5632)
        full = simulator.execute_op(op, bandwidth_fraction=1.0)
        half = simulator.execute_op(op, bandwidth_fraction=0.5)
        assert half.memory_cycles > 1.6 * full.memory_cycles

    def test_bandwidth_fraction_must_be_positive(self, simulator):
        op = matmul_op("v", 1, 64, 64)
        with pytest.raises(ValueError):
            simulator.execute_op(op, bandwidth_fraction=0.0)

    def test_keep_fraction_reduces_prunable_traffic_only(self, simulator):
        prunable = matmul_op("ffn", 1, 2048, 5632, prunable=True)
        fixed = matmul_op("attn", 1, 2048, 2048, prunable=False)
        assert (
            simulator.execute_op(prunable, keep_fraction=0.25).dram_bytes
            < simulator.execute_op(prunable, keep_fraction=1.0).dram_bytes
        )
        assert (
            simulator.execute_op(fixed, keep_fraction=0.25).dram_bytes
            == simulator.execute_op(fixed, keep_fraction=1.0).dram_bytes
        )

    def test_data_movement_op_has_no_compute(self, simulator):
        from repro.models.ops import Op

        op = Op(name="kv", kind=OpKind.OTHER, m=10, activation_bytes=4096)
        execution = simulator.execute_op(op)
        assert execution.compute_cycles == 0.0
        assert execution.memory_cycles > 0.0


class TestPhaseExecution:
    def _phase(self, repeat=1):
        phase = Phase(name="test", repeat=repeat)
        phase.add(matmul_op("a", 16, 256, 256))
        phase.add(elementwise_op("b", 1024))
        phase.add(matmul_op("c", 1, 256, 1024, prunable=True))
        return phase

    def test_phase_result_totals(self, simulator):
        result = simulator.execute_phase(self._phase())
        assert result.cycles > 0
        assert result.latency_s == pytest.approx(
            result.cycles / simulator.chip.frequency_hz
        )
        assert result.op_count == 3
        assert result.flops > 0

    def test_repeat_scales_linearly(self, simulator):
        single = simulator.execute_phase(self._phase(repeat=1))
        triple = simulator.execute_phase(self._phase(repeat=3))
        assert triple.cycles == pytest.approx(3 * single.cycles)
        assert triple.dram_bytes == 3 * single.dram_bytes

    def test_forced_pool_overrides_auto(self, simulator):
        phase = self._phase()
        cc_result = simulator.execute_phase(phase, pool="cc")
        assert cc_result.cluster_kind == "cc"

    def test_phase_bound_property(self, simulator):
        decode_like = Phase(name="d")
        decode_like.add(matmul_op("v", 1, 2048, 5632))
        result = simulator.execute_phase(decode_like)
        assert result.bound == "memory"


class TestWorkloadExecution:
    def test_run_request_produces_all_phases(self, simulator, sphinx_tiny, short_request):
        result = simulator.run_request(sphinx_tiny, short_request)
        assert set(result.phases) == {
            "vision_encoder",
            "projector",
            "llm_prefill",
            "llm_decode",
        }
        assert result.output_tokens == short_request.output_tokens
        assert result.total_latency_s > 0
        assert result.power_w is not None and result.power_w > 0

    def test_decode_phase_is_memory_bound(self, simulator, sphinx_tiny, short_request):
        result = simulator.run_request(sphinx_tiny, short_request)
        assert result.phase("llm_decode").bound == "memory"

    def test_prefill_phase_is_compute_bound(self, simulator, sphinx_tiny, short_request):
        result = simulator.run_request(sphinx_tiny, short_request)
        assert result.phase("llm_prefill").bound == "compute"

    def test_pruning_config_reduces_decode_latency(self, sphinx_tiny, short_request):
        baseline = PerformanceSimulator(default_system())
        pruned = PerformanceSimulator(default_system().with_pruning(0.3))
        base_result = baseline.run_request(sphinx_tiny, short_request)
        pruned_result = pruned.run_request(sphinx_tiny, short_request)
        assert pruned_result.decode_latency_s < base_result.decode_latency_s
        assert pruned_result.prefill_latency_s == pytest.approx(
            base_result.prefill_latency_s
        )

    def test_larger_output_length_increases_latency(self, simulator, sphinx_tiny):
        short = simulator.run_request(
            sphinx_tiny, InferenceRequest(images=1, prompt_text_tokens=16, output_tokens=4)
        )
        long = simulator.run_request(
            sphinx_tiny, InferenceRequest(images=1, prompt_text_tokens=16, output_tokens=32)
        )
        assert long.total_latency_s > short.total_latency_s

    def test_average_power_within_physical_range(self, simulator, sphinx_tiny, short_request):
        result = simulator.run_request(sphinx_tiny, short_request)
        # Chip (~0.1-1 W) plus DRAM access power: order of a few watts at most.
        assert 0.01 < result.power_w < 10.0
