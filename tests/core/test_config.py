"""Tests for the system configuration (repro.core.config)."""

import pytest

from repro.core.config import (
    PrecisionConfig,
    PruningRuntimeConfig,
    SystemConfig,
    default_system,
    homo_cc_system,
    homo_mc_system,
    scaled_system,
)


class TestPrecisionConfig:
    def test_byte_conversions(self):
        precision = PrecisionConfig(weight_bits=8, activation_bits=16)
        assert precision.weight_bytes == 1.0
        assert precision.activation_bytes == 2.0

    def test_rejects_non_multiple_of_eight(self):
        with pytest.raises(ValueError):
            PrecisionConfig(weight_bits=7)
        with pytest.raises(ValueError):
            PrecisionConfig(activation_bits=0)


class TestPruningRuntimeConfig:
    def test_defaults_disabled(self):
        config = PruningRuntimeConfig()
        assert not config.enabled
        assert config.average_keep_fraction == 1.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            PruningRuntimeConfig(average_keep_fraction=0.0)
        with pytest.raises(ValueError):
            PruningRuntimeConfig(average_keep_fraction=1.1)


class TestSystemConfig:
    def test_default_is_heterogeneous(self):
        system = default_system()
        assert system.chip.n_cc_clusters > 0
        assert system.chip.n_mc_clusters > 0
        assert system.cc_bandwidth_fraction == 0.5

    def test_with_pruning_returns_new_config(self):
        base = default_system()
        pruned = base.with_pruning(0.3)
        assert pruned.pruning.enabled
        assert pruned.pruning.average_keep_fraction == 0.3
        assert not base.pruning.enabled
        assert pruned.name.endswith("+pruning")

    def test_with_bandwidth_fraction(self):
        system = default_system().with_bandwidth_fraction(0.25)
        assert system.cc_bandwidth_fraction == 0.25

    def test_rejects_bad_bandwidth_fraction(self):
        with pytest.raises(ValueError):
            SystemConfig(cc_bandwidth_fraction=1.5)

    def test_homogeneous_variants(self):
        assert homo_cc_system().chip.n_mc_clusters == 0
        assert homo_mc_system().chip.n_cc_clusters == 0
        assert homo_cc_system().name == "homo_cc"

    def test_homogeneous_keep_total_cluster_count(self):
        base = default_system().chip
        total = base.n_cc_clusters + base.n_mc_clusters
        assert homo_cc_system().chip.n_cc_clusters == total
        assert homo_mc_system().chip.n_mc_clusters == total


class TestScaledSystem:
    def test_scaling_changes_cluster_counts(self):
        system = scaled_system(n_groups=2, cc_clusters_per_group=1, mc_clusters_per_group=3)
        assert system.chip.n_groups == 2
        assert system.chip.n_cc_clusters == 2
        assert system.chip.n_mc_clusters == 6

    def test_scaled_name_reflects_shape(self):
        system = scaled_system(n_groups=2, cc_clusters_per_group=1, mc_clusters_per_group=1)
        assert "2x1cc1mc" in system.name

    def test_scaled_inherits_base_precision(self):
        base = default_system()
        system = scaled_system(base=base)
        assert system.precision == base.precision
