"""Batch engine tests: exact numerical identity with the scalar simulator.

The batch engine's contract is *bit* equality, not closeness: every float
in a materialised ``WorkloadResult`` must equal the scalar simulator's,
because both paths share the :mod:`repro.costs` kernels and the batched
reductions fold in the scalar loop's summation order.  All assertions here
use ``==`` on purpose — a tolerance would hide a broken mirror.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import costs
from repro.core.batch import (
    BatchCostEngine,
    DesignGrid,
    OpTable,
    batch_price_request_mix,
    batch_run_request,
    compile_workload,
    ordered_sum,
)
from repro.core.config import (
    SystemConfig,
    default_system,
    homo_cc_system,
    homo_mc_system,
    scaled_system,
)
from repro.core.simulator import PerformanceSimulator
from repro.models.mllm import InferenceRequest, get_mllm
from repro.models.ops import OpKind, Phase, Workload, elementwise_op, matmul_op


REQUEST = InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=16)


def small_workload() -> Workload:
    """A compact workload covering every cost-model branch."""
    workload = Workload(name="synthetic")
    prefill = Phase(name="llm_prefill")
    prefill.add(matmul_op("qkv", 16, 256, 384, tag="attention"))
    prefill.add(elementwise_op("softmax", 256, kind=OpKind.SOFTMAX, flops_per_element=4.0))
    prefill.add(elementwise_op("norm", 512, kind=OpKind.NORM))
    workload.add(prefill)
    decode = Phase(name="llm_decode", repeat=8)
    decode.add(matmul_op("ffn.gate", 1, 256, 1024, prunable=True, tag="ffn"))
    decode.add(matmul_op("ffn.down", 1, 1024, 256, prunable=True, tag="ffn"))
    decode.add(matmul_op("attn.v", 1, 256, 256, tag="attention"))
    decode.add(elementwise_op("act", 1024, kind=OpKind.ACTIVATION, flops_per_element=4.0))
    workload.add(decode)
    return workload


def scalar_result(system, workload, *, bandwidth_fraction=1.0, output_tokens=None):
    simulator = PerformanceSimulator(system)
    return simulator.execute_workload(
        workload, output_tokens=output_tokens, bandwidth_fraction=bandwidth_fraction
    )


class TestExactEquivalence:
    def test_standard_systems_match_scalar_exactly(self):
        model = get_mllm("sphinx-tiny")
        systems = [
            default_system(),
            homo_cc_system(),
            homo_mc_system(),
            scaled_system(2, 3, 1),
            scaled_system(4, 1, 3),
            default_system().with_pruning(0.37),
        ]
        batch = batch_run_request(model, REQUEST, systems)
        for index, system in enumerate(systems):
            scalar = PerformanceSimulator(system).run_request(model, REQUEST)
            assert batch.result_for(index) == scalar

    def test_bandwidth_fractions_match_scalar_exactly(self):
        workload = small_workload()
        systems = [default_system(), scaled_system(2, 1, 2)]
        fractions = [0.3, 0.85]
        grid = DesignGrid.from_systems(systems, bandwidth_fraction=fractions)
        batch = BatchCostEngine(grid).evaluate(compile_workload(workload))
        for index, (system, fraction) in enumerate(zip(systems, fractions)):
            assert batch.result_for(index) == scalar_result(
                system, workload, bandwidth_fraction=fraction
            )

    def test_keep_fraction_override_matches_scalar(self):
        workload = small_workload()
        system = default_system()
        grid = DesignGrid.from_systems([system], keep_fraction=0.25)
        batch = BatchCostEngine(grid).evaluate(compile_workload(workload))
        simulator = PerformanceSimulator(system)
        phases = {
            phase.name: simulator.execute_phase(phase, keep_fraction=0.25)
            for phase in workload.phases
        }
        result = batch.result_for(0)
        for name, scalar_phase in phases.items():
            assert result.phases[name] == scalar_phase

    @settings(max_examples=25, deadline=None)
    @given(
        n_groups=st.integers(min_value=1, max_value=4),
        cc=st.integers(min_value=0, max_value=3),
        mc=st.integers(min_value=0, max_value=3),
        keep=st.one_of(st.none(), st.floats(min_value=0.05, max_value=1.0)),
        fraction=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_random_configs_match_scalar_exactly(self, n_groups, cc, mc, keep, fraction):
        if cc == 0 and mc == 0:
            cc = 1
        system = scaled_system(n_groups, cc, mc)
        workload = small_workload()
        grid = DesignGrid.from_systems(
            [system], bandwidth_fraction=fraction, keep_fraction=keep
        )
        batch = BatchCostEngine(grid).evaluate(compile_workload(workload))
        simulator = PerformanceSimulator(system)
        result = batch.result_for(0)
        for phase in workload.phases:
            scalar_phase = simulator.execute_phase(
                phase, bandwidth_fraction=fraction, keep_fraction=keep
            )
            assert result.phases[phase.name] == scalar_phase

    def test_forced_pool_matches_scalar(self):
        workload = small_workload()
        system = default_system()
        for pool in ("cc", "mc"):
            grid = DesignGrid.from_systems([system], bandwidth_fraction=0.5)
            table = compile_workload(workload)
            batch = BatchCostEngine(grid).evaluate(table, pool=pool)
            simulator = PerformanceSimulator(system)
            for phase in workload.phases:
                scalar_phase = simulator.execute_phase(
                    phase, pool=pool, bandwidth_fraction=0.5
                )
                assert batch.result_for(0).phases[phase.name] == scalar_phase


class TestScenarioMixEquivalence:
    """Scenario-generated workload shapes price batch == scalar.

    The scenario layer mixes request families the original sweeps never
    exercised — imageless text chat, many-image prompts, video frame
    pairs, 1k-token contexts.  `batch_price_request_mix` stacks all of
    them into one op table; every shape's price must stay ``==``-equal to
    the scalar simulator, exactly like the single-workload paths above.
    """

    def assert_prices_match_scalar(self, shapes, system):
        model = get_mllm("sphinx-tiny")
        prices = batch_price_request_mix(model, shapes, system)
        simulator = PerformanceSimulator(system)
        for shape in shapes:
            scalar = simulator.run_request(model, shape)
            price = prices[shape]
            assert price.latency_s == scalar.total_latency_s
            assert price.dram_bytes == scalar.total_dram_bytes
            assert price.flops == scalar.total_flops

    def test_registered_scenario_shapes_match_scalar(self):
        from repro.scenarios import compile_scenario, get_scenario

        compiled = compile_scenario(get_scenario("mixed-rush-hour"))
        self.assert_prices_match_scalar(
            compiled.unique_shapes, default_system()
        )

    @settings(max_examples=15, deadline=None)
    @given(
        images=st.integers(min_value=0, max_value=8),
        prompt=st.integers(min_value=0, max_value=1024),
        output=st.integers(min_value=1, max_value=64),
        cc=st.integers(min_value=0, max_value=2),
        mc=st.integers(min_value=0, max_value=2),
    )
    def test_randomized_scenario_shapes_match_scalar(
        self, images, prompt, output, cc, mc
    ):
        if images == 0 and prompt == 0:
            prompt = 1
        if cc == 0 and mc == 0:
            cc = 1
        shapes = [
            InferenceRequest(
                images=images, prompt_text_tokens=prompt, output_tokens=output
            ),
            # A second, fixed shape shares decoder signatures with the
            # random one, exercising cross-shape deduplication.
            InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=8),
        ]
        self.assert_prices_match_scalar(shapes, scaled_system(2, cc, mc))

    def test_duplicate_requests_price_once(self):
        model = get_mllm("sphinx-tiny")
        shapes = [REQUEST, REQUEST, REQUEST]
        prices = batch_price_request_mix(model, shapes, default_system())
        assert len(prices) == 1

    def test_rejects_empty_request_list(self):
        with pytest.raises(ValueError):
            batch_price_request_mix(
                get_mllm("sphinx-tiny"), [], default_system()
            )


class TestCacheInteraction:
    """The batch engine against PR 1's memoization layers."""

    def test_matches_cached_and_uncached_scalar(self):
        model = get_mllm("sphinx-tiny")
        system = default_system()
        batch = batch_run_request(model, REQUEST, [system])
        cached = PerformanceSimulator(system, enable_cache=True)
        uncached = PerformanceSimulator(system, enable_cache=False)
        expected = cached.run_request(model, REQUEST)
        assert uncached.run_request(model, REQUEST) == expected
        assert batch.result_for(0) == expected

    def test_batch_leaves_scalar_caches_untouched(self):
        model = get_mllm("sphinx-tiny")
        system = default_system()
        simulator = PerformanceSimulator(system)
        batch_run_request(model, REQUEST, [system]).results()
        info = simulator.cache_info()
        assert info.op_hits == info.op_misses == 0
        assert info.request_hits == info.request_misses == 0

    def test_scalar_cache_hits_after_batch_stay_identical(self):
        model = get_mllm("sphinx-tiny")
        system = default_system()
        simulator = PerformanceSimulator(system)
        first = simulator.run_request(model, REQUEST)
        batched = batch_run_request(model, REQUEST, [system]).result_for(0)
        hit = simulator.run_request(model, REQUEST)
        assert simulator.cache_info().request_hits == 1
        assert first == batched == hit

    def test_repeated_batch_evaluations_are_deterministic(self):
        model = get_mllm("sphinx-tiny")
        systems = [default_system(), scaled_system(2, 2, 2)]
        first = batch_run_request(model, REQUEST, systems).results()
        second = batch_run_request(model, REQUEST, systems).results()
        assert first == second


class TestOpTable:
    def test_deduplicates_repeated_signatures(self):
        workload = get_mllm("sphinx-tiny").build_workload(REQUEST)
        table = compile_workload(workload)
        assert table.n_ops == sum(len(phase.ops) for phase in workload.phases)
        assert table.n_unique < table.n_ops  # decoder layers share shapes
        assert table.order.max() == table.n_unique - 1

    def test_phase_slices_cover_all_ops(self):
        table = compile_workload(small_workload())
        covered = sum(slice_.op_count for slice_ in table.phases)
        assert covered == table.n_ops
        assert table.phase("llm_decode").repeat == 8
        with pytest.raises(KeyError):
            table.phase("nope")

    def test_default_output_tokens_comes_from_decode_repeat(self):
        table = compile_workload(small_workload())
        assert table.default_output_tokens == 8
        prefill_only = OpTable.from_phase(small_workload().phases[0])
        assert prefill_only.default_output_tokens == 1


class TestGridValidation:
    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            DesignGrid.from_systems([])

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            DesignGrid.from_systems([default_system()], bandwidth_fraction=0.0)

    def test_rejects_bad_keep_fraction(self):
        with pytest.raises(ValueError):
            DesignGrid.from_systems([default_system()], keep_fraction=1.5)

    def test_rejects_wrong_length_sequences(self):
        with pytest.raises(ValueError):
            DesignGrid.from_systems([default_system()], bandwidth_fraction=[0.5, 0.5])
        with pytest.raises(ValueError):
            DesignGrid.from_systems([default_system()], keep_fraction=[0.5, 0.5])

    def test_per_point_none_keep_uses_system_default(self):
        systems = [default_system().with_pruning(0.4), default_system()]
        grid = DesignGrid.from_systems(systems, keep_fraction=[None, 0.7])
        assert grid.keep_fraction.tolist() == [0.4, 0.7]

    def test_forced_pool_requires_clusters(self):
        grid = DesignGrid.from_systems([homo_cc_system()])
        engine = BatchCostEngine(grid)
        table = compile_workload(small_workload())
        with pytest.raises(ValueError, match="no MC clusters"):
            engine.evaluate(table, pool="mc")
        with pytest.raises(ValueError, match="pool must be"):
            engine.evaluate(table, pool="gpu")


class TestArrayViews:
    def test_total_latency_matches_materialised_results(self):
        model = get_mllm("sphinx-tiny")
        systems = [default_system(), homo_cc_system(), scaled_system(2, 1, 1)]
        batch = batch_run_request(model, REQUEST, systems)
        totals = batch.total_latency_s
        for index, result in enumerate(batch.results()):
            assert totals[index] == result.total_latency_s
            assert batch.tokens_per_second[index] == result.tokens_per_second

    def test_phase_lookup_and_errors(self):
        batch = batch_run_request(
            get_mllm("sphinx-tiny"), REQUEST, [default_system()]
        )
        assert batch.phase("llm_decode").cycles.shape == (1,)
        with pytest.raises(KeyError):
            batch.phase("nope")
        with pytest.raises(IndexError):
            batch.result_for(5)


class TestCostKernels:
    """The shared kernels mirror the scalar idioms bit for bit."""

    @settings(max_examples=50, deadline=None)
    @given(
        a=st.integers(min_value=1, max_value=10**9),
        b=st.integers(min_value=1, max_value=10**6),
    )
    def test_ceil_div_matches_math_ceil(self, a, b):
        assert float(costs.ceil_div(a, b)) == float(math.ceil(a / b))

    @settings(max_examples=50, deadline=None)
    @given(
        weight=st.integers(min_value=0, max_value=10**9),
        keep=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_pruned_weight_bytes_matches_int_round(self, weight, keep):
        expected = int(round(weight * keep)) if keep < 1.0 else weight
        assert int(costs.pruned_weight_bytes(weight, True, keep)) == expected
        assert int(costs.pruned_weight_bytes(weight, False, keep)) == weight

    def test_ordered_sum_is_a_left_fold(self):
        # Values chosen so pairwise summation would differ from the
        # sequential fold in the last ulp.
        rng = np.random.default_rng(7)
        row = rng.uniform(0.1, 1e9, size=1277)
        sequential = 0.0
        for value in row:
            sequential += float(value)
        assert float(ordered_sum(row[None, :])[0]) == sequential
