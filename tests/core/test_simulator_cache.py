"""Memoization regression tests: cached and uncached runs must agree."""

import dataclasses

import pytest

from repro.core.config import default_system
from repro.core.simulator import PerformanceSimulator
from repro.models.llm import get_llm
from repro.models.mllm import InferenceRequest, get_mllm
from repro.models.ops import matmul_op


REQUESTS = [
    InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=64),
    InferenceRequest(images=0, prompt_text_tokens=128, output_tokens=16),
    InferenceRequest(images=2, prompt_text_tokens=8, output_tokens=32),
]


class TestRequestCache:
    @pytest.mark.parametrize("model_name", ["sphinx-tiny", "karmavlm"])
    def test_cached_and_uncached_results_identical(self, model_name):
        model = get_mllm(model_name)
        cached = PerformanceSimulator(enable_cache=True)
        uncached = PerformanceSimulator(enable_cache=False)
        for request in REQUESTS:
            a = cached.run_request(model, request)
            b = uncached.run_request(model, request)
            assert a == b  # WorkloadResult dataclass equality, all phases

    def test_repeat_requests_hit_the_cache(self, sphinx_tiny):
        simulator = PerformanceSimulator()
        request = REQUESTS[0]
        first = simulator.run_request(sphinx_tiny, request)
        info_after_first = simulator.cache_info()
        second = simulator.run_request(sphinx_tiny, request)
        info_after_second = simulator.cache_info()
        assert first == second
        assert info_after_first.request_misses == 1
        assert info_after_second.request_hits == info_after_first.request_hits + 1
        # No additional op-level work happened on the repeat.
        assert info_after_second.op_misses == info_after_first.op_misses

    def test_same_name_different_config_does_not_alias(self, sphinx_tiny):
        simulator = PerformanceSimulator()
        bigger = dataclasses.replace(sphinx_tiny, llm=get_llm("vicuna-7b"))
        assert bigger.name == sphinx_tiny.name
        small = simulator.run_request(sphinx_tiny, REQUESTS[0])
        large = simulator.run_request(bigger, REQUESTS[0])
        assert large.total_latency_s > small.total_latency_s

    def test_cache_hit_mutation_does_not_poison_later_hits(self, sphinx_tiny):
        simulator = PerformanceSimulator()
        first = simulator.run_request(sphinx_tiny, REQUESTS[0])
        pristine_latency = first.total_latency_s
        first.phases.pop("llm_decode")
        second = simulator.run_request(sphinx_tiny, REQUESTS[0])
        assert "llm_decode" in second.phases
        assert second.total_latency_s == pristine_latency

    def test_clear_cache_resets_state(self, sphinx_tiny):
        simulator = PerformanceSimulator()
        simulator.run_request(sphinx_tiny, REQUESTS[0])
        simulator.clear_cache()
        info = simulator.cache_info()
        assert info.op_hits == info.op_misses == 0
        assert info.request_hits == info.request_misses == 0
        # Results are identical after the reset too.
        assert simulator.run_request(sphinx_tiny, REQUESTS[0]) == (
            PerformanceSimulator(enable_cache=False).run_request(
                sphinx_tiny, REQUESTS[0]
            )
        )


class TestOpCache:
    def test_same_shape_different_name_shares_entry(self):
        simulator = PerformanceSimulator()
        op_a = matmul_op("layer.0.ffn", 1, 2048, 5632, prunable=True)
        op_b = matmul_op("layer.7.ffn", 1, 2048, 5632, prunable=True)
        first = simulator.execute_op(op_a)
        second = simulator.execute_op(op_b)
        info = simulator.cache_info()
        assert info.op_misses == 1
        assert info.op_hits == 1
        assert first.compute_cycles == second.compute_cycles
        assert first.memory_cycles == second.memory_cycles
        assert second.op_name == "layer.7.ffn"

    @pytest.mark.parametrize("keep_fraction", [1.0, 0.6, 0.3])
    def test_cached_matches_uncached_with_pruning(self, keep_fraction):
        system = default_system().with_pruning(keep_fraction)
        cached = PerformanceSimulator(system, enable_cache=True)
        uncached = PerformanceSimulator(system, enable_cache=False)
        op = matmul_op("ffn.gate", 1, 2048, 5632, prunable=True)
        for _ in range(2):
            a = cached.execute_op(op, bandwidth_fraction=0.5)
            b = uncached.execute_op(op, bandwidth_fraction=0.5)
            assert a == b

    def test_distinct_bandwidth_fractions_do_not_collide(self):
        simulator = PerformanceSimulator()
        op = matmul_op("ffn.up", 1, 2048, 5632)
        full = simulator.execute_op(op, bandwidth_fraction=1.0)
        half = simulator.execute_op(op, bandwidth_fraction=0.5)
        assert half.memory_cycles > full.memory_cycles


class TestPrunedWeightBytes:
    def test_op_level_accounting(self):
        op = matmul_op("ffn.gate", 1, 100, 100, prunable=True)
        assert op.pruned_weight_bytes(1.0) == op.weight_bytes
        assert op.pruned_weight_bytes(0.5) == round(op.weight_bytes * 0.5)
        fixed = matmul_op("attn.q", 1, 100, 100, prunable=False)
        assert fixed.pruned_weight_bytes(0.5) == fixed.weight_bytes
        with pytest.raises(ValueError):
            op.pruned_weight_bytes(1.5)

    def test_simulator_traffic_uses_shared_primitive(self):
        simulator = PerformanceSimulator(enable_cache=False)
        op = matmul_op("ffn.down", 1, 2048, 5632, prunable=True)
        pruned = simulator.execute_op(op, keep_fraction=0.4)
        expected = (
            op.pruned_weight_bytes(0.4) + op.activation_bytes + op.output_bytes
        )
        assert pruned.dram_bytes == expected
