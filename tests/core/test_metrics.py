"""Tests for the result metrics (repro.core.metrics)."""

import pytest

from repro.core.metrics import PhaseResult, WorkloadResult, geometric_mean_speedup


def _phase(name, latency_s, compute=100.0, memory=50.0, dram=1000, flops=2000):
    return PhaseResult(
        name=name,
        cycles=latency_s * 1e9,
        compute_cycles=compute,
        memory_cycles=memory,
        latency_s=latency_s,
        dram_bytes=dram,
        flops=flops,
        op_count=10,
        cluster_kind="cc",
    )


def _workload(decode_latency=0.5, prefill=0.1, encode=0.05, tokens=10, power=None):
    phases = {
        "vision_encoder": _phase("vision_encoder", encode),
        "projector": _phase("projector", 0.001),
        "llm_prefill": _phase("llm_prefill", prefill),
        "llm_decode": _phase("llm_decode", decode_latency, compute=10.0, memory=400.0),
    }
    return WorkloadResult(
        workload_name="w",
        hardware_name="hw",
        phases=phases,
        output_tokens=tokens,
        power_w=power,
    )


class TestPhaseResult:
    def test_bound_classification(self):
        assert _phase("a", 1.0, compute=10, memory=5).bound == "compute"
        assert _phase("a", 1.0, compute=5, memory=10).bound == "memory"

    def test_achieved_rates(self):
        phase = _phase("a", 2.0, dram=100, flops=400)
        assert phase.achieved_flops_per_s == pytest.approx(200.0)
        assert phase.achieved_bandwidth_bytes_per_s == pytest.approx(50.0)

    def test_zero_latency_rates(self):
        phase = _phase("a", 0.0)
        assert phase.achieved_flops_per_s == 0.0


class TestWorkloadResult:
    def test_total_latency_is_sum_of_phases(self):
        result = _workload()
        assert result.total_latency_s == pytest.approx(0.5 + 0.1 + 0.05 + 0.001)

    def test_phase_accessors(self):
        result = _workload()
        assert result.decode_latency_s == pytest.approx(0.5)
        assert result.prefill_latency_s == pytest.approx(0.1)
        assert result.encode_latency_s == pytest.approx(0.051)
        with pytest.raises(KeyError):
            result.phase("nonexistent")

    def test_missing_phase_contributes_zero(self):
        result = WorkloadResult(
            workload_name="w",
            hardware_name="hw",
            phases={"llm_decode": _phase("llm_decode", 0.4)},
            output_tokens=4,
        )
        assert result.prefill_latency_s == 0.0
        assert result.encode_latency_s == 0.0

    def test_throughput_metrics(self):
        result = _workload(tokens=10)
        assert result.tokens_per_second == pytest.approx(10 / result.total_latency_s)
        assert result.decode_tokens_per_second == pytest.approx(10 / 0.5)
        assert result.time_per_output_token_s == pytest.approx(result.total_latency_s / 10)

    def test_energy_metrics_require_power(self):
        without_power = _workload()
        assert without_power.energy_j is None
        assert without_power.tokens_per_joule is None
        with_power = _workload(power=2.0)
        assert with_power.energy_j == pytest.approx(2.0 * with_power.total_latency_s)
        assert with_power.tokens_per_joule == pytest.approx(
            10 / (2.0 * with_power.total_latency_s)
        )

    def test_speedup_over(self):
        fast = _workload(decode_latency=0.25)
        slow = _workload(decode_latency=1.0)
        assert fast.speedup_over(slow) > 1.0
        assert slow.speedup_over(fast) < 1.0

    def test_totals(self):
        result = _workload()
        assert result.total_dram_bytes == 4 * 1000
        assert result.total_flops == 4 * 2000
        assert result.total_cycles > 0


class TestGeometricMean:
    def test_geometric_mean(self):
        assert geometric_mean_speedup({"a": 2.0, "b": 8.0}) == pytest.approx(4.0)

    def test_rejects_empty_and_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean_speedup({})
        with pytest.raises(ValueError):
            geometric_mean_speedup({"a": 0.0})
