"""Tests for the stream-level pipeline simulator (repro.scheduling.stream)."""

import pytest

from repro.scheduling.stream import StreamRequest, StreamSimulator


@pytest.fixture(scope="module")
def simulator_stream(edgemm_system, sphinx_tiny) -> StreamSimulator:
    return StreamSimulator(
        edgemm_system.pipeline(sphinx_tiny), cc_bandwidth_fraction=0.5
    )


class TestStreamRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamRequest(arrival_s=-1.0, output_tokens=4)
        with pytest.raises(ValueError):
            StreamRequest(arrival_s=0.0, output_tokens=0)


class TestStreamSimulator:
    def test_rejects_bad_bandwidth_fraction(self, edgemm_system, sphinx_tiny):
        with pytest.raises(ValueError):
            StreamSimulator(edgemm_system.pipeline(sphinx_tiny), cc_bandwidth_fraction=1.0)

    def test_rejects_empty_trace(self, simulator_stream):
        with pytest.raises(ValueError):
            simulator_stream.simulate([])

    def test_single_request_has_no_queueing(self, simulator_stream):
        report = simulator_stream.simulate([StreamRequest(0.0, output_tokens=8)])
        timing = report.timings[0]
        assert timing.queueing_s == 0.0
        assert timing.latency_s == pytest.approx(timing.service_s)

    def test_stage_ordering_is_respected(self, simulator_stream):
        report = simulator_stream.simulate_periodic(4, period_s=0.0, output_tokens=8)
        for timing in report.timings:
            assert timing.cc_start_s >= timing.request.arrival_s
            assert timing.cc_end_s > timing.cc_start_s
            assert timing.mc_start_s >= timing.cc_end_s
            assert timing.mc_end_s > timing.mc_start_s

    def test_back_to_back_arrivals_queue_up(self, simulator_stream):
        report = simulator_stream.simulate_periodic(5, period_s=0.0, output_tokens=8)
        queueing = [timing.queueing_s for timing in report.timings]
        assert queueing[0] == 0.0
        assert queueing[-1] > queueing[1] >= 0.0

    def test_slow_arrivals_have_no_queueing(self, simulator_stream):
        period = 2.0 * simulator_stream.sustainable_period_s(8)
        report = simulator_stream.simulate_periodic(4, period_s=period, output_tokens=8)
        assert report.mean_queueing_s == pytest.approx(0.0, abs=1e-9)
        assert report.cc_utilization < 1.0
        assert report.mc_utilization < 1.0

    def test_sustainable_period_saturates_one_stage(self, simulator_stream):
        period = simulator_stream.sustainable_period_s(32)
        report = simulator_stream.simulate_periodic(8, period_s=period, output_tokens=32)
        assert max(report.cc_utilization, report.mc_utilization) > 0.8
        # Latency stays bounded: the last request waits no longer than the first few.
        latencies = [t.latency_s for t in report.timings]
        assert latencies[-1] <= 1.5 * max(latencies[:3])

    def test_overloaded_stream_grows_latency(self, simulator_stream):
        period = 0.25 * simulator_stream.sustainable_period_s(32)
        report = simulator_stream.simulate_periodic(8, period_s=period, output_tokens=32)
        latencies = [t.latency_s for t in report.timings]
        assert latencies[-1] > latencies[0]

    def test_throughput_accounting(self, simulator_stream):
        report = simulator_stream.simulate_periodic(4, period_s=0.05, output_tokens=16)
        assert report.n_requests == 4
        assert report.tokens_per_second > 0
        assert report.requests_per_second > 0
        assert report.p95_latency_s >= report.mean_latency_s * 0.5

    def test_pruning_keep_fraction_improves_stream_latency(
        self, edgemm_system, sphinx_tiny
    ):
        pipeline = edgemm_system.pipeline(sphinx_tiny)
        full = StreamSimulator(pipeline)
        pruned = StreamSimulator(pipeline, keep_fraction=0.3)
        full_report = full.simulate_periodic(3, period_s=0.1, output_tokens=32)
        pruned_report = pruned.simulate_periodic(3, period_s=0.1, output_tokens=32)
        assert pruned_report.mean_latency_s < full_report.mean_latency_s

    def test_validation_of_periodic_parameters(self, simulator_stream):
        with pytest.raises(ValueError):
            simulator_stream.simulate_periodic(0, period_s=0.1, output_tokens=8)
        with pytest.raises(ValueError):
            simulator_stream.simulate_periodic(2, period_s=-0.1, output_tokens=8)
