"""Tests for stream-based batch decoding (repro.scheduling.batching)."""

import pytest

from repro.scheduling.batching import BatchPlanner


@pytest.fixture(scope="module")
def planner(edgemm_system, sphinx_tiny) -> BatchPlanner:
    return BatchPlanner(
        edgemm_system.pipeline(sphinx_tiny),
        candidate_batch_sizes=(1, 2, 4, 8),
        cc_bandwidth_fraction=0.125,
    )


class TestConstruction:
    def test_rejects_bad_batch_sizes(self, edgemm_system, sphinx_tiny):
        pipeline = edgemm_system.pipeline(sphinx_tiny)
        with pytest.raises(ValueError):
            BatchPlanner(pipeline, candidate_batch_sizes=())
        with pytest.raises(ValueError):
            BatchPlanner(pipeline, candidate_batch_sizes=(0, 2))
        with pytest.raises(ValueError):
            BatchPlanner(pipeline, cc_bandwidth_fraction=0.0)


class TestDecisions:
    def test_long_outputs_get_batched(self, planner):
        decision = planner.decide(512, max_latency_overhead=0.6)
        assert decision.batch_size > 1
        assert decision.throughput_gain > 1.5

    def test_latency_overhead_respected(self, planner):
        tight = planner.decide(512, max_latency_overhead=0.05)
        loose = planner.decide(512, max_latency_overhead=1.0)
        assert tight.latency_overhead <= 0.05 + 1e-9
        assert loose.throughput_gain >= tight.throughput_gain

    def test_batching_never_selected_if_it_hurts_throughput(self, planner):
        decision = planner.decide(4, max_latency_overhead=0.5)
        assert decision.point.tokens_per_second >= decision.unbatched_point.tokens_per_second

    def test_throughput_gain_definition(self, planner):
        decision = planner.decide(256, max_latency_overhead=0.6)
        expected = (
            decision.point.tokens_per_second / decision.unbatched_point.tokens_per_second
        )
        assert decision.throughput_gain == pytest.approx(expected)

    def test_sweep(self, planner):
        decisions = planner.sweep([64, 512])
        assert [d.output_tokens for d in decisions] == [64, 512]
        with pytest.raises(ValueError):
            planner.sweep([])

    def test_decide_validation(self, planner):
        with pytest.raises(ValueError):
            planner.decide(0)
        with pytest.raises(ValueError):
            planner.decide(64, max_latency_overhead=-0.1)


class TestBalanceBatchSize:
    def test_balance_batch_grows_with_output_length(self, planner):
        short = planner.balance_batch_size(16)
        long = planner.balance_batch_size(1024)
        assert long >= short

    def test_balance_batch_within_candidates(self, planner):
        assert planner.balance_batch_size(256) in planner.candidates

    def test_validation(self, planner):
        with pytest.raises(ValueError):
            planner.balance_batch_size(0)
