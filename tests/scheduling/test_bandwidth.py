"""Tests for the token-length-driven bandwidth manager (Section IV-B)."""

import pytest

from repro.scheduling.bandwidth import (
    BandwidthManager,
    DEFAULT_CC_FRACTIONS,
)


@pytest.fixture(scope="module")
def manager(edgemm_system, sphinx_tiny) -> BandwidthManager:
    return BandwidthManager(edgemm_system.pipeline(sphinx_tiny))


class TestConstruction:
    def test_default_candidates_include_paper_ratios(self):
        # 0.5 -> 1:1, 0.25 -> 1:3, 0.125 -> 1:7
        assert set(DEFAULT_CC_FRACTIONS) == {0.5, 0.25, 0.125}

    def test_rejects_bad_candidates(self, edgemm_system, sphinx_tiny):
        pipeline = edgemm_system.pipeline(sphinx_tiny)
        with pytest.raises(ValueError):
            BandwidthManager(pipeline, candidate_cc_fractions=[])
        with pytest.raises(ValueError):
            BandwidthManager(pipeline, candidate_cc_fractions=[1.0])


class TestDecisions:
    def test_short_outputs_keep_equal_sharing(self, manager):
        le = manager.expected_balanced_length()
        decision = manager.decide(max(le // 2, 1))
        assert decision.cc_fraction == pytest.approx(0.5)
        assert decision.bc_to_bm_ratio == (1, 1)

    def test_long_outputs_reallocate_to_mc(self, manager):
        lb = manager.reallocation_limit_length()
        decision = manager.decide(max(lb, 8))
        assert decision.cc_fraction < 0.5
        assert decision.bc_to_bm_ratio[1] >= 3

    def test_reallocation_reduces_latency_for_long_outputs(self, manager):
        lb = manager.reallocation_limit_length()
        decision = manager.decide(max(lb, 8))
        assert decision.latency_reduction > 0.0
        assert decision.throughput_gain >= 1.0

    def test_chosen_point_never_slower_than_baseline(self, manager):
        for length in (4, 16, 64, 256):
            decision = manager.decide(length)
            assert (
                decision.point.request_latency_s
                <= decision.baseline_point.request_latency_s + 1e-12
            )

    def test_sweep_matches_individual_decisions(self, manager):
        sweep = manager.sweep([8, 64])
        assert len(sweep) == 2
        assert sweep[0].output_tokens == 8
        assert sweep[1].cc_fraction == manager.decide(64).cc_fraction

    def test_decide_rejects_bad_length(self, manager):
        with pytest.raises(ValueError):
            manager.decide(0)
        with pytest.raises(ValueError):
            manager.sweep([])


class TestBalancePoints:
    def test_lb_exceeds_le(self, manager):
        """More MC bandwidth balances longer outputs (lb > le)."""
        assert manager.reallocation_limit_length() > manager.expected_balanced_length()


class TestBudgets:
    def test_budgets_realise_ratio(self, manager):
        decision = manager.decide(64)
        budgets = manager.budgets_for(
            decision, total_bytes_per_cycle=64.0, interval_cycles=10_000
        )
        cc = budgets["cc"].budget_bytes
        mc = budgets["mc"].budget_bytes
        assert cc + mc == pytest.approx(64.0 * 10_000, rel=0.01)
        expected_ratio = (1.0 - decision.cc_fraction) / decision.cc_fraction
        assert mc / cc == pytest.approx(expected_ratio, rel=0.01)
