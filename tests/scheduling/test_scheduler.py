"""Tests for the combined token-length scheduler (repro.scheduling.scheduler)."""

import pytest

from repro.scheduling.scheduler import (
    DEFAULT_PHASE_ASSIGNMENT,
    TokenLengthScheduler,
    phase_pool,
)


@pytest.fixture(scope="module")
def scheduler(edgemm_system, sphinx_tiny) -> TokenLengthScheduler:
    return TokenLengthScheduler(
        edgemm_system.pipeline(sphinx_tiny),
        candidate_batch_sizes=(1, 2, 4, 8),
        max_latency_overhead=0.6,
    )


class TestPhaseAssignment:
    def test_paper_phase_mapping(self):
        assert DEFAULT_PHASE_ASSIGNMENT["vision_encoder"] == "cc"
        assert DEFAULT_PHASE_ASSIGNMENT["llm_prefill"] == "cc"
        assert DEFAULT_PHASE_ASSIGNMENT["llm_decode"] == "mc"

    def test_phase_pool_lookup(self):
        assert phase_pool("llm_decode") == "mc"
        assert phase_pool("projector") == "cc"
        assert phase_pool("unknown_phase") == "cc"


class TestScheduling:
    def test_short_stream_uses_equal_sharing_without_batching(self, scheduler):
        le = scheduler.bandwidth.expected_balanced_length()
        schedule = scheduler.schedule(max(le // 2, 1))
        assert schedule.batch_size == 1
        assert not schedule.used_batching
        assert schedule.cc_bandwidth_fraction == pytest.approx(0.5)

    def test_medium_stream_reallocates_bandwidth(self, scheduler):
        le = scheduler.bandwidth.expected_balanced_length()
        lb = scheduler.bandwidth.reallocation_limit_length()
        length = (le + lb) // 2
        if length > le:
            schedule = scheduler.schedule(length)
            assert schedule.cc_bandwidth_fraction <= 0.5
            assert not schedule.used_batching

    def test_long_stream_uses_batching(self, scheduler):
        lb = scheduler.bandwidth.reallocation_limit_length()
        schedule = scheduler.schedule(max(4 * lb, 512))
        assert schedule.used_batching
        assert schedule.batch_size > 1

    def test_batching_improves_throughput_over_reallocation(self, scheduler):
        lb = scheduler.bandwidth.reallocation_limit_length()
        length = max(4 * lb, 512)
        schedule = scheduler.schedule(length)
        reallocation_only = scheduler.bandwidth.decide(length)
        assert schedule.tokens_per_second >= reallocation_only.point.tokens_per_second

    def test_sweep_returns_schedule_per_length(self, scheduler):
        schedules = scheduler.sweep([8, 64, 512])
        assert set(schedules) == {8, 64, 512}
        assert all(s.request_latency_s > 0 for s in schedules.values())

    def test_validation(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.schedule(0)
        with pytest.raises(ValueError):
            scheduler.sweep([])
