"""Cross-module property-based tests on the library's core invariants.

These complement the per-module unit tests with properties that must hold
for *any* reasonable input: performance models must be monotone in problem
size and bandwidth, pruning must never increase traffic, the ISA executor
must agree with NumPy, and roofline legs must bound the reported latency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cim import CIMMacro
from repro.arch.dram import DRAMConfig, DRAMModel
from repro.arch.systolic import SystolicArray
from repro.core.simulator import PerformanceSimulator
from repro.isa.executor import CoreExecutor
from repro.isa.kernels import build_gemv_kernel
from repro.models.ops import matmul_op
from repro.pruning.topk import DynamicTopKConfig, DynamicTopKPruner


SIMULATOR = PerformanceSimulator()


class TestCoprocessorMonotonicity:
    @given(
        m=st.integers(min_value=1, max_value=128),
        k=st.integers(min_value=1, max_value=512),
        n=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=40, deadline=None)
    def test_systolic_cycles_monotone_in_every_dimension(self, m, k, n):
        array = SystolicArray()
        base = array.gemm_cycles(m, k, n)
        assert array.gemm_cycles(m + 1, k, n) >= base
        assert array.gemm_cycles(m, k + array.config.rows, n) > base
        assert array.gemm_cycles(m, k, n + array.config.cols) > base

    @given(
        m=st.integers(min_value=1, max_value=64),
        k=st.integers(min_value=1, max_value=512),
        n=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=40, deadline=None)
    def test_cim_gemm_never_cheaper_than_gemv_per_row(self, m, k, n):
        macro = CIMMacro()
        assert macro.gemm_cycles(m, k, n) >= macro.gemv_cycles(k, n)


class TestSimulatorProperties:
    @given(
        k=st.integers(min_value=64, max_value=4096),
        n=st.integers(min_value=64, max_value=8192),
    )
    @settings(max_examples=30, deadline=None)
    def test_op_latency_is_bounded_by_roofline_legs(self, k, n):
        op = matmul_op("v", 1, k, n)
        execution = SIMULATOR.execute_op(op)
        assert execution.cycles == max(execution.compute_cycles, execution.memory_cycles)
        assert execution.cycles > 0

    @given(
        k=st.integers(min_value=64, max_value=2048),
        n=st.integers(min_value=64, max_value=4096),
        keep=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_pruning_never_increases_traffic_or_latency(self, k, n, keep):
        op = matmul_op("ffn", 1, k, n, prunable=True)
        full = SIMULATOR.execute_op(op, keep_fraction=1.0)
        pruned = SIMULATOR.execute_op(op, keep_fraction=keep)
        assert pruned.dram_bytes <= full.dram_bytes
        assert pruned.cycles <= full.cycles + 1e-9

    @given(
        fraction=st.floats(min_value=0.1, max_value=1.0),
        k=st.integers(min_value=128, max_value=2048),
    )
    @settings(max_examples=30, deadline=None)
    def test_less_bandwidth_never_speeds_an_op_up(self, fraction, k):
        op = matmul_op("v", 1, k, 4 * k)
        full = SIMULATOR.execute_op(op, bandwidth_fraction=1.0)
        limited = SIMULATOR.execute_op(op, bandwidth_fraction=fraction)
        assert limited.cycles >= full.cycles - 1e-9


class TestDRAMProperties:
    @given(
        size=st.integers(min_value=1, max_value=1 << 24),
        overhead=st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=40, deadline=None)
    def test_effective_bandwidth_never_exceeds_peak(self, size, overhead):
        model = DRAMModel(DRAMConfig(request_overhead_cycles=overhead))
        # Allow a hair of floating-point slack for the zero-overhead case.
        assert model.effective_bandwidth(size) <= model.config.peak_bandwidth_bytes_per_s * (
            1.0 + 1e-9
        )

    @given(size=st.integers(min_value=1, max_value=1 << 22))
    @settings(max_examples=30, deadline=None)
    def test_splitting_a_transfer_never_helps(self, size):
        model = DRAMModel()
        assert model.transfer_cycles(size, transfers=2) >= model.transfer_cycles(
            size, transfers=1
        )


class TestPruningProperties:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        d_model=st.integers(min_value=8, max_value=256),
        threshold=st.floats(min_value=2.0, max_value=64.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_budget_is_monotone_and_kept_channels_valid(self, seed, d_model, threshold):
        pruner = DynamicTopKPruner(d_model, DynamicTopKConfig(threshold=threshold))
        pruner.start_token()
        rng = np.random.default_rng(seed)
        previous_k = d_model
        for layer in range(4):
            decision = pruner.prune_layer(rng.normal(size=d_model), layer)
            assert pruner.current_k <= previous_k
            previous_k = pruner.current_k
            assert decision.kept_channels.size == decision.kept
            assert np.all(decision.kept_channels < d_model)
            assert np.all(decision.kept_channels >= 0)
            assert np.unique(decision.kept_channels).size == decision.kept


class TestExecutorAgreesWithNumpy:
    @given(
        seed=st.integers(min_value=0, max_value=500),
        k=st.integers(min_value=4, max_value=48),
        n=st.integers(min_value=4, max_value=48),
    )
    @settings(max_examples=25, deadline=None)
    def test_gemv_kernel_matches_numpy_for_random_shapes(self, seed, k, n):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=k)
        w = rng.normal(size=(k, n))
        plan = build_gemv_kernel(k, n)
        executor = CoreExecutor(
            "mc", memory_size=plan.memory_words + 16, vector_length=max(k, n)
        )
        plan.place(executor, {"x": x, "w": w})
        executor.run(plan.program)
        np.testing.assert_allclose(plan.fetch(executor, "y"), x @ w, rtol=1e-9)
