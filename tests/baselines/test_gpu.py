"""Tests for the RTX 3060 GPU baseline (repro.baselines.gpu)."""

import pytest

from repro.baselines.gpu import GPUConfig, GPUModel, rtx3060_laptop
from repro.models.mllm import InferenceRequest
from repro.models.ops import matmul_op


class TestGPUConfig:
    def test_table2_headline_figures(self):
        config = GPUConfig()
        assert config.peak_flops == pytest.approx(13.0e12)
        assert config.memory_bandwidth_bytes_per_s == pytest.approx(336.0e9)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GPUConfig(peak_flops=0)
        with pytest.raises(ValueError):
            GPUConfig(gemv_bandwidth_utilization=0.0)
        with pytest.raises(ValueError):
            GPUConfig(kernel_launch_overhead_s=-1)
        with pytest.raises(ValueError):
            GPUConfig(board_power_w=0)


class TestOpLatency:
    def test_gemv_is_bandwidth_limited(self):
        gpu = GPUModel()
        op = matmul_op("v", 1, 2048, 5632)
        cfg = gpu.config
        bandwidth_time = op.total_bytes / (
            cfg.memory_bandwidth_bytes_per_s * cfg.gemv_bandwidth_utilization
        )
        assert gpu.op_latency_s(op) >= bandwidth_time

    def test_launch_overhead_always_charged(self):
        gpu = GPUModel(GPUConfig(kernel_launch_overhead_s=1e-3))
        tiny = matmul_op("t", 1, 4, 4)
        assert gpu.op_latency_s(tiny) >= 1e-3

    def test_gemm_faster_per_flop_than_gemv(self):
        gpu = GPUModel()
        gemm = matmul_op("g", 256, 2048, 2048)
        gemv = matmul_op("v", 1, 2048, 2048)
        gemm_per_flop = gpu.op_latency_s(gemm) / gemm.flops
        gemv_per_flop = gpu.op_latency_s(gemv) / gemv.flops
        assert gemm_per_flop < gemv_per_flop


class TestWorkloadExecution:
    def test_run_request_phases(self, gpu_baseline, sphinx_tiny, short_request):
        result = gpu_baseline.run_request(sphinx_tiny, short_request)
        assert set(result.phases) == {
            "vision_encoder",
            "projector",
            "llm_prefill",
            "llm_decode",
        }
        assert result.hardware_name == "rtx3060-laptop"
        assert result.power_w == pytest.approx(80.0)

    def test_host_offload_charged_once(self, sphinx_tiny, short_request):
        heavy_offload = GPUModel(GPUConfig(host_offload_overhead_s=0.5))
        light_offload = GPUModel(GPUConfig(host_offload_overhead_s=0.0))
        heavy = heavy_offload.run_request(sphinx_tiny, short_request)
        light = light_offload.run_request(sphinx_tiny, short_request)
        assert heavy.total_latency_s - light.total_latency_s == pytest.approx(0.5, rel=1e-6)

    def test_decode_dominates_for_long_outputs(self, gpu_baseline, sphinx_tiny):
        request = InferenceRequest(images=1, prompt_text_tokens=16, output_tokens=128)
        result = gpu_baseline.run_request(sphinx_tiny, request)
        assert result.decode_latency_s > 0.7 * result.total_latency_s

    def test_execute_phase_accepts_simulator_kwargs(self, gpu_baseline, sphinx_tiny, short_request):
        """The GPU model must be interface-compatible with the profiler."""
        workload = sphinx_tiny.build_workload(short_request)
        result = gpu_baseline.execute_phase(
            workload.phase("llm_decode"), pool="mc", bandwidth_fraction=0.5
        )
        assert result.latency_s > 0

    def test_factory(self):
        assert isinstance(rtx3060_laptop(), GPUModel)
