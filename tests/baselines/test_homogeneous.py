"""Tests for the homogeneous chip variants (repro.baselines.homogeneous)."""

import pytest

from repro.baselines.homogeneous import homo_cc_simulator, homo_mc_simulator
from repro.models.ops import Phase, matmul_op


@pytest.fixture(scope="module")
def gemm_phase() -> Phase:
    phase = Phase(name="gemm_heavy")
    phase.add(matmul_op("g", 300, 2048, 2048))
    return phase


@pytest.fixture(scope="module")
def gemv_phase() -> Phase:
    phase = Phase(name="gemv_heavy")
    phase.add(matmul_op("v", 1, 2048, 5632))
    return phase


class TestHomogeneousSimulators:
    def test_homo_cc_has_only_cc_clusters(self):
        sim = homo_cc_simulator()
        assert sim.has_cc and not sim.has_mc
        assert sim.chip.n_cc_clusters == 16

    def test_homo_mc_has_only_mc_clusters(self):
        sim = homo_mc_simulator()
        assert sim.has_mc and not sim.has_cc
        assert sim.chip.n_mc_clusters == 16

    def test_homo_cc_wins_gemm_phase(self, gemm_phase):
        """Fig. 11: homo-CC peaks in the compute-intensive phases."""
        cc = homo_cc_simulator().execute_phase(gemm_phase)
        mc = homo_mc_simulator().execute_phase(gemm_phase)
        assert cc.latency_s < mc.latency_s

    def test_homo_mc_wins_gemv_phase(self, gemv_phase):
        """Fig. 11: homo-MC peaks in the memory-bound decode phase."""
        cc = homo_cc_simulator().execute_phase(gemv_phase)
        mc = homo_mc_simulator().execute_phase(gemv_phase)
        assert mc.latency_s < cc.latency_s

    def test_hetero_close_to_best_of_both_per_phase(
        self, simulator, gemm_phase, gemv_phase
    ):
        hetero_gemm = simulator.execute_phase(gemm_phase).latency_s
        hetero_gemv = simulator.execute_phase(gemv_phase).latency_s
        best_gemm = homo_cc_simulator().execute_phase(gemm_phase).latency_s
        best_gemv = homo_mc_simulator().execute_phase(gemv_phase).latency_s
        # The heterogeneous chip has half the clusters of each type, so it can
        # be up to ~2x the specialised chip per phase, but no worse.
        assert hetero_gemm <= 2.2 * best_gemm
        assert hetero_gemv <= 2.2 * best_gemv

    def test_hetero_beats_both_on_full_workload(
        self, simulator, sphinx_tiny, short_request
    ):
        """Fig. 11 headline: EdgeMM wins the end-to-end MLLM."""
        hetero = simulator.run_request(sphinx_tiny, short_request).total_latency_s
        homo_cc = homo_cc_simulator().run_request(sphinx_tiny, short_request).total_latency_s
        homo_mc = homo_mc_simulator().run_request(sphinx_tiny, short_request).total_latency_s
        assert hetero < homo_cc
        assert hetero < homo_mc
