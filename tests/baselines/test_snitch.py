"""Tests for the Snitch-cluster baseline (repro.baselines.snitch)."""

import pytest

from repro.baselines.snitch import SnitchBaseline, SnitchChipConfig
from repro.models.ops import matmul_op, Phase


class TestSnitchChipConfig:
    def test_default_cluster_count_matches_edgemm_total(self):
        """The baseline has as many clusters as the EdgeMM chip (16)."""
        assert SnitchChipConfig().n_clusters == 16

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SnitchChipConfig(n_clusters=0)
        with pytest.raises(ValueError):
            SnitchChipConfig(frequency_hz=0)


class TestSnitchBaseline:
    def test_run_request_produces_phases(self, sphinx_tiny, short_request):
        baseline = SnitchBaseline()
        result = baseline.run_request(sphinx_tiny, short_request)
        assert result.hardware_name == "snitch_baseline"
        assert result.total_latency_s > 0
        assert set(result.phases) == {
            "vision_encoder",
            "projector",
            "llm_prefill",
            "llm_decode",
        }

    def test_slower_than_edgemm_on_full_mllm(
        self, simulator, sphinx_tiny, short_request
    ):
        """Fig. 11: every extended design beats the Snitch baseline."""
        snitch = SnitchBaseline().run_request(sphinx_tiny, short_request)
        edgemm = simulator.run_request(sphinx_tiny, short_request)
        assert snitch.total_latency_s > 2 * edgemm.total_latency_s

    def test_gemm_heavy_phase_is_compute_bound(self):
        baseline = SnitchBaseline()
        phase = Phase(name="gemm")
        phase.add(matmul_op("g", 300, 2048, 2048))
        result = baseline.execute_phase(phase)
        assert result.bound == "compute"

    def test_phase_repeat_scales_latency(self):
        baseline = SnitchBaseline()
        single = Phase(name="p")
        single.add(matmul_op("g", 16, 256, 256))
        repeated = single.scaled(repeat=4)
        assert baseline.execute_phase(repeated).cycles == pytest.approx(
            4 * baseline.execute_phase(single).cycles
        )

    def test_more_clusters_reduce_compute_latency(self):
        small = SnitchBaseline(SnitchChipConfig(n_clusters=4))
        large = SnitchBaseline(SnitchChipConfig(n_clusters=16))
        phase = Phase(name="gemm")
        phase.add(matmul_op("g", 300, 1024, 1024))
        assert (
            large.execute_phase(phase).latency_s < small.execute_phase(phase).latency_s
        )

    def test_no_power_model(self, sphinx_tiny, short_request):
        result = SnitchBaseline().run_request(sphinx_tiny, short_request)
        assert result.power_w is None
