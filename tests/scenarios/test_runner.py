"""Scenario runner and CLI: end-to-end runs, reports, command surface."""

import json

import pytest

from repro.scenarios import (
    ArrivalSpec,
    AutoscalerSpec,
    FleetSpec,
    ScenarioSpec,
    SLOSpec,
    TEXT_CHAT,
    autoscaler_config,
    build_fleet,
    format_scenario_report,
    get_scenario,
    run_scenario,
)
from repro.scenarios.__main__ import main as cli_main
from repro.serving.autoscale import AutoscalingFleetSimulator
from repro.serving.fleet import FleetSimulator

FAST = ScenarioSpec(
    name="fast",
    description="tiny scenario for runner tests",
    n_requests=12,
    mix=(TEXT_CHAT,),
    arrival=ArrivalSpec(kind="poisson", rate_rps=5.0),
    fleet=FleetSpec(n_chips=1, max_batch_size=8),
    slo=SLOSpec(ttft_p99_s=5.0),
)


class TestRunScenario:
    def test_report_accounts_every_request(self):
        report = run_scenario(FAST)
        assert report.n_completed == report.n_requests == 12
        assert report.component_counts == (("text_chat", 12),)
        assert report.spec_hash == FAST.spec_hash()
        assert report.makespan_s > 0
        assert report.pricing.unique_shapes >= 1
        assert report.pricing.batch1_chip_seconds > 0

    def test_slo_checks_cover_stated_targets_only(self):
        report = run_scenario(FAST)
        assert [check.metric for check in report.slo] == ["ttft_p99_s"]
        assert report.slo[0].attained_s == report.ttft.p99

    def test_repeated_runs_are_bit_identical(self):
        assert run_scenario(FAST).to_json() == run_scenario(FAST).to_json()

    def test_json_round_trips_and_has_sorted_keys(self):
        text = run_scenario(FAST).to_json()
        data = json.loads(text)
        assert text.endswith("\n")
        assert list(data) == sorted(data)
        assert data["slo_met"] in (True, False)


class TestBuildFleet:
    def test_static_spec_builds_static_fleet(self):
        fleet = build_fleet(FAST)
        assert type(fleet) is FleetSimulator
        assert fleet.n_chips == 1

    def test_autoscaled_spec_builds_autoscaling_fleet(self):
        spec = ScenarioSpec(
            name="auto",
            n_requests=5,
            mix=(TEXT_CHAT,),
            fleet=FleetSpec(autoscaler=AutoscalerSpec(min_chips=1, max_chips=3)),
            slo=SLOSpec(ttft_p99_s=1.0),
        )
        fleet = build_fleet(spec)
        assert isinstance(fleet, AutoscalingFleetSimulator)
        assert fleet.autoscaler.target_p99_ttft_s == 1.0
        assert fleet.n_chips == 3  # full max_chips fleet instantiated

    def test_autoscaler_without_ttft_slo_is_rejected(self):
        spec = ScenarioSpec(
            name="auto-bad",
            n_requests=5,
            mix=(TEXT_CHAT,),
            fleet=FleetSpec(autoscaler=AutoscalerSpec()),
        )
        with pytest.raises(ValueError, match="states no"):
            autoscaler_config(spec)


class TestCLI:
    def test_list_names_every_scenario(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mixed-rush-hour" in out and "video-stream" in out

    def test_run_single_scenario_human_readable(self, capsys):
        assert cli_main(["run", "chat-poisson"]) == 0
        out = capsys.readouterr().out
        assert "Scenario: chat-poisson" in out
        assert "SLO" in out

    def test_run_json_is_canonical(self, capsys):
        assert cli_main(["run", "chat-poisson", "--json"]) == 0
        out = capsys.readouterr().out
        assert out == run_scenario(get_scenario("chat-poisson")).to_json()

    def test_run_requires_exactly_one_target(self, capsys):
        assert cli_main(["run"]) == 2
        assert cli_main(["run", "chat-poisson", "--all"]) == 2

    def test_write_golden_round_trips(self, tmp_path, capsys):
        assert cli_main(
            ["write-golden", "--dir", str(tmp_path), "chat-poisson"]
        ) == 0
        written = tmp_path / "chat-poisson.json"
        assert written.read_text(encoding="utf-8") == run_scenario(
            get_scenario("chat-poisson")
        ).to_json()

    def test_format_report_mentions_rejections_only_when_autoscaled(self):
        text = format_scenario_report(run_scenario(FAST))
        assert "autoscaler" not in text
