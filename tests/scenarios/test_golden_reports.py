"""Golden-report regression suite: canonical JSON, byte for byte.

Every registered scenario has a committed reference report under
``tests/golden/``; running the scenario must reproduce it *byte*
identically — the serving engine, the autoscaler, the batch-priced cost
summary and the spec-hash seed derivation are all deterministic, so any
diff is a behaviour change.  Regenerate deliberately with::

    PYTHONPATH=src python -m repro.scenarios write-golden

and commit the diff with the change that caused it (the same discipline
as the fig11 byte-identity check of the batch engine).
"""

from pathlib import Path

import pytest

from repro.scenarios import available_scenarios, get_scenario, run_scenario

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


def test_every_registered_scenario_has_a_golden_report():
    missing = [
        name
        for name in available_scenarios()
        if not (GOLDEN_DIR / f"{name}.json").exists()
    ]
    assert not missing, (
        f"missing golden reports for {missing}; run "
        "`python -m repro.scenarios write-golden` and commit the files"
    )


def test_no_stale_golden_reports():
    known = {f"{name}.json" for name in available_scenarios()}
    stale = [
        path.name for path in GOLDEN_DIR.glob("*.json") if path.name not in known
    ]
    assert not stale, f"golden reports without a registered scenario: {stale}"


def test_catalogue_is_large_enough_for_the_regression_net():
    assert len(available_scenarios()) >= 6


@pytest.mark.parametrize("name", available_scenarios())
def test_scenario_report_is_byte_identical_to_golden(name):
    golden = (GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8")
    assert run_scenario(get_scenario(name)).to_json() == golden
