"""ScenarioReport rendering and summary structures."""

from repro.scenarios import (
    ArrivalSpec,
    AutoscalerSpec,
    FleetSpec,
    ScenarioSpec,
    SLOSpec,
    TEXT_CHAT,
    format_scenario_report,
    get_scenario,
    run_scenario,
    slo_checks,
)
from repro.serving.metrics import PercentileStats


def tiny_spec(**overrides):
    base = dict(
        name="report-test",
        n_requests=10,
        mix=(TEXT_CHAT,),
        arrival=ArrivalSpec(kind="poisson", rate_rps=4.0),
        fleet=FleetSpec(n_chips=1),
        slo=SLOSpec(),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestFormat:
    def test_no_slo_scenario_says_so(self):
        text = format_scenario_report(run_scenario(tiny_spec()))
        assert "none stated" in text
        assert "autoscaler" not in text

    def test_autoscaled_report_includes_controller_line(self):
        spec = tiny_spec(
            name="report-auto",
            fleet=FleetSpec(
                autoscaler=AutoscalerSpec(min_chips=1, max_chips=2)
            ),
            slo=SLOSpec(ttft_p99_s=10.0),
        )
        report = run_scenario(spec)
        assert report.autoscale is not None
        text = format_scenario_report(report)
        assert "autoscaler" in text
        assert "peak" in text

    def test_miss_verdict_renders(self):
        spec = tiny_spec(
            name="report-miss", slo=SLOSpec(ttft_p99_s=1e-6)
        )
        report = run_scenario(spec)
        assert not report.slo_met
        assert "SLO MISS" in format_scenario_report(report)

    def test_partial_completion_shows_fraction(self):
        # An overloaded reject-admission scenario completes fewer requests
        # than it received; the report shows completed/offered.
        spec = tiny_spec(
            name="report-reject",
            n_requests=40,
            arrival=ArrivalSpec(kind="poisson", rate_rps=50.0),
            fleet=FleetSpec(
                autoscaler=AutoscalerSpec(
                    min_chips=1,
                    max_chips=1,
                    max_queue_depth=2,
                    admission="reject",
                )
            ),
            slo=SLOSpec(ttft_p99_s=10.0),
        )
        report = run_scenario(spec)
        assert report.n_completed < report.n_requests
        assert f"{report.n_completed}/{report.n_requests}" in (
            format_scenario_report(report)
        )


class TestStructure:
    def test_slo_checks_are_metric_sorted(self):
        report = run_scenario(get_scenario("chat-poisson")).to_dict()
        metrics = [check["metric"] for check in report["slo"]]
        assert metrics == sorted(metrics)

    def test_slo_checks_helper_reads_the_right_percentiles(self):
        serving = run_scenario(tiny_spec())
        stats = PercentileStats(p50=0.1, p95=0.2, p99=0.3, mean=0.15, max=0.4)

        class FakeReport:
            latency = stats
            ttft = stats
            queue_wait = stats

        checks = slo_checks(
            {"ttft_p99_s": 1.0, "latency_p95_s": 0.1}, FakeReport()
        )
        by_metric = {check.metric: check for check in checks}
        assert by_metric["ttft_p99_s"].attained_s == 0.3
        assert by_metric["ttft_p99_s"].met
        assert by_metric["latency_p95_s"].attained_s == 0.2
        assert not by_metric["latency_p95_s"].met
        assert serving.slo == ()  # no objectives stated -> vacuously met
        assert serving.slo_met

    def test_with_fleet_rebases_topology_only(self):
        spec = tiny_spec()
        moved = spec.with_fleet(FleetSpec(n_chips=3))
        assert moved.fleet.n_chips == 3
        assert moved.mix == spec.mix
        assert moved.spec_hash() != spec.spec_hash()
