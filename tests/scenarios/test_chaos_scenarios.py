"""Scenario-layer chaos plumbing: specs, compilation, reports, CLI.

The runtime suites prove chaos cannot change a result; this file pins
how chaos enters and leaves the scenario layer: ``ChaosSpec``
validation and serialization, the backward-compatible spec hash (a
chaos-free spec serializes — and hashes — exactly as before the field
existed), deterministic schedule compilation with the CLI seed
override, the conditional ``incidents`` report block, and the
``--chaos-seed``/``--max-retries`` command-line hooks.
"""

import json
from dataclasses import replace

import pytest

from repro.scenarios.__main__ import main
from repro.scenarios.compile import compile_chaos_schedule, compile_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.report import IncidentSummary, format_scenario_report
from repro.scenarios.runner import scenario_report
from repro.scenarios.spec import ChaosSpec, ScenarioSpec
from repro.serving.runtime.service import run_scenario_supervised
from repro.serving.runtime.supervision import ActorIncident, SupervisionConfig

FAST = SupervisionConfig(
    job_deadline_s=0.5,
    stall_deadline_s=0.15,
    tick_s=0.01,
    backoff_base_s=0.005,
    backoff_cap_s=0.05,
    checkpoint_every=4,
    checkpoint_ring=3,
    seed=7,
)


class TestChaosSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match=">= 0"):
            ChaosSpec(n_crashes=-1)
        with pytest.raises(ValueError, match="at least one fault"):
            ChaosSpec(n_crashes=0)
        with pytest.raises(ValueError, match="hang_shards"):
            ChaosSpec(hang_shards=0)
        with pytest.raises(ValueError, match="delay_s"):
            ChaosSpec(delay_s=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            ChaosSpec(max_retries=-1)

    def test_round_trip(self):
        plan = ChaosSpec(
            n_crashes=2, n_hangs=1, n_drops=1, n_supervisor_crashes=1
        )
        assert ChaosSpec.from_dict(plan.to_dict()) == plan

    def test_spec_round_trip_with_chaos(self):
        spec = replace(get_scenario("chat-poisson"), chaos=ChaosSpec())
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec


class TestHashStability:
    def test_chaos_free_spec_serializes_as_before(self):
        # The chaos field must be invisible when unset, so every
        # existing spec hash — and every golden report — is unchanged.
        spec = get_scenario("chat-poisson")
        assert spec.chaos is None
        assert "chaos" not in spec.to_dict()

    def test_chaos_block_changes_the_hash(self):
        spec = get_scenario("chat-poisson")
        chaotic = replace(spec, chaos=ChaosSpec())
        assert chaotic.spec_hash() != spec.spec_hash()
        assert (
            replace(chaotic, chaos=None).spec_hash() == spec.spec_hash()
        )


class TestCompilation:
    def test_no_plan_means_empty_schedule(self):
        spec = get_scenario("chat-poisson")
        assert not compile_chaos_schedule(spec)
        assert compile_scenario(spec).chaos is None

    def test_deterministic_from_spec_hash(self):
        spec = replace(
            get_scenario("chat-poisson"),
            chaos=ChaosSpec(n_crashes=2, n_drops=1),
        )
        assert compile_chaos_schedule(spec) == compile_chaos_schedule(spec)
        assert compile_scenario(spec).chaos == compile_chaos_schedule(spec)

    def test_seed_override(self):
        spec = replace(
            get_scenario("chat-poisson"),
            chaos=ChaosSpec(n_crashes=2, n_drops=1),
        )
        derived = compile_chaos_schedule(spec)
        assert compile_chaos_schedule(spec, seed=12345) != derived
        assert compile_chaos_schedule(
            spec, seed=spec.derive_seed("chaos")
        ) == derived


def _incident(session, kind, **kwargs):
    return ActorIncident(
        session=session, actor="chip-0", kind=kind, detail="x", **kwargs
    )


class TestIncidentSummary:
    def test_from_incidents(self):
        summary = IncidentSummary.from_incidents(
            [
                _incident(1, "crash"),
                _incident(1, "retry", job_id=0, attempt=1),
                _incident(2, "crash"),
            ]
        )
        assert summary.n_sessions == 2
        assert summary.counts == {"crash": 2, "retry": 1}
        data = summary.to_dict()
        assert data["n_sessions"] == 2
        assert len(data["timeline"]) == 3

    def test_report_block_is_conditional(self):
        from repro.scenarios.runner import build_fleet, scenario_run_kwargs

        spec = get_scenario("chat-poisson")
        compiled = compile_scenario(spec)
        fleet = build_fleet(spec)
        result = fleet.run(
            list(compiled.trace), **scenario_run_kwargs(compiled, fleet)
        )
        plain = scenario_report(spec, compiled, result)
        assert plain.incidents is None
        assert "incidents" not in plain.to_dict()
        # An empty timeline attaches nothing: undisturbed supervised
        # runs emit the exact batch bytes.
        empty = scenario_report(spec, compiled, result, incidents=[])
        assert empty.to_json() == plain.to_json()
        attached = scenario_report(
            spec, compiled, result, incidents=[_incident(1, "crash")]
        )
        assert attached.incidents is not None
        assert "incidents" in attached.to_dict()
        assert attached.without_incidents().to_json() == plain.to_json()

    def test_format_line(self):
        spec = replace(
            get_scenario("chat-poisson"),
            chaos=ChaosSpec(n_crashes=1, n_supervisor_crashes=1),
        )
        report = run_scenario_supervised(
            spec, supervision=FAST, hang_unit_s=0.01
        )
        assert report.incidents is not None
        text = format_scenario_report(report)
        assert "incidents" in text
        assert "supervisor session(s)" in text


class TestCLI:
    def test_chaos_seed_flag(self, capsys):
        assert (
            main(["run", "chat-poisson", "--json", "--chaos-seed", "3"]) == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["name"] == "chat-poisson"
        # The default plan's single chip crash always fires on the
        # 1-chip fleet, so the incidents block must be present.
        assert "incidents" in report
        assert report["incidents"]["counts"].get("crash", 0) >= 1

    def test_max_retries_flag(self, capsys):
        assert (
            main(
                [
                    "run",
                    "chat-poisson",
                    "--json",
                    "--chaos-seed",
                    "3",
                    "--max-retries",
                    "5",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["name"] == "chat-poisson"

    def test_plain_run_is_unaffected(self, capsys):
        assert main(["run", "chat-poisson", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert "incidents" not in report
