"""Scenario-spec tests: validation, serialization, seed plumbing.

The seed-plumbing contract matters most: every random stream a scenario
uses is seeded from the SHA-256 of the spec's canonical JSON, never from
Python's per-process salted ``hash()`` or global RNG state.  The pinned
reference values and the subprocess test lock that in — the same spec must
derive the same seeds in *any* process, whatever ``PYTHONHASHSEED`` says.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios import (
    ArrivalSpec,
    AutoscalerSpec,
    FleetSpec,
    ScenarioSpec,
    SLOSpec,
    WorkloadComponent,
    available_scenarios,
    get_scenario,
)

REFERENCE = ScenarioSpec(
    name="reference",
    description="pinned spec for seed-stability tests",
    n_requests=10,
    mix=(
        WorkloadComponent(name="chat", images=0),
        WorkloadComponent(name="vision", weight=2.0, images=2),
    ),
    arrival=ArrivalSpec(kind="bursty", rate_rps=3.0),
    fleet=FleetSpec(n_chips=2),
    slo=SLOSpec(ttft_p99_s=1.0),
)


class TestValidation:
    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError, match="at least one workload component"):
            ScenarioSpec(name="x", mix=())

    def test_rejects_duplicate_component_names(self):
        with pytest.raises(ValueError, match="duplicate component names"):
            ScenarioSpec(
                name="x",
                mix=(
                    WorkloadComponent(name="a"),
                    WorkloadComponent(name="a", images=2),
                ),
            )

    def test_rejects_bad_component(self):
        with pytest.raises(ValueError, match="weight must be positive"):
            WorkloadComponent(name="a", weight=0.0)
        with pytest.raises(ValueError, match="prompt_token_range"):
            WorkloadComponent(name="a", prompt_token_range=(8, 4))
        with pytest.raises(ValueError, match="equal length"):
            WorkloadComponent(
                name="a", output_token_choices=(8, 16), output_token_weights=(1.0,)
            )

    def test_rejects_bad_arrivals(self):
        with pytest.raises(ValueError, match="arrival kind"):
            ArrivalSpec(kind="uniform")
        with pytest.raises(ValueError, match="rate_rps"):
            ArrivalSpec(kind="poisson", rate_rps=0.0)
        with pytest.raises(ValueError, match="needs explicit times"):
            ArrivalSpec(kind="trace")
        with pytest.raises(ValueError, match="non-decreasing"):
            ArrivalSpec(kind="trace", times=(1.0, 0.5))
        with pytest.raises(ValueError, match="only apply to trace"):
            ArrivalSpec(kind="poisson", times=(0.0,))

    def test_rejects_fields_the_kind_would_lose_on_serialization(self):
        # `to_dict` omits fields irrelevant to the kind, so non-default
        # values there would silently vanish on a round trip — rejected.
        with pytest.raises(ValueError, match="does not apply"):
            ArrivalSpec(kind="poisson", burst_multiplier=3.0)
        with pytest.raises(ValueError, match="does not apply"):
            ArrivalSpec(kind="trace", times=(0.0,), rate_rps=5.0)
        # Relevant fields are of course allowed off-default.
        ArrivalSpec(kind="bursty", burst_multiplier=3.0)

    def test_rejects_short_trace(self):
        with pytest.raises(ValueError, match="holds 2 arrivals"):
            ScenarioSpec(
                name="x",
                n_requests=3,
                arrival=ArrivalSpec(kind="trace", times=(0.0, 1.0)),
            )

    def test_rejects_bad_autoscaler(self):
        with pytest.raises(ValueError, match="max_chips"):
            AutoscalerSpec(min_chips=3, max_chips=2)
        with pytest.raises(ValueError, match="admission"):
            AutoscalerSpec(admission="drop")
        with pytest.raises(ValueError, match="scale_down_ratio"):
            AutoscalerSpec(scale_down_ratio=1.5)

    def test_rejects_nonpositive_slo(self):
        with pytest.raises(ValueError, match="must be positive"):
            SLOSpec(ttft_p99_s=0.0)


class TestSerialization:
    def test_round_trips_through_dict_and_json(self):
        for name in available_scenarios():
            spec = get_scenario(name)
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_round_trip_preserves_hash(self):
        for name in available_scenarios():
            spec = get_scenario(name)
            assert ScenarioSpec.from_json(spec.to_json()).spec_hash() == spec.spec_hash()

    def test_trace_arrivals_round_trip(self):
        times = (0.0, 0.25, 0.25, 1.5)
        spec = ArrivalSpec(kind="trace", times=times)
        assert ArrivalSpec.from_dict(spec.to_dict()).times == times

    def test_canonical_json_is_key_sorted_and_minified(self):
        text = REFERENCE.canonical_json()
        assert json.loads(text) == REFERENCE.to_dict()
        assert ": " not in text and "\n" not in text


class TestSeedPlumbing:
    """Seeds derive from the spec hash — stable across processes."""

    def test_spec_hash_is_pinned(self):
        # If this moves, every golden report and derived seed moves with
        # it: that is a deliberate, reviewed event, not drift.
        assert REFERENCE.spec_hash() == (
            "9cd9c31a4bedb8e1b1a419a69be88c0270872ea1dc79212bdc694ecf71fe443d"
        )

    def test_derived_seeds_are_pinned_and_role_separated(self):
        assert REFERENCE.derive_seed("arrival") == 1776506834341202690
        assert REFERENCE.derive_seed("mix") != REFERENCE.derive_seed("arrival")
        assert (
            REFERENCE.derive_seed("component:chat")
            != REFERENCE.derive_seed("component:vision")
        )

    def test_seed_salt_changes_every_stream(self):
        from dataclasses import replace

        salted = replace(REFERENCE, seed_salt=1)
        for role in ("arrival", "mix", "component:chat"):
            assert salted.derive_seed(role) != REFERENCE.derive_seed(role)

    def test_seeds_survive_hash_randomization(self):
        # Same derivation in a subprocess with a different PYTHONHASHSEED:
        # the guarantee `hash()`-based seeding could never give.
        code = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from tests.scenarios.test_spec import REFERENCE\n"
            "print(REFERENCE.spec_hash()); print(REFERENCE.derive_seed('arrival'))\n"
        )
        root = Path(__file__).resolve().parent.parent.parent
        out = subprocess.run(
            [sys.executable, "-c", code, str(root)],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONHASHSEED": "12345", "PYTHONPATH": str(root / "src")},
        )
        spec_hash, seed = out.stdout.split()
        assert spec_hash == REFERENCE.spec_hash()
        assert int(seed) == REFERENCE.derive_seed("arrival")
