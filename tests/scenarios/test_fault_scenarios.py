"""Fault and tenant scenarios: acceptance, determinism and reporting.

``chat-chipfail`` is the PR's acceptance scenario: a two-chip fleet
loses one chip mid-trace and gets it back, and the committed golden
report pins the measured p99-TTFT dent *and* a finite time-to-recover —
identically across the step, macro and wave engines.  ``tenant-tiers``
exercises weighted admission: the premium tenant holds its SLO while the
free tier absorbs the queueing, all in one report.

Fault schedules are lowered from the spec hash alone, so the same spec
draws the same events in any process — asserted across interpreter
``PYTHONHASHSEED`` values the same way the arrival seeds are.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios import ScenarioSpec, get_scenario, run_scenario
from repro.scenarios.compile import compile_fault_schedule
from repro.scenarios.report import format_scenario_report
from repro.scenarios.spec import FaultsSpec, WorkloadComponent
from repro.serving.queue import ENGINES

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


class TestFaultsSpec:
    def test_round_trips_through_the_spec_dict(self):
        spec = ScenarioSpec(
            name="x",
            fleet=get_scenario("chat-chipfail").fleet,
            faults=FaultsSpec(n_chip_failures=1, outage_s=5.0),
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_faultless_spec_serializes_without_a_faults_key(self):
        assert "faults" not in ScenarioSpec(name="x").to_dict()

    def test_fault_block_changes_the_spec_hash(self):
        plain = get_scenario("chat-poisson")
        from dataclasses import replace

        faulted = replace(
            plain,
            fleet=replace(plain.fleet, n_chips=2),
            faults=FaultsSpec(n_chip_failures=1, outage_s=2.0),
        )
        assert faulted.spec_hash() != plain.spec_hash()

    def test_validation_rejects_impossible_plans(self):
        with pytest.raises(ValueError):
            FaultsSpec()  # no faults at all
        with pytest.raises(ValueError):
            FaultsSpec(n_chip_failures=1, window=(0.8, 0.2))
        with pytest.raises(ValueError):
            FaultsSpec(n_dram_degrades=1, degrade_factor=0.0)
        with pytest.raises(ValueError):
            # A permanent failure of the only chip leaves nothing running.
            ScenarioSpec(name="x", faults=FaultsSpec(n_chip_failures=1))

    def test_tenant_and_priority_round_trip(self):
        component = WorkloadComponent(
            name="premium", tenant="premium", priority=2.0
        )
        data = component.to_dict()
        assert data["tenant"] == "premium" and data["priority"] == 2.0
        assert WorkloadComponent.from_dict(data) == component
        # Defaults stay out of the serialized form (spec-hash stability).
        plain = WorkloadComponent(name="chat").to_dict()
        assert "tenant" not in plain and "priority" not in plain


class TestChipFailAcceptance:
    """The committed 1-chip-loss trace pins dent and recovery time."""

    @pytest.fixture(scope="class")
    def reports(self):
        spec = get_scenario("chat-chipfail")
        return {engine: run_scenario(spec, engine=engine) for engine in ENGINES}

    def test_identical_across_all_three_engines(self, reports):
        step, macro, wave = (
            reports[engine].to_json() for engine in ("step", "macro", "wave")
        )
        assert step == macro == wave

    def test_report_captures_dent_and_measured_recovery(self, reports):
        faults = reports["macro"].faults
        assert faults is not None
        kinds = [event.kind for event in faults.events]
        assert kinds == ["chip_down", "chip_up"]
        (impact,) = faults.impacts  # chip_up is restorative, not measured
        assert impact.event.kind == "chip_down"
        assert impact.dent_depth_s > 0.0
        assert impact.time_to_recover_s is not None
        assert 0.0 < impact.time_to_recover_s < reports["macro"].makespan_s

    def test_matches_the_committed_golden_bytes(self, reports):
        golden = (GOLDEN_DIR / "chat-chipfail.json").read_text(encoding="utf-8")
        assert reports["macro"].to_json() == golden

    def test_formatted_report_narrates_the_fault_timeline(self, reports):
        text = format_scenario_report(reports["macro"])
        assert "faults             : 2 events (drain)" in text
        assert "p99 TTFT dent" in text
        assert "recovered in" in text


class TestTenantTiers:
    @pytest.fixture(scope="class")
    def report(self):
        return run_scenario(get_scenario("tenant-tiers"))

    def test_identical_across_all_three_engines(self, report):
        for engine in ("step", "wave"):
            assert (
                run_scenario(get_scenario("tenant-tiers"), engine=engine).to_json()
                == report.to_json()
            )

    def test_per_tenant_attainment_is_reported(self, report):
        assert report.tenants is not None
        by_name = {tenant.tenant: tenant for tenant in report.tenants}
        assert set(by_name) == {"premium", "free"}
        premium, free = by_name["premium"], by_name["free"]
        assert premium.priority == 2.0 and free.priority == 1.0
        # Weighted admission protects the paying tier under the burst.
        assert premium.ttft.p99 < free.ttft.p99
        assert premium.slo_met and not free.slo_met

    def test_tenant_accounting_covers_every_offered_request(self, report):
        total = sum(tenant.n_requests for tenant in report.tenants)
        assert total == report.n_requests
        for tenant in report.tenants:
            assert tenant.n_completed + tenant.n_rejected <= tenant.n_requests

    def test_formatted_report_lists_both_tenants(self, report):
        text = format_scenario_report(report)
        assert "tenant MET " in text and "tenant MISS" in text


class TestScheduleDeterminism:
    def test_schedule_is_a_pure_function_of_the_spec(self):
        spec = get_scenario("chat-chipfail")
        first = compile_fault_schedule(spec, 40.0)
        second = compile_fault_schedule(spec, 40.0)
        assert first == second
        lo, hi = spec.faults.window
        down = first.events[0]
        assert lo * 40.0 <= down.time_s <= hi * 40.0

    def test_schedule_survives_hash_randomization(self):
        # The chaos analogue of the spec-seed guarantee: a subprocess
        # with a different PYTHONHASHSEED draws the exact same events.
        code = (
            "import sys, json; sys.path.insert(0, sys.argv[1])\n"
            "from repro.scenarios import get_scenario\n"
            "from repro.scenarios.compile import compile_fault_schedule\n"
            "spec = get_scenario('chat-chipfail')\n"
            "print(json.dumps(compile_fault_schedule(spec, 40.0).to_dict()))\n"
        )
        root = Path(__file__).resolve().parent.parent.parent
        out = subprocess.run(
            [sys.executable, "-c", code, str(root / "src")],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONHASHSEED": "12345", "PYTHONPATH": str(root / "src")},
        )
        local = compile_fault_schedule(get_scenario("chat-chipfail"), 40.0)
        assert json.loads(out.stdout) == local.to_dict()
