"""Scenario compilation: determinism, mix accounting, arrival wiring."""

from dataclasses import replace

import pytest

from repro.scenarios import (
    ArrivalSpec,
    ScenarioSpec,
    WorkloadComponent,
    available_scenarios,
    build_arrival_process,
    compile_scenario,
    get_scenario,
)
from repro.serving.arrival import BurstyArrivals, PoissonArrivals, TraceArrivals

MIX = (
    WorkloadComponent(name="chat", weight=3.0, images=0),
    WorkloadComponent(name="vision", weight=1.0, images=2),
)
SPEC = ScenarioSpec(
    name="compile-test",
    n_requests=200,
    mix=MIX,
    arrival=ArrivalSpec(kind="poisson", rate_rps=5.0),
)


class TestDeterminism:
    def test_identical_specs_compile_identical_traces(self):
        first = compile_scenario(SPEC)
        second = compile_scenario(ScenarioSpec.from_json(SPEC.to_json()))
        assert first.trace == second.trace
        assert first.components == second.components

    def test_different_salt_changes_the_trace(self):
        salted = compile_scenario(replace(SPEC, seed_salt=1))
        assert salted.trace != compile_scenario(SPEC).trace

    def test_component_rename_changes_only_that_stream(self):
        # Renaming a component re-derives its seed; the arrival stream's
        # seed also moves because the spec hash moves — both stay
        # deterministic functions of the spec content.
        renamed = replace(
            SPEC, mix=(replace(MIX[0], name="chat2"), MIX[1])
        )
        compiled = compile_scenario(renamed)
        assert len(compiled.trace) == SPEC.n_requests


class TestTraceShape:
    def test_arrivals_are_nondecreasing_and_ids_sequential(self):
        compiled = compile_scenario(SPEC)
        times = [request.arrival_s for request in compiled.trace]
        assert times == sorted(times)
        assert [r.request_id for r in compiled.trace] == list(range(len(times)))

    def test_component_counts_follow_weights(self):
        compiled = compile_scenario(SPEC)
        counts = compiled.component_counts
        assert counts["chat"] + counts["vision"] == 200
        # 3:1 weights — chat should clearly dominate.
        assert counts["chat"] > 2 * counts["vision"]

    def test_component_shapes_match_their_spec(self):
        compiled = compile_scenario(SPEC)
        for request, name in zip(compiled.trace, compiled.components):
            component = {c.name: c for c in MIX}[name]
            assert request.request.images == component.images
            lo, hi = component.prompt_token_range
            assert lo <= request.request.prompt_text_tokens <= hi
            assert request.request.output_tokens in component.output_token_choices

    def test_unique_shapes_deduplicate(self):
        compiled = compile_scenario(SPEC)
        shapes = compiled.unique_shapes
        assert len(shapes) == len(set(shapes))
        assert set(shapes) == {r.request for r in compiled.trace}

    def test_single_component_needs_no_selection_stream(self):
        single = ScenarioSpec(
            name="single", n_requests=5, mix=(MIX[0],)
        )
        compiled = compile_scenario(single)
        assert compiled.components == ("chat",) * 5


class TestArrivalWiring:
    def test_builds_the_matching_process(self):
        assert isinstance(
            build_arrival_process(ArrivalSpec(kind="poisson")), PoissonArrivals
        )
        assert isinstance(
            build_arrival_process(ArrivalSpec(kind="bursty")), BurstyArrivals
        )
        assert isinstance(
            build_arrival_process(ArrivalSpec(kind="trace", times=(0.0, 1.0))),
            TraceArrivals,
        )

    def test_trace_times_replay_verbatim(self):
        times = tuple(round(i * 0.5, 6) for i in range(10))
        spec = ScenarioSpec(
            name="replay",
            n_requests=10,
            mix=(MIX[0],),
            arrival=ArrivalSpec(kind="trace", times=times),
        )
        compiled = compile_scenario(spec)
        assert tuple(r.arrival_s for r in compiled.trace) == times

    def test_registered_scenarios_all_compile(self):
        for name in available_scenarios():
            spec = get_scenario(name)
            compiled = compile_scenario(spec)
            assert len(compiled.trace) == spec.n_requests
