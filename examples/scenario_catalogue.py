"""Declarative scenarios: define a custom spec and run a registered one.

Shows both sides of `repro.scenarios`: running a scenario from the
built-in catalogue, and declaring a brand-new scenario as pure data —
a two-component mix under bursty arrivals with an SLO — then running it
through the same engine.

Run with:  PYTHONPATH=src python examples/scenario_catalogue.py
"""

from repro.scenarios import (
    ArrivalSpec,
    FleetSpec,
    ScenarioSpec,
    SLOSpec,
    TEXT_CHAT,
    VIDEO_FRAMES,
    available_scenarios,
    format_scenario_report,
    get_scenario,
    run_scenario,
)


def main() -> None:
    print("Registered scenarios:", ", ".join(available_scenarios()))
    print()

    report = run_scenario(get_scenario("chat-poisson"))
    print(format_scenario_report(report))
    print()

    custom = ScenarioSpec(
        name="custom-demo",
        description="Chat + video keyframes, bursty, two chips",
        n_requests=80,
        mix=(TEXT_CHAT, VIDEO_FRAMES),
        arrival=ArrivalSpec(kind="bursty", rate_rps=2.0, burst_multiplier=4.0),
        fleet=FleetSpec(n_chips=2, max_batch_size=8),
        slo=SLOSpec(ttft_p99_s=3.0),
    )
    print(format_scenario_report(run_scenario(custom)))
    print()
    print(f"spec is data: hash {custom.spec_hash()[:16]}…, "
          f"{len(custom.to_json())} bytes of JSON")


if __name__ == "__main__":
    main()
