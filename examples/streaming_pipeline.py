"""Streaming-pipeline scheduling for a real-time assistant (Fig. 9 / Fig. 13).

Models an autonomous-driving / AR-style deployment: camera frames arrive
continuously, the CC-clusters encode + prefill the next request while the
MC-clusters decode the current one, and the runtime picks the DMA bandwidth
split (Bc:Bm) and, for long answers, the stream batch size.

Run with:  python examples/streaming_pipeline.py
"""

from repro import EdgeMM, get_mllm
from repro.scheduling import TokenLengthScheduler


def main() -> None:
    system = EdgeMM.default()
    model = get_mllm("karmavlm")

    # Pruning calibration feeds the scheduler so decode-time estimates match
    # what the hardware pruner will actually deliver.
    calibration = system.calibrate_pruning(n_tokens=4)
    pipeline = system.pipeline(model, prompt_text_tokens=32)
    scheduler = TokenLengthScheduler(
        pipeline,
        keep_fraction=calibration.average_keep_fraction,
        candidate_batch_sizes=(1, 2, 4, 8, 16),
        max_latency_overhead=0.6,
    )

    le = scheduler.bandwidth.expected_balanced_length()
    lb = scheduler.bandwidth.reallocation_limit_length()
    print(f"model: {model.name}")
    print(f"expected balanced length le = {le} tokens (equal bandwidth sharing)")
    print(f"reallocation limit      lb = {lb} tokens (most aggressive Bc:Bm)")
    print()

    print("output  Bc:Bm   batch  latency/request  tokens/s   policy")
    print("------  ------  -----  ---------------  ---------  --------------------")
    for output_tokens in (8, 16, 32, 64, 128, 256, 512, 1024):
        schedule = scheduler.schedule(output_tokens)
        cc = schedule.cc_bandwidth_fraction
        ratio = f"1:{int(round((1 - cc) / cc))}"
        policy = "batch decoding" if schedule.used_batching else (
            "bandwidth reallocation" if cc < 0.5 else "equal sharing"
        )
        print(
            f"{output_tokens:6d}  {ratio:>6s}  {schedule.batch_size:5d}  "
            f"{schedule.request_latency_s:13.2f} s  {schedule.tokens_per_second:9.1f}  {policy}"
        )

    print()
    print(
        "Short answers keep equal sharing; medium answers shift DRAM bandwidth "
        "to the MC-clusters; very long answers switch to stream-batched decoding, "
        "trading some per-request latency for a large throughput gain."
    )


if __name__ == "__main__":
    main()
