"""Design-space exploration: how many CC- vs MC-clusters should a group have?

The EdgeMM architecture is parameterisable (the paper notes the hardware can
be scaled by changing architecture parameters).  This example sweeps the
CC:MC cluster mix per group and the group count through the array-native
batch engine — the whole grid prices as one broadcasted NumPy pass — and
reports latency, throughput per area and energy per token: the kind of
ablation a designer would run before fixing the Fig. 10 configuration.

The multiprocessing path (``sweep_design_space(processes=N)``) produces
identical rows; it remains the tool for sweep axes the batch engine cannot
vectorise, such as a different model per point.

Run with:  PYTHONPATH=src python examples/design_space_exploration.py
"""

import time

from repro.experiments import format_design_space_report, sweep_design_space


def main() -> None:
    started = time.perf_counter()
    points = sweep_design_space()
    elapsed = time.perf_counter() - started
    print(format_design_space_report(points))

    best = max(points, key=lambda point: point.tokens_per_second)
    print()
    print(
        f"best throughput: {best.tokens_per_second:.1f} tokens/s with "
        f"{best.n_groups} groups of {best.cc_per_group} CC + "
        f"{best.mc_per_group} MC clusters"
    )
    print(
        "The mixed configurations dominate the homogeneous corners, which is "
        "the heterogeneity argument of the paper in design-space form."
    )
    print(
        f"(swept {len(points)} configurations in {elapsed * 1e3:.0f} ms "
        "through the batch engine)"
    )


if __name__ == "__main__":
    main()
