"""Design-space exploration: how many CC- vs MC-clusters should a group have?

The EdgeMM architecture is parameterisable (the paper notes the hardware can
be scaled by changing architecture parameters).  This example sweeps the
CC:MC cluster mix per group and the group count through the parallel
experiment engine — every configuration is an independent simulation, so
the sweep fans out over worker processes — and reports latency, throughput
per area and energy per token: the kind of ablation a designer would run
before fixing the Fig. 10 configuration.

Run with:  PYTHONPATH=src python examples/design_space_exploration.py
"""

from repro.experiments import (
    ParallelSweepRunner,
    format_design_space_report,
    sweep_design_space,
)


def main() -> None:
    runner = ParallelSweepRunner()
    points = sweep_design_space(runner=runner)
    print(format_design_space_report(points))

    best = max(points, key=lambda point: point.tokens_per_second)
    print()
    print(
        f"best throughput: {best.tokens_per_second:.1f} tokens/s with "
        f"{best.n_groups} groups of {best.cc_per_group} CC + "
        f"{best.mc_per_group} MC clusters"
    )
    print(
        "The mixed configurations dominate the homogeneous corners, which is "
        "the heterogeneity argument of the paper in design-space form."
    )
    workers = min(runner.processes, len(points))
    print(f"(swept {len(points)} configurations across {workers} worker processes)")


if __name__ == "__main__":
    main()
