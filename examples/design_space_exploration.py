"""Design-space exploration: how many CC- vs MC-clusters should a group have?

The EdgeMM architecture is parameterisable (the paper notes the hardware can
be scaled by changing architecture parameters).  This example sweeps the
CC:MC cluster mix per group and the group count, runs the SPHINX-Tiny
workload on every variant, and reports latency, throughput per area and
energy per token — the kind of ablation a designer would run before fixing
the Fig. 10 configuration.

Run with:  python examples/design_space_exploration.py
"""

from repro import InferenceRequest, get_mllm
from repro.arch.area_power import AreaPowerModel
from repro.core import EdgeMM, scaled_system


def main() -> None:
    model = get_mllm("sphinx-tiny")
    request = InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=64)

    print("groups  CC/grp  MC/grp  area(mm^2)  latency(s)  tokens/s  tokens/s/mm^2  tokens/J")
    print("-" * 95)

    best = None
    for n_groups in (2, 4):
        for cc_per_group, mc_per_group in ((4, 0), (3, 1), (2, 2), (1, 3), (0, 4)):
            if cc_per_group == 0 and mc_per_group == 0:
                continue
            system_config = scaled_system(
                n_groups=n_groups,
                cc_clusters_per_group=cc_per_group,
                mc_clusters_per_group=mc_per_group,
            )
            system = EdgeMM(system_config)
            result = system.run(model, request)
            area = AreaPowerModel(system_config.chip).chip_area_mm2()
            tokens_per_s = result.tokens_per_second
            density = tokens_per_s / area
            tokens_per_j = result.tokens_per_joule or 0.0
            print(
                f"{n_groups:6d}  {cc_per_group:6d}  {mc_per_group:6d}  {area:10.2f}  "
                f"{result.total_latency_s:10.3f}  {tokens_per_s:8.1f}  "
                f"{density:13.2f}  {tokens_per_j:8.1f}"
            )
            if best is None or tokens_per_s > best[1]:
                best = ((n_groups, cc_per_group, mc_per_group), tokens_per_s)

    print()
    (groups, cc, mc), tokens = best
    print(
        f"best throughput: {tokens:.1f} tokens/s with {groups} groups of "
        f"{cc} CC + {mc} MC clusters"
    )
    print(
        "The mixed configurations dominate the homogeneous corners, which is "
        "the heterogeneity argument of the paper in design-space form."
    )


if __name__ == "__main__":
    main()
