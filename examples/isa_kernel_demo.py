"""ISA-extension demo: assemble and execute kernels on the functional core model.

Shows the programming model of Section III-C end to end:

* configure CSRs and run a tiled GEMM on a CC-core's systolic array,
* run the gated-MLP FFN (Eq. 1) on an MC-core's CIM macro,
* invoke the hardware Act-Aware pruner through its instruction and compare
  the pruned GEMV against the exact result,
* assemble/disassemble a small kernel to show the binary encodings (Fig. 7).

Run with:  python examples/isa_kernel_demo.py
"""

import numpy as np

from repro.isa import (
    CoreExecutor,
    assemble,
    build_ffn_kernel,
    build_pruned_gemv_kernel,
    disassemble,
    pack_tiles,
    simple_gemm_kernel,
    unpack_tiles,
)
from repro.pruning import silu


def gemm_on_cc_core() -> None:
    m, k, n, tile = 32, 64, 48, 16
    rng = np.random.default_rng(0)
    a, b = rng.normal(size=(m, k)), rng.normal(size=(k, n))

    plan = simple_gemm_kernel(m, k, n, tile=tile)
    executor = CoreExecutor("cc", memory_size=plan.memory_words + 16)
    plan.place(executor, {"a": pack_tiles(a, tile, tile), "b": pack_tiles(b, tile, tile)})
    result = executor.run(plan.program)
    c = unpack_tiles(plan.fetch(executor, "c").ravel(), m, n, tile, tile)

    print("GEMM on a CC-core systolic array")
    print(f"  instructions executed : {result.instructions_executed}")
    print(f"  coprocessor cycles    : {result.cycles:.0f}")
    print(f"  max abs error vs NumPy: {np.abs(c - a @ b).max():.2e}")
    print()


def ffn_on_mc_core() -> None:
    d_model, d_ffn = 64, 96
    rng = np.random.default_rng(1)
    x = rng.normal(size=d_model) * 0.5
    w_gate = rng.normal(size=(d_model, d_ffn)) * 0.2
    w_up = rng.normal(size=(d_model, d_ffn)) * 0.2
    w_down = rng.normal(size=(d_ffn, d_model)) * 0.2

    plan = build_ffn_kernel(d_model, d_ffn)
    executor = CoreExecutor("mc", memory_size=plan.memory_words + 16, vector_length=d_ffn)
    plan.place(executor, {"x": x, "w_gate": w_gate, "w_up": w_up, "w_down": w_down})
    result = executor.run(plan.program)
    y = plan.fetch(executor, "y")
    reference = ((x @ w_up) * silu(x @ w_gate)) @ w_down

    print("Gated-MLP FFN (Eq. 1) on an MC-core CIM macro")
    print(f"  coprocessor cycles    : {result.cycles:.0f}")
    print(f"  mv.mul cycles         : {result.cycles_for('mv.mul'):.0f}")
    print(f"  max abs error vs NumPy: {np.abs(y - reference).max():.2e}")
    print()


def pruned_gemv_on_mc_core() -> None:
    k, n, keep = 64, 48, 12
    rng = np.random.default_rng(2)
    x = rng.normal(size=k) * 0.01
    outliers = rng.choice(k, size=keep, replace=False)
    x[outliers] = rng.normal(size=keep) * 5.0
    w = rng.normal(size=(k, n)) * 0.1

    kept_channels = np.sort(np.argsort(np.abs(x))[-keep:])
    plan = build_pruned_gemv_kernel(k, n, prune_k=keep)
    executor = CoreExecutor("mc", memory_size=plan.memory_words + 16, vector_length=k)
    plan.place(executor, {"x": x, "w_pruned": w[kept_channels, :]})
    result = executor.run(plan.program)
    y = plan.fetch(executor, "y")

    exact = x @ w
    cosine = np.dot(y, exact) / (np.linalg.norm(y) * np.linalg.norm(exact))
    print("Pruned GEMV with the hardware Act-Aware pruner (mv.prune)")
    print(f"  kept channels          : {keep}/{k}")
    print(f"  pruner cycles          : {result.cycles_for('mv.prune'):.0f}")
    print(f"  cosine vs exact GEMV   : {cosine:.4f}")
    print()


def show_assembly() -> None:
    source = """
    li       x1, 0
    li       x2, 256
    cfg.csrw 0x10, x2       # tile_m
    mm.ld    m0, (x1)
    mm.ld    m1, (x2)
    mm.zero  m2
    mm.mul   m2, m0, m1
    mm.st    m2, (x2)
    sync
    """
    program = assemble(source)
    print("Assembled kernel (mnemonic -> 32-bit encoding)")
    for instruction in program:
        try:
            word = f"0x{instruction.encode():08x}"
        except NotImplementedError:
            word = "(base-ISA pseudo)"
        print(f"  {instruction.text():28s} {word}")
    print()
    print("Disassembled back:")
    print("  " + "\n  ".join(disassemble(program).splitlines()))


def main() -> None:
    gemm_on_cc_core()
    ffn_on_mc_core()
    pruned_gemv_on_mc_core()
    show_assembly()


if __name__ == "__main__":
    main()
