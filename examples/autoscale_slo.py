"""SLO-aware autoscaling: the same bursty trace, static vs autoscaled.

A one-chip fleet drowns under a bursty trace and blows its p99-TTFT SLO;
the autoscaling fleet starts from the same single chip, watches rolling
TTFT percentiles, grows up to four chips during the bursts and holds the
objective.

Run with:  PYTHONPATH=src python examples/autoscale_slo.py
"""

from repro.models.mllm import get_mllm
from repro.serving import (
    AutoscalerConfig,
    AutoscalingFleetSimulator,
    BurstyArrivals,
    FleetSimulator,
    RequestSampler,
    build_trace,
)

N_REQUESTS = 300
TARGET_P99_TTFT_S = 5.0


def main() -> None:
    model = get_mllm("sphinx-tiny")
    arrivals = BurstyArrivals(3.0, burst_multiplier=6.0, seed=7)
    shapes = RequestSampler(seed=7).sample(N_REQUESTS)
    trace = build_trace(arrivals.generate(N_REQUESTS), shapes)

    static = FleetSimulator(model, n_chips=1, max_batch_size=8).run(trace)
    static_p99 = static.report.ttft.p99
    print(f"static 1-chip fleet : p99 TTFT {static_p99:8.2f} s   "
          f"({'MISS' if static_p99 > TARGET_P99_TTFT_S else 'MET '} "
          f"{TARGET_P99_TTFT_S:.1f} s SLO)")

    fleet = AutoscalingFleetSimulator(
        model,
        autoscaler=AutoscalerConfig(
            target_p99_ttft_s=TARGET_P99_TTFT_S,
            min_chips=1,
            max_chips=4,
            window=32,
            min_observations=8,
            cooldown_s=0.5,
            scale_up_ratio=0.5,
        ),
        max_batch_size=8,
    )
    result = fleet.run(trace)
    auto_p99 = result.report.ttft.p99
    print(f"autoscaled fleet    : p99 TTFT {auto_p99:8.2f} s   "
          f"({'MISS' if auto_p99 > TARGET_P99_TTFT_S else 'MET '} "
          f"{TARGET_P99_TTFT_S:.1f} s SLO)")
    print(f"scaling             : peak {result.peak_chips} chips, "
          f"+{result.n_scale_ups}/-{result.n_scale_downs} events")
    for event in result.events:
        print(f"  t={event.time_s:7.2f}s  {event.n_chips_before} -> "
              f"{event.n_chips_after} chips  "
              f"(rolling p99 TTFT {event.rolling_p99_ttft_s:.2f} s)")


if __name__ == "__main__":
    main()
