"""Activation-aware pruning analysis (the paper's Section IV-A / Fig. 12).

Walks through the pruning pipeline on a synthetic SPHINX-Tiny activation
trace:

* layer-by-layer kurtosis of the FFN activation magnitudes,
* the dynamic Top-k decisions of Algorithm 1 (pruning ratio per layer),
* accuracy (cosine similarity of FFN outputs) against fixed pruning ratios,
* the resulting DRAM traffic reduction and decode speedup on EdgeMM.

Run with:  python examples/pruning_analysis.py
"""

import numpy as np

from repro import EdgeMM, InferenceRequest, get_mllm
from repro.models.activations import sphinx_tiny_trace
from repro.pruning import (
    build_layer_stack,
    decode_traffic_reduction,
    prune_token,
    prune_token_fixed,
)


def main() -> None:
    trace = sphinx_tiny_trace()
    n_layers, d_model = trace.config.n_layers, trace.config.d_model
    d_ffn = 512  # reduced FFN width keeps the numeric comparison fast
    ffn_stack = build_layer_stack(n_layers, d_model, d_ffn)

    activations = trace.token_trace(token_index=0)
    dynamic = prune_token(activations, ffn_stack)
    fixed_mild = prune_token_fixed(activations, ffn_stack, ratio=0.1)
    fixed_aggressive = prune_token_fixed(activations, ffn_stack, ratio=0.7)

    print("layer  kurtosis  dyn-prune%  cos(dyn)  cos(0.1)  cos(0.7)")
    for layer in range(n_layers):
        print(
            f"{layer:5d}  {dynamic.kurtoses[layer]:8.1f}  "
            f"{100 * dynamic.pruning_ratios()[layer]:9.1f}  "
            f"{dynamic.cosine_similarities[layer]:.4f}    "
            f"{fixed_mild.cosine_similarities[layer]:.4f}    "
            f"{fixed_aggressive.cosine_similarities[layer]:.4f}"
        )
    print()
    print(f"mean dynamic pruning ratio: {100 * dynamic.mean_pruning_ratio:.1f}%")
    print(
        "FFN weight-traffic reduction: "
        f"{100 * decode_traffic_reduction(dynamic, d_ffn=5632):.1f}%"
    )
    shallow = slice(1, n_layers // 3)
    print(
        "shallow-layer similarity  dynamic "
        f"{np.mean(dynamic.cosine_similarities[shallow]):.4f} vs fixed-0.7 "
        f"{np.mean(fixed_aggressive.cosine_similarities[shallow]):.4f} "
        "(the paper's 'irreversible accuracy loss')"
    )
    print()

    # End-to-end effect on the performance model.
    model = get_mllm("sphinx-tiny")
    request = InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=64)
    system = EdgeMM.default()
    baseline = system.run(model, request)
    calibration = system.calibrate_pruning(trace, n_tokens=4)
    pruned = system.enable_pruning(calibration).run(model, request)
    print(
        "decode latency: "
        f"{baseline.decode_latency_s * 1e3:.1f} ms -> {pruned.decode_latency_s * 1e3:.1f} ms "
        f"({100 * (1 - pruned.decode_latency_s / baseline.decode_latency_s):.1f}% reduction, "
        "paper reports 42%)"
    )


if __name__ == "__main__":
    main()
