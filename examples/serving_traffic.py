"""Traffic-scale serving: a bursty 1000-request trace on EdgeMM.

Simulates one EdgeMM chip serving a bursty open-loop trace of 1000 SPHINX-
Tiny requests with continuous batching, then the same trace on a 4-chip
fleet behind a least-loaded dispatcher, and prints p50/p95/p99 latency,
TTFT and aggregate throughput for both.

Run with:  PYTHONPATH=src python examples/serving_traffic.py
"""

import time

from repro.models.mllm import get_mllm
from repro.serving import (
    BurstyArrivals,
    ContinuousBatchingSimulator,
    FleetSimulator,
    RequestSampler,
    build_trace,
    format_report,
)

N_REQUESTS = 1000


def main() -> None:
    model = get_mllm("sphinx-tiny")
    arrivals = BurstyArrivals(2.5, burst_multiplier=6.0, seed=42)
    shapes = RequestSampler(seed=42).sample(N_REQUESTS)
    trace = build_trace(arrivals.generate(N_REQUESTS), shapes)

    wall_start = time.perf_counter()
    chip = ContinuousBatchingSimulator(model=model, max_batch_size=16)
    result = chip.run(trace)
    wall = time.perf_counter() - wall_start
    print(format_report(result.report, title=f"Single chip ({N_REQUESTS} requests)"))
    print(
        f"peak decode batch  : {result.peak_batch_size} streams "
        f"({result.decode_steps} decode steps)"
    )
    print(
        f"simulation speed   : {N_REQUESTS / wall:.0f} requests simulated "
        f"per wall-clock second"
    )

    print()
    fleet = FleetSimulator(model, n_chips=4, policy="least_loaded", max_batch_size=16)
    fleet_result = fleet.run(trace)
    print(format_report(fleet_result.report, title="4-chip fleet (least-loaded)"))
    print(f"requests per chip  : {fleet_result.requests_per_chip}")


if __name__ == "__main__":
    main()
