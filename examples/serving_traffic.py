"""Traffic-scale serving: a bursty 100,000-request trace on EdgeMM.

Simulates one EdgeMM chip serving a bursty open-loop trace of 100k mixed
SPHINX-Tiny requests with continuous batching on the macro-stepping
engine (`repro.serving.engine`), printing wall-clock time alongside the
p50/p95/p99 latency and TTFT percentiles, then replays a 4-chip
least-loaded fleet on the same trace.

Run with:  PYTHONPATH=src python examples/serving_traffic.py
"""

import time

from repro.models.mllm import get_mllm
from repro.serving import (
    BurstyArrivals,
    ContinuousBatchingSimulator,
    FleetSimulator,
    RequestSampler,
    build_trace,
    format_report,
)

N_REQUESTS = 100_000


def main() -> None:
    model = get_mllm("sphinx-tiny")
    arrivals = BurstyArrivals(2.5, burst_multiplier=6.0, seed=42)
    shapes = RequestSampler(seed=42).sample(N_REQUESTS)
    trace = build_trace(arrivals.generate(N_REQUESTS), shapes)

    wall_start = time.perf_counter()
    chip = ContinuousBatchingSimulator(model=model, max_batch_size=16)
    result = chip.run(trace)
    wall = time.perf_counter() - wall_start
    print(format_report(result.report, title=f"Single chip ({N_REQUESTS} requests)"))
    print(
        f"peak decode batch  : {result.peak_batch_size} streams "
        f"({result.decode_steps} decode steps)"
    )
    print(
        f"macro-engine wall  : {wall:.2f} s -> {N_REQUESTS / wall:,.0f} requests "
        f"({result.decode_steps / wall:,.0f} decode steps) simulated per second"
    )

    print()
    fleet = FleetSimulator(model, n_chips=4, policy="least_loaded", max_batch_size=16)
    wall_start = time.perf_counter()
    fleet_result = fleet.run(trace)
    fleet_wall = time.perf_counter() - wall_start
    print(format_report(fleet_result.report, title="4-chip fleet (least-loaded)"))
    print(f"requests per chip  : {fleet_result.requests_per_chip}")
    print(f"fleet wall         : {fleet_wall:.2f} s")


if __name__ == "__main__":
    main()
