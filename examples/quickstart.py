"""Quickstart: run an edge MLLM on EdgeMM and compare it with a laptop GPU.

This is the shortest end-to-end path through the library:

1. pick an MLLM from the Table I catalogue (SPHINX-Tiny),
2. describe the inference request (one image + a text prompt, 64 output tokens),
3. run it on the default EdgeMM chip and on the RTX 3060 baseline,
4. calibrate activation-aware pruning (Algorithm 1) and run again.

Run with:  python examples/quickstart.py
"""

from repro import EdgeMM, InferenceRequest, get_mllm
from repro.baselines import rtx3060_laptop


def main() -> None:
    model = get_mllm("sphinx-tiny")
    request = InferenceRequest(images=1, prompt_text_tokens=32, output_tokens=64)

    print(f"model: {model.name}")
    print(f"  parameters: {model.parameter_count / 1e9:.2f} B")
    print(f"  prompt tokens (vision + text): {model.prompt_tokens(request)}")
    print(f"  output tokens: {request.output_tokens}")
    print()

    # --- EdgeMM, no pruning -------------------------------------------------
    edgemm = EdgeMM.default()
    result = edgemm.run(model, request)
    print("EdgeMM (heterogeneous, no pruning)")
    for name, phase in result.phases.items():
        print(f"  {name:16s} {phase.latency_s * 1e3:8.1f} ms   [{phase.bound}-bound]")
    print(f"  total            {result.total_latency_s * 1e3:8.1f} ms")
    print(f"  throughput       {result.tokens_per_second:8.1f} tokens/s")
    print(f"  efficiency       {result.tokens_per_joule:8.1f} tokens/J")
    print()

    # --- RTX 3060 laptop baseline --------------------------------------------
    gpu = rtx3060_laptop()
    gpu_result = gpu.run_request(model, request)
    print("RTX 3060 laptop baseline")
    print(f"  total            {gpu_result.total_latency_s * 1e3:8.1f} ms")
    print(f"  throughput       {gpu_result.tokens_per_second:8.1f} tokens/s")
    print(f"  EdgeMM speedup   {gpu_result.total_latency_s / result.total_latency_s:8.2f}x")
    print()

    # --- EdgeMM with activation-aware pruning (Algorithm 1) ------------------
    calibration = edgemm.calibrate_pruning(n_tokens=4)
    pruned = edgemm.enable_pruning(calibration)
    pruned_result = pruned.run(model, request)
    print("EdgeMM + activation-aware weight pruning")
    print(f"  mean pruning ratio (Alg. 1): {100 * calibration.mean_pruning_ratio:.1f}%")
    print(
        "  decode latency reduction:    "
        f"{100 * (1 - pruned_result.decode_latency_s / result.decode_latency_s):.1f}%"
    )
    print(f"  total            {pruned_result.total_latency_s * 1e3:8.1f} ms")
    print(f"  throughput       {pruned_result.tokens_per_second:8.1f} tokens/s")
    print(
        f"  speedup vs GPU   "
        f"{gpu_result.total_latency_s / pruned_result.total_latency_s:8.2f}x "
        "(paper reports 2.84x)"
    )


if __name__ == "__main__":
    main()
