"""Columnar serving traces: a NumPy structured-array request format.

A serving trace is logically five parallel columns — request id, arrival
time and the three shape integers — and at million-request scale the
per-request :class:`~repro.serving.queue.ServingRequest` /
:class:`~repro.models.mllm.InferenceRequest` object pair costs far more
memory and construction time than the data itself.  This module defines
the columnar on-disk/in-memory twin of the object trace:
:data:`TRACE_DTYPE`, a structured dtype holding one request per row.

The conversion functions are *lossless by construction*: arrival times
are stored as the same IEEE-754 doubles the object trace carries, and the
shape fields are exact integers, so a round trip through
:func:`trace_to_array` / :func:`array_to_trace` reproduces a
``==``-identical object trace.  The wave engine
(:func:`repro.serving.engine.run_wave`) consumes the columnar form
directly, and :func:`repro.scenarios.compile.compile_scenario_chunks`
stream-emits it in bounded chunks so multi-million-request scenario
traces never materialise per-request objects at all.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..models.mllm import InferenceRequest
from .queue import ServingRequest

__all__ = [
    "TRACE_DTYPE",
    "array_to_trace",
    "concat_trace_arrays",
    "empty_trace_array",
    "trace_to_array",
    "validate_trace_array",
]

#: One request per row: the id/arrival pair of a
#: :class:`~repro.serving.queue.ServingRequest` plus the three integers of
#: its :class:`~repro.models.mllm.InferenceRequest` shape.  ``arrival_s``
#: is a float64 — the exact doubles the object trace holds — and the
#: shape fields are wide enough for any realistic request (int32) while
#: ids get the full int64 range.
TRACE_DTYPE = np.dtype(
    [
        ("request_id", np.int64),
        ("arrival_s", np.float64),
        ("images", np.int32),
        ("prompt_text_tokens", np.int32),
        ("output_tokens", np.int32),
    ]
)


def validate_trace_array(array: np.ndarray) -> np.ndarray:
    """Check that ``array`` is a well-formed columnar trace and return it.

    A well-formed trace is a one-dimensional :data:`TRACE_DTYPE` array
    with non-negative arrival times.  Raises ``ValueError`` otherwise —
    the serving engines call this once at the boundary so the hot loops
    can trust the columns.
    """
    if not isinstance(array, np.ndarray) or array.dtype != TRACE_DTYPE:
        raise ValueError(
            f"a columnar trace must be a TRACE_DTYPE ndarray, got "
            f"{getattr(array, 'dtype', type(array))!r}"
        )
    if array.ndim != 1:
        raise ValueError(f"a columnar trace must be 1-D, got shape {array.shape}")
    if len(array) and float(array["arrival_s"].min()) < 0.0:
        raise ValueError("trace arrival times must be >= 0")
    return array


def empty_trace_array(n: int = 0) -> np.ndarray:
    """An uninitialised columnar trace of ``n`` rows (a fill buffer)."""
    if n < 0:
        raise ValueError("n must be >= 0")
    return np.empty(n, dtype=TRACE_DTYPE)


def trace_to_array(trace: Sequence[ServingRequest]) -> np.ndarray:
    """Lower an object ``trace`` to its columnar :data:`TRACE_DTYPE` form.

    Column values are copied verbatim (ids and shape integers exactly,
    arrival seconds as the identical doubles), so
    :func:`array_to_trace` of the result rebuilds a ``==``-identical
    object trace.
    """
    array = np.empty(len(trace), dtype=TRACE_DTYPE)
    array["request_id"] = [item.request_id for item in trace]
    array["arrival_s"] = [item.arrival_s for item in trace]
    array["images"] = [item.request.images for item in trace]
    array["prompt_text_tokens"] = [
        item.request.prompt_text_tokens for item in trace
    ]
    array["output_tokens"] = [item.request.output_tokens for item in trace]
    return array


def array_to_trace(array: np.ndarray) -> List[ServingRequest]:
    """Materialise the object trace of a columnar ``array``.

    The inverse of :func:`trace_to_array`.  Distinct request *shapes* are
    few even in huge traces, so the
    :class:`~repro.models.mllm.InferenceRequest` instances are memoized
    per shape — frozen dataclasses compare by value, so sharing instances
    never changes ``==`` comparisons.
    """
    validate_trace_array(array)
    shape_memo: Dict[Tuple[int, int, int], InferenceRequest] = {}
    trace: List[ServingRequest] = []
    rows = zip(
        array["request_id"].tolist(),
        array["arrival_s"].tolist(),
        array["images"].tolist(),
        array["prompt_text_tokens"].tolist(),
        array["output_tokens"].tolist(),
    )
    for request_id, arrival_s, images, prompt_text_tokens, output_tokens in rows:
        shape = (images, prompt_text_tokens, output_tokens)
        request = shape_memo.get(shape)
        if request is None:
            request = InferenceRequest(
                images=images,
                prompt_text_tokens=prompt_text_tokens,
                output_tokens=output_tokens,
            )
            shape_memo[shape] = request
        trace.append(
            ServingRequest(
                request_id=request_id, arrival_s=arrival_s, request=request
            )
        )
    return trace


def concat_trace_arrays(chunks: Iterable[np.ndarray]) -> np.ndarray:
    """Concatenate columnar trace ``chunks`` into one contiguous trace.

    The streaming compiler emits bounded chunks; callers that do want the
    whole trace in memory (the wave benchmark, the round-trip tests) stitch
    them back together here.  An empty iterable concatenates to an empty
    trace.
    """
    parts = [validate_trace_array(chunk) for chunk in chunks]
    if not parts:
        return empty_trace_array(0)
    return np.concatenate(parts)
