"""Traffic-scale serving simulation on EdgeMM chips.

The serving layer turns the single-request performance simulator into a
deployment study: open-loop arrival processes drive a continuous-batching
queue on one chip (:mod:`repro.serving.queue`) or a load-balanced fleet of
chips (:mod:`repro.serving.fleet`) — optionally autoscaled against an SLO
with admission control (:mod:`repro.serving.autoscale`) — and per-request
timestamp records fold into latency/TTFT percentiles and aggregate
throughput (:mod:`repro.serving.metrics`).  Deterministic fault schedules
(chip outages, DRAM degradation) and weighted tenant priorities replay
through the same engines via :mod:`repro.serving.faults`.  The live
control plane (:mod:`repro.serving.runtime`) streams the same traces
through asyncio actors — driving the stepwise dispatch controllers of
:mod:`repro.serving.dispatch` — with checkpoint/restore, byte-identical
to the batch path.
"""

from .arrival import (
    DIURNAL_HOURLY_MULTIPLIERS,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    RequestSampler,
    TraceArrivals,
)
from .autoscale import (
    AutoscaleResult,
    AutoscalerConfig,
    AutoscalingFleetSimulator,
    ScalingEvent,
    static_fleet_report,
)
from .faults import (
    DRAIN_POLICIES,
    FAULT_KINDS,
    FaultAutoscaleResult,
    FaultEvent,
    FaultFleetResult,
    FaultRecovery,
    FaultSchedule,
    fault_recovery,
    normalize_priorities,
    run_autoscale_with_faults,
    run_fleet_with_faults,
)
from .fleet import FleetResult, FleetSimulator
from .metrics import (
    PercentileStats,
    RequestRecord,
    ServingReport,
    empty_report,
    format_report,
    percentile,
    summarize,
    summarize_scalar,
)
from .engine import run_macro, run_wave
from .fleet import simulate_chip_shard
from .trace import (
    TRACE_DTYPE,
    array_to_trace,
    concat_trace_arrays,
    empty_trace_array,
    trace_to_array,
    validate_trace_array,
)
from .queue import (
    ENGINES,
    BatchDecodeCostModel,
    ContinuousBatchingSimulator,
    ServingRequest,
    ServingResult,
    build_trace,
)
from .dispatch import RUNTIMES
from .runtime import Checkpoint, resume_live, run_live

__all__ = [
    "BurstyArrivals",
    "DIURNAL_HOURLY_MULTIPLIERS",
    "DiurnalArrivals",
    "PoissonArrivals",
    "RequestSampler",
    "TraceArrivals",
    "AutoscaleResult",
    "AutoscalerConfig",
    "AutoscalingFleetSimulator",
    "ScalingEvent",
    "static_fleet_report",
    "DRAIN_POLICIES",
    "FAULT_KINDS",
    "FaultAutoscaleResult",
    "FaultEvent",
    "FaultFleetResult",
    "FaultRecovery",
    "FaultSchedule",
    "fault_recovery",
    "normalize_priorities",
    "run_autoscale_with_faults",
    "run_fleet_with_faults",
    "FleetResult",
    "FleetSimulator",
    "PercentileStats",
    "RequestRecord",
    "ServingReport",
    "empty_report",
    "format_report",
    "percentile",
    "summarize",
    "summarize_scalar",
    "BatchDecodeCostModel",
    "ContinuousBatchingSimulator",
    "ENGINES",
    "ServingRequest",
    "ServingResult",
    "build_trace",
    "run_macro",
    "run_wave",
    "simulate_chip_shard",
    "RUNTIMES",
    "Checkpoint",
    "resume_live",
    "run_live",
    "TRACE_DTYPE",
    "array_to_trace",
    "concat_trace_arrays",
    "empty_trace_array",
    "trace_to_array",
    "validate_trace_array",
]
