"""Stepwise dispatch controllers: one arrival-ordered decision at a time.

Every serving loop in this package — static least-loaded/round-robin
dispatch, the SLO-aware autoscaler, and both fault-injection paths — is
*sequential in arrival order*: each decision depends only on the decisions
made for earlier arrivals.  This module factors that sequential core out
of the batch loops into controller objects with a uniform protocol:

* :meth:`~StaticDispatchController.on_arrival` — feed one arrival (in
  ``(arrival_s, request_id)`` order) and take its dispatch/admission/
  scaling decision;
* :meth:`~StaticDispatchController.finish_events` — apply whatever
  trailing work remains once the stream ends (fault controllers flush
  their remaining fault events here; plain controllers no-op);
* :meth:`~StaticDispatchController.final_jobs` — the per-chip engine runs
  still owed, as :class:`ShardJob` values an executor of the caller's
  choice performs (inline for the batch path, per-chip actors for the
  live runtime);
* :meth:`~StaticDispatchController.collect` — fold the executed jobs into
  the path's result object;
* :meth:`~StaticDispatchController.state_dict` /
  :meth:`~StaticDispatchController.restore_state` — JSON-serializable
  snapshot of the *dynamic* decision state, the substrate of
  :class:`repro.serving.runtime.Checkpoint`.  Pure memo caches (cost
  estimates, CC latencies) are deliberately excluded: they only change
  speed, never values, and rebuild lazily after a restore.

The batch entry points (:meth:`repro.serving.fleet.FleetSimulator.run`,
:meth:`repro.serving.autoscale.AutoscalingFleetSimulator.run`) drive these
controllers in a plain loop over the sorted trace, so the live actor
runtime — which drives the *same* controllers one message at a time — is
equivalent to the batch path by construction, not by coincidence.  The
fault-path controllers live in :mod:`repro.serving.faults` next to the
era machinery they wrap; :func:`make_controller` picks the right one of
the four for a given fleet/schedule/priorities combination.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from .metrics import RequestRecord, percentile
from .queue import ContinuousBatchingSimulator, ServingRequest, ServingResult

#: The engine result of a chip that received no work in a job set.
EMPTY_RESULT = ServingResult(records=(), peak_batch_size=0, decode_steps=0)

#: Execution planes of the fleet ``run`` entry points: ``"batch"`` drives
#: the controllers in a plain in-process loop (the historical path),
#: ``"live"`` drives the same controllers through the asyncio actor
#: runtime (:mod:`repro.serving.runtime`).  Results are bit-identical.
RUNTIMES: Tuple[str, ...] = ("batch", "live")


@dataclass(frozen=True)
class ShardJob:
    """One engine run a controller still owes: a chip, its sim, its shard.

    ``chip_id`` indexes the fleet (and the live runtime's chip actors);
    ``sim`` is the simulator the shard must run on — usually the fleet
    chip itself, but a degraded-era replacement on the fault paths;
    ``shard`` is the dispatch-ordered request list.  Executing a job is
    always ``sim.run(shard)``; jobs for different chips are independent.
    """

    chip_id: int
    sim: ContinuousBatchingSimulator
    shard: Tuple[ServingRequest, ...]

    def run(self) -> ServingResult:
        """Execute the job inline (the batch executor)."""
        return self.sim.run(list(self.shard))


def sorted_order(trace: Sequence[ServingRequest]) -> List[int]:
    """``trace`` indices in the canonical ``(arrival_s, request_id)`` order.

    Every controller must be fed arrivals in exactly this order — it is
    the order all batch loops have always used, so reusing it keeps the
    controller-driven paths byte-identical to the historical ones.
    """
    return sorted(
        range(len(trace)),
        key=lambda i: (trace[i].arrival_s, trace[i].request_id),
    )


def run_jobs_inline(jobs: Sequence[ShardJob]) -> Dict[int, ServingResult]:
    """Execute ``jobs`` serially in-process, keyed by chip id."""
    return {job.chip_id: job.run() for job in jobs}


def request_to_state(request: ServingRequest) -> Dict[str, Any]:
    """The ``request`` as plain JSON data (exact float repr)."""
    return {
        "request_id": request.request_id,
        "arrival_s": request.arrival_s,
        "images": request.request.images,
        "prompt_text_tokens": request.request.prompt_text_tokens,
        "output_tokens": request.request.output_tokens,
    }


#: The fields a :func:`request_to_state` document must carry, with the
#: scalar type each must coerce to.
REQUEST_STATE_FIELDS: Tuple[Tuple[str, type], ...] = (
    ("request_id", int),
    ("arrival_s", float),
    ("images", int),
    ("prompt_text_tokens", int),
    ("output_tokens", int),
)


def request_from_state(data: Mapping[str, Any]) -> ServingRequest:
    """Rebuild a :class:`ServingRequest` from :func:`request_to_state` ``data``.

    Validates field by field: a missing or uncoercible field raises a
    ``ValueError`` *naming that field* (carried on the exception as a
    ``field`` attribute), so streaming ingestion
    (:func:`repro.serving.runtime.service.requests_from_lines`) can
    report exactly what was wrong with a malformed trace line.
    """
    from ..models.mllm import InferenceRequest

    values: Dict[str, Any] = {}
    for name, kind in REQUEST_STATE_FIELDS:
        if name not in data:
            error = ValueError(f"request state is missing field {name!r}")
            error.field = name  # type: ignore[attr-defined]
            raise error
        try:
            values[name] = kind(data[name])
        except (TypeError, ValueError):
            error = ValueError(
                f"request state field {name!r} must be "
                f"{kind.__name__}-like, got {data[name]!r}"
            )
            error.field = name  # type: ignore[attr-defined]
            raise error from None
    return ServingRequest(
        request_id=values["request_id"],
        arrival_s=values["arrival_s"],
        request=InferenceRequest(
            images=values["images"],
            prompt_text_tokens=values["prompt_text_tokens"],
            output_tokens=values["output_tokens"],
        ),
    )


def record_to_state(record: RequestRecord) -> Dict[str, Any]:
    """The ``record`` as plain JSON data.

    JSON serializes floats with ``repr``, which round-trips every finite
    double exactly — the reloaded record is ``==`` to the original, the
    property the checkpoint byte-identity contract rests on.
    """
    return {
        "request_id": record.request_id,
        "images": record.request.images,
        "prompt_text_tokens": record.request.prompt_text_tokens,
        "output_tokens": record.request.output_tokens,
        "arrival_s": record.arrival_s,
        "prefill_start_s": record.prefill_start_s,
        "prefill_end_s": record.prefill_end_s,
        "first_token_s": record.first_token_s,
        "finish_s": record.finish_s,
        "chip_id": record.chip_id,
    }


def record_from_state(data: Mapping[str, Any]) -> RequestRecord:
    """Rebuild a :class:`RequestRecord` from :func:`record_to_state` ``data``."""
    from ..models.mllm import InferenceRequest

    return RequestRecord(
        request_id=int(data["request_id"]),
        request=InferenceRequest(
            images=int(data["images"]),
            prompt_text_tokens=int(data["prompt_text_tokens"]),
            output_tokens=int(data["output_tokens"]),
        ),
        arrival_s=float(data["arrival_s"]),
        prefill_start_s=float(data["prefill_start_s"]),
        prefill_end_s=float(data["prefill_end_s"]),
        first_token_s=float(data["first_token_s"]),
        finish_s=float(data["finish_s"]),
        chip_id=int(data["chip_id"]),
    )


def result_to_state(result: ServingResult) -> Dict[str, Any]:
    """A closed-era :class:`ServingResult` ``result`` as plain JSON data."""
    return {
        "records": [record_to_state(record) for record in result.records],
        "peak_batch_size": result.peak_batch_size,
        "decode_steps": result.decode_steps,
    }


def result_from_state(data: Mapping[str, Any]) -> ServingResult:
    """Rebuild a :class:`ServingResult` from :func:`result_to_state` ``data``."""
    return ServingResult(
        records=tuple(
            record_from_state(record) for record in data["records"]
        ),
        peak_batch_size=int(data["peak_batch_size"]),
        decode_steps=int(data["decode_steps"]),
    )


class StaticDispatchController:
    """Arrival-at-a-time form of the static fleet's dispatch policies.

    The round-robin position counter and the least-loaded ``(horizon,
    chip_id)`` heap are the exact state of
    :meth:`~repro.serving.fleet.FleetSimulator._assign`; feeding arrivals
    in sorted order reproduces its assignment list bit for bit.
    """

    kind = "static"

    def __init__(self, fleet) -> None:
        self.fleet = fleet
        self.policy = fleet.policy
        self._position = 0
        self._heap: List[Tuple[float, int]] = [
            (0.0, chip_id) for chip_id in range(fleet.n_chips)
        ]
        #: index -> chip id, in decision order (insertion-ordered dict).
        self.assignments: Dict[int, int] = {}
        self._shards: List[List[ServingRequest]] = [
            [] for _ in range(fleet.n_chips)
        ]

    @property
    def n_seen(self) -> int:
        """Arrivals processed so far (the checkpoint cursor)."""
        return len(self.assignments)

    def on_arrival(self, index: int, request: ServingRequest) -> int:
        """Dispatch one arrival; returns the chip id it was assigned to."""
        if self.policy == "round_robin":
            chip_id = self._position % self.fleet.n_chips
            self._position += 1
        else:  # least_loaded
            horizon, chip_id = heapq.heappop(self._heap)
            cost = self.fleet._estimate_cost_s(
                self.fleet.chips[chip_id], request.request
            )
            heapq.heappush(
                self._heap, (max(horizon, request.arrival_s) + cost, chip_id)
            )
        self.assignments[index] = chip_id
        self._shards[chip_id].append(request)
        return chip_id

    def finish_events(self) -> None:
        """No trailing work: static dispatch has no event timeline."""

    def final_jobs(self) -> List[ShardJob]:
        """One engine run per chip that received work."""
        return [
            ShardJob(chip_id=chip_id, sim=chip, shard=tuple(shard))
            for chip_id, (chip, shard) in enumerate(
                zip(self.fleet.chips, self._shards)
            )
            if shard
        ]

    def collect(self, results: Mapping[int, ServingResult]):
        """Merge executed jobs into a :class:`~repro.serving.fleet.FleetResult`."""
        from .fleet import FleetResult

        per_chip = tuple(
            results.get(chip_id, EMPTY_RESULT)
            for chip_id in range(self.fleet.n_chips)
        )
        records: List[RequestRecord] = []
        for result in per_chip:
            records.extend(result.records)
        records.sort(key=lambda record: record.request_id)
        assignments = tuple(
            self.assignments[index] for index in range(self.n_seen)
        )
        return FleetResult(
            records=tuple(records),
            per_chip=per_chip,
            assignments=assignments,
        )

    def preview_records(self) -> Tuple[RequestRecord, ...]:
        """Records of a hypothetical end-of-stream right now (pure).

        Engine runs are pure — caches only memoize — so simulating the
        shards dispatched so far neither consumes nor perturbs them; the
        live runtime's interim snapshots are built on this.
        """
        results = run_jobs_inline(self.final_jobs())
        return self.collect(results).records

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the dynamic dispatch state."""
        return {
            "kind": self.kind,
            "position": self._position,
            "heap": [[horizon, chip_id] for horizon, chip_id in self._heap],
            "assignments": [
                [index, chip_id] for index, chip_id in self.assignments.items()
            ],
        }

    def restore_state(
        self, state: Mapping[str, Any], trace: Sequence[ServingRequest]
    ) -> None:
        """Reload :meth:`state_dict` data; shards rebuild from ``trace``."""
        self._position = int(state["position"])
        self._heap = [
            (float(horizon), int(chip_id)) for horizon, chip_id in state["heap"]
        ]
        self.assignments = {}
        self._shards = [[] for _ in range(self.fleet.n_chips)]
        for index, chip_id in state["assignments"]:
            self.assignments[int(index)] = int(chip_id)
            self._shards[int(chip_id)].append(trace[int(index)])


class AutoscaleDispatchController:
    """Arrival-at-a-time form of the SLO-aware autoscaling control loop.

    The admission heap, rolling TTFT window, cooldown clock and scaling
    ledger are the exact loop state of
    :meth:`~repro.serving.autoscale.AutoscalingFleetSimulator.run`; the
    replay bookkeeping (synthetic positional ids, admission-delayed
    dispatch times) matches its historical ``_replay`` contract, so
    collecting the final jobs reproduces the batch
    :class:`~repro.serving.autoscale.AutoscaleResult` field for field.
    """

    kind = "autoscale"

    def __init__(self, fleet) -> None:
        self.fleet = fleet
        config = fleet.autoscaler
        self.config = config
        self.assignments: Dict[int, int] = {}
        self.dispatch_time: Dict[int, float] = {}
        self.horizons: List[float] = [0.0] * fleet.n_chips
        self.inflight: List[float] = []
        self.ttft_window: Deque[float] = deque(maxlen=config.window)
        self.events: List = []
        self.rejected: List[Tuple[int, int]] = []  # (index, request_id)
        self.n_active = config.min_chips
        self.last_scale = float("-inf")
        #: index -> the arrival, for replay-shard reconstruction.
        self.seen: Dict[int, ServingRequest] = {}

    @property
    def n_seen(self) -> int:
        """Arrivals processed so far (the checkpoint cursor)."""
        return len(self.seen)

    def on_arrival(self, index: int, request: ServingRequest) -> int:
        """Admit/dispatch one arrival and take the scaling decision.

        Returns the assigned chip id, or ``-1`` when admission control
        rejected the request.
        """
        from .autoscale import ScalingEvent

        config = self.config
        self.seen[index] = request
        now = request.arrival_s

        # Admission control against the estimated in-flight depth.
        while self.inflight and self.inflight[0] <= now:
            heapq.heappop(self.inflight)
        effective = now
        depth_limit = config.max_queue_depth * self.n_active
        if len(self.inflight) >= depth_limit:
            if config.admission == "reject":
                self.rejected.append((index, request.request_id))
                return -1
            overflow = len(self.inflight) - depth_limit + 1
            for _ in range(overflow):
                effective = heapq.heappop(self.inflight)

        # Least-loaded dispatch over the active prefix.
        chip_id = min(
            range(self.n_active), key=lambda c: (self.horizons[c], c)
        )
        chip = self.fleet.chips[chip_id]
        cost = self.fleet._estimate_cost_s(chip, request.request)
        start = max(self.horizons[chip_id], effective)
        prefill = chip.cc_latency_s(request.request)
        first_step = chip.cost_model.step_latency_s(
            [self.fleet.model.prompt_tokens(request.request)]
        )
        self.ttft_window.append(start + prefill + first_step - now)
        self.horizons[chip_id] = start + cost
        heapq.heappush(self.inflight, self.horizons[chip_id])
        self.assignments[index] = chip_id
        self.dispatch_time[index] = effective

        # Control decision on the rolling percentile.
        if (
            len(self.ttft_window) >= config.min_observations
            and now - self.last_scale >= config.cooldown_s
        ):
            rolling = percentile(list(self.ttft_window), 99)
            target = config.target_p99_ttft_s
            if (
                rolling > target * config.scale_up_ratio
                and self.n_active < config.max_chips
            ):
                self.events.append(
                    ScalingEvent(
                        time_s=now,
                        n_chips_before=self.n_active,
                        n_chips_after=self.n_active + 1,
                        rolling_p99_ttft_s=rolling,
                    )
                )
                self.n_active += 1
                self.last_scale = now
            elif (
                rolling < target * config.scale_down_ratio
                and self.n_active > config.min_chips
            ):
                self.events.append(
                    ScalingEvent(
                        time_s=now,
                        n_chips_before=self.n_active,
                        n_chips_after=self.n_active - 1,
                        rolling_p99_ttft_s=rolling,
                    )
                )
                self.n_active -= 1
                self.last_scale = now
        return chip_id

    def finish_events(self) -> None:
        """No trailing work: the controller has no fault timeline."""

    def final_jobs(self) -> List[ShardJob]:
        """The exact replay shards of the controlled assignment.

        Chips run under *synthetic* positional ids with admission-delayed
        arrivals, the same contract the batch replay documents; records
        map back to true ids and arrivals in :meth:`collect`.
        """
        shards: List[List[ServingRequest]] = [
            [] for _ in range(self.fleet.n_chips)
        ]
        for index in sorted(self.assignments):
            source = self.seen[index]
            shards[self.assignments[index]].append(
                replace(
                    source,
                    request_id=index,
                    arrival_s=max(self.dispatch_time[index], source.arrival_s),
                )
            )
        return [
            ShardJob(chip_id=chip_id, sim=chip, shard=tuple(shard))
            for chip_id, (chip, shard) in enumerate(
                zip(self.fleet.chips, shards)
            )
            if shard
        ]

    def collect(self, results: Mapping[int, ServingResult]):
        """Merge executed replay jobs into an :class:`AutoscaleResult`."""
        from .autoscale import AutoscaleResult

        per_chip = tuple(
            results.get(chip_id, EMPTY_RESULT)
            for chip_id in range(self.fleet.n_chips)
        )
        records: List[RequestRecord] = []
        for result in per_chip:
            for record in result.records:
                source = self.seen[record.request_id]
                records.append(
                    replace(
                        record,
                        request_id=source.request_id,
                        arrival_s=source.arrival_s,
                    )
                )
        records.sort(key=lambda record: record.request_id)
        assignments = tuple(
            self.assignments.get(index, -1) for index in range(self.n_seen)
        )
        return AutoscaleResult(
            records=tuple(records),
            per_chip=per_chip,
            assignments=assignments,
            rejected_ids=tuple(request_id for _, request_id in self.rejected),
            events=tuple(self.events),
            final_chips=self.n_active,
        )

    def preview_records(self) -> Tuple[RequestRecord, ...]:
        """Records of a hypothetical end-of-stream right now (pure)."""
        results = run_jobs_inline(self.final_jobs())
        return self.collect(results).records

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the dynamic control-loop state."""
        return {
            "kind": self.kind,
            "assignments": [
                [index, chip_id] for index, chip_id in self.assignments.items()
            ],
            "dispatch_time": [
                [index, time_s] for index, time_s in self.dispatch_time.items()
            ],
            "horizons": list(self.horizons),
            "inflight": list(self.inflight),
            "ttft_window": list(self.ttft_window),
            "events": [
                {
                    "time_s": event.time_s,
                    "n_chips_before": event.n_chips_before,
                    "n_chips_after": event.n_chips_after,
                    "rolling_p99_ttft_s": event.rolling_p99_ttft_s,
                }
                for event in self.events
            ],
            "rejected": [list(pair) for pair in self.rejected],
            "n_active": self.n_active,
            # -inf (never scaled) has no JSON literal; None encodes it.
            "last_scale": (
                None if self.last_scale == float("-inf") else self.last_scale
            ),
            "seen": sorted(self.seen),
        }

    def restore_state(
        self, state: Mapping[str, Any], trace: Sequence[ServingRequest]
    ) -> None:
        """Reload :meth:`state_dict` data; arrivals rebuild from ``trace``."""
        from .autoscale import ScalingEvent

        self.assignments = {
            int(index): int(chip_id) for index, chip_id in state["assignments"]
        }
        self.dispatch_time = {
            int(index): float(time_s)
            for index, time_s in state["dispatch_time"]
        }
        self.horizons = [float(h) for h in state["horizons"]]
        self.inflight = [float(f) for f in state["inflight"]]
        self.ttft_window = deque(
            (float(t) for t in state["ttft_window"]),
            maxlen=self.config.window,
        )
        self.events = [
            ScalingEvent(
                time_s=float(event["time_s"]),
                n_chips_before=int(event["n_chips_before"]),
                n_chips_after=int(event["n_chips_after"]),
                rolling_p99_ttft_s=float(event["rolling_p99_ttft_s"]),
            )
            for event in state["events"]
        ]
        self.rejected = [
            (int(index), int(request_id))
            for index, request_id in state["rejected"]
        ]
        self.n_active = int(state["n_active"])
        self.last_scale = (
            float("-inf")
            if state["last_scale"] is None
            else float(state["last_scale"])
        )
        self.seen = {int(index): trace[int(index)] for index in state["seen"]}


def make_controller(
    fleet,
    trace: Sequence[ServingRequest],
    *,
    faults=None,
    priorities: Optional[Sequence[float]] = None,
):
    """The controller matching a fleet/faults/priorities combination.

    Mirrors the routing of the batch ``run`` entry points: a fault
    schedule (or priorities on an autoscaled fleet) selects the fault-path
    controllers of :mod:`repro.serving.faults` (which need the full
    ``trace`` up front, for priority normalization and era re-dispatch);
    otherwise the plain static/autoscale controllers stream with no trace
    knowledge.  Priorities without faults on a *static* fleet change
    nothing there (no admission control), matching the batch path.
    """
    from .autoscale import AutoscalingFleetSimulator
    from .faults import (
        FaultAutoscaleController,
        FaultFleetController,
        FaultSchedule,
    )

    autoscaled = isinstance(fleet, AutoscalingFleetSimulator)
    if faults is not None or (priorities is not None and autoscaled):
        schedule = faults if faults is not None else FaultSchedule()
        controller_cls = (
            FaultAutoscaleController if autoscaled else FaultFleetController
        )
        return controller_cls(fleet, trace, schedule, priorities=priorities)
    if autoscaled:
        return AutoscaleDispatchController(fleet)
    return StaticDispatchController(fleet)


__all__ = [
    "EMPTY_RESULT",
    "REQUEST_STATE_FIELDS",
    "RUNTIMES",
    "AutoscaleDispatchController",
    "ShardJob",
    "StaticDispatchController",
    "make_controller",
    "record_from_state",
    "record_to_state",
    "request_from_state",
    "request_to_state",
    "result_from_state",
    "result_to_state",
    "run_jobs_inline",
    "sorted_order",
]
