"""Request arrival processes for traffic-scale serving simulation.

Three arrival models cover the deployment scenarios the serving simulator
targets:

* :class:`PoissonArrivals` — memoryless traffic at a constant offered rate,
  the classical open-loop load model;
* :class:`BurstyArrivals` — a two-state Markov-modulated Poisson process
  alternating between a calm state and a burst state whose rate is a
  multiple of the base rate (interactive edge traffic is bursty, not
  Poisson);
* :class:`TraceArrivals` — replay of an explicit timestamp trace, for
  feeding measured production traces through the simulator.

All generators are deterministic under a fixed seed: two generators built
with the same parameters produce bit-identical timestamp sequences, which
the test suite relies on and which makes serving experiments reproducible.

:class:`RequestSampler` pairs the arrival times with request *shapes*
(image count, prompt length, output length), again deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..models.mllm import InferenceRequest


class PoissonArrivals:
    """Poisson arrival process at a constant ``rate_rps`` requests/second."""

    def __init__(self, rate_rps: float, *, seed: int = 0) -> None:
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        self.rate_rps = rate_rps
        self.seed = seed

    def generate(self, n: int) -> List[float]:
        """Arrival timestamps (seconds, sorted, starting after t = 0)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        rng = random.Random(self.seed)
        times: List[float] = []
        now = 0.0
        for _ in range(n):
            now += rng.expovariate(self.rate_rps)
            times.append(now)
        return times


class BurstyArrivals:
    """Two-state Markov-modulated Poisson process (calm / burst).

    The process alternates between a calm state at ``rate_rps`` and a burst
    state at ``rate_rps * burst_multiplier``.  State residence is geometric:
    after each arrival the process stays in its state with a probability
    derived from ``mean_calm_arrivals`` / ``mean_burst_arrivals``.
    """

    def __init__(
        self,
        rate_rps: float,
        *,
        burst_multiplier: float = 8.0,
        mean_calm_arrivals: float = 60.0,
        mean_burst_arrivals: float = 20.0,
        seed: int = 0,
    ) -> None:
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1")
        if mean_calm_arrivals < 1.0 or mean_burst_arrivals < 1.0:
            raise ValueError("mean state lengths must be >= 1 arrival")
        self.rate_rps = rate_rps
        self.burst_multiplier = burst_multiplier
        self.mean_calm_arrivals = mean_calm_arrivals
        self.mean_burst_arrivals = mean_burst_arrivals
        self.seed = seed

    def generate(self, n: int) -> List[float]:
        """Arrival timestamps (seconds, sorted, starting after t = 0)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        rng = random.Random(self.seed)
        times: List[float] = []
        now = 0.0
        bursting = False
        for _ in range(n):
            rate = self.rate_rps * (self.burst_multiplier if bursting else 1.0)
            now += rng.expovariate(rate)
            times.append(now)
            mean_length = (
                self.mean_burst_arrivals if bursting else self.mean_calm_arrivals
            )
            if rng.random() < 1.0 / mean_length:
                bursting = not bursting
        return times


class TraceArrivals:
    """Replay of an explicit arrival-timestamp trace.

    The trace must already be in non-decreasing order: trace position pairs
    each timestamp with a request shape downstream (``build_trace``), so
    silently sorting would re-pair times with the wrong requests.
    """

    def __init__(self, times: Sequence[float]) -> None:
        times = [float(t) for t in times]
        if any(t < 0 for t in times):
            raise ValueError("trace timestamps must be >= 0")
        if any(later < earlier for earlier, later in zip(times, times[1:])):
            raise ValueError(
                "trace timestamps must be non-decreasing (trace order pairs "
                "timestamps with request shapes)"
            )
        self.times = times

    def generate(self, n: int) -> List[float]:
        """The first ``n`` trace timestamps (the trace must be long enough)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        if n > len(self.times):
            raise ValueError(
                f"trace holds {len(self.times)} arrivals, {n} requested"
            )
        return list(self.times[:n])


@dataclass(frozen=True)
class RequestSampler:
    """Deterministic sampler of request shapes.

    ``output_token_choices`` are drawn with ``output_token_weights`` (short
    answers dominate real chat traffic, with a long tail); prompt lengths are
    uniform over ``prompt_token_range``.
    """

    images: int = 1
    prompt_token_range: Tuple[int, int] = (16, 64)
    output_token_choices: Tuple[int, ...] = (16, 32, 64, 128, 256)
    output_token_weights: Tuple[float, ...] = (0.3, 0.3, 0.25, 0.1, 0.05)
    seed: int = 0

    def __post_init__(self) -> None:
        lo, hi = self.prompt_token_range
        if lo <= 0 or hi < lo:
            raise ValueError("prompt_token_range must be a positive (lo, hi)")
        if len(self.output_token_choices) != len(self.output_token_weights):
            raise ValueError("choices and weights must have equal length")
        if any(tokens <= 0 for tokens in self.output_token_choices):
            raise ValueError("output token choices must be positive")

    def sample(self, n: int) -> List[InferenceRequest]:
        """``n`` request shapes, bit-identical for identical samplers."""
        if n < 0:
            raise ValueError("n must be >= 0")
        rng = random.Random(self.seed)
        lo, hi = self.prompt_token_range
        requests = []
        for _ in range(n):
            output_tokens = rng.choices(
                self.output_token_choices, weights=self.output_token_weights
            )[0]
            requests.append(
                InferenceRequest(
                    images=self.images,
                    prompt_text_tokens=rng.randint(lo, hi),
                    output_tokens=output_tokens,
                )
            )
        return requests
