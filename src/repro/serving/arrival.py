"""Request arrival processes for traffic-scale serving simulation.

Four arrival models cover the deployment scenarios the serving simulator
targets:

* :class:`PoissonArrivals` — memoryless traffic at a constant offered rate,
  the classical open-loop load model;
* :class:`BurstyArrivals` — a two-state Markov-modulated Poisson process
  alternating between a calm state and a burst state whose rate is a
  multiple of the base rate (interactive edge traffic is bursty, not
  Poisson);
* :class:`DiurnalArrivals` — Poisson traffic whose rate follows an
  hour-of-day multiplier table over a configurable day length, the
  composition-churning daily load curve week-long serving studies need;
* :class:`TraceArrivals` — replay of an explicit timestamp trace, for
  feeding measured production traces through the simulator.

All generators are deterministic under a fixed seed: two generators built
with the same parameters produce bit-identical timestamp sequences, which
the test suite relies on and which makes serving experiments reproducible.
Every process also exposes ``iter_times()``, a *streaming* view with the
exact RNG call order of ``generate``: ``generate(n)`` equals the first
``n`` elements of ``iter_times()`` however the stream is chunked, which
is what lets the scenario compiler stream-emit columnar traces without
materialising the whole timestamp list.

:class:`RequestSampler` pairs the arrival times with request *shapes*
(image count, prompt length, output length), again deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import islice
from typing import Iterator, List, Sequence, Tuple

from ..models.mllm import InferenceRequest


class PoissonArrivals:
    """Poisson arrival process at a constant ``rate_rps`` requests/second."""

    def __init__(self, rate_rps: float, *, seed: int = 0) -> None:
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        self.rate_rps = rate_rps
        self.seed = seed

    def iter_times(self) -> Iterator[float]:
        """Stream the arrival timestamps (the unbounded ``generate``)."""
        rng = random.Random(self.seed)
        now = 0.0
        while True:
            now += rng.expovariate(self.rate_rps)
            yield now

    def generate(self, n: int) -> List[float]:
        """Arrival timestamps (seconds, sorted, starting after t = 0)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        return list(islice(self.iter_times(), n))


class BurstyArrivals:
    """Two-state Markov-modulated Poisson process (calm / burst).

    The process alternates between a calm state at ``rate_rps`` and a burst
    state at ``rate_rps * burst_multiplier``.  State residence is geometric:
    after each arrival the process stays in its state with a probability
    derived from ``mean_calm_arrivals`` / ``mean_burst_arrivals``.
    """

    def __init__(
        self,
        rate_rps: float,
        *,
        burst_multiplier: float = 8.0,
        mean_calm_arrivals: float = 60.0,
        mean_burst_arrivals: float = 20.0,
        seed: int = 0,
    ) -> None:
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1")
        if mean_calm_arrivals < 1.0 or mean_burst_arrivals < 1.0:
            raise ValueError("mean state lengths must be >= 1 arrival")
        self.rate_rps = rate_rps
        self.burst_multiplier = burst_multiplier
        self.mean_calm_arrivals = mean_calm_arrivals
        self.mean_burst_arrivals = mean_burst_arrivals
        self.seed = seed

    def iter_times(self) -> Iterator[float]:
        """Stream the arrival timestamps (the unbounded ``generate``)."""
        rng = random.Random(self.seed)
        now = 0.0
        bursting = False
        while True:
            rate = self.rate_rps * (self.burst_multiplier if bursting else 1.0)
            now += rng.expovariate(rate)
            yield now
            mean_length = (
                self.mean_burst_arrivals if bursting else self.mean_calm_arrivals
            )
            if rng.random() < 1.0 / mean_length:
                bursting = not bursting

    def generate(self, n: int) -> List[float]:
        """Arrival timestamps (seconds, sorted, starting after t = 0)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        return list(islice(self.iter_times(), n))


#: Default hour-of-day rate multipliers of :class:`DiurnalArrivals`: a
#: literal overnight-trough / midday-plateau / evening-shoulder curve
#: (mean very close to 1.0, so ``rate_rps`` stays the approximate daily
#: mean).  A literal table — not runtime trigonometry — keeps compiled
#: scenarios byte-identical across platforms and libm versions.
DIURNAL_HOURLY_MULTIPLIERS: Tuple[float, ...] = (
    0.35, 0.28, 0.24, 0.22, 0.24, 0.30,
    0.45, 0.70, 1.00, 1.30, 1.50, 1.60,
    1.55, 1.50, 1.45, 1.40, 1.35, 1.40,
    1.50, 1.55, 1.40, 1.10, 0.80, 0.55,
)


class DiurnalArrivals:
    """Poisson arrivals whose rate follows an hour-of-day load curve.

    Each inter-arrival gap is exponential at ``rate_rps`` scaled by the
    multiplier of the *current* hour slot (``multipliers`` spread evenly
    over one ``period_s``-second day), the standard piecewise-constant
    approximation of a non-homogeneous Poisson process.  Shrinking
    ``period_s`` compresses the day, so regression-sized scenarios can
    replay a whole "week" of load churn in a few simulated minutes.
    """

    def __init__(
        self,
        rate_rps: float,
        *,
        period_s: float = 86400.0,
        multipliers: Tuple[float, ...] = DIURNAL_HOURLY_MULTIPLIERS,
        seed: int = 0,
    ) -> None:
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if not multipliers or any(m <= 0 for m in multipliers):
            raise ValueError("multipliers must be a non-empty positive tuple")
        self.rate_rps = rate_rps
        self.period_s = period_s
        self.multipliers = tuple(float(m) for m in multipliers)
        self.seed = seed

    def iter_times(self) -> Iterator[float]:
        """Stream the arrival timestamps (the unbounded ``generate``)."""
        rng = random.Random(self.seed)
        multipliers = self.multipliers
        slot_s = self.period_s / len(multipliers)
        slots = len(multipliers)
        now = 0.0
        while True:
            rate = self.rate_rps * multipliers[int(now / slot_s) % slots]
            now += rng.expovariate(rate)
            yield now

    def generate(self, n: int) -> List[float]:
        """Arrival timestamps (seconds, sorted, starting after t = 0)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        return list(islice(self.iter_times(), n))


class TraceArrivals:
    """Replay of an explicit arrival-timestamp trace.

    The trace must already be in non-decreasing order: trace position pairs
    each timestamp with a request shape downstream (``build_trace``), so
    silently sorting would re-pair times with the wrong requests.
    """

    def __init__(self, times: Sequence[float]) -> None:
        times = [float(t) for t in times]
        if any(t < 0 for t in times):
            raise ValueError("trace timestamps must be >= 0")
        if any(later < earlier for earlier, later in zip(times, times[1:])):
            raise ValueError(
                "trace timestamps must be non-decreasing (trace order pairs "
                "timestamps with request shapes)"
            )
        self.times = times

    def iter_times(self) -> Iterator[float]:
        """Stream the replayed timestamps (exhausts at the trace's end)."""
        return iter(self.times)

    def generate(self, n: int) -> List[float]:
        """The first ``n`` trace timestamps (the trace must be long enough)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        if n > len(self.times):
            raise ValueError(
                f"trace holds {len(self.times)} arrivals, {n} requested"
            )
        return list(self.times[:n])


@dataclass(frozen=True)
class RequestSampler:
    """Deterministic sampler of request shapes.

    ``output_token_choices`` are drawn with ``output_token_weights`` (short
    answers dominate real chat traffic, with a long tail); prompt lengths are
    uniform over ``prompt_token_range``.
    """

    images: int = 1
    prompt_token_range: Tuple[int, int] = (16, 64)
    output_token_choices: Tuple[int, ...] = (16, 32, 64, 128, 256)
    output_token_weights: Tuple[float, ...] = (0.3, 0.3, 0.25, 0.1, 0.05)
    seed: int = 0

    def __post_init__(self) -> None:
        lo, hi = self.prompt_token_range
        if lo <= 0 or hi < lo:
            raise ValueError("prompt_token_range must be a positive (lo, hi)")
        if len(self.output_token_choices) != len(self.output_token_weights):
            raise ValueError("choices and weights must have equal length")
        if any(tokens <= 0 for tokens in self.output_token_choices):
            raise ValueError("output token choices must be positive")

    def iter_shapes(self) -> Iterator[Tuple[int, int, int]]:
        """Stream ``(images, prompt_text_tokens, output_tokens)`` triples.

        The columnar twin of :meth:`sample`, with the identical RNG call
        order per request, so the first ``n`` triples match ``sample(n)``
        field for field however the stream is chunked — the scenario
        compiler's streaming path fills trace columns from this without
        building :class:`~repro.models.mllm.InferenceRequest` objects.
        """
        rng = random.Random(self.seed)
        lo, hi = self.prompt_token_range
        while True:
            output_tokens = rng.choices(
                self.output_token_choices, weights=self.output_token_weights
            )[0]
            yield (self.images, rng.randint(lo, hi), output_tokens)

    def sample(self, n: int) -> List[InferenceRequest]:
        """``n`` request shapes, bit-identical for identical samplers."""
        if n < 0:
            raise ValueError("n must be >= 0")
        return [
            InferenceRequest(
                images=images,
                prompt_text_tokens=prompt_text_tokens,
                output_tokens=output_tokens,
            )
            for images, prompt_text_tokens, output_tokens in islice(
                self.iter_shapes(), n
            )
        ]
