"""Serving-level metrics: per-request records and traffic-wide statistics.

The serving simulator produces one :class:`RequestRecord` per request with
the full timestamp trail (arrival -> prefill start -> first token ->
completion).  :func:`summarize` folds a batch of records into the
:class:`ServingReport` a deployment study reads: latency and TTFT
percentiles, queueing delay and aggregate throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..models.mllm import InferenceRequest


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``values``, linearly interpolated.

    Thin wrapper over ``numpy.percentile``'s default (``linear``) method
    with explicit validation, so the serving metrics share one percentile
    definition with the rest of the scientific stack.
    """
    if len(values) == 0:
        raise ValueError("values must not be empty")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass(frozen=True)
class RequestRecord:
    """Timestamp trail of one served request (all times in seconds)."""

    request_id: int
    request: InferenceRequest
    arrival_s: float
    prefill_start_s: float
    prefill_end_s: float
    first_token_s: float
    finish_s: float
    chip_id: int = 0

    def __post_init__(self) -> None:
        # Chained comparisons instead of a generator scan: this runs once
        # per simulated request, a measurable slice of a 100k-request run.
        if not (
            self.arrival_s
            <= self.prefill_start_s
            <= self.prefill_end_s
            <= self.first_token_s
            <= self.finish_s
        ):
            trail = (
                self.arrival_s,
                self.prefill_start_s,
                self.prefill_end_s,
                self.first_token_s,
                self.finish_s,
            )
            raise ValueError(
                f"request {self.request_id}: timestamps must be monotonic, got {trail}"
            )

    @property
    def queue_wait_s(self) -> float:
        """Time spent waiting before the CC-stage started the request."""
        return self.prefill_start_s - self.arrival_s

    @property
    def ttft_s(self) -> float:
        """Time to first token, measured from arrival."""
        return self.first_token_s - self.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end request latency (arrival to last token)."""
        return self.finish_s - self.arrival_s

    @property
    def decode_s(self) -> float:
        """Time spent in the decode stage (first admission to last token)."""
        return self.finish_s - self.prefill_end_s

    @property
    def output_tokens(self) -> int:
        """Tokens the request generated (its requested output length)."""
        return self.request.output_tokens


@dataclass(frozen=True)
class PercentileStats:
    """p50/p95/p99 plus mean and max of one latency-like quantity."""

    p50: float
    p95: float
    p99: float
    mean: float
    max: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "PercentileStats":
        """Fold a non-empty sequence of ``values`` into the statistics."""
        if len(values) == 0:
            raise ValueError("values must not be empty")
        return cls(
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
            mean=sum(values) / len(values),
            max=max(values),
        )

    @classmethod
    def from_array(cls, values: np.ndarray) -> "PercentileStats":
        """Fold a non-empty float array into the statistics.

        Value-identical to :meth:`from_values` on the same numbers: the
        percentiles run through the same ``numpy.percentile`` call, the
        max picks an existing float, and the mean's summation is
        ``np.add.accumulate`` — a strict left fold, the same order as the
        scalar ``sum`` (whose ``0.0`` start adds exactly).  Regression-
        tested against the scalar path on randomized records.
        """
        if values.size == 0:
            raise ValueError("values must not be empty")
        return cls(
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
            mean=float(np.add.accumulate(values)[-1]) / values.size,
            max=float(values.max()),
        )


@dataclass(frozen=True)
class ServingReport:
    """Aggregate statistics over one serving-simulation run."""

    n_requests: int
    makespan_s: float
    total_output_tokens: int
    latency: PercentileStats
    ttft: PercentileStats
    queue_wait: PercentileStats

    @property
    def requests_per_second(self) -> float:
        """Completed requests per second of simulated time."""
        if self.makespan_s == 0:
            return 0.0
        return self.n_requests / self.makespan_s

    @property
    def tokens_per_second(self) -> float:
        """Generated tokens per second of simulated time."""
        if self.makespan_s == 0:
            return 0.0
        return self.total_output_tokens / self.makespan_s


def empty_report() -> ServingReport:
    """The all-zero report of a server that completed no requests."""
    zeros = PercentileStats(p50=0.0, p95=0.0, p99=0.0, mean=0.0, max=0.0)
    return ServingReport(
        n_requests=0,
        makespan_s=0.0,
        total_output_tokens=0,
        latency=zeros,
        ttft=zeros,
        queue_wait=zeros,
    )


def summarize(records: Sequence[RequestRecord]) -> ServingReport:
    """Fold per-request records into a :class:`ServingReport`.

    One Python pass extracts the timestamp trail into columnar arrays;
    every statistic — makespan, token totals and all three percentile
    groups — then computes vectorised over them.  Values are identical to
    the scalar per-record fold (:func:`summarize_scalar`), which the
    regression suite asserts field for field; the golden scenario reports
    pin the identity byte for byte.
    """
    if not records:
        raise ValueError("records must not be empty")
    n = len(records)
    arrival = np.empty(n)
    prefill_start = np.empty(n)
    first_token = np.empty(n)
    finish = np.empty(n)
    tokens = np.empty(n, dtype=np.int64)
    for index, record in enumerate(records):
        arrival[index] = record.arrival_s
        prefill_start[index] = record.prefill_start_s
        first_token[index] = record.first_token_s
        finish[index] = record.finish_s
        tokens[index] = record.request.output_tokens
    return ServingReport(
        n_requests=n,
        makespan_s=float(finish.max() - arrival.min()),
        total_output_tokens=int(tokens.sum()),
        latency=PercentileStats.from_array(finish - arrival),
        ttft=PercentileStats.from_array(first_token - arrival),
        queue_wait=PercentileStats.from_array(prefill_start - arrival),
    )


def summarize_scalar(records: Sequence[RequestRecord]) -> ServingReport:
    """Per-record scalar fold of ``records`` into a :class:`ServingReport`.

    The reference implementation :func:`summarize` is asserted
    value-identical against — kept runnable (not just in test code) so the
    identity claim stays checkable anywhere a report is produced.
    """
    if not records:
        raise ValueError("records must not be empty")
    makespan = max(record.finish_s for record in records) - min(
        record.arrival_s for record in records
    )
    return ServingReport(
        n_requests=len(records),
        makespan_s=makespan,
        total_output_tokens=sum(record.output_tokens for record in records),
        latency=PercentileStats.from_values([r.latency_s for r in records]),
        ttft=PercentileStats.from_values([r.ttft_s for r in records]),
        queue_wait=PercentileStats.from_values([r.queue_wait_s for r in records]),
    )


def format_report(report: ServingReport, *, title: str = "Serving report") -> str:
    """Human-readable rendering of ``report``, headed by ``title``."""
    lines: List[str] = [title, "-" * len(title)]
    lines.append(f"requests completed : {report.n_requests}")
    lines.append(f"makespan           : {report.makespan_s:.3f} s")
    lines.append(f"throughput         : {report.requests_per_second:.2f} req/s")
    lines.append(f"token throughput   : {report.tokens_per_second:.1f} tokens/s")
    quantities: Dict[str, PercentileStats] = {
        "latency": report.latency,
        "TTFT": report.ttft,
        "queue wait": report.queue_wait,
    }
    for label, stats in quantities.items():
        lines.append(
            f"{label:<11}: p50 {stats.p50 * 1e3:9.2f} ms   "
            f"p95 {stats.p95 * 1e3:9.2f} ms   p99 {stats.p99 * 1e3:9.2f} ms   "
            f"mean {stats.mean * 1e3:9.2f} ms"
        )
    return "\n".join(lines)
