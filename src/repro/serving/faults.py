"""Fault injection for fleet serving: chip loss, recovery, DRAM degradation.

A :class:`FaultSchedule` is a deterministic timeline of fleet faults —
``chip_down`` (a chip stops admitting work), ``chip_up`` (it rejoins the
fleet) and ``dram_degrade`` (its DRAM tier drops to a fraction of the
healthy bandwidth).  :func:`run_fleet_with_faults` and
:func:`run_autoscale_with_faults` play a trace through the existing
:class:`~repro.serving.fleet.FleetSimulator` /
:class:`~repro.serving.autoscale.AutoscalingFleetSimulator` machinery
under such a schedule, with weighted-priority admission on top.

The simulation is *era-based*: each chip's service history is a sequence
of eras, and every era is one ordinary
:class:`~repro.serving.queue.ContinuousBatchingSimulator` run.  A fault
event closes the target chip's current era at the event time ``T`` by
splitting its dispatched requests at the CC-pipeline boundary:

* :func:`~repro.serving.engine.prefill_windows` prices the era's serial
  CC pipeline exactly; prefill starts are monotone non-decreasing in
  dispatch order, so the requests with ``start >= T`` form a *suffix*
  whose removal cannot perturb anything the prefix did before ``T``
  (suffix prefills end after ``T``, so they never joined decode earlier);
* the prefix replays through the chip's engine — under the ``"drain"``
  policy every in-flight request finishes (the era's drain end is its
  last finish), under ``"abort"`` records finishing after ``T`` are
  discarded and their requests re-dispatch from scratch;
* the unstarted suffix re-dispatches fleet-wide at ``T`` (``chip_down``)
  or moves into the chip's next era (``dram_degrade``), highest
  priority first.

A degraded era runs on a fresh chip whose system carries the scaled
DRAM tier; its decode bucket-cost triples seed from the healthy chip
(they are bandwidth-free byte/cycle quantities, see
:meth:`~repro.planner.evaluate.DesignWarmCache.delta_seed_from`), while
CC-stage and whole-step latencies recompute against the degraded
bandwidth.  Because era splits use the engine-independent
``prefill_windows`` recurrence and era replays go through
``chip.run()`` (bit-identical across the ``step``/``macro``/``wave``
engines), fault runs are engine-independent too — and an *empty*
schedule reproduces the fault-free path ``==``-identically, which the
differential chaos suite asserts.

Under the ``"abort"`` policy a closed era's ``decode_steps`` /
``peak_batch_size`` counters reflect the replay that *discovered* the
aborted records (the work the chip had started), not only the kept
records; the per-request records themselves are exact either way.

These are *modelled* hardware faults — part of what the simulation
computes.  They compose freely with the *runtime* faults of
:mod:`repro.serving.runtime.chaos` (crashed actors, dropped messages),
which attack the control plane executing the computation and must not
change its result: a fault-schedule scenario run under a chaos schedule
still reproduces its fault summary byte-identically.  Both planes meet
in :func:`~repro.serving.dispatch.make_controller`, which wraps this
module's simulators behind the same stepwise controller protocol the
supervised runtime drives.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, replace
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.simulator import PerformanceSimulator
from ..models.mllm import InferenceRequest
from .autoscale import AutoscaleResult, ScalingEvent
from .engine import prefill_windows
from .fleet import FleetResult, FleetSimulator
from .metrics import RequestRecord, percentile
from .queue import ContinuousBatchingSimulator, ServingRequest, ServingResult

FAULT_KINDS: Tuple[str, ...] = ("chip_down", "chip_up", "dram_degrade")
DRAIN_POLICIES: Tuple[str, ...] = ("drain", "abort")

#: Post-fault records per tumbling window of the recovery metrics.
RECOVERY_WINDOW = 32
#: A post-fault window has recovered once its p99 TTFT is back within
#: this multiple of the pre-fault baseline.
RECOVERY_TOLERANCE = 1.1


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fleet fault: a kind, a time and a target chip.

    ``factor`` applies to ``dram_degrade`` only: the degraded DRAM
    bandwidth as a fraction of the chip's *healthy* baseline (absolute,
    not compounding — a second degrade replaces the first).
    """

    time_s: float
    kind: str
    chip_id: int
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.time_s < 0:
            raise ValueError("fault time_s must be >= 0")
        if self.chip_id < 0:
            raise ValueError("fault chip_id must be >= 0")
        if self.kind == "dram_degrade":
            if not 0.0 < self.factor <= 1.0:
                raise ValueError("dram_degrade factor must be in (0, 1]")
        elif self.factor != 1.0:
            raise ValueError("factor only applies to dram_degrade events")

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the event to plain JSON data (factor only if used)."""
        data: Dict[str, Any] = {
            "time_s": self.time_s,
            "kind": self.kind,
            "chip_id": self.chip_id,
        }
        if self.kind == "dram_degrade":
            data["factor"] = self.factor
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        """Rebuild an event from :meth:`to_dict` data."""
        return cls(
            time_s=float(data["time_s"]),
            kind=str(data["kind"]),
            chip_id=int(data["chip_id"]),
            factor=float(data.get("factor", 1.0)),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic, time-ordered timeline of fleet fault events.

    ``drain_policy`` governs what a dying chip does with requests whose
    prefill already started: ``"drain"`` finishes them in place (the
    fleet model of graceful decommission), ``"abort"`` discards any
    record unfinished at the event time and re-dispatches the request
    from scratch (hard failure; no work is lost *or* duplicated — the
    conservation property suite asserts it).
    """

    events: Tuple[FaultEvent, ...] = ()
    drain_policy: str = "drain"

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if self.drain_policy not in DRAIN_POLICIES:
            raise ValueError(
                f"drain_policy must be one of {DRAIN_POLICIES}, "
                f"got {self.drain_policy!r}"
            )
        down: set = set()
        last = float("-inf")
        for event in self.events:
            if event.time_s < last:
                raise ValueError("fault events must be sorted by time_s")
            last = event.time_s
            if event.kind == "chip_down":
                if event.chip_id in down:
                    raise ValueError(
                        f"chip {event.chip_id} goes down twice without a "
                        "chip_up in between"
                    )
                down.add(event.chip_id)
            elif event.kind == "chip_up":
                if event.chip_id not in down:
                    raise ValueError(
                        f"chip {event.chip_id} comes up without being down"
                    )
                down.discard(event.chip_id)
            elif event.chip_id in down:
                raise ValueError(
                    f"chip {event.chip_id} cannot degrade while down"
                )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the schedule to plain JSON data."""
        return {
            "drain_policy": self.drain_policy,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSchedule":
        """Rebuild a schedule from :meth:`to_dict` data."""
        return cls(
            events=tuple(
                FaultEvent.from_dict(event) for event in data.get("events", ())
            ),
            drain_policy=str(data.get("drain_policy", "drain")),
        )


@dataclass(frozen=True)
class FaultFleetResult(FleetResult):
    """Static-fleet outcome under a fault schedule.

    Extends :class:`~repro.serving.fleet.FleetResult` with the applied
    schedule and the displaced-request accounting; ``per_chip`` records
    carry the fault path's synthetic positional ids (original ids are
    restored on the merged ``records``).
    """

    fault_events: Tuple[FaultEvent, ...] = ()
    redispatched_ids: Tuple[int, ...] = ()
    aborted_ids: Tuple[int, ...] = ()


@dataclass(frozen=True)
class FaultAutoscaleResult(AutoscaleResult):
    """Autoscaled-fleet outcome under a fault schedule.

    Extends :class:`~repro.serving.autoscale.AutoscaleResult` with the
    applied schedule and the displaced-request accounting.
    """

    fault_events: Tuple[FaultEvent, ...] = ()
    redispatched_ids: Tuple[int, ...] = ()
    aborted_ids: Tuple[int, ...] = ()


@dataclass(frozen=True)
class FaultRecovery:
    """Measured SLO impact of one disruptive fault event.

    ``baseline_p99_ttft_s`` is the p99 TTFT of all records arriving
    before the event; ``dent_depth_s`` is how far the worst post-event
    tumbling window's p99 rose above it (clamped at zero); and
    ``time_to_recover_s`` is the span from the event to the last arrival
    of the first post-event window whose p99 is back within
    :data:`RECOVERY_TOLERANCE` of the baseline (``None`` when the trace
    ends before recovery).
    """

    event: FaultEvent
    baseline_p99_ttft_s: float
    dent_depth_s: float
    time_to_recover_s: Optional[float]


def fault_recovery(
    records: Sequence[RequestRecord],
    events: Sequence[FaultEvent],
    *,
    window: int = RECOVERY_WINDOW,
    tolerance: float = RECOVERY_TOLERANCE,
) -> Tuple[FaultRecovery, ...]:
    """Recovery metrics of each disruptive event, from the records alone.

    A pure function of the per-request records (arrival-ordered TTFTs
    chunked into ``window``-sized tumbling windows; recovery means a
    window's p99 is back within ``tolerance`` of the pre-event baseline),
    so the metrics are engine-independent by construction and
    re-derivable by any consumer of the raw records.  ``chip_up`` events
    are restorative and skipped.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    ordered = sorted(records, key=lambda r: (r.arrival_s, r.request_id))
    arrivals = [record.arrival_s for record in ordered]
    ttfts = [record.ttft_s for record in ordered]
    out: List[FaultRecovery] = []
    for event in events:
        if event.kind == "chip_up":
            continue
        cut = bisect_left(arrivals, event.time_s)
        pre, post = ttfts[:cut], ttfts[cut:]
        baseline = percentile(pre, 99) if pre else 0.0
        dent = 0.0
        recover: Optional[float] = None
        for start in range(0, len(post), window):
            chunk = post[start : start + window]
            p99 = percentile(chunk, 99)
            if p99 - baseline > dent:
                dent = p99 - baseline
            if recover is None and p99 <= baseline * tolerance:
                last = arrivals[cut + start + len(chunk) - 1]
                recover = last - event.time_s
        out.append(
            FaultRecovery(
                event=event,
                baseline_p99_ttft_s=baseline,
                dent_depth_s=dent,
                time_to_recover_s=recover,
            )
        )
    return tuple(out)


def normalize_priorities(
    priorities: Optional[Sequence[float]], n: int
) -> Optional[List[float]]:
    """Per-request admission weights in (0, 1], or ``None`` when uniform.

    ``priorities`` carries one positive value per request of an
    ``n``-request trace.  Weights are priorities divided by the maximum priority, so a
    uniform-priority trace normalizes to exactly 1.0 everywhere and the
    weighted admission arithmetic reduces to the unweighted one bit for
    bit (the differential suite relies on it).
    """
    if priorities is None:
        return None
    if len(priorities) != n:
        raise ValueError(
            f"priorities has {len(priorities)} entries for {n} requests"
        )
    if any(p <= 0 for p in priorities):
        raise ValueError("priorities must be positive")
    top = max(priorities)
    return [p / top for p in priorities]


# ----------------------------------------------------------------------
# Era bookkeeping
# ----------------------------------------------------------------------
@dataclass
class _Entry:
    """One dispatched request inside a chip era (synthetic-id keyed)."""

    sid: int
    eff_arrival_s: float
    index: int
    request: InferenceRequest


class _ChipState:
    """One chip's fault-path state: liveness, current era, closed eras."""

    def __init__(self, base: ContinuousBatchingSimulator) -> None:
        self.base = base
        self.sim = base
        self.chip_id = base.chip_id
        self.era = 0
        self.factor = 1.0
        self.alive = True
        self.floor = 0.0
        self.entries: List[_Entry] = []
        self.closed: List[ServingResult] = []


def _era_shard(state: _ChipState) -> List[ServingRequest]:
    """The era's dispatch-ordered shard (sorts entries in place)."""
    state.entries.sort(key=lambda e: (e.eff_arrival_s, e.sid))
    return [
        ServingRequest(
            request_id=entry.sid,
            arrival_s=entry.eff_arrival_s,
            request=entry.request,
        )
        for entry in state.entries
    ]


def _split_era(
    state: _ChipState, time_s: float, policy: str
) -> Tuple[List[_Entry], List[_Entry], float]:
    """Close the chip's current era at ``time_s``.

    Returns ``(suffix, aborted, drain_end)``: the entries whose prefill
    had not started (they re-dispatch), the entries the ``"abort"``
    policy killed mid-service (they re-dispatch from scratch), and the
    time the era's kept work actually ends.
    """
    shard = _era_shard(state)
    if not shard:
        return [], [], time_s
    starts, _ = prefill_windows(state.sim, shard)
    cut = len(shard)
    for position, start in enumerate(starts):
        if start >= time_s:
            cut = position
            break
    prefix, suffix = state.entries[:cut], state.entries[cut:]
    aborted: List[_Entry] = []
    drain_end = time_s
    if prefix:
        result = state.sim.run(shard[:cut])
        if policy == "abort":
            kept = tuple(r for r in result.records if r.finish_s <= time_s)
            kept_ids = {record.request_id for record in kept}
            aborted = [entry for entry in prefix if entry.sid not in kept_ids]
            result = ServingResult(
                records=kept,
                peak_batch_size=result.peak_batch_size,
                decode_steps=result.decode_steps,
            )
        elif result.records:
            tail = max(record.finish_s for record in result.records)
            if tail > drain_end:
                drain_end = tail
        state.closed.append(result)
    state.entries = []
    return suffix, aborted, drain_end


def _degraded_chip(
    base: ContinuousBatchingSimulator, factor: float
) -> ContinuousBatchingSimulator:
    """A fresh chip like ``base`` with its DRAM tier scaled by ``factor``.

    The factor is absolute against the chip's healthy baseline.  Decode
    bucket-cost triples seed from the healthy chip — they carry no
    bandwidth term — while CC-stage and whole-step latencies recompute
    lazily against the degraded tier.
    """
    if factor == 1.0:
        return base
    system = base.simulator.system
    dram = replace(
        system.chip.dram,
        peak_bandwidth_bytes_per_s=(
            system.chip.dram.peak_bandwidth_bytes_per_s * factor
        ),
    )
    degraded = replace(system, chip=replace(system.chip, dram=dram))
    chip = ContinuousBatchingSimulator(
        PerformanceSimulator(degraded),
        base.model,
        max_batch_size=base.max_batch_size,
        cc_bandwidth_fraction=base.cc_bandwidth_fraction,
        context_bucket=base.cost_model.context_bucket,
        chip_id=base.chip_id,
        engine=base.engine,
    )
    chip.cost_model.seed_bucket_costs(base.cost_model.bucket_costs())
    return chip


class _FaultLedger:
    """Dispatch/era bookkeeping shared by both fault-path loops."""

    def __init__(
        self,
        fleet: FleetSimulator,
        trace: Sequence[ServingRequest],
        schedule: FaultSchedule,
    ) -> None:
        self.fleet = fleet
        self.trace = trace
        self.policy = schedule.drain_policy
        self.states = [_ChipState(chip) for chip in fleet.chips]
        self.next_sid = len(trace)
        self.origin: Dict[int, int] = {}
        self.redispatched: List[int] = []
        self.aborted: List[int] = []
        self.assignments = [-1] * len(trace)
        self._era_cost: Dict[Tuple[int, int, int, int, int], float] = {}

    def index_of(self, sid: int) -> int:
        """The trace position a synthetic record id maps back to."""
        return self.origin.get(sid, sid)

    def place(self, chip_id: int, index: int, eff: float, fresh: bool) -> None:
        """Dispatch trace position ``index`` onto ``chip_id`` at ``eff``.

        First dispatches keep the trace position as their synthetic id
        (the same positional-id contract the autoscaler's replay uses);
        re-dispatches allocate a fresh id past the trace length so a
        request displaced twice stays unambiguous.
        """
        if fresh:
            sid = index
        else:
            sid = self.next_sid
            self.next_sid += 1
            self.origin[sid] = index
        self.states[chip_id].entries.append(
            _Entry(
                sid=sid,
                eff_arrival_s=eff,
                index=index,
                request=self.trace[index].request,
            )
        )
        self.assignments[index] = chip_id

    def estimate(self, chip_id: int, request: InferenceRequest) -> float:
        """Dispatcher-side batch-1 cost estimate against the current era.

        Healthy eras delegate to the fleet's shared estimate memo (the
        exact floats the fault-free path uses); degraded eras price
        against the era chip, memoized per (chip, era, shape).
        """
        state = self.states[chip_id]
        if state.sim is state.base:
            return self.fleet._estimate_cost_s(state.base, request)
        key = (
            chip_id,
            state.era,
            request.images,
            request.prompt_text_tokens,
            request.output_tokens,
        )
        cached = self._era_cost.get(key)
        if cached is not None:
            return cached
        context = self.fleet.model.prompt_tokens(request)
        cost = (
            state.sim.cc_latency_s(request)
            + state.sim.cost_model.step_latency_s([context])
            * request.output_tokens
        )
        self._era_cost[key] = cost
        return cost

    def apply_event(self, event: FaultEvent) -> List[_Entry]:
        """Apply one fault event; returns the entries needing re-dispatch."""
        state = self.states[event.chip_id]
        if event.kind == "chip_down":
            suffix, aborted, drain_end = _split_era(
                state, event.time_s, self.policy
            )
            state.alive = False
            state.era += 1
            state.floor = drain_end
            self.redispatched.extend(entry.index for entry in suffix)
            self.aborted.extend(entry.index for entry in aborted)
            return suffix + aborted
        if event.kind == "chip_up":
            state.alive = True
            state.era += 1
            state.floor = max(event.time_s, state.floor)
            return []
        # dram_degrade: degradation is not failure — in-flight work
        # always drains at the pre-degrade speed, and the unstarted
        # suffix stays on the chip, carried into the degraded era.
        suffix, _, drain_end = _split_era(state, event.time_s, "drain")
        state.era += 1
        state.factor = event.factor
        state.floor = max(event.time_s, drain_end)
        state.sim = _degraded_chip(state.base, event.factor)
        for entry in suffix:
            entry.eff_arrival_s = max(entry.eff_arrival_s, state.floor)
            state.entries.append(entry)
        return []

    def alive_ids(self) -> List[int]:
        """Chip ids currently admitting work, in id order."""
        return [state.chip_id for state in self.states if state.alive]

    def final_jobs(self) -> List["ShardJob"]:
        """The engine run closing each chip's open era (possibly empty).

        Jobs carry the era sim — the degraded replacement chip when the
        era is degraded — so any executor (inline or a chip actor) runs
        the same simulator the batch path would.
        """
        from .dispatch import ShardJob

        jobs: List[ShardJob] = []
        for state in self.states:
            shard = _era_shard(state)
            if shard:
                jobs.append(
                    ShardJob(
                        chip_id=state.chip_id,
                        sim=state.sim,
                        shard=tuple(shard),
                    )
                )
        return jobs

    def install_final(self, results: Mapping[int, ServingResult]) -> None:
        """Append executed :meth:`final_jobs` results as closing eras."""
        for state in self.states:
            result = results.get(state.chip_id)
            if result is not None:
                state.closed.append(result)
                state.entries = []

    def preview_records(self) -> Tuple[RequestRecord, ...]:
        """Records of a hypothetical end-of-stream right now (pure).

        Open eras are simulated without being closed: engine runs only
        memoize, so the ledger is untouched and dispatch can continue.
        """
        records: List[RequestRecord] = []
        for state in self.states:
            results = list(state.closed)
            shard = _era_shard(state)
            if shard:
                results.append(state.sim.run(shard))
            for result in results:
                for record in result.records:
                    source = self.trace[self.index_of(record.request_id)]
                    records.append(
                        replace(
                            record,
                            request_id=source.request_id,
                            arrival_s=source.arrival_s,
                        )
                    )
        records.sort(key=lambda record: record.request_id)
        return tuple(records)

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the era/dispatch bookkeeping.

        Closed-era results are serialized record by record (floats
        round-trip exactly through JSON ``repr``); entry requests are
        stored as trace positions and rebuild from the trace on restore.
        The era cost memo is pure and deliberately excluded.
        """
        from .dispatch import result_to_state

        return {
            "next_sid": self.next_sid,
            "origin": sorted(self.origin.items()),
            "redispatched": list(self.redispatched),
            "aborted": list(self.aborted),
            "assignments": list(self.assignments),
            "chips": [
                {
                    "era": state.era,
                    "factor": state.factor,
                    "alive": state.alive,
                    "floor": state.floor,
                    "entries": [
                        {
                            "sid": entry.sid,
                            "eff_arrival_s": entry.eff_arrival_s,
                            "index": entry.index,
                        }
                        for entry in state.entries
                    ],
                    "closed": [
                        result_to_state(result) for result in state.closed
                    ],
                }
                for state in self.states
            ],
        }

    def restore_state(self, data: Mapping[str, Any]) -> None:
        """Reload :meth:`state_dict` data onto fresh chip states.

        Degraded-era sims rebuild deterministically from the stored
        factor via :func:`_degraded_chip`; the cost memo starts empty and
        refills lazily (values are pure, so only speed is affected).
        """
        from .dispatch import result_from_state

        self.next_sid = int(data["next_sid"])
        self.origin = {int(sid): int(index) for sid, index in data["origin"]}
        self.redispatched = [int(index) for index in data["redispatched"]]
        self.aborted = [int(index) for index in data["aborted"]]
        self.assignments = [int(chip) for chip in data["assignments"]]
        self._era_cost = {}
        for state, chip in zip(self.states, data["chips"]):
            state.era = int(chip["era"])
            state.factor = float(chip["factor"])
            state.alive = bool(chip["alive"])
            state.floor = float(chip["floor"])
            state.sim = _degraded_chip(state.base, state.factor)
            state.entries = [
                _Entry(
                    sid=int(entry["sid"]),
                    eff_arrival_s=float(entry["eff_arrival_s"]),
                    index=int(entry["index"]),
                    request=self.trace[int(entry["index"])].request,
                )
                for entry in chip["entries"]
            ]
            state.closed = [
                result_from_state(result) for result in chip["closed"]
            ]

    def collect(self) -> Tuple[Tuple[RequestRecord, ...], Tuple[ServingResult, ...]]:
        """Merge closed eras into per-chip results and restored records."""
        per_chip: List[ServingResult] = []
        for state in self.states:
            merged = [
                record
                for result in state.closed
                for record in result.records
            ]
            merged.sort(key=lambda record: record.request_id)
            per_chip.append(
                ServingResult(
                    records=tuple(merged),
                    peak_batch_size=max(
                        (result.peak_batch_size for result in state.closed),
                        default=0,
                    ),
                    decode_steps=sum(
                        result.decode_steps for result in state.closed
                    ),
                )
            )
        records: List[RequestRecord] = []
        for result in per_chip:
            for record in result.records:
                source = self.trace[self.index_of(record.request_id)]
                records.append(
                    replace(
                        record,
                        request_id=source.request_id,
                        arrival_s=source.arrival_s,
                    )
                )
        records.sort(key=lambda record: record.request_id)
        return tuple(records), tuple(per_chip)


def _validate_targets(schedule: FaultSchedule, n_chips: int) -> None:
    """Reject schedules targeting chips the fleet does not have."""
    for event in schedule.events:
        if event.chip_id >= n_chips:
            raise ValueError(
                f"fault targets chip {event.chip_id} but the fleet has "
                f"{n_chips} chips"
            )


def _pool_order(
    pool: List[_Entry],
    trace: Sequence[ServingRequest],
    weights: Optional[List[float]],
) -> List[_Entry]:
    """Displaced entries in re-dispatch order: priority, then arrival."""
    return sorted(
        pool,
        key=lambda e: (
            -(weights[e.index] if weights else 1.0),
            trace[e.index].arrival_s,
            trace[e.index].request_id,
        ),
    )


# ----------------------------------------------------------------------
# Static fleet under faults
# ----------------------------------------------------------------------
class FaultFleetController:
    """Arrival-at-a-time form of the static fleet's fault-injection loop.

    The exact loop state of :func:`run_fleet_with_faults` — the event
    cursor, the per-chip horizons, the round-robin position and the
    parked list — lifted onto the stepwise controller protocol of
    :mod:`repro.serving.dispatch` so the batch driver and the live actor
    runtime share one implementation.  The controller needs the full
    ``trace`` up front: priority normalization is global and era
    re-dispatch reaches requests by trace position.
    """

    kind = "fault_fleet"

    def __init__(
        self,
        fleet: FleetSimulator,
        trace: Sequence[ServingRequest],
        schedule: FaultSchedule,
        priorities: Optional[Sequence[float]] = None,
    ) -> None:
        if not trace:
            raise ValueError("trace must not be empty")
        _validate_targets(schedule, fleet.n_chips)
        self.fleet = fleet
        self.trace = trace
        self.schedule = schedule
        self.weights = normalize_priorities(priorities, len(trace))
        if fleet.precompute:
            fleet.precompute_service_times(trace)
        self.ledger = _FaultLedger(fleet, trace, schedule)
        self.events = list(schedule.events)
        self.event_pos = 0
        self.horizons = [0.0] * fleet.n_chips
        self.rr_position = 0
        self.parked: List[Tuple[int, float, bool]] = []
        self.n_seen = 0

    def _dispatch(self, index: int, eff: float, fresh: bool) -> None:
        targets = self.ledger.alive_ids()
        request = self.trace[index].request
        if self.fleet.policy == "round_robin":
            chip_id = targets[self.rr_position % len(targets)]
            self.rr_position += 1
        else:  # least_loaded
            chip_id = min(targets, key=lambda c: (self.horizons[c], c))
        eff = max(eff, self.ledger.states[chip_id].floor)
        cost = self.ledger.estimate(chip_id, request)
        self.horizons[chip_id] = max(self.horizons[chip_id], eff) + cost
        self.ledger.place(chip_id, index, eff, fresh)

    def _apply(self, event: FaultEvent) -> None:
        pool = self.ledger.apply_event(event)
        if event.kind == "chip_up":
            self.horizons[event.chip_id] = (
                self.ledger.states[event.chip_id].floor
            )
            if self.parked:
                flush, self.parked[:] = list(self.parked), []
                for index, eff, fresh in flush:
                    self._dispatch(index, max(eff, event.time_s), fresh)
        for entry in _pool_order(pool, self.trace, self.weights):
            if not self.ledger.alive_ids():
                self.parked.append((entry.index, entry.eff_arrival_s, False))
                continue
            self._dispatch(
                entry.index, max(entry.eff_arrival_s, event.time_s), False
            )

    def on_arrival(self, index: int, request: ServingRequest) -> int:
        """Apply due fault events, then dispatch (or park) one arrival.

        Returns the assigned chip id, or ``-1`` when every chip is down
        and the request parks until a ``chip_up``.
        """
        self.n_seen += 1
        arrival = request.arrival_s
        while (
            self.event_pos < len(self.events)
            and self.events[self.event_pos].time_s <= arrival
        ):
            self._apply(self.events[self.event_pos])
            self.event_pos += 1
        if not self.ledger.alive_ids():
            self.parked.append((index, arrival, True))
            return -1
        self._dispatch(index, arrival, True)
        return self.ledger.assignments[index]

    def finish_events(self) -> None:
        """Apply trailing fault events; raise if requests stayed parked."""
        while self.event_pos < len(self.events):
            self._apply(self.events[self.event_pos])
            self.event_pos += 1
        if self.parked:
            raise ValueError(
                f"{len(self.parked)} requests were never dispatched: every "
                "chip was down through the end of the trace"
            )

    def final_jobs(self) -> List["ShardJob"]:
        """The engine runs closing every open era."""
        return self.ledger.final_jobs()

    def collect(
        self, results: Mapping[int, ServingResult]
    ) -> FaultFleetResult:
        """Fold the executed closing eras into a :class:`FaultFleetResult`."""
        self.ledger.install_final(results)
        records, per_chip = self.ledger.collect()
        return FaultFleetResult(
            records=records,
            per_chip=per_chip,
            assignments=tuple(self.ledger.assignments),
            fault_events=self.schedule.events,
            redispatched_ids=tuple(
                self.trace[i].request_id for i in self.ledger.redispatched
            ),
            aborted_ids=tuple(
                self.trace[i].request_id for i in self.ledger.aborted
            ),
        )

    def preview_records(self) -> Tuple[RequestRecord, ...]:
        """Records of a hypothetical end-of-stream right now (pure)."""
        return self.ledger.preview_records()

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the dynamic fault-loop state."""
        return {
            "kind": self.kind,
            "n_seen": self.n_seen,
            "event_pos": self.event_pos,
            "rr_position": self.rr_position,
            "horizons": list(self.horizons),
            "parked": [
                [index, eff, fresh] for index, eff, fresh in self.parked
            ],
            "ledger": self.ledger.state_dict(),
        }

    def restore_state(
        self, state: Mapping[str, Any], trace: Sequence[ServingRequest]
    ) -> None:
        """Reload :meth:`state_dict` data (``trace`` must equal the original)."""
        self.n_seen = int(state["n_seen"])
        self.event_pos = int(state["event_pos"])
        self.rr_position = int(state["rr_position"])
        self.horizons = [float(h) for h in state["horizons"]]
        self.parked = [
            (int(index), float(eff), bool(fresh))
            for index, eff, fresh in state["parked"]
        ]
        self.ledger.restore_state(state["ledger"])


def run_fleet_with_faults(
    fleet: FleetSimulator,
    trace: Sequence[ServingRequest],
    schedule: FaultSchedule,
    priorities: Optional[Sequence[float]] = None,
) -> FaultFleetResult:
    """Play ``trace`` through a static fleet under a fault ``schedule``.

    Dispatch follows the fleet's configured policy over the *alive*
    chips only; a ``chip_down`` re-dispatches the dead chip's unstarted
    (and, under ``"abort"``, killed) requests across the survivors at
    the event time, highest ``priorities`` first.  With an empty
    schedule and uniform priorities the result equals
    :meth:`~repro.serving.fleet.FleetSimulator.run` field for field
    (asserted by the differential suite).  Raises if requests remain
    unservable because every chip is down through the end of the trace.

    A thin driver over :class:`FaultFleetController` — the live actor
    runtime drives the identical controller one message at a time.
    """
    from .dispatch import run_jobs_inline, sorted_order

    controller = FaultFleetController(
        fleet, trace, schedule, priorities=priorities
    )
    for index in sorted_order(trace):
        controller.on_arrival(index, trace[index])
    controller.finish_events()
    return controller.collect(run_jobs_inline(controller.final_jobs()))


# ----------------------------------------------------------------------
# Autoscaled fleet under faults
# ----------------------------------------------------------------------
class FaultAutoscaleController:
    """Arrival-at-a-time form of the fault-aware autoscaling loop.

    The exact loop state of :func:`run_autoscale_with_faults` — the
    admission heap, rolling TTFT window, scaling ledger, event cursor
    and parked list — on the stepwise controller protocol.  Needs the
    full ``trace`` up front, as :class:`FaultFleetController` does.
    """

    kind = "fault_autoscale"

    def __init__(
        self,
        fleet,
        trace: Sequence[ServingRequest],
        schedule: FaultSchedule,
        priorities: Optional[Sequence[float]] = None,
    ) -> None:
        if not trace:
            raise ValueError("trace must not be empty")
        _validate_targets(schedule, fleet.n_chips)
        self.fleet = fleet
        self.trace = trace
        self.schedule = schedule
        self.weights = normalize_priorities(priorities, len(trace))
        if fleet.precompute:
            fleet.precompute_service_times(trace)
        self.config = fleet.autoscaler
        self.ledger = _FaultLedger(fleet, trace, schedule)
        self.events = list(schedule.events)
        self.event_pos = 0
        self.horizons = [0.0] * fleet.n_chips
        self.inflight: List[float] = []
        self.ttft_window: Deque[float] = deque(maxlen=self.config.window)
        self.scale_events: List[ScalingEvent] = []
        self.rejected: List[int] = []
        self.n_active = self.config.min_chips
        self.last_scale = float("-inf")
        self.parked: List[Tuple[int, float, bool]] = []
        self.n_seen = 0

    def _dispatchable(self) -> List[int]:
        return self.ledger.alive_ids()[: self.n_active]

    def _place(
        self, index: int, eff: float, fresh: bool, observe_from: float
    ) -> None:
        targets = self._dispatchable()
        chip_id = min(targets, key=lambda c: (self.horizons[c], c))
        state = self.ledger.states[chip_id]
        eff = max(eff, state.floor)
        request = self.trace[index].request
        cost = self.ledger.estimate(chip_id, request)
        start = max(self.horizons[chip_id], eff)
        prefill = state.sim.cc_latency_s(request)
        first_step = state.sim.cost_model.step_latency_s(
            [self.fleet.model.prompt_tokens(request)]
        )
        self.ttft_window.append(start + prefill + first_step - observe_from)
        self.horizons[chip_id] = start + cost
        heapq.heappush(self.inflight, self.horizons[chip_id])
        self.ledger.place(chip_id, index, eff, fresh)

    def _apply(self, event: FaultEvent) -> None:
        pool = self.ledger.apply_event(event)
        if event.kind == "chip_up":
            self.horizons[event.chip_id] = (
                self.ledger.states[event.chip_id].floor
            )
            if self.parked:
                flush, self.parked[:] = list(self.parked), []
                for index, eff, fresh in flush:
                    if not self._dispatchable():
                        self.parked.append((index, eff, fresh))
                        continue
                    self._place(
                        index,
                        max(eff, event.time_s),
                        fresh,
                        self.trace[index].arrival_s,
                    )
        for entry in _pool_order(pool, self.trace, self.weights):
            if not self._dispatchable():
                self.parked.append((entry.index, entry.eff_arrival_s, False))
                continue
            self._place(
                entry.index,
                max(entry.eff_arrival_s, event.time_s),
                False,
                self.trace[entry.index].arrival_s,
            )

    def on_arrival(self, index: int, request: ServingRequest) -> int:
        """Apply due fault events, then admit/dispatch one arrival.

        Returns the assigned chip id, or ``-1`` when the request was
        rejected by admission control or parked (every chip down).
        """
        self.n_seen += 1
        config = self.config
        now = request.arrival_s
        while (
            self.event_pos < len(self.events)
            and self.events[self.event_pos].time_s <= now
        ):
            self._apply(self.events[self.event_pos])
            self.event_pos += 1
        targets = self._dispatchable()
        if not targets:
            self.parked.append((index, now, True))
            return -1

        while self.inflight and self.inflight[0] <= now:
            heapq.heappop(self.inflight)
        effective = now
        weight = self.weights[index] if self.weights is not None else 1.0
        depth_limit = max(
            1, int(config.max_queue_depth * len(targets) * weight)
        )
        if len(self.inflight) >= depth_limit:
            if config.admission == "reject":
                self.rejected.append(index)
                return -1
            overflow = len(self.inflight) - depth_limit + 1
            for _ in range(overflow):
                effective = heapq.heappop(self.inflight)

        self._place(index, effective, True, now)

        if (
            len(self.ttft_window) >= config.min_observations
            and now - self.last_scale >= config.cooldown_s
        ):
            rolling = percentile(list(self.ttft_window), 99)
            target = config.target_p99_ttft_s
            if (
                rolling > target * config.scale_up_ratio
                and self.n_active < config.max_chips
            ):
                self.scale_events.append(
                    ScalingEvent(
                        time_s=now,
                        n_chips_before=self.n_active,
                        n_chips_after=self.n_active + 1,
                        rolling_p99_ttft_s=rolling,
                    )
                )
                self.n_active += 1
                self.last_scale = now
            elif (
                rolling < target * config.scale_down_ratio
                and self.n_active > config.min_chips
            ):
                self.scale_events.append(
                    ScalingEvent(
                        time_s=now,
                        n_chips_before=self.n_active,
                        n_chips_after=self.n_active - 1,
                        rolling_p99_ttft_s=rolling,
                    )
                )
                self.n_active -= 1
                self.last_scale = now
        return self.ledger.assignments[index]

    def finish_events(self) -> None:
        """Apply trailing fault events; raise if requests stayed parked."""
        while self.event_pos < len(self.events):
            self._apply(self.events[self.event_pos])
            self.event_pos += 1
        if self.parked:
            raise ValueError(
                f"{len(self.parked)} requests were never dispatched: every "
                "chip was down through the end of the trace"
            )

    def final_jobs(self) -> List["ShardJob"]:
        """The engine runs closing every open era."""
        return self.ledger.final_jobs()

    def collect(
        self, results: Mapping[int, ServingResult]
    ) -> FaultAutoscaleResult:
        """Fold the executed closing eras into a :class:`FaultAutoscaleResult`."""
        self.ledger.install_final(results)
        records, per_chip = self.ledger.collect()
        return FaultAutoscaleResult(
            records=records,
            per_chip=per_chip,
            assignments=tuple(self.ledger.assignments),
            rejected_ids=tuple(
                self.trace[i].request_id for i in self.rejected
            ),
            events=tuple(self.scale_events),
            final_chips=self.n_active,
            fault_events=self.schedule.events,
            redispatched_ids=tuple(
                self.trace[i].request_id for i in self.ledger.redispatched
            ),
            aborted_ids=tuple(
                self.trace[i].request_id for i in self.ledger.aborted
            ),
        )

    def preview_records(self) -> Tuple[RequestRecord, ...]:
        """Records of a hypothetical end-of-stream right now (pure)."""
        return self.ledger.preview_records()

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the dynamic control-loop state."""
        return {
            "kind": self.kind,
            "n_seen": self.n_seen,
            "event_pos": self.event_pos,
            "horizons": list(self.horizons),
            "inflight": list(self.inflight),
            "ttft_window": list(self.ttft_window),
            "scale_events": [
                {
                    "time_s": event.time_s,
                    "n_chips_before": event.n_chips_before,
                    "n_chips_after": event.n_chips_after,
                    "rolling_p99_ttft_s": event.rolling_p99_ttft_s,
                }
                for event in self.scale_events
            ],
            "rejected": list(self.rejected),
            "n_active": self.n_active,
            # -inf (never scaled) has no JSON literal; None encodes it.
            "last_scale": (
                None if self.last_scale == float("-inf") else self.last_scale
            ),
            "parked": [
                [index, eff, fresh] for index, eff, fresh in self.parked
            ],
            "ledger": self.ledger.state_dict(),
        }

    def restore_state(
        self, state: Mapping[str, Any], trace: Sequence[ServingRequest]
    ) -> None:
        """Reload :meth:`state_dict` data (``trace`` must equal the original)."""
        self.n_seen = int(state["n_seen"])
        self.event_pos = int(state["event_pos"])
        self.horizons = [float(h) for h in state["horizons"]]
        self.inflight = [float(f) for f in state["inflight"]]
        self.ttft_window = deque(
            (float(t) for t in state["ttft_window"]),
            maxlen=self.config.window,
        )
        self.scale_events = [
            ScalingEvent(
                time_s=float(event["time_s"]),
                n_chips_before=int(event["n_chips_before"]),
                n_chips_after=int(event["n_chips_after"]),
                rolling_p99_ttft_s=float(event["rolling_p99_ttft_s"]),
            )
            for event in state["scale_events"]
        ]
        self.rejected = [int(index) for index in state["rejected"]]
        self.n_active = int(state["n_active"])
        self.last_scale = (
            float("-inf")
            if state["last_scale"] is None
            else float(state["last_scale"])
        )
        self.parked = [
            (int(index), float(eff), bool(fresh))
            for index, eff, fresh in state["parked"]
        ]
        self.ledger.restore_state(state["ledger"])


def run_autoscale_with_faults(
    fleet,
    trace: Sequence[ServingRequest],
    schedule: FaultSchedule,
    priorities: Optional[Sequence[float]] = None,
) -> FaultAutoscaleResult:
    """Play ``trace`` through an autoscaled fleet under a fault ``schedule``.

    The control loop is the exact arithmetic of
    :meth:`~repro.serving.autoscale.AutoscalingFleetSimulator.run` — the
    same admission pops, rolling-percentile decisions and horizon
    updates — restricted to the alive prefix of the fleet, with two
    additions: per-request admission depth scales with the request's
    priority weight (``max(1, int(depth * weight))``, exactly the
    unweighted limit at uniform priorities), and fault events displace
    and re-dispatch work as in :func:`run_fleet_with_faults` (displaced
    requests bypass admission — they were already admitted once).  The
    in-flight depth estimates of a dead chip stay in the controller's
    heap (a dispatcher cannot observe them individually); they age out
    by their estimated finish times.

    A thin driver over :class:`FaultAutoscaleController` — the live
    actor runtime drives the identical controller one message at a time.
    """
    from .dispatch import run_jobs_inline, sorted_order

    controller = FaultAutoscaleController(
        fleet, trace, schedule, priorities=priorities
    )
    for index in sorted_order(trace):
        controller.on_arrival(index, trace[index])
    controller.finish_events()
    return controller.collect(run_jobs_inline(controller.final_jobs()))


__all__ = [
    "FAULT_KINDS",
    "DRAIN_POLICIES",
    "RECOVERY_WINDOW",
    "RECOVERY_TOLERANCE",
    "FaultEvent",
    "FaultSchedule",
    "FaultFleetResult",
    "FaultAutoscaleResult",
    "FaultRecovery",
    "FaultFleetController",
    "FaultAutoscaleController",
    "fault_recovery",
    "normalize_priorities",
    "run_fleet_with_faults",
    "run_autoscale_with_faults",
]
