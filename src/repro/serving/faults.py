"""Fault injection for fleet serving: chip loss, recovery, DRAM degradation.

A :class:`FaultSchedule` is a deterministic timeline of fleet faults —
``chip_down`` (a chip stops admitting work), ``chip_up`` (it rejoins the
fleet) and ``dram_degrade`` (its DRAM tier drops to a fraction of the
healthy bandwidth).  :func:`run_fleet_with_faults` and
:func:`run_autoscale_with_faults` play a trace through the existing
:class:`~repro.serving.fleet.FleetSimulator` /
:class:`~repro.serving.autoscale.AutoscalingFleetSimulator` machinery
under such a schedule, with weighted-priority admission on top.

The simulation is *era-based*: each chip's service history is a sequence
of eras, and every era is one ordinary
:class:`~repro.serving.queue.ContinuousBatchingSimulator` run.  A fault
event closes the target chip's current era at the event time ``T`` by
splitting its dispatched requests at the CC-pipeline boundary:

* :func:`~repro.serving.engine.prefill_windows` prices the era's serial
  CC pipeline exactly; prefill starts are monotone non-decreasing in
  dispatch order, so the requests with ``start >= T`` form a *suffix*
  whose removal cannot perturb anything the prefix did before ``T``
  (suffix prefills end after ``T``, so they never joined decode earlier);
* the prefix replays through the chip's engine — under the ``"drain"``
  policy every in-flight request finishes (the era's drain end is its
  last finish), under ``"abort"`` records finishing after ``T`` are
  discarded and their requests re-dispatch from scratch;
* the unstarted suffix re-dispatches fleet-wide at ``T`` (``chip_down``)
  or moves into the chip's next era (``dram_degrade``), highest
  priority first.

A degraded era runs on a fresh chip whose system carries the scaled
DRAM tier; its decode bucket-cost triples seed from the healthy chip
(they are bandwidth-free byte/cycle quantities, see
:meth:`~repro.planner.evaluate.DesignWarmCache.delta_seed_from`), while
CC-stage and whole-step latencies recompute against the degraded
bandwidth.  Because era splits use the engine-independent
``prefill_windows`` recurrence and era replays go through
``chip.run()`` (bit-identical across the ``step``/``macro``/``wave``
engines), fault runs are engine-independent too — and an *empty*
schedule reproduces the fault-free path ``==``-identically, which the
differential chaos suite asserts.

Under the ``"abort"`` policy a closed era's ``decode_steps`` /
``peak_batch_size`` counters reflect the replay that *discovered* the
aborted records (the work the chip had started), not only the kept
records; the per-request records themselves are exact either way.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, replace
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.simulator import PerformanceSimulator
from ..models.mllm import InferenceRequest
from .autoscale import AutoscaleResult, ScalingEvent
from .engine import prefill_windows
from .fleet import FleetResult, FleetSimulator
from .metrics import RequestRecord, percentile
from .queue import ContinuousBatchingSimulator, ServingRequest, ServingResult

FAULT_KINDS: Tuple[str, ...] = ("chip_down", "chip_up", "dram_degrade")
DRAIN_POLICIES: Tuple[str, ...] = ("drain", "abort")

#: Post-fault records per tumbling window of the recovery metrics.
RECOVERY_WINDOW = 32
#: A post-fault window has recovered once its p99 TTFT is back within
#: this multiple of the pre-fault baseline.
RECOVERY_TOLERANCE = 1.1


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fleet fault: a kind, a time and a target chip.

    ``factor`` applies to ``dram_degrade`` only: the degraded DRAM
    bandwidth as a fraction of the chip's *healthy* baseline (absolute,
    not compounding — a second degrade replaces the first).
    """

    time_s: float
    kind: str
    chip_id: int
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.time_s < 0:
            raise ValueError("fault time_s must be >= 0")
        if self.chip_id < 0:
            raise ValueError("fault chip_id must be >= 0")
        if self.kind == "dram_degrade":
            if not 0.0 < self.factor <= 1.0:
                raise ValueError("dram_degrade factor must be in (0, 1]")
        elif self.factor != 1.0:
            raise ValueError("factor only applies to dram_degrade events")

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the event to plain JSON data (factor only if used)."""
        data: Dict[str, Any] = {
            "time_s": self.time_s,
            "kind": self.kind,
            "chip_id": self.chip_id,
        }
        if self.kind == "dram_degrade":
            data["factor"] = self.factor
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        """Rebuild an event from :meth:`to_dict` data."""
        return cls(
            time_s=float(data["time_s"]),
            kind=str(data["kind"]),
            chip_id=int(data["chip_id"]),
            factor=float(data.get("factor", 1.0)),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic, time-ordered timeline of fleet fault events.

    ``drain_policy`` governs what a dying chip does with requests whose
    prefill already started: ``"drain"`` finishes them in place (the
    fleet model of graceful decommission), ``"abort"`` discards any
    record unfinished at the event time and re-dispatches the request
    from scratch (hard failure; no work is lost *or* duplicated — the
    conservation property suite asserts it).
    """

    events: Tuple[FaultEvent, ...] = ()
    drain_policy: str = "drain"

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if self.drain_policy not in DRAIN_POLICIES:
            raise ValueError(
                f"drain_policy must be one of {DRAIN_POLICIES}, "
                f"got {self.drain_policy!r}"
            )
        down: set = set()
        last = float("-inf")
        for event in self.events:
            if event.time_s < last:
                raise ValueError("fault events must be sorted by time_s")
            last = event.time_s
            if event.kind == "chip_down":
                if event.chip_id in down:
                    raise ValueError(
                        f"chip {event.chip_id} goes down twice without a "
                        "chip_up in between"
                    )
                down.add(event.chip_id)
            elif event.kind == "chip_up":
                if event.chip_id not in down:
                    raise ValueError(
                        f"chip {event.chip_id} comes up without being down"
                    )
                down.discard(event.chip_id)
            elif event.chip_id in down:
                raise ValueError(
                    f"chip {event.chip_id} cannot degrade while down"
                )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the schedule to plain JSON data."""
        return {
            "drain_policy": self.drain_policy,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSchedule":
        """Rebuild a schedule from :meth:`to_dict` data."""
        return cls(
            events=tuple(
                FaultEvent.from_dict(event) for event in data.get("events", ())
            ),
            drain_policy=str(data.get("drain_policy", "drain")),
        )


@dataclass(frozen=True)
class FaultFleetResult(FleetResult):
    """Static-fleet outcome under a fault schedule.

    Extends :class:`~repro.serving.fleet.FleetResult` with the applied
    schedule and the displaced-request accounting; ``per_chip`` records
    carry the fault path's synthetic positional ids (original ids are
    restored on the merged ``records``).
    """

    fault_events: Tuple[FaultEvent, ...] = ()
    redispatched_ids: Tuple[int, ...] = ()
    aborted_ids: Tuple[int, ...] = ()


@dataclass(frozen=True)
class FaultAutoscaleResult(AutoscaleResult):
    """Autoscaled-fleet outcome under a fault schedule.

    Extends :class:`~repro.serving.autoscale.AutoscaleResult` with the
    applied schedule and the displaced-request accounting.
    """

    fault_events: Tuple[FaultEvent, ...] = ()
    redispatched_ids: Tuple[int, ...] = ()
    aborted_ids: Tuple[int, ...] = ()


@dataclass(frozen=True)
class FaultRecovery:
    """Measured SLO impact of one disruptive fault event.

    ``baseline_p99_ttft_s`` is the p99 TTFT of all records arriving
    before the event; ``dent_depth_s`` is how far the worst post-event
    tumbling window's p99 rose above it (clamped at zero); and
    ``time_to_recover_s`` is the span from the event to the last arrival
    of the first post-event window whose p99 is back within
    :data:`RECOVERY_TOLERANCE` of the baseline (``None`` when the trace
    ends before recovery).
    """

    event: FaultEvent
    baseline_p99_ttft_s: float
    dent_depth_s: float
    time_to_recover_s: Optional[float]


def fault_recovery(
    records: Sequence[RequestRecord],
    events: Sequence[FaultEvent],
    *,
    window: int = RECOVERY_WINDOW,
    tolerance: float = RECOVERY_TOLERANCE,
) -> Tuple[FaultRecovery, ...]:
    """Recovery metrics of each disruptive event, from the records alone.

    A pure function of the per-request records (arrival-ordered TTFTs
    chunked into ``window``-sized tumbling windows; recovery means a
    window's p99 is back within ``tolerance`` of the pre-event baseline),
    so the metrics are engine-independent by construction and
    re-derivable by any consumer of the raw records.  ``chip_up`` events
    are restorative and skipped.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    ordered = sorted(records, key=lambda r: (r.arrival_s, r.request_id))
    arrivals = [record.arrival_s for record in ordered]
    ttfts = [record.ttft_s for record in ordered]
    out: List[FaultRecovery] = []
    for event in events:
        if event.kind == "chip_up":
            continue
        cut = bisect_left(arrivals, event.time_s)
        pre, post = ttfts[:cut], ttfts[cut:]
        baseline = percentile(pre, 99) if pre else 0.0
        dent = 0.0
        recover: Optional[float] = None
        for start in range(0, len(post), window):
            chunk = post[start : start + window]
            p99 = percentile(chunk, 99)
            if p99 - baseline > dent:
                dent = p99 - baseline
            if recover is None and p99 <= baseline * tolerance:
                last = arrivals[cut + start + len(chunk) - 1]
                recover = last - event.time_s
        out.append(
            FaultRecovery(
                event=event,
                baseline_p99_ttft_s=baseline,
                dent_depth_s=dent,
                time_to_recover_s=recover,
            )
        )
    return tuple(out)


def normalize_priorities(
    priorities: Optional[Sequence[float]], n: int
) -> Optional[List[float]]:
    """Per-request admission weights in (0, 1], or ``None`` when uniform.

    ``priorities`` carries one positive value per request of an
    ``n``-request trace.  Weights are priorities divided by the maximum priority, so a
    uniform-priority trace normalizes to exactly 1.0 everywhere and the
    weighted admission arithmetic reduces to the unweighted one bit for
    bit (the differential suite relies on it).
    """
    if priorities is None:
        return None
    if len(priorities) != n:
        raise ValueError(
            f"priorities has {len(priorities)} entries for {n} requests"
        )
    if any(p <= 0 for p in priorities):
        raise ValueError("priorities must be positive")
    top = max(priorities)
    return [p / top for p in priorities]


# ----------------------------------------------------------------------
# Era bookkeeping
# ----------------------------------------------------------------------
@dataclass
class _Entry:
    """One dispatched request inside a chip era (synthetic-id keyed)."""

    sid: int
    eff_arrival_s: float
    index: int
    request: InferenceRequest


class _ChipState:
    """One chip's fault-path state: liveness, current era, closed eras."""

    def __init__(self, base: ContinuousBatchingSimulator) -> None:
        self.base = base
        self.sim = base
        self.chip_id = base.chip_id
        self.era = 0
        self.factor = 1.0
        self.alive = True
        self.floor = 0.0
        self.entries: List[_Entry] = []
        self.closed: List[ServingResult] = []


def _era_shard(state: _ChipState) -> List[ServingRequest]:
    """The era's dispatch-ordered shard (sorts entries in place)."""
    state.entries.sort(key=lambda e: (e.eff_arrival_s, e.sid))
    return [
        ServingRequest(
            request_id=entry.sid,
            arrival_s=entry.eff_arrival_s,
            request=entry.request,
        )
        for entry in state.entries
    ]


def _split_era(
    state: _ChipState, time_s: float, policy: str
) -> Tuple[List[_Entry], List[_Entry], float]:
    """Close the chip's current era at ``time_s``.

    Returns ``(suffix, aborted, drain_end)``: the entries whose prefill
    had not started (they re-dispatch), the entries the ``"abort"``
    policy killed mid-service (they re-dispatch from scratch), and the
    time the era's kept work actually ends.
    """
    shard = _era_shard(state)
    if not shard:
        return [], [], time_s
    starts, _ = prefill_windows(state.sim, shard)
    cut = len(shard)
    for position, start in enumerate(starts):
        if start >= time_s:
            cut = position
            break
    prefix, suffix = state.entries[:cut], state.entries[cut:]
    aborted: List[_Entry] = []
    drain_end = time_s
    if prefix:
        result = state.sim.run(shard[:cut])
        if policy == "abort":
            kept = tuple(r for r in result.records if r.finish_s <= time_s)
            kept_ids = {record.request_id for record in kept}
            aborted = [entry for entry in prefix if entry.sid not in kept_ids]
            result = ServingResult(
                records=kept,
                peak_batch_size=result.peak_batch_size,
                decode_steps=result.decode_steps,
            )
        elif result.records:
            tail = max(record.finish_s for record in result.records)
            if tail > drain_end:
                drain_end = tail
        state.closed.append(result)
    state.entries = []
    return suffix, aborted, drain_end


def _degraded_chip(
    base: ContinuousBatchingSimulator, factor: float
) -> ContinuousBatchingSimulator:
    """A fresh chip like ``base`` with its DRAM tier scaled by ``factor``.

    The factor is absolute against the chip's healthy baseline.  Decode
    bucket-cost triples seed from the healthy chip — they carry no
    bandwidth term — while CC-stage and whole-step latencies recompute
    lazily against the degraded tier.
    """
    if factor == 1.0:
        return base
    system = base.simulator.system
    dram = replace(
        system.chip.dram,
        peak_bandwidth_bytes_per_s=(
            system.chip.dram.peak_bandwidth_bytes_per_s * factor
        ),
    )
    degraded = replace(system, chip=replace(system.chip, dram=dram))
    chip = ContinuousBatchingSimulator(
        PerformanceSimulator(degraded),
        base.model,
        max_batch_size=base.max_batch_size,
        cc_bandwidth_fraction=base.cc_bandwidth_fraction,
        context_bucket=base.cost_model.context_bucket,
        chip_id=base.chip_id,
        engine=base.engine,
    )
    chip.cost_model.seed_bucket_costs(base.cost_model.bucket_costs())
    return chip


class _FaultLedger:
    """Dispatch/era bookkeeping shared by both fault-path loops."""

    def __init__(
        self,
        fleet: FleetSimulator,
        trace: Sequence[ServingRequest],
        schedule: FaultSchedule,
    ) -> None:
        self.fleet = fleet
        self.trace = trace
        self.policy = schedule.drain_policy
        self.states = [_ChipState(chip) for chip in fleet.chips]
        self.next_sid = len(trace)
        self.origin: Dict[int, int] = {}
        self.redispatched: List[int] = []
        self.aborted: List[int] = []
        self.assignments = [-1] * len(trace)
        self._era_cost: Dict[Tuple[int, int, int, int, int], float] = {}

    def index_of(self, sid: int) -> int:
        """The trace position a synthetic record id maps back to."""
        return self.origin.get(sid, sid)

    def place(self, chip_id: int, index: int, eff: float, fresh: bool) -> None:
        """Dispatch trace position ``index`` onto ``chip_id`` at ``eff``.

        First dispatches keep the trace position as their synthetic id
        (the same positional-id contract the autoscaler's replay uses);
        re-dispatches allocate a fresh id past the trace length so a
        request displaced twice stays unambiguous.
        """
        if fresh:
            sid = index
        else:
            sid = self.next_sid
            self.next_sid += 1
            self.origin[sid] = index
        self.states[chip_id].entries.append(
            _Entry(
                sid=sid,
                eff_arrival_s=eff,
                index=index,
                request=self.trace[index].request,
            )
        )
        self.assignments[index] = chip_id

    def estimate(self, chip_id: int, request: InferenceRequest) -> float:
        """Dispatcher-side batch-1 cost estimate against the current era.

        Healthy eras delegate to the fleet's shared estimate memo (the
        exact floats the fault-free path uses); degraded eras price
        against the era chip, memoized per (chip, era, shape).
        """
        state = self.states[chip_id]
        if state.sim is state.base:
            return self.fleet._estimate_cost_s(state.base, request)
        key = (
            chip_id,
            state.era,
            request.images,
            request.prompt_text_tokens,
            request.output_tokens,
        )
        cached = self._era_cost.get(key)
        if cached is not None:
            return cached
        context = self.fleet.model.prompt_tokens(request)
        cost = (
            state.sim.cc_latency_s(request)
            + state.sim.cost_model.step_latency_s([context])
            * request.output_tokens
        )
        self._era_cost[key] = cost
        return cost

    def apply_event(self, event: FaultEvent) -> List[_Entry]:
        """Apply one fault event; returns the entries needing re-dispatch."""
        state = self.states[event.chip_id]
        if event.kind == "chip_down":
            suffix, aborted, drain_end = _split_era(
                state, event.time_s, self.policy
            )
            state.alive = False
            state.era += 1
            state.floor = drain_end
            self.redispatched.extend(entry.index for entry in suffix)
            self.aborted.extend(entry.index for entry in aborted)
            return suffix + aborted
        if event.kind == "chip_up":
            state.alive = True
            state.era += 1
            state.floor = max(event.time_s, state.floor)
            return []
        # dram_degrade: degradation is not failure — in-flight work
        # always drains at the pre-degrade speed, and the unstarted
        # suffix stays on the chip, carried into the degraded era.
        suffix, _, drain_end = _split_era(state, event.time_s, "drain")
        state.era += 1
        state.factor = event.factor
        state.floor = max(event.time_s, drain_end)
        state.sim = _degraded_chip(state.base, event.factor)
        for entry in suffix:
            entry.eff_arrival_s = max(entry.eff_arrival_s, state.floor)
            state.entries.append(entry)
        return []

    def alive_ids(self) -> List[int]:
        """Chip ids currently admitting work, in id order."""
        return [state.chip_id for state in self.states if state.alive]

    def finish(self) -> None:
        """Close every open era at the end of the trace."""
        for state in self.states:
            shard = _era_shard(state)
            if shard:
                state.closed.append(state.sim.run(shard))
                state.entries = []

    def collect(self) -> Tuple[Tuple[RequestRecord, ...], Tuple[ServingResult, ...]]:
        """Merge closed eras into per-chip results and restored records."""
        per_chip: List[ServingResult] = []
        for state in self.states:
            merged = [
                record
                for result in state.closed
                for record in result.records
            ]
            merged.sort(key=lambda record: record.request_id)
            per_chip.append(
                ServingResult(
                    records=tuple(merged),
                    peak_batch_size=max(
                        (result.peak_batch_size for result in state.closed),
                        default=0,
                    ),
                    decode_steps=sum(
                        result.decode_steps for result in state.closed
                    ),
                )
            )
        records: List[RequestRecord] = []
        for result in per_chip:
            for record in result.records:
                source = self.trace[self.index_of(record.request_id)]
                records.append(
                    replace(
                        record,
                        request_id=source.request_id,
                        arrival_s=source.arrival_s,
                    )
                )
        records.sort(key=lambda record: record.request_id)
        return tuple(records), tuple(per_chip)


def _validate_targets(schedule: FaultSchedule, n_chips: int) -> None:
    """Reject schedules targeting chips the fleet does not have."""
    for event in schedule.events:
        if event.chip_id >= n_chips:
            raise ValueError(
                f"fault targets chip {event.chip_id} but the fleet has "
                f"{n_chips} chips"
            )


def _pool_order(
    pool: List[_Entry],
    trace: Sequence[ServingRequest],
    weights: Optional[List[float]],
) -> List[_Entry]:
    """Displaced entries in re-dispatch order: priority, then arrival."""
    return sorted(
        pool,
        key=lambda e: (
            -(weights[e.index] if weights else 1.0),
            trace[e.index].arrival_s,
            trace[e.index].request_id,
        ),
    )


# ----------------------------------------------------------------------
# Static fleet under faults
# ----------------------------------------------------------------------
def run_fleet_with_faults(
    fleet: FleetSimulator,
    trace: Sequence[ServingRequest],
    schedule: FaultSchedule,
    priorities: Optional[Sequence[float]] = None,
) -> FaultFleetResult:
    """Play ``trace`` through a static fleet under a fault ``schedule``.

    Dispatch follows the fleet's configured policy over the *alive*
    chips only; a ``chip_down`` re-dispatches the dead chip's unstarted
    (and, under ``"abort"``, killed) requests across the survivors at
    the event time, highest ``priorities`` first.  With an empty
    schedule and uniform priorities the result equals
    :meth:`~repro.serving.fleet.FleetSimulator.run` field for field
    (asserted by the differential suite).  Raises if requests remain
    unservable because every chip is down through the end of the trace.
    """
    if not trace:
        raise ValueError("trace must not be empty")
    _validate_targets(schedule, fleet.n_chips)
    weights = normalize_priorities(priorities, len(trace))
    if fleet.precompute:
        fleet.precompute_service_times(trace)
    ledger = _FaultLedger(fleet, trace, schedule)
    order = sorted(
        range(len(trace)),
        key=lambda i: (trace[i].arrival_s, trace[i].request_id),
    )
    events = list(schedule.events)
    event_pos = 0
    horizons = [0.0] * fleet.n_chips
    rr_position = 0
    parked: List[Tuple[int, float, bool]] = []

    def dispatch(index: int, eff: float, fresh: bool) -> None:
        nonlocal rr_position
        targets = ledger.alive_ids()
        request = trace[index].request
        if fleet.policy == "round_robin":
            chip_id = targets[rr_position % len(targets)]
            rr_position += 1
        else:  # least_loaded
            chip_id = min(targets, key=lambda c: (horizons[c], c))
        eff = max(eff, ledger.states[chip_id].floor)
        cost = ledger.estimate(chip_id, request)
        horizons[chip_id] = max(horizons[chip_id], eff) + cost
        ledger.place(chip_id, index, eff, fresh)

    def apply(event: FaultEvent) -> None:
        pool = ledger.apply_event(event)
        if event.kind == "chip_up":
            horizons[event.chip_id] = ledger.states[event.chip_id].floor
            if parked:
                flush, parked[:] = list(parked), []
                for index, eff, fresh in flush:
                    dispatch(index, max(eff, event.time_s), fresh)
        for entry in _pool_order(pool, trace, weights):
            if not ledger.alive_ids():
                parked.append((entry.index, entry.eff_arrival_s, False))
                continue
            dispatch(entry.index, max(entry.eff_arrival_s, event.time_s), False)

    for index in order:
        arrival = trace[index].arrival_s
        while event_pos < len(events) and events[event_pos].time_s <= arrival:
            apply(events[event_pos])
            event_pos += 1
        if not ledger.alive_ids():
            parked.append((index, arrival, True))
            continue
        dispatch(index, arrival, True)
    while event_pos < len(events):
        apply(events[event_pos])
        event_pos += 1
    if parked:
        raise ValueError(
            f"{len(parked)} requests were never dispatched: every chip was "
            "down through the end of the trace"
        )
    ledger.finish()
    records, per_chip = ledger.collect()
    return FaultFleetResult(
        records=records,
        per_chip=per_chip,
        assignments=tuple(ledger.assignments),
        fault_events=schedule.events,
        redispatched_ids=tuple(
            trace[i].request_id for i in ledger.redispatched
        ),
        aborted_ids=tuple(trace[i].request_id for i in ledger.aborted),
    )


# ----------------------------------------------------------------------
# Autoscaled fleet under faults
# ----------------------------------------------------------------------
def run_autoscale_with_faults(
    fleet,
    trace: Sequence[ServingRequest],
    schedule: FaultSchedule,
    priorities: Optional[Sequence[float]] = None,
) -> FaultAutoscaleResult:
    """Play ``trace`` through an autoscaled fleet under a fault ``schedule``.

    The control loop is the exact arithmetic of
    :meth:`~repro.serving.autoscale.AutoscalingFleetSimulator.run` — the
    same admission pops, rolling-percentile decisions and horizon
    updates — restricted to the alive prefix of the fleet, with two
    additions: per-request admission depth scales with the request's
    priority weight (``max(1, int(depth * weight))``, exactly the
    unweighted limit at uniform priorities), and fault events displace
    and re-dispatch work as in :func:`run_fleet_with_faults` (displaced
    requests bypass admission — they were already admitted once).  The
    in-flight depth estimates of a dead chip stay in the controller's
    heap (a dispatcher cannot observe them individually); they age out
    by their estimated finish times.
    """
    if not trace:
        raise ValueError("trace must not be empty")
    _validate_targets(schedule, fleet.n_chips)
    weights = normalize_priorities(priorities, len(trace))
    if fleet.precompute:
        fleet.precompute_service_times(trace)
    config = fleet.autoscaler
    model = fleet.model
    ledger = _FaultLedger(fleet, trace, schedule)
    order = sorted(
        range(len(trace)),
        key=lambda i: (trace[i].arrival_s, trace[i].request_id),
    )
    fevents = list(schedule.events)
    event_pos = 0
    horizons = [0.0] * fleet.n_chips
    inflight: List[float] = []
    ttft_window: Deque[float] = deque(maxlen=config.window)
    events: List[ScalingEvent] = []
    rejected: List[int] = []
    n_active = config.min_chips
    last_scale = float("-inf")
    parked: List[Tuple[int, float, bool]] = []

    def dispatchable() -> List[int]:
        return ledger.alive_ids()[:n_active]

    def place(index: int, eff: float, fresh: bool, observe_from: float) -> None:
        targets = dispatchable()
        chip_id = min(targets, key=lambda c: (horizons[c], c))
        state = ledger.states[chip_id]
        eff = max(eff, state.floor)
        request = trace[index].request
        cost = ledger.estimate(chip_id, request)
        start = max(horizons[chip_id], eff)
        prefill = state.sim.cc_latency_s(request)
        first_step = state.sim.cost_model.step_latency_s(
            [model.prompt_tokens(request)]
        )
        ttft_window.append(start + prefill + first_step - observe_from)
        horizons[chip_id] = start + cost
        heapq.heappush(inflight, horizons[chip_id])
        ledger.place(chip_id, index, eff, fresh)

    def apply(event: FaultEvent) -> None:
        pool = ledger.apply_event(event)
        if event.kind == "chip_up":
            horizons[event.chip_id] = ledger.states[event.chip_id].floor
            if parked:
                flush, parked[:] = list(parked), []
                for index, eff, fresh in flush:
                    if not dispatchable():
                        parked.append((index, eff, fresh))
                        continue
                    place(
                        index,
                        max(eff, event.time_s),
                        fresh,
                        trace[index].arrival_s,
                    )
        for entry in _pool_order(pool, trace, weights):
            if not dispatchable():
                parked.append((entry.index, entry.eff_arrival_s, False))
                continue
            place(
                entry.index,
                max(entry.eff_arrival_s, event.time_s),
                False,
                trace[entry.index].arrival_s,
            )

    for index in order:
        request = trace[index]
        now = request.arrival_s
        while event_pos < len(fevents) and fevents[event_pos].time_s <= now:
            apply(fevents[event_pos])
            event_pos += 1
        targets = dispatchable()
        if not targets:
            parked.append((index, now, True))
            continue

        while inflight and inflight[0] <= now:
            heapq.heappop(inflight)
        effective = now
        weight = weights[index] if weights is not None else 1.0
        depth_limit = max(1, int(config.max_queue_depth * len(targets) * weight))
        if len(inflight) >= depth_limit:
            if config.admission == "reject":
                rejected.append(index)
                continue
            overflow = len(inflight) - depth_limit + 1
            for _ in range(overflow):
                effective = heapq.heappop(inflight)

        place(index, effective, True, now)

        if (
            len(ttft_window) >= config.min_observations
            and now - last_scale >= config.cooldown_s
        ):
            rolling = percentile(list(ttft_window), 99)
            target = config.target_p99_ttft_s
            if (
                rolling > target * config.scale_up_ratio
                and n_active < config.max_chips
            ):
                events.append(
                    ScalingEvent(
                        time_s=now,
                        n_chips_before=n_active,
                        n_chips_after=n_active + 1,
                        rolling_p99_ttft_s=rolling,
                    )
                )
                n_active += 1
                last_scale = now
            elif (
                rolling < target * config.scale_down_ratio
                and n_active > config.min_chips
            ):
                events.append(
                    ScalingEvent(
                        time_s=now,
                        n_chips_before=n_active,
                        n_chips_after=n_active - 1,
                        rolling_p99_ttft_s=rolling,
                    )
                )
                n_active -= 1
                last_scale = now

    while event_pos < len(fevents):
        apply(fevents[event_pos])
        event_pos += 1
    if parked:
        raise ValueError(
            f"{len(parked)} requests were never dispatched: every chip was "
            "down through the end of the trace"
        )
    ledger.finish()
    records, per_chip = ledger.collect()
    return FaultAutoscaleResult(
        records=records,
        per_chip=per_chip,
        assignments=tuple(ledger.assignments),
        rejected_ids=tuple(trace[i].request_id for i in rejected),
        events=tuple(events),
        final_chips=n_active,
        fault_events=schedule.events,
        redispatched_ids=tuple(
            trace[i].request_id for i in ledger.redispatched
        ),
        aborted_ids=tuple(trace[i].request_id for i in ledger.aborted),
    )


__all__ = [
    "FAULT_KINDS",
    "DRAIN_POLICIES",
    "RECOVERY_WINDOW",
    "RECOVERY_TOLERANCE",
    "FaultEvent",
    "FaultSchedule",
    "FaultFleetResult",
    "FaultAutoscaleResult",
    "FaultRecovery",
    "fault_recovery",
    "normalize_priorities",
    "run_fleet_with_faults",
    "run_autoscale_with_faults",
]
