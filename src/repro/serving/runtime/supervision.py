"""Supervision of the live runtime: heartbeats, deadlines, recovery.

The proactor/watchdog half of the live control plane.
:class:`SupervisedSupervisorActor` extends the plain
:class:`~repro.serving.runtime.actors.SupervisorActor` with everything
needed to survive the faults :mod:`repro.serving.runtime.chaos` injects
(and the real-world failures they model):

* **sequenced arrivals** — every
  :class:`~repro.serving.runtime.messages.ArrivalBatch` carries its
  stream cursor; out-of-order batches buffer, overlapping ones are
  trimmed, and each arrival is applied to the controller *exactly once*
  in canonical order — the property that makes every recovery below
  result-invisible;
* **per-job deadlines and heartbeats** — each dispatched
  :class:`~repro.serving.dispatch.ShardJob` gets a deadline, refreshed
  by the executing chip actor's
  :class:`~repro.serving.runtime.messages.Heartbeat`; a missed deadline
  means crashed/hung/lost work and triggers re-dispatch;
* **retry with deterministic capped backoff** — :func:`backoff_s` is a
  pure function of ``(seed, job_id, attempt)``, the seed coming from
  the scenario spec hash, so retry timing is byte-reproducible;
* **restart, quarantine and graceful degradation** — a crashed chip
  actor is restarted in place; one that keeps failing is quarantined
  and its work re-dispatched onto survivors; with *every* slot
  quarantined the supervisor runs jobs inline, so the run still
  terminates;
* **an auto-checkpoint ring** — every ``checkpoint_every`` arrivals the
  supervisor snapshots controller state into a bounded ring of
  :class:`~repro.serving.runtime.checkpoint.Checkpoint` values (PR 9's
  format, byte-for-byte); when the supervisor itself crashes, the
  driver (:func:`repro.serving.runtime.service.run_supervised`) rebuilds
  a fresh session from the newest ring entry;
* **an incident timeline** — every detection and recovery appends an
  :class:`ActorIncident`; the timeline reaches the scenario report's
  conditional ``incidents`` block, but never the result itself, because
  incident *timing* is wall-clock-dependent while the *result* is not.

Why recovery cannot change the answer: arrivals apply exactly once in
canonical order (sequencing), shard jobs are pure values (a re-run is
the same value), and ``controller.collect`` consumes only the keyed
results — so any interleaving of crashes, restarts, retries and
re-dispatches computes the identical report, which the chaos
differential suite asserts byte-for-byte.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..queue import ServingRequest
from .actors import DEFAULT_BATCH_SIZE, ChipActor, IngestionActor, SupervisorActor
from .checkpoint import Checkpoint
from .messages import (
    ActorCrashed,
    ArrivalBatch,
    Heartbeat,
    PauseStream,
    RunShard,
    ShardDone,
    StreamEnded,
)

#: The incident lifecycle vocabulary (see ``docs/runtime.md`` for the
#: detect → recover FSM these kinds trace through).
INCIDENT_KINDS: Tuple[str, ...] = (
    "crash",
    "hang",
    "stall",
    "retry",
    "redispatch",
    "restart",
    "quarantine",
    "inline_fallback",
    "ingest_error",
    "supervisor_restart",
    "give_up",
)


@dataclass(frozen=True)
class ActorIncident:
    """One entry of a supervised run's incident timeline.

    Coordinates are logical, never wall-clock: ``session`` numbers the
    supervisor's life (bumped on supervisor restart), ``actor`` names
    the subject, ``job_id``/``attempt`` locate shard-job incidents.
    ``kind`` is one of :data:`INCIDENT_KINDS`; ``detail`` is the human
    sentence.
    """

    session: int
    actor: str
    kind: str
    detail: str
    job_id: int = -1
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in INCIDENT_KINDS:
            raise ValueError(
                f"incident kind must be one of {INCIDENT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.session < 1:
            raise ValueError("incident session must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to plain JSON data (job fields only when set)."""
        data: Dict[str, Any] = {
            "session": self.session,
            "actor": self.actor,
            "kind": self.kind,
            "detail": self.detail,
        }
        if self.job_id >= 0:
            data["job_id"] = self.job_id
        if self.attempt > 0:
            data["attempt"] = self.attempt
        return data


@dataclass(frozen=True)
class SupervisionConfig:
    """Tunables of the supervision layer.

    ``job_deadline_s`` bounds one shard execution (refreshed by
    heartbeats); ``stall_deadline_s`` bounds arrival-stream silence
    before the ingestion actor is declared lost and restarted;
    ``tick_s`` paces the watchdog.  ``backoff_base_s``/``backoff_cap_s``
    shape :func:`backoff_s`, seeded by ``seed`` (the scenario path
    passes ``spec.derive_seed("supervision")``).  A chip actor is
    quarantined after ``quarantine_after`` crashes; a job fails the run
    after ``max_retries`` retries.  Controller state is snapshotted
    every ``checkpoint_every`` arrivals into a ring of the newest
    ``checkpoint_ring`` entries.  ``max_ingest_restarts`` and
    ``max_sessions`` bound the two recovery loops so a genuinely broken
    run fails cleanly instead of cycling forever.
    """

    job_deadline_s: float = 30.0
    stall_deadline_s: float = 10.0
    tick_s: float = 0.05
    backoff_base_s: float = 0.01
    backoff_cap_s: float = 1.0
    max_retries: int = 3
    quarantine_after: int = 2
    checkpoint_every: int = 4096
    checkpoint_ring: int = 4
    max_ingest_restarts: int = 8
    max_sessions: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("job_deadline_s", "stall_deadline_s", "tick_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff parameters must be >= 0")
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("backoff_cap_s must be >= backoff_base_s")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.checkpoint_ring < 1:
            raise ValueError("checkpoint_ring must be >= 1")
        if self.max_ingest_restarts < 1:
            raise ValueError("max_ingest_restarts must be >= 1")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")


def backoff_s(config: SupervisionConfig, job_id: int, attempt: int) -> float:
    """Deterministic capped exponential backoff with seeded jitter.

    A pure function of ``(config.seed, job_id, attempt)`` — the same
    retry of the same job under the same spec always waits the same
    time, so supervised schedules are byte-reproducible.  Exponential in
    ``attempt`` (doubling from ``backoff_base_s``), jittered by a factor
    in ``[0.5, 1.5)`` drawn from a throwaway :class:`random.Random`, and
    capped at ``backoff_cap_s``.
    """
    if attempt < 1:
        raise ValueError("attempt must be >= 1")
    rng = random.Random(
        config.seed * 1_000_003 + job_id * 10_007 + attempt
    )
    raw = config.backoff_base_s * (2.0 ** (attempt - 1))
    return min(config.backoff_cap_s, raw * (0.5 + rng.random()))


class SupervisedSupervisorActor(SupervisorActor):
    """A :class:`SupervisorActor` that recovers what chaos breaks.

    Construction wires in everything that must *outlive* one supervisor
    session: the shared incident list, the auto-checkpoint ring and the
    trace digest checkpoints pin.  ``arrivals`` is the canonical-order
    arrival sequence (the supervisor restarts its own ingestion from it
    on stream stalls); ``start_at`` is the resume cursor when the
    session was rebuilt from a ring checkpoint.
    """

    def __init__(
        self,
        controller: Any,
        n_chips: int,
        *,
        arrivals: Sequence[Tuple[int, ServingRequest]],
        config: SupervisionConfig,
        incidents: List[ActorIncident],
        ring: "Deque[Checkpoint]",
        digest: str,
        start_at: int = 0,
        session: int = 1,
        batch_size: int = DEFAULT_BATCH_SIZE,
        pace: Optional[float] = None,
    ) -> None:
        super().__init__(controller, n_chips)
        self.config = config
        self.incidents = incidents
        self.ring = ring
        self.digest = digest
        self.session = session
        self._arrivals = arrivals
        self._batch_size = batch_size
        self._pace = pace
        self._expected = start_at
        self._next_ckpt = start_at + config.checkpoint_every
        self._buffer: Dict[int, ArrivalBatch] = {}
        self._stream_total: Optional[int] = None
        self._finishing = False
        self._jobs: Dict[int, Any] = {}
        self._attempts: Dict[int, int] = {}
        self._deadlines: Dict[int, float] = {}
        self._where: Dict[int, int] = {}
        self._job_done: Set[int] = set()
        self._avoid: Dict[int, int] = {}
        self._last_error: Dict[int, BaseException] = {}
        self._strikes: Dict[int, int] = {}
        self._quarantined: Set[int] = set()
        self._ingestion: Optional[IngestionActor] = None
        self._ingest_restarts = 0
        self._last_progress = asyncio.get_running_loop().time()
        self._monitor_task: Optional["asyncio.Task[None]"] = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Launch supervisor, chips, the watchdog, and ingestion."""
        super().start()
        loop = asyncio.get_running_loop()
        self._monitor_task = loop.create_task(
            self._monitor(), name="supervision-monitor"
        )
        self._spawn_ingestion(self._expected)

    async def shutdown(self) -> None:
        """Tear the whole session down (watchdog, ingestion, actors)."""
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
        if self._ingestion is not None:
            await self._ingestion.cancel()
        await self.stop()

    def _incident(
        self,
        actor: str,
        kind: str,
        detail: str,
        *,
        job_id: int = -1,
        attempt: int = 0,
    ) -> None:
        self.incidents.append(
            ActorIncident(
                session=self.session,
                actor=actor,
                kind=kind,
                detail=detail,
                job_id=job_id,
                attempt=attempt,
            )
        )

    def _fail(self, error: BaseException) -> None:
        if not self.outcome.done():
            self.outcome.set_exception(error)

    # -- message handling ---------------------------------------------

    async def on_message(self, message: Any) -> None:
        """Advance the run by one protocol message, recoverably."""
        try:
            if isinstance(message, ArrivalBatch):
                self._on_batch(message)
            elif isinstance(message, PauseStream):
                self.outcome.set_result(
                    ("paused", message.cursor, self.controller.state_dict())
                )
            elif isinstance(message, StreamEnded):
                self._stream_total = message.total
                self._maybe_finish()
            elif isinstance(message, ShardDone):
                self._on_done(message)
            elif isinstance(message, Heartbeat):
                self._on_heartbeat(message)
            elif isinstance(message, ActorCrashed):
                self._on_crash(message)
        except Exception as error:
            self._fail(error)

    # -- sequenced arrival application --------------------------------

    def _on_batch(self, batch: ArrivalBatch) -> None:
        if batch.start < 0:
            # Unsequenced (hand-posted in tests): apply verbatim.
            for index, request in batch.arrivals:
                self.controller.on_arrival(index, request)
            self._seen += len(batch.arrivals)
            return
        if batch.start > self._expected:
            # A gap: an earlier batch was dropped or is delayed in
            # flight.  Park this one; the watchdog restarts ingestion
            # from the gap if nothing fills it.
            self._buffer.setdefault(batch.start, batch)
            return
        self._apply(batch)
        while True:
            ready = None
            for start, parked in self._buffer.items():
                if start <= self._expected < start + len(parked.arrivals):
                    ready = start
                    break
            if ready is None:
                break
            self._apply(self._buffer.pop(ready))
        # Batches entirely behind the cursor are duplicates; drop them.
        stale = [
            start
            for start, parked in self._buffer.items()
            if start + len(parked.arrivals) <= self._expected
        ]
        for start in stale:
            del self._buffer[start]
        self._maybe_finish()

    def _apply(self, batch: ArrivalBatch) -> None:
        # Trim the already-applied overlap so every arrival is applied
        # exactly once, in canonical order, no matter how ingestion
        # restarts and chaos delays interleave.
        offset = self._expected - batch.start
        pairs = batch.arrivals[offset:]
        if not pairs:
            return
        for index, request in pairs:
            self.controller.on_arrival(index, request)
        self._expected += len(pairs)
        self._seen += len(pairs)
        self._last_progress = asyncio.get_running_loop().time()
        if self._expected >= self._next_ckpt:
            self.ring.append(
                Checkpoint(
                    kind=self.controller.kind,
                    cursor=self._expected,
                    controller=self.controller.state_dict(),
                    trace_sha256=self.digest,
                )
            )
            while self._next_ckpt <= self._expected:
                self._next_ckpt += self.config.checkpoint_every

    # -- closing shard execution --------------------------------------

    def _maybe_finish(self) -> None:
        if (
            self._finishing
            or self._stream_total is None
            or self._expected < self._stream_total
        ):
            return
        self._finishing = True
        self.controller.finish_events()
        jobs = self.controller.final_jobs()
        if not jobs:
            self.outcome.set_result(("done", self.controller.collect({})))
            return
        self._jobs = {job_id: job for job_id, job in enumerate(jobs)}
        for job_id in sorted(self._jobs):
            self._dispatch(job_id)

    def _dispatch(self, job_id: int) -> None:
        try:
            if job_id in self._job_done or self.outcome.done():
                return
            job = self._jobs[job_id]
            attempt = self._attempts.get(job_id, 0) + 1
            if attempt > self.config.max_retries + 1:
                last = self._last_error.get(job_id)
                self._incident(
                    f"chip-{job.chip_id}",
                    "give_up",
                    f"job {job_id} failed {attempt - 1} attempts",
                    job_id=job_id,
                    attempt=attempt - 1,
                )
                self._fail(
                    last
                    if last is not None
                    else RuntimeError(
                        f"shard job {job_id} lost {attempt - 1} times "
                        "without a reported error"
                    )
                )
                return
            self._attempts[job_id] = attempt
            actor = self._pick_actor(job, avoid=self._avoid.get(job_id))
            if actor is None:
                # Every chip slot is quarantined or dead: graceful
                # degradation — the supervisor runs the job itself.
                self._incident(
                    "supervisor",
                    "inline_fallback",
                    f"no live chip actor for job {job_id}; running inline",
                    job_id=job_id,
                    attempt=attempt,
                )
                self._record(job_id, job.chip_id, job.run())
                return
            if actor.chip_id != job.chip_id:
                self._incident(
                    actor.name,
                    "redispatch",
                    f"job {job_id} re-dispatched from chip-{job.chip_id}",
                    job_id=job_id,
                    attempt=attempt,
                )
            loop = asyncio.get_running_loop()
            self._deadlines[job_id] = (
                loop.time() + self.config.job_deadline_s
            )
            self._where[job_id] = actor.chip_id
            actor.post(RunShard(job=job, job_id=job_id, attempt=attempt))
        except Exception as error:
            self._fail(error)

    def _alive(self, slot: int) -> bool:
        if slot in self._quarantined:
            return False
        task = self.chips[slot]._task
        return task is not None and not task.done()

    def _pick_actor(
        self, job: Any, avoid: Optional[int] = None
    ) -> Optional[ChipActor]:
        candidates = [
            slot for slot in range(len(self.chips)) if self._alive(slot)
        ]
        if avoid is not None and len(candidates) > 1:
            candidates = [slot for slot in candidates if slot != avoid]
        if not candidates:
            return None
        if job.chip_id in candidates:
            return self.chips[job.chip_id]
        return self.chips[candidates[0]]

    def _record(self, job_id: int, chip_id: int, result: Any) -> None:
        if job_id in self._job_done:
            return
        self._job_done.add(job_id)
        self._results[chip_id] = result
        self._deadlines.pop(job_id, None)
        self._where.pop(job_id, None)
        if len(self._job_done) == len(self._jobs) and not self.outcome.done():
            self.outcome.set_result(
                ("done", self.controller.collect(self._results))
            )

    def _on_done(self, message: ShardDone) -> None:
        if message.job_id in self._job_done:
            # A re-dispatched job finishing twice: jobs are pure, the
            # duplicate result is the same value — drop it.
            return
        self._record(message.job_id, message.chip_id, message.result)

    def _on_heartbeat(self, message: Heartbeat) -> None:
        # "Alive, starting work": refresh the deadline of whatever job
        # is in flight on that slot, so queued-then-started jobs get a
        # full execution window.
        try:
            slot = int(message.actor.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return
        loop = asyncio.get_running_loop()
        for job_id, where in self._where.items():
            if where == slot and job_id not in self._job_done:
                self._deadlines[job_id] = (
                    loop.time() + self.config.job_deadline_s
                )

    # -- failure detection and recovery -------------------------------

    def _on_crash(self, message: ActorCrashed) -> None:
        if message.actor == "ingestion":
            # A real ingestion failure (e.g. TraceIngestError): not
            # recoverable by retry — fail the run cleanly with the
            # original error.
            self._incident(
                "ingestion", "ingest_error", message.error
            )
            self._fail(
                message.cause
                if message.cause is not None
                else RuntimeError(
                    f"ingestion crashed: {message.error}"
                )
            )
            return
        try:
            slot = int(message.actor.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            self._fail(
                RuntimeError(
                    f"unknown actor {message.actor!r} crashed: "
                    f"{message.error}"
                )
            )
            return
        self._incident(
            message.actor,
            "crash",
            message.error,
            job_id=message.job_id,
            attempt=self._attempts.get(message.job_id, 0),
        )
        strikes = self._strikes.get(slot, 0) + 1
        self._strikes[slot] = strikes
        if strikes >= self.config.quarantine_after:
            if slot not in self._quarantined:
                self._quarantined.add(slot)
                self._incident(
                    message.actor,
                    "quarantine",
                    f"chip-{slot} quarantined after {strikes} crashes",
                )
        else:
            chip = ChipActor(slot, self)
            if self.chaos is not None:
                chip.chaos = self.chaos
            self.chips[slot] = chip
            chip.start()
            self._incident(
                message.actor,
                "restart",
                f"chip-{slot} restarted after crash {strikes}",
            )
        if message.cause is not None and message.job_id >= 0:
            self._last_error[message.job_id] = message.cause
        if (
            message.job_id >= 0
            and message.job_id not in self._job_done
        ):
            self._avoid.pop(message.job_id, None)
            self._schedule_retry(message.job_id)

    def _schedule_retry(self, job_id: int) -> None:
        self._deadlines.pop(job_id, None)
        self._where.pop(job_id, None)
        attempt = self._attempts.get(job_id, 0)
        delay = backoff_s(self.config, job_id, max(1, attempt))
        self._incident(
            "supervisor",
            "retry",
            f"job {job_id} retrying in {delay:.4f}s",
            job_id=job_id,
            attempt=attempt,
        )
        asyncio.get_running_loop().call_later(
            delay, self._dispatch, job_id
        )

    def _spawn_ingestion(self, start_at: int) -> None:
        if self._ingestion is not None:
            task = self._ingestion._task
            if task is not None and not task.done():
                task.cancel()
        actor = IngestionActor(
            self._arrivals,
            self,
            batch_size=self._batch_size,
            pace=self._pace,
            start_at=start_at,
        )
        if self.chaos is not None:
            actor.chaos = self.chaos
        actor.start()
        self._ingestion = actor
        self._last_progress = asyncio.get_running_loop().time()

    async def _monitor(self) -> None:
        """The watchdog: deadlines, stream stalls, lost work."""
        loop = asyncio.get_running_loop()
        while not self.outcome.done():
            await asyncio.sleep(self.config.tick_s)
            now = loop.time()
            for job_id in list(self._deadlines):
                if (
                    job_id in self._job_done
                    or now < self._deadlines[job_id]
                ):
                    continue
                slot = self._where.get(job_id)
                self._incident(
                    f"chip-{slot}" if slot is not None else "supervisor",
                    "hang",
                    f"job {job_id} missed its "
                    f"{self.config.job_deadline_s:g}s deadline",
                    job_id=job_id,
                    attempt=self._attempts.get(job_id, 0),
                )
                if slot is not None:
                    self._avoid[job_id] = slot
                self._schedule_retry(job_id)
            stream_open = (
                self._stream_total is None
                or self._expected < self._stream_total
            )
            if (
                stream_open
                and not self._finishing
                and now - self._last_progress > self.config.stall_deadline_s
            ):
                self._ingest_restarts += 1
                if self._ingest_restarts > self.config.max_ingest_restarts:
                    self._fail(
                        RuntimeError(
                            "arrival stream stalled "
                            f"{self._ingest_restarts} times; giving up"
                        )
                    )
                    return
                self._incident(
                    "ingestion",
                    "stall",
                    f"no arrivals for {self.config.stall_deadline_s:g}s; "
                    f"restarting stream at cursor {self._expected}",
                )
                self._spawn_ingestion(self._expected)


__all__ = [
    "INCIDENT_KINDS",
    "ActorIncident",
    "SupervisedSupervisorActor",
    "SupervisionConfig",
    "backoff_s",
]
