"""Chaos injection at the actor/mailbox boundary of the live runtime.

The adversary of :mod:`repro.serving.runtime.supervision`: a
:class:`ChaosSchedule` is a validated, seed-generated timeline of
runtime faults — actor crashes, actor hangs, dropped messages, delayed
messages — and a :class:`ChaosInjector` plays it against a live run by
interposing on exactly two seams of :class:`~repro.serving.runtime.actors.Actor`:

* :meth:`ChaosInjector.intercept` sits inside ``Actor.post`` and may
  swallow a message (``drop_message``) or re-enqueue it later via the
  event loop (``delay_message``);
* :meth:`ChaosInjector.before_work` runs before each unit of actor work
  and may raise :class:`ChaosCrash` (``crash_actor``) or sleep
  (``hang_actor``).

No engine, controller or actor *logic* knows chaos exists — the vanilla
runtime carries a ``chaos = None`` attribute and pays nothing.  Faults
are addressed by *logical coordinates*, never wall-clock time:
``crash_actor("chip", at_shard=3)`` crashes a chip actor when it picks
up its 4th unit of work, ``drop_message("ShardDone", nth=1)`` swallows
the 2nd ``ShardDone`` posted anywhere in the run.  One schedule
therefore replays identically across machines, and events whose ordinal
never occurs simply do not fire.

The headline invariant (CI-enforced by the chaos differential suite):
**any** chaos schedule, played against a supervised live run, yields a
final report ``==``- and byte-identical to the undisturbed run — because
arrivals are applied exactly once in canonical order, shard jobs are
pure, and recovery only re-executes work whose result is a function of
its inputs.  Chaos perturbs *when* things happen; supervision guarantees
it cannot perturb *what* is computed.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Sequence, Set, Tuple

#: Actor roles chaos can target (``Actor.name`` prefixes).
CHAOS_ACTOR_KINDS: Tuple[str, ...] = ("ingestion", "chip", "supervisor")

#: Message types chaos can drop or delay (class names from
#: :mod:`repro.serving.runtime.messages`).
CHAOS_MESSAGE_KINDS: Tuple[str, ...] = (
    "ArrivalBatch",
    "StreamEnded",
    "PauseStream",
    "RunShard",
    "ShardDone",
    "Heartbeat",
    "ActorCrashed",
)

#: The four chaos fault kinds.
CHAOS_KINDS: Tuple[str, ...] = (
    "crash_actor",
    "hang_actor",
    "drop_message",
    "delay_message",
)

#: Wall-clock seconds one "shard" of :func:`hang_actor` hang lasts.
DEFAULT_HANG_UNIT_S = 0.02


class ChaosCrash(RuntimeError):
    """An injected actor crash — raised by the injector, never by real code.

    The supervision layer treats it exactly like any other actor death;
    its only special role is in the ingestion actor, which dies silently
    on it (no :class:`~repro.serving.runtime.messages.ActorCrashed`
    report) so the stall watchdog — not the crash report — must detect
    the lost stream.
    """


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled runtime fault, addressed by logical coordinates.

    ``actor``/``at`` locate actor faults (``crash_actor``,
    ``hang_actor``): the target actor *kind* and the 0-based ordinal of
    the work unit at which the fault fires — a shard job for chips, an
    arrival batch for ingestion, a processed message for the
    supervisor.  ``message``/``nth`` locate message faults
    (``drop_message``, ``delay_message``): a message type name and the
    0-based ordinal of that type's post, counted runtime-wide.
    ``for_shards`` sizes a hang; ``by_s`` sizes a delay.  Every event
    fires at most once.
    """

    kind: str
    actor: str = ""
    message: str = ""
    at: int = -1
    nth: int = -1
    for_shards: int = 0
    by_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"chaos kind must be one of {CHAOS_KINDS}, got {self.kind!r}"
            )
        if self.kind in ("crash_actor", "hang_actor"):
            if self.actor not in CHAOS_ACTOR_KINDS:
                raise ValueError(
                    f"chaos actor must be one of {CHAOS_ACTOR_KINDS}, "
                    f"got {self.actor!r}"
                )
            if self.at < 0:
                raise ValueError("chaos at must be >= 0 for actor faults")
            if self.message or self.nth != -1 or self.by_s != 0.0:
                raise ValueError(
                    "message/nth/by_s do not apply to actor faults"
                )
            if self.kind == "hang_actor":
                if self.for_shards < 1:
                    raise ValueError("hang_actor for_shards must be >= 1")
            elif self.for_shards != 0:
                raise ValueError("for_shards only applies to hang_actor")
        else:
            if self.message not in CHAOS_MESSAGE_KINDS:
                raise ValueError(
                    f"chaos message must be one of {CHAOS_MESSAGE_KINDS}, "
                    f"got {self.message!r}"
                )
            if self.nth < 0:
                raise ValueError("chaos nth must be >= 0 for message faults")
            if self.actor or self.at != -1 or self.for_shards != 0:
                raise ValueError(
                    "actor/at/for_shards do not apply to message faults"
                )
            if self.kind == "delay_message":
                if self.by_s <= 0:
                    raise ValueError("delay_message by_s must be positive")
            elif self.by_s != 0.0:
                raise ValueError("by_s only applies to delay_message")

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to plain JSON data, kind-specific fields only."""
        data: Dict[str, Any] = {"kind": self.kind}
        if self.kind in ("crash_actor", "hang_actor"):
            data["actor"] = self.actor
            data["at"] = self.at
            if self.kind == "hang_actor":
                data["for_shards"] = self.for_shards
        else:
            data["message"] = self.message
            data["nth"] = self.nth
            if self.kind == "delay_message":
                data["by_s"] = self.by_s
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosEvent":
        """Rebuild an event from :meth:`to_dict` data (re-validating)."""
        return cls(
            kind=data["kind"],
            actor=data.get("actor", ""),
            message=data.get("message", ""),
            at=data.get("at", -1),
            nth=data.get("nth", -1),
            for_shards=data.get("for_shards", 0),
            by_s=data.get("by_s", 0.0),
        )


def crash_actor(kind: str, at_shard: int) -> ChaosEvent:
    """A ``crash_actor`` event: kill a ``kind`` actor at work unit ``at_shard``."""
    return ChaosEvent(kind="crash_actor", actor=kind, at=at_shard)


def hang_actor(kind: str, at_shard: int, for_shards: int) -> ChaosEvent:
    """A ``hang_actor`` event: wedge a ``kind`` actor for ``for_shards`` units."""
    return ChaosEvent(
        kind="hang_actor", actor=kind, at=at_shard, for_shards=for_shards
    )


def drop_message(kind: str, nth: int) -> ChaosEvent:
    """A ``drop_message`` event: swallow the ``nth`` post of type ``kind``."""
    return ChaosEvent(kind="drop_message", message=kind, nth=nth)


def delay_message(kind: str, nth: int, by_s: float) -> ChaosEvent:
    """A ``delay_message`` event: re-deliver the ``nth`` ``kind`` post late."""
    return ChaosEvent(kind="delay_message", message=kind, nth=nth, by_s=by_s)


@dataclass(frozen=True)
class ChaosSchedule:
    """A validated, replayable set of chaos events.

    Order is irrelevant — events are addressed by logical coordinates,
    not sequence — but the tuple is kept as given so serialization round
    trips exactly.
    """

    events: Tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, ChaosEvent):
                raise ValueError(
                    f"chaos schedule entries must be ChaosEvent, "
                    f"got {type(event).__name__}"
                )

    def __bool__(self) -> bool:
        return bool(self.events)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the schedule to plain JSON data."""
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosSchedule":
        """Rebuild a schedule from :meth:`to_dict` data (re-validating)."""
        return cls(
            events=tuple(
                ChaosEvent.from_dict(event) for event in data["events"]
            )
        )


def generate_chaos_schedule(
    seed: int,
    *,
    n_chips: int,
    n_batches: int,
    n_crashes: int = 0,
    n_hangs: int = 0,
    n_drops: int = 0,
    n_delays: int = 0,
    n_supervisor_crashes: int = 0,
    hang_shards: int = 2,
    delay_s: float = 0.05,
) -> ChaosSchedule:
    """Generate a seeded :class:`ChaosSchedule` for a run's rough shape.

    ``n_chips`` bounds the shard ordinals chip faults target and
    ``n_batches`` the message ordinals stream faults target; the counts
    pick how many of each fault kind to draw.  The same ``seed`` always
    yields the same schedule — scenario integration seeds this from the
    spec hash (``spec.derive_seed("chaos")``), so a scenario's chaos is
    part of its identity.  Ordinals that a particular run never reaches
    are harmless: those events simply never fire.
    """
    if n_chips < 1:
        raise ValueError("n_chips must be >= 1")
    if n_batches < 1:
        raise ValueError("n_batches must be >= 1")
    for name, value in (
        ("n_crashes", n_crashes),
        ("n_hangs", n_hangs),
        ("n_drops", n_drops),
        ("n_delays", n_delays),
        ("n_supervisor_crashes", n_supervisor_crashes),
    ):
        if value < 0:
            raise ValueError(f"{name} must be >= 0")
    rng = random.Random(seed)
    events = []
    # Chip shard ordinals: each chip runs at least one closing shard, so
    # targeting [0, n_chips) guarantees most events actually fire.
    for _ in range(n_crashes):
        events.append(crash_actor("chip", rng.randrange(n_chips)))
    for _ in range(n_hangs):
        events.append(
            hang_actor("chip", rng.randrange(n_chips), hang_shards)
        )
    droppable = ("ArrivalBatch", "RunShard", "ShardDone", "StreamEnded")
    for _ in range(n_drops):
        kind = rng.choice(droppable)
        bound = n_batches if kind == "ArrivalBatch" else n_chips
        nth = 0 if kind == "StreamEnded" else rng.randrange(bound)
        events.append(drop_message(kind, nth))
    for _ in range(n_delays):
        kind = rng.choice(("ArrivalBatch", "ShardDone"))
        bound = n_batches if kind == "ArrivalBatch" else n_chips
        events.append(delay_message(kind, rng.randrange(bound), delay_s))
    for _ in range(n_supervisor_crashes):
        events.append(crash_actor("supervisor", rng.randrange(n_batches)))
    return ChaosSchedule(events=tuple(events))


class ChaosInjector:
    """Plays a :class:`ChaosSchedule` against a live run's actors.

    One injector spans an entire supervised run — including supervisor
    restarts — so each event fires at most once per *run*, not per
    session; post and work counters likewise accumulate across sessions.
    Install on an actor with :meth:`install` (sets ``actor.chaos``).
    """

    def __init__(
        self,
        schedule: ChaosSchedule,
        *,
        hang_unit_s: float = DEFAULT_HANG_UNIT_S,
    ) -> None:
        if hang_unit_s <= 0:
            raise ValueError("hang_unit_s must be positive")
        self.schedule = schedule
        self.hang_unit_s = hang_unit_s
        self._fired: Set[int] = set()
        self._post_counts: Dict[str, int] = {}
        self._work_counts: Dict[str, int] = {}

    @staticmethod
    def actor_kind(actor: Any) -> str:
        """Map an actor instance to its chaos kind via its name."""
        name = actor.name
        if name.startswith("chip-"):
            return "chip"
        return name

    def install(self, *actors: Any) -> None:
        """Point each actor's ``chaos`` seam at this injector."""
        for actor in actors:
            actor.chaos = self

    @property
    def n_fired(self) -> int:
        """How many of the schedule's events have fired so far."""
        return len(self._fired)

    def intercept(self, actor: Any, message: Any) -> bool:
        """Drop or delay ``message``; return ``True`` to swallow it.

        Called from ``Actor.post`` for every inbound message.  A delayed
        message is re-enqueued directly into the inbox after ``by_s``
        seconds, bypassing re-interception (one event, one delay).
        """
        name = type(message).__name__
        n = self._post_counts.get(name, 0)
        self._post_counts[name] = n + 1
        for i, event in enumerate(self.schedule.events):
            if i in self._fired or event.message != name or event.nth != n:
                continue
            if event.kind == "drop_message":
                self._fired.add(i)
                return True
            if event.kind == "delay_message":
                self._fired.add(i)
                asyncio.get_running_loop().call_later(
                    event.by_s, actor.inbox.put_nowait, message
                )
                return True
        return False

    async def before_work(self, actor: Any) -> None:
        """Crash or hang ``actor`` at this work unit, per the schedule.

        Called by the actor loops before each unit of work: a shard job
        for chips, an arrival batch for ingestion, a processed message
        for the supervisor.  ``crash_actor`` raises :class:`ChaosCrash`;
        ``hang_actor`` sleeps ``for_shards * hang_unit_s`` seconds.
        """
        kind = self.actor_kind(actor)
        n = self._work_counts.get(kind, 0)
        self._work_counts[kind] = n + 1
        for i, event in enumerate(self.schedule.events):
            if i in self._fired or event.actor != kind or event.at != n:
                continue
            if event.kind == "crash_actor":
                self._fired.add(i)
                raise ChaosCrash(
                    f"chaos: crash {actor.name} at work unit {n}"
                )
            if event.kind == "hang_actor":
                self._fired.add(i)
                await asyncio.sleep(event.for_shards * self.hang_unit_s)


__all__ = [
    "CHAOS_ACTOR_KINDS",
    "CHAOS_KINDS",
    "CHAOS_MESSAGE_KINDS",
    "DEFAULT_HANG_UNIT_S",
    "ChaosCrash",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosSchedule",
    "crash_actor",
    "delay_message",
    "drop_message",
    "generate_chaos_schedule",
    "hang_actor",
]
