"""Live serving control plane: asyncio actors over the batch engines.

The runtime moves fleet serving from offline batch replay to a
long-running control plane — streaming ingestion, supervised dispatch,
pause/resume — without forking the computation: the supervisor actor
drives the *same* stepwise dispatch controllers
(:mod:`repro.serving.dispatch`, :mod:`repro.serving.faults`) the batch
``run`` entry points drive, in the same canonical arrival order, so a
live run is byte-identical to its batch twin on records, scale events,
fault eras and golden reports (the differential suite asserts ``==``,
not approximation).

Layout: :mod:`~repro.serving.runtime.messages` defines the typed
dataclass messages actors exchange; :mod:`~repro.serving.runtime.actors`
the ingestion/chip/supervisor actors; :mod:`~repro.serving.runtime.
checkpoint` the JSON pause/resume format;
:mod:`~repro.serving.runtime.supervision` the self-healing layer
(heartbeats, deadlines, retry/quarantine recovery, the auto-checkpoint
ring, the incident timeline); :mod:`~repro.serving.runtime.chaos` its
adversary (seeded runtime-fault schedules injected at the mailbox
boundary); and :mod:`~repro.serving.runtime.service` the synchronous
entry points (:func:`run_live`, :func:`resume_live`,
:func:`run_supervised`, and the scenario couplings).
"""

from .actors import (
    DEFAULT_BATCH_SIZE,
    STOP_TIMEOUT_S,
    Actor,
    ChipActor,
    IngestionActor,
    SupervisorActor,
)
from .chaos import (
    CHAOS_ACTOR_KINDS,
    CHAOS_KINDS,
    CHAOS_MESSAGE_KINDS,
    DEFAULT_HANG_UNIT_S,
    ChaosCrash,
    ChaosEvent,
    ChaosInjector,
    ChaosSchedule,
    crash_actor,
    delay_message,
    drop_message,
    generate_chaos_schedule,
    hang_actor,
)
from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    trace_digest,
)
from .messages import (
    ActorCrashed,
    ArrivalBatch,
    Heartbeat,
    PauseStream,
    RunShard,
    ShardDone,
    Shutdown,
    StreamEnded,
)
from .service import (
    SupervisedRun,
    TraceIngestError,
    requests_from_chunks,
    requests_from_lines,
    resume_live,
    resume_scenario,
    run_live,
    run_scenario_live,
    run_scenario_supervised,
    run_supervised,
)
from .supervision import (
    INCIDENT_KINDS,
    ActorIncident,
    SupervisedSupervisorActor,
    SupervisionConfig,
    backoff_s,
)

__all__ = [
    "CHAOS_ACTOR_KINDS",
    "CHAOS_KINDS",
    "CHAOS_MESSAGE_KINDS",
    "CHECKPOINT_VERSION",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_HANG_UNIT_S",
    "INCIDENT_KINDS",
    "STOP_TIMEOUT_S",
    "Actor",
    "ActorCrashed",
    "ActorIncident",
    "ArrivalBatch",
    "ChaosCrash",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosSchedule",
    "Checkpoint",
    "CheckpointError",
    "ChipActor",
    "Heartbeat",
    "IngestionActor",
    "PauseStream",
    "RunShard",
    "ShardDone",
    "Shutdown",
    "StreamEnded",
    "SupervisedRun",
    "SupervisedSupervisorActor",
    "SupervisionConfig",
    "SupervisorActor",
    "TraceIngestError",
    "backoff_s",
    "crash_actor",
    "delay_message",
    "drop_message",
    "generate_chaos_schedule",
    "hang_actor",
    "requests_from_chunks",
    "requests_from_lines",
    "resume_live",
    "resume_scenario",
    "run_live",
    "run_scenario_live",
    "run_scenario_supervised",
    "run_supervised",
    "trace_digest",
]
