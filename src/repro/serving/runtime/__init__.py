"""Live serving control plane: asyncio actors over the batch engines.

The runtime moves fleet serving from offline batch replay to a
long-running control plane — streaming ingestion, supervised dispatch,
pause/resume — without forking the computation: the supervisor actor
drives the *same* stepwise dispatch controllers
(:mod:`repro.serving.dispatch`, :mod:`repro.serving.faults`) the batch
``run`` entry points drive, in the same canonical arrival order, so a
live run is byte-identical to its batch twin on records, scale events,
fault eras and golden reports (the differential suite asserts ``==``,
not approximation).

Layout: :mod:`~repro.serving.runtime.messages` defines the typed
dataclass messages actors exchange; :mod:`~repro.serving.runtime.actors`
the ingestion/chip/supervisor actors; :mod:`~repro.serving.runtime.
checkpoint` the JSON pause/resume format; and
:mod:`~repro.serving.runtime.service` the synchronous entry points
(:func:`run_live`, :func:`resume_live`, and the scenario couplings).
"""

from .actors import (
    DEFAULT_BATCH_SIZE,
    Actor,
    ChipActor,
    IngestionActor,
    SupervisorActor,
)
from .checkpoint import CHECKPOINT_VERSION, Checkpoint, trace_digest
from .messages import (
    ArrivalBatch,
    PauseStream,
    RunShard,
    ShardDone,
    Shutdown,
    StreamEnded,
)
from .service import (
    requests_from_chunks,
    requests_from_lines,
    resume_live,
    resume_scenario,
    run_live,
    run_scenario_live,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "DEFAULT_BATCH_SIZE",
    "Actor",
    "ArrivalBatch",
    "Checkpoint",
    "ChipActor",
    "IngestionActor",
    "PauseStream",
    "RunShard",
    "ShardDone",
    "Shutdown",
    "StreamEnded",
    "SupervisorActor",
    "requests_from_chunks",
    "requests_from_lines",
    "resume_live",
    "resume_scenario",
    "run_live",
    "run_scenario_live",
    "trace_digest",
]
