"""Checkpoint format of the live serving runtime.

A :class:`Checkpoint` freezes a paused run at an arrival boundary: the
``cursor`` (how many arrivals of the canonical ``(arrival_s,
request_id)`` order the controller has consumed), the controller's
serialized dynamic state (see the ``state_dict`` methods in
:mod:`repro.serving.dispatch` and :mod:`repro.serving.faults`), and a
digest of the trace it was taken against.  Pure memo caches are *not*
checkpointed — they change speed, never values, and rebuild lazily —
so a restore replays the remaining arrivals into a reconstructed
controller and produces byte-identical records, reports and goldens
(the hypothesis suite asserts this across process boundaries and hash
seeds).

Checkpoints serialize to JSON: floats round-trip exactly through
``repr``, ints and strings trivially, so ``load(save(checkpoint))``
is the identity.  A checkpoint taken through the scenarios path embeds
the full scenario spec and engine, making the file self-contained —
:func:`repro.serving.runtime.service.resume_scenario` rebuilds the
fleet and trace from the spec alone.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Union

from ..dispatch import request_to_state
from ..queue import ServingRequest

#: Format marker written into every checkpoint file.
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file or payload that cannot be used.

    The single error type for every way a checkpoint can be bad —
    truncated or non-JSON text, missing or mistyped fields, an
    unsupported format version, a trace-digest mismatch on resume, or
    controller state a rebuilt controller refuses to restore.  Callers
    (CLI, service entry points) can catch this one type and print its
    message; the message always names what was wrong.
    """


def trace_digest(trace: Sequence[ServingRequest]) -> str:
    """SHA-256 over the canonical JSON serialization of ``trace``.

    Guards a resume against a different trace: controller state is only
    meaningful relative to the exact arrival sequence it was built from,
    so :func:`~repro.serving.runtime.service.resume_live` refuses a
    trace whose digest mismatches the checkpoint's.
    """
    payload = json.dumps(
        [request_to_state(request) for request in trace],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Checkpoint:
    """A paused live run, frozen at an arrival boundary.

    ``kind`` names the controller class that produced ``controller``
    (``"static"``, ``"autoscale"``, ``"fault_fleet"``,
    ``"fault_autoscale"``); ``cursor`` counts consumed arrivals in
    canonical order; ``trace_sha256`` pins the trace; ``scenario``
    (optional) embeds the originating scenario spec's ``to_dict`` data
    plus the engine so scenario checkpoints are self-contained.
    """

    kind: str
    cursor: int
    controller: Dict[str, Any]
    trace_sha256: str
    scenario: Optional[Dict[str, Any]] = None
    engine: Optional[str] = None
    version: int = field(default=CHECKPOINT_VERSION)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to plain JSON data."""
        data: Dict[str, Any] = {
            "version": self.version,
            "kind": self.kind,
            "cursor": self.cursor,
            "trace_sha256": self.trace_sha256,
            "controller": self.controller,
        }
        if self.scenario is not None:
            data["scenario"] = self.scenario
        if self.engine is not None:
            data["engine"] = self.engine
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Checkpoint":
        """Rebuild a checkpoint from :meth:`to_dict` data.

        Raises :class:`CheckpointError` on any malformed payload —
        missing or mistyped fields, or an unsupported format version.
        """
        if not isinstance(data, Mapping):
            raise CheckpointError(
                "checkpoint payload must be a JSON object, "
                f"got {type(data).__name__}"
            )
        try:
            version = int(data.get("version", CHECKPOINT_VERSION))
        except (TypeError, ValueError):
            raise CheckpointError(
                f"checkpoint version must be an integer, "
                f"got {data.get('version')!r}"
            ) from None
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        try:
            scenario = data.get("scenario")
            engine = data.get("engine")
            return cls(
                kind=str(data["kind"]),
                cursor=int(data["cursor"]),
                controller=dict(data["controller"]),
                trace_sha256=str(data["trace_sha256"]),
                scenario=dict(scenario) if scenario is not None else None,
                engine=str(engine) if engine is not None else None,
                version=version,
            )
        except KeyError as error:
            raise CheckpointError(
                f"checkpoint is missing required field {error.args[0]!r}"
            ) from None
        except (TypeError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint field has the wrong type: {error}"
            ) from None

    def to_json(self) -> str:
        """The checkpoint as a deterministic JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        """Parse a checkpoint from :meth:`to_json` text.

        Raises :class:`CheckpointError` on truncated or non-JSON text
        and on any malformed payload (see :meth:`from_dict`).
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"checkpoint is not valid JSON "
                f"(truncated or corrupted?): {error}"
            ) from None
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the checkpoint to ``path``; returns the path written."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Checkpoint":
        """Read a checkpoint written by :meth:`save`.

        Raises :class:`CheckpointError` naming the file on any bad
        content (see :meth:`from_json`).
        """
        try:
            return cls.from_json(Path(path).read_text(encoding="utf-8"))
        except CheckpointError as error:
            raise CheckpointError(f"{path}: {error}") from None


__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "trace_digest",
]
