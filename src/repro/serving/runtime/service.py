"""Synchronous entry points of the live serving runtime.

:func:`run_live` plays a trace through the actor control plane —
ingestion streaming arrivals, the supervisor driving the exact stepwise
dispatch controller the batch path drives, chip actors executing the
closing engine runs — and returns the same result object the batch
``run`` would, ``==``-identical (the differential suite asserts it).
``pause_after`` turns the run into a
:class:`~repro.serving.runtime.checkpoint.Checkpoint` at an arrival
boundary; :func:`resume_live` picks such a checkpoint up — in the same
process or a fresh one — and finishes the run byte-identically to an
uninterrupted one.

:func:`run_scenario_live` / :func:`resume_scenario` are the scenario
couplings: checkpoints taken there embed the scenario spec and engine,
so a resume rebuilds fleet and trace from the spec alone (the spec-hash
-seeds-everything contract makes the recompiled trace exact).

:func:`run_supervised` / :func:`run_scenario_supervised` are the
self-healing twins: the same computation driven through
:class:`~repro.serving.runtime.supervision.SupervisedSupervisorActor`,
optionally under an injected
:class:`~repro.serving.runtime.chaos.ChaosSchedule`, returning a
:class:`SupervisedRun` that pairs the (chaos-invariant) result with the
run's :class:`~repro.serving.runtime.supervision.ActorIncident`
timeline.  The driver loop here is what survives *supervisor* crashes:
each crash ends one asyncio session, and the next session restores the
controller from the newest auto-checkpoint in the ring.

:func:`requests_from_lines` and :func:`requests_from_chunks` adapt the
two streaming ingestion formats — JSON request lines (stdin, a socket)
and columnar :class:`~repro.scenarios.compile.TraceChunk` slices — to
the object traces the runtime consumes; a malformed line raises a
structured :class:`TraceIngestError` naming the line and field instead
of surfacing a raw parser traceback.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, replace
from typing import (
    Any,
    Deque,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..dispatch import make_controller, request_from_state, sorted_order
from ..queue import ServingRequest
from .actors import DEFAULT_BATCH_SIZE, IngestionActor, SupervisorActor
from .chaos import (
    DEFAULT_HANG_UNIT_S,
    ChaosCrash,
    ChaosInjector,
    ChaosSchedule,
)
from .checkpoint import Checkpoint, CheckpointError, trace_digest
from .supervision import (
    ActorIncident,
    SupervisedSupervisorActor,
    SupervisionConfig,
)


class TraceIngestError(ValueError):
    """A malformed trace line in streaming ingestion.

    Carries ``line_no`` (1-based line in the ingested stream) and
    ``field`` (the offending request-state field, ``None`` when the
    line is not JSON at all); the message repeats both, so catching
    ``ValueError`` and printing suffices for a CLI.
    """

    def __init__(
        self,
        message: str,
        *,
        line_no: int,
        field: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.line_no = line_no
        self.field = field


async def _session(
    controller: Any,
    n_chips: int,
    trace: Sequence[ServingRequest],
    *,
    pace: Optional[float],
    batch_size: int,
    start_at: int,
    pause_after: Optional[int],
) -> Tuple[Any, ...]:
    """One actor session: stream, supervise, execute, fold.

    Returns the supervisor's outcome tuple — ``("done", result)`` or
    ``("paused", cursor, controller_state)``.
    """
    arrivals = [(index, trace[index]) for index in sorted_order(trace)]
    supervisor = SupervisorActor(controller, n_chips)
    supervisor.start()
    ingestion = IngestionActor(
        arrivals,
        supervisor,
        batch_size=batch_size,
        pace=pace,
        start_at=start_at,
        pause_after=pause_after,
    )
    ingestion.start()
    try:
        return await supervisor.outcome
    finally:
        await ingestion.cancel()
        await supervisor.stop()


def _checkpoint(
    controller: Any, cursor: int, state: Any, digest: str
) -> Checkpoint:
    return Checkpoint(
        kind=controller.kind,
        cursor=cursor,
        controller=state,
        trace_sha256=digest,
    )


def run_live(
    fleet,
    trace: Sequence[ServingRequest],
    *,
    faults=None,
    priorities: Optional[Sequence[float]] = None,
    pace: Optional[float] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    pause_after: Optional[int] = None,
) -> Union[Any, Checkpoint]:
    """Play ``trace`` through the live actor runtime.

    ``fleet`` is a :class:`~repro.serving.fleet.FleetSimulator` or
    :class:`~repro.serving.autoscale.AutoscalingFleetSimulator`;
    ``faults`` and ``priorities`` route exactly as the batch ``run``
    routes them, so the returned result object matches the batch one
    field for field.  ``pace`` throttles ingestion against the wall
    clock (``10.0`` = tenfold-accelerated simulated time; ``None`` =
    flat out); it never changes the result.  ``pause_after`` stops the
    stream after that many canonical-order arrivals and returns a
    :class:`Checkpoint` instead of a result.
    """
    trace = list(trace)
    if not trace:
        raise ValueError("trace must not be empty")
    if fleet.precompute:
        fleet.precompute_service_times(trace)
    controller = make_controller(
        fleet, trace, faults=faults, priorities=priorities
    )
    outcome = asyncio.run(
        _session(
            controller,
            fleet.n_chips,
            trace,
            pace=pace,
            batch_size=batch_size,
            start_at=0,
            pause_after=pause_after,
        )
    )
    if outcome[0] == "paused":
        return _checkpoint(
            controller, outcome[1], outcome[2], trace_digest(trace)
        )
    return outcome[1]


def resume_live(
    fleet,
    trace: Sequence[ServingRequest],
    checkpoint: Checkpoint,
    *,
    faults=None,
    priorities: Optional[Sequence[float]] = None,
    pace: Optional[float] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    pause_after: Optional[int] = None,
) -> Union[Any, Checkpoint]:
    """Resume a paused live run from ``checkpoint`` and finish it.

    ``fleet``, ``trace``, ``faults`` and ``priorities`` must reconstruct
    the original run's configuration — the trace is verified against the
    checkpoint's digest, the rebuilt controller's kind against its
    ``kind``.  The tail replays through the same actor machinery, so the
    combined run is byte-identical to an uninterrupted one (asserted by
    the hypothesis suite across process boundaries).  ``pause_after``
    (an absolute arrival cursor past the checkpoint's) pauses again.
    """
    trace = list(trace)
    if not trace:
        raise ValueError("trace must not be empty")
    digest = trace_digest(trace)
    if digest != checkpoint.trace_sha256:
        raise CheckpointError(
            "checkpoint was taken against a different trace "
            f"(digest {checkpoint.trace_sha256[:12]}… != {digest[:12]}…)"
        )
    if fleet.precompute:
        fleet.precompute_service_times(trace)
    controller = make_controller(
        fleet, trace, faults=faults, priorities=priorities
    )
    if controller.kind != checkpoint.kind:
        raise CheckpointError(
            f"checkpoint holds {checkpoint.kind!r} controller state but "
            f"this configuration builds a {controller.kind!r} controller"
        )
    try:
        controller.restore_state(checkpoint.controller, trace)
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            "checkpoint controller state is invalid or tampered: "
            f"{error!r}"
        ) from None
    outcome = asyncio.run(
        _session(
            controller,
            fleet.n_chips,
            trace,
            pace=pace,
            batch_size=batch_size,
            start_at=checkpoint.cursor,
            pause_after=pause_after,
        )
    )
    if outcome[0] == "paused":
        return _checkpoint(controller, outcome[1], outcome[2], digest)
    return outcome[1]


def run_scenario_live(
    spec,
    *,
    engine: str = "macro",
    pace: Optional[float] = None,
    pause_after: Optional[int] = None,
) -> Union[Any, Checkpoint]:
    """Run one scenario spec through the live runtime.

    The live twin of :func:`repro.scenarios.runner.run_scenario`: same
    compilation, same fleet, same report — byte-identical including the
    golden JSON.  With ``pause_after`` the returned
    :class:`Checkpoint` embeds the spec and engine, so
    :func:`resume_scenario` needs nothing else to finish the run.
    """
    # Imported lazily: scenarios builds on the serving package.
    from ...scenarios.compile import compile_scenario
    from ...scenarios.runner import (
        build_fleet,
        scenario_report,
        scenario_run_kwargs,
    )

    compiled = compile_scenario(spec)
    fleet = build_fleet(spec, engine=engine)
    outcome = run_live(
        fleet,
        list(compiled.trace),
        pace=pace,
        pause_after=pause_after,
        **scenario_run_kwargs(compiled, fleet),
    )
    if isinstance(outcome, Checkpoint):
        return replace(
            outcome, scenario=spec.to_dict(), engine=engine
        )
    return scenario_report(spec, compiled, outcome)


def resume_scenario(
    checkpoint: Checkpoint,
    *,
    pause_after: Optional[int] = None,
) -> Union[Any, Checkpoint]:
    """Resume a scenario checkpoint and finish (or re-pause) the run.

    Rebuilds the spec from the checkpoint's embedded ``scenario`` data,
    recompiles the trace (deterministic: the spec hash seeds every
    stream) and resumes through :func:`resume_live`; returns the final
    :class:`~repro.scenarios.report.ScenarioReport`, byte-identical to
    the uninterrupted run's, or a re-paused checkpoint.
    """
    # Imported lazily: scenarios builds on the serving package.
    from ...scenarios.compile import compile_scenario
    from ...scenarios.runner import (
        build_fleet,
        scenario_report,
        scenario_run_kwargs,
    )
    from ...scenarios.spec import ScenarioSpec

    if checkpoint.scenario is None:
        raise ValueError(
            "checkpoint embeds no scenario spec; resume it with "
            "resume_live against the original fleet and trace"
        )
    spec = ScenarioSpec.from_dict(checkpoint.scenario)
    engine = checkpoint.engine or "macro"
    compiled = compile_scenario(spec)
    fleet = build_fleet(spec, engine=engine)
    outcome = resume_live(
        fleet,
        list(compiled.trace),
        checkpoint,
        pause_after=pause_after,
        **scenario_run_kwargs(compiled, fleet),
    )
    if isinstance(outcome, Checkpoint):
        return replace(
            outcome, scenario=checkpoint.scenario, engine=engine
        )
    return scenario_report(spec, compiled, outcome)


def requests_from_lines(lines: Iterable[str]) -> List[ServingRequest]:
    """Parse JSON request lines (stdin, a socket) into a trace.

    Each non-blank line is one
    :func:`~repro.serving.dispatch.request_to_state` document; blank
    lines are skipped, so the format is newline-delimited JSON as a
    ``nc``/``tail -f`` pipe would deliver it.  A malformed line raises
    :class:`TraceIngestError` naming the 1-based line number and (when
    the line parsed but a field was missing or mistyped) the offending
    field — never a raw parser traceback.
    """
    import json

    trace: List[ServingRequest] = []
    for line_no, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise TraceIngestError(
                f"trace line {line_no} is not valid JSON: {error}",
                line_no=line_no,
            ) from None
        if not isinstance(data, dict):
            raise TraceIngestError(
                f"trace line {line_no} must be a JSON object, "
                f"got {type(data).__name__}",
                line_no=line_no,
            )
        try:
            trace.append(request_from_state(data))
        except ValueError as error:
            field = getattr(error, "field", None)
            raise TraceIngestError(
                f"trace line {line_no}: {error}",
                line_no=line_no,
                field=field,
            ) from None
    return trace


def run_scenario_supervised(
    spec,
    *,
    engine: str = "macro",
    chaos: Optional[ChaosSchedule] = None,
    supervision: Optional[SupervisionConfig] = None,
    hang_unit_s: float = DEFAULT_HANG_UNIT_S,
):
    """Run one scenario spec through the supervised live runtime.

    The supervised twin of :func:`run_scenario_live`: same compilation,
    same fleet, same report — byte-identical modulo the conditional
    ``incidents`` block, which records the recovery timeline when
    anything went wrong.  ``chaos`` defaults to the spec's own compiled
    :class:`~repro.serving.runtime.chaos.ChaosSchedule` when the spec
    carries a ``chaos`` block (seeded from the spec hash), and the
    supervision seed likewise derives from the spec hash, so retry
    backoff schedules are part of the scenario's identity.
    """
    # Imported lazily: scenarios builds on the serving package.
    from ...scenarios.compile import compile_chaos_schedule, compile_scenario
    from ...scenarios.runner import (
        build_fleet,
        scenario_report,
        scenario_run_kwargs,
    )

    compiled = compile_scenario(spec)
    fleet = build_fleet(spec, engine=engine)
    if chaos is None and spec.chaos is not None:
        chaos = compile_chaos_schedule(spec)
    if supervision is None:
        max_retries = (
            spec.chaos.max_retries
            if spec.chaos is not None
            else SupervisionConfig.max_retries
        )
        supervision = SupervisionConfig(
            seed=spec.derive_seed("supervision"), max_retries=max_retries
        )
    run = run_supervised(
        fleet,
        list(compiled.trace),
        chaos=chaos,
        supervision=supervision,
        hang_unit_s=hang_unit_s,
        **scenario_run_kwargs(compiled, fleet),
    )
    return scenario_report(
        spec, compiled, run.result, incidents=run.incidents
    )


@dataclass(frozen=True)
class SupervisedRun:
    """What a supervised run returns: the result plus its recovery story.

    ``result`` is the same object the batch or plain-live path returns —
    chaos and recovery cannot change it (the differential suite asserts
    byte-identity).  ``incidents`` is the chronological
    :class:`~repro.serving.runtime.supervision.ActorIncident` timeline,
    empty for an undisturbed run; ``n_sessions`` counts supervisor
    lives (1 = the supervisor itself never crashed).
    """

    result: Any
    incidents: Tuple[ActorIncident, ...]
    n_sessions: int


async def _supervised_session(
    controller: Any,
    n_chips: int,
    arrivals: Sequence[Tuple[int, ServingRequest]],
    *,
    config: SupervisionConfig,
    injector: Optional[ChaosInjector],
    incidents: List[ActorIncident],
    ring: "Deque[Checkpoint]",
    digest: str,
    start_at: int,
    session: int,
    batch_size: int,
    pace: Optional[float],
) -> Optional[Tuple[Any, ...]]:
    """One supervised session: run until outcome, or supervisor death.

    Returns the outcome tuple, or ``None`` when the supervisor task
    itself died of an injected :class:`ChaosCrash` (the driver then
    rebuilds from the auto-checkpoint ring).  Any *real* supervisor
    exception re-raises.
    """
    supervisor = SupervisedSupervisorActor(
        controller,
        n_chips,
        arrivals=arrivals,
        config=config,
        incidents=incidents,
        ring=ring,
        digest=digest,
        start_at=start_at,
        session=session,
        batch_size=batch_size,
        pace=pace,
    )
    if injector is not None:
        injector.install(supervisor, *supervisor.chips)
    supervisor.start()
    try:
        await asyncio.wait(
            {supervisor.outcome, supervisor._task},
            return_when=asyncio.FIRST_COMPLETED,
        )
        if supervisor.outcome.done():
            return supervisor.outcome.result()
        error = supervisor._task.exception()
        if error is not None and not isinstance(error, ChaosCrash):
            raise error
        return None
    finally:
        await supervisor.shutdown()


def run_supervised(
    fleet,
    trace: Sequence[ServingRequest],
    *,
    faults=None,
    priorities: Optional[Sequence[float]] = None,
    chaos: Optional[ChaosSchedule] = None,
    supervision: Optional[SupervisionConfig] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    pace: Optional[float] = None,
    hang_unit_s: float = DEFAULT_HANG_UNIT_S,
) -> SupervisedRun:
    """Play ``trace`` through the live runtime under supervision.

    The self-healing twin of :func:`run_live`: the same controller, the
    same canonical arrival order, the same result — plus heartbeats,
    deadlines, retry/re-dispatch/quarantine recovery and an
    auto-checkpoint ring (see
    :mod:`repro.serving.runtime.supervision`).  ``chaos`` optionally
    injects a :class:`~repro.serving.runtime.chaos.ChaosSchedule` of
    runtime faults at the mailbox boundary; the headline invariant is
    that ``result`` is byte-identical with or without it.  Supervisor
    crashes end the asyncio session; the driver loop here restores the
    controller from the newest ring checkpoint (serialized and parsed
    back, proving the format) and runs a fresh session, up to
    ``supervision.max_sessions``.
    """
    trace = list(trace)
    if not trace:
        raise ValueError("trace must not be empty")
    config = supervision if supervision is not None else SupervisionConfig()
    if fleet.precompute:
        fleet.precompute_service_times(trace)
    digest = trace_digest(trace)
    arrivals = [(index, trace[index]) for index in sorted_order(trace)]
    injector = (
        ChaosInjector(chaos, hang_unit_s=hang_unit_s)
        if chaos is not None and chaos
        else None
    )
    incidents: List[ActorIncident] = []
    ring: "Deque[Checkpoint]" = deque(maxlen=config.checkpoint_ring)
    session = 0
    start_at = 0
    restore: Optional[Checkpoint] = None
    while True:
        session += 1
        if session > config.max_sessions:
            raise RuntimeError(
                f"supervised run did not complete within "
                f"{config.max_sessions} supervisor sessions"
            )
        controller = make_controller(
            fleet, trace, faults=faults, priorities=priorities
        )
        if restore is not None:
            controller.restore_state(restore.controller, trace)
            start_at = restore.cursor
        outcome = asyncio.run(
            _supervised_session(
                controller,
                fleet.n_chips,
                arrivals,
                config=config,
                injector=injector,
                incidents=incidents,
                ring=ring,
                digest=digest,
                start_at=start_at,
                session=session,
                batch_size=batch_size,
                pace=pace,
            )
        )
        if outcome is not None:
            # ("done", result) — pause is not supported on this path.
            return SupervisedRun(
                result=outcome[1],
                incidents=tuple(incidents),
                n_sessions=session,
            )
        # The supervisor itself was chaos-crashed: restore the newest
        # ring checkpoint — serialized and re-parsed, so every restart
        # also proves the checkpoint format round-trips — or start over
        # when the ring is still empty.
        if ring:
            restore = Checkpoint.from_json(ring[-1].to_json())
            cursor = restore.cursor
        else:
            restore = None
            start_at = 0
            cursor = 0
        incidents.append(
            ActorIncident(
                session=session,
                actor="supervisor",
                kind="supervisor_restart",
                detail=(
                    f"supervisor crashed; rebuilding session "
                    f"{session + 1} from cursor {cursor}"
                ),
            )
        )


def requests_from_chunks(chunks: Iterable[Any]) -> List[ServingRequest]:
    """Flatten columnar trace chunks into an object trace.

    Accepts :class:`~repro.scenarios.compile.TraceChunk` values or raw
    :data:`~repro.serving.trace.TRACE_DTYPE` arrays, in stream order —
    the adapter between ``compile_scenario_chunks`` streaming and the
    live runtime's object-trace ingestion.
    """
    from ..trace import array_to_trace

    trace: List[ServingRequest] = []
    for chunk in chunks:
        array = getattr(chunk, "array", chunk)
        trace.extend(array_to_trace(array))
    return trace


__all__ = [
    "SupervisedRun",
    "TraceIngestError",
    "requests_from_chunks",
    "requests_from_lines",
    "resume_live",
    "resume_scenario",
    "run_live",
    "run_scenario_live",
    "run_scenario_supervised",
    "run_supervised",
]
