"""Synchronous entry points of the live serving runtime.

:func:`run_live` plays a trace through the actor control plane —
ingestion streaming arrivals, the supervisor driving the exact stepwise
dispatch controller the batch path drives, chip actors executing the
closing engine runs — and returns the same result object the batch
``run`` would, ``==``-identical (the differential suite asserts it).
``pause_after`` turns the run into a
:class:`~repro.serving.runtime.checkpoint.Checkpoint` at an arrival
boundary; :func:`resume_live` picks such a checkpoint up — in the same
process or a fresh one — and finishes the run byte-identically to an
uninterrupted one.

:func:`run_scenario_live` / :func:`resume_scenario` are the scenario
couplings: checkpoints taken there embed the scenario spec and engine,
so a resume rebuilds fleet and trace from the spec alone (the spec-hash
-seeds-everything contract makes the recompiled trace exact).

:func:`requests_from_lines` and :func:`requests_from_chunks` adapt the
two streaming ingestion formats — JSON request lines (stdin, a socket)
and columnar :class:`~repro.scenarios.compile.TraceChunk` slices — to
the object traces the runtime consumes.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Any, Iterable, List, Optional, Sequence, Tuple, Union

from ..dispatch import make_controller, request_from_state, sorted_order
from ..queue import ServingRequest
from .actors import DEFAULT_BATCH_SIZE, IngestionActor, SupervisorActor
from .checkpoint import Checkpoint, trace_digest


async def _session(
    controller: Any,
    n_chips: int,
    trace: Sequence[ServingRequest],
    *,
    pace: Optional[float],
    batch_size: int,
    start_at: int,
    pause_after: Optional[int],
) -> Tuple[Any, ...]:
    """One actor session: stream, supervise, execute, fold.

    Returns the supervisor's outcome tuple — ``("done", result)`` or
    ``("paused", cursor, controller_state)``.
    """
    arrivals = [(index, trace[index]) for index in sorted_order(trace)]
    supervisor = SupervisorActor(controller, n_chips)
    supervisor.start()
    ingestion = IngestionActor(
        arrivals,
        supervisor,
        batch_size=batch_size,
        pace=pace,
        start_at=start_at,
        pause_after=pause_after,
    )
    ingestion.start()
    try:
        return await supervisor.outcome
    finally:
        await ingestion.cancel()
        await supervisor.stop()


def _checkpoint(
    controller: Any, cursor: int, state: Any, digest: str
) -> Checkpoint:
    return Checkpoint(
        kind=controller.kind,
        cursor=cursor,
        controller=state,
        trace_sha256=digest,
    )


def run_live(
    fleet,
    trace: Sequence[ServingRequest],
    *,
    faults=None,
    priorities: Optional[Sequence[float]] = None,
    pace: Optional[float] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    pause_after: Optional[int] = None,
) -> Union[Any, Checkpoint]:
    """Play ``trace`` through the live actor runtime.

    ``fleet`` is a :class:`~repro.serving.fleet.FleetSimulator` or
    :class:`~repro.serving.autoscale.AutoscalingFleetSimulator`;
    ``faults`` and ``priorities`` route exactly as the batch ``run``
    routes them, so the returned result object matches the batch one
    field for field.  ``pace`` throttles ingestion against the wall
    clock (``10.0`` = tenfold-accelerated simulated time; ``None`` =
    flat out); it never changes the result.  ``pause_after`` stops the
    stream after that many canonical-order arrivals and returns a
    :class:`Checkpoint` instead of a result.
    """
    trace = list(trace)
    if not trace:
        raise ValueError("trace must not be empty")
    if fleet.precompute:
        fleet.precompute_service_times(trace)
    controller = make_controller(
        fleet, trace, faults=faults, priorities=priorities
    )
    outcome = asyncio.run(
        _session(
            controller,
            fleet.n_chips,
            trace,
            pace=pace,
            batch_size=batch_size,
            start_at=0,
            pause_after=pause_after,
        )
    )
    if outcome[0] == "paused":
        return _checkpoint(
            controller, outcome[1], outcome[2], trace_digest(trace)
        )
    return outcome[1]


def resume_live(
    fleet,
    trace: Sequence[ServingRequest],
    checkpoint: Checkpoint,
    *,
    faults=None,
    priorities: Optional[Sequence[float]] = None,
    pace: Optional[float] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    pause_after: Optional[int] = None,
) -> Union[Any, Checkpoint]:
    """Resume a paused live run from ``checkpoint`` and finish it.

    ``fleet``, ``trace``, ``faults`` and ``priorities`` must reconstruct
    the original run's configuration — the trace is verified against the
    checkpoint's digest, the rebuilt controller's kind against its
    ``kind``.  The tail replays through the same actor machinery, so the
    combined run is byte-identical to an uninterrupted one (asserted by
    the hypothesis suite across process boundaries).  ``pause_after``
    (an absolute arrival cursor past the checkpoint's) pauses again.
    """
    trace = list(trace)
    if not trace:
        raise ValueError("trace must not be empty")
    digest = trace_digest(trace)
    if digest != checkpoint.trace_sha256:
        raise ValueError(
            "checkpoint was taken against a different trace "
            f"(digest {checkpoint.trace_sha256[:12]}… != {digest[:12]}…)"
        )
    if fleet.precompute:
        fleet.precompute_service_times(trace)
    controller = make_controller(
        fleet, trace, faults=faults, priorities=priorities
    )
    if controller.kind != checkpoint.kind:
        raise ValueError(
            f"checkpoint holds {checkpoint.kind!r} controller state but "
            f"this configuration builds a {controller.kind!r} controller"
        )
    controller.restore_state(checkpoint.controller, trace)
    outcome = asyncio.run(
        _session(
            controller,
            fleet.n_chips,
            trace,
            pace=pace,
            batch_size=batch_size,
            start_at=checkpoint.cursor,
            pause_after=pause_after,
        )
    )
    if outcome[0] == "paused":
        return _checkpoint(controller, outcome[1], outcome[2], digest)
    return outcome[1]


def run_scenario_live(
    spec,
    *,
    engine: str = "macro",
    pace: Optional[float] = None,
    pause_after: Optional[int] = None,
) -> Union[Any, Checkpoint]:
    """Run one scenario spec through the live runtime.

    The live twin of :func:`repro.scenarios.runner.run_scenario`: same
    compilation, same fleet, same report — byte-identical including the
    golden JSON.  With ``pause_after`` the returned
    :class:`Checkpoint` embeds the spec and engine, so
    :func:`resume_scenario` needs nothing else to finish the run.
    """
    # Imported lazily: scenarios builds on the serving package.
    from ...scenarios.compile import compile_scenario
    from ...scenarios.runner import (
        build_fleet,
        scenario_report,
        scenario_run_kwargs,
    )

    compiled = compile_scenario(spec)
    fleet = build_fleet(spec, engine=engine)
    outcome = run_live(
        fleet,
        list(compiled.trace),
        pace=pace,
        pause_after=pause_after,
        **scenario_run_kwargs(compiled, fleet),
    )
    if isinstance(outcome, Checkpoint):
        return replace(
            outcome, scenario=spec.to_dict(), engine=engine
        )
    return scenario_report(spec, compiled, outcome)


def resume_scenario(
    checkpoint: Checkpoint,
    *,
    pause_after: Optional[int] = None,
) -> Union[Any, Checkpoint]:
    """Resume a scenario checkpoint and finish (or re-pause) the run.

    Rebuilds the spec from the checkpoint's embedded ``scenario`` data,
    recompiles the trace (deterministic: the spec hash seeds every
    stream) and resumes through :func:`resume_live`; returns the final
    :class:`~repro.scenarios.report.ScenarioReport`, byte-identical to
    the uninterrupted run's, or a re-paused checkpoint.
    """
    # Imported lazily: scenarios builds on the serving package.
    from ...scenarios.compile import compile_scenario
    from ...scenarios.runner import (
        build_fleet,
        scenario_report,
        scenario_run_kwargs,
    )
    from ...scenarios.spec import ScenarioSpec

    if checkpoint.scenario is None:
        raise ValueError(
            "checkpoint embeds no scenario spec; resume it with "
            "resume_live against the original fleet and trace"
        )
    spec = ScenarioSpec.from_dict(checkpoint.scenario)
    engine = checkpoint.engine or "macro"
    compiled = compile_scenario(spec)
    fleet = build_fleet(spec, engine=engine)
    outcome = resume_live(
        fleet,
        list(compiled.trace),
        checkpoint,
        pause_after=pause_after,
        **scenario_run_kwargs(compiled, fleet),
    )
    if isinstance(outcome, Checkpoint):
        return replace(
            outcome, scenario=checkpoint.scenario, engine=engine
        )
    return scenario_report(spec, compiled, outcome)


def requests_from_lines(lines: Iterable[str]) -> List[ServingRequest]:
    """Parse JSON request lines (stdin, a socket) into a trace.

    Each non-blank line is one
    :func:`~repro.serving.dispatch.request_to_state` document; blank
    lines are skipped, so the format is newline-delimited JSON as a
    ``nc``/``tail -f`` pipe would deliver it.
    """
    import json

    trace: List[ServingRequest] = []
    for line in lines:
        text = line.strip()
        if not text:
            continue
        trace.append(request_from_state(json.loads(text)))
    return trace


def requests_from_chunks(chunks: Iterable[Any]) -> List[ServingRequest]:
    """Flatten columnar trace chunks into an object trace.

    Accepts :class:`~repro.scenarios.compile.TraceChunk` values or raw
    :data:`~repro.serving.trace.TRACE_DTYPE` arrays, in stream order —
    the adapter between ``compile_scenario_chunks`` streaming and the
    live runtime's object-trace ingestion.
    """
    from ..trace import array_to_trace

    trace: List[ServingRequest] = []
    for chunk in chunks:
        array = getattr(chunk, "array", chunk)
        trace.extend(array_to_trace(array))
    return trace


__all__ = [
    "requests_from_chunks",
    "requests_from_lines",
    "resume_live",
    "resume_scenario",
    "run_live",
    "run_scenario_live",
]
