"""The live serving control plane's actors.

Three actor roles on one tiny mailbox substrate (:class:`Actor`):

* :class:`IngestionActor` — streams the arrival sequence to the
  supervisor as :class:`~repro.serving.runtime.messages.ArrivalBatch`
  messages, either as fast as the supervisor drains them (``pace=None``)
  or paced against the wall clock at a multiple of simulated time;
* :class:`ChipActor` — one per fleet chip; executes the
  :class:`~repro.serving.dispatch.ShardJob` engine runs the supervisor
  hands it and answers with the results;
* :class:`SupervisorActor` — owns the dispatch controller (the same
  stepwise object the batch path drives, see
  :mod:`repro.serving.dispatch`), applies every arrival in canonical
  order, takes the autoscale/fault decisions the controller embodies,
  fans the closing engine runs out to the chip actors and folds their
  answers into the run's result.

Because the supervisor drives the *identical* controller the batch entry
points drive, and consumes arrivals in the identical order, a live run
is the same computation as a batch run — the differential suite asserts
the results are ``==``-identical, not merely close.

Two seams make the runtime hardenable without the vanilla path knowing:

* every actor consults an optional :attr:`Actor.chaos` interceptor at
  its mailbox boundary (``post``/``before_work``), which is how
  :mod:`repro.serving.runtime.chaos` injects crashes, hangs, drops and
  delays — ``None`` by default, so unsupervised runs pay nothing;
* an actor whose :meth:`Actor.on_message` raises reports the failure
  through :meth:`Actor.on_error` instead of dying silently —
  :class:`ChipActor` posts an
  :class:`~repro.serving.runtime.messages.ActorCrashed` to the
  supervisor, which surfaces the original exception as a clean run
  failure (or, under :mod:`repro.serving.runtime.supervision`, triggers
  retry/quarantine recovery).
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Dict, Optional, Sequence, Set, Tuple

from ..queue import ServingRequest, ServingResult
from .chaos import ChaosCrash
from .messages import (
    ActorCrashed,
    ArrivalBatch,
    Heartbeat,
    PauseStream,
    RunShard,
    ShardDone,
    Shutdown,
    StreamEnded,
)

LOG = logging.getLogger(__name__)

#: Default arrivals per :class:`ArrivalBatch` in unpaced streams — large
#: enough to amortize mailbox overhead over a 100k-request trace, small
#: enough that checkpoint boundaries stay fine-grained.
DEFAULT_BATCH_SIZE = 1024

#: Default bound on :meth:`Actor.stop` — a receive loop that has not
#: exited this long after :class:`Shutdown` is considered wedged and is
#: force-cancelled instead of hanging the caller forever.
STOP_TIMEOUT_S = 5.0


class Actor:
    """A minimal mailbox actor: an inbox queue drained by one task.

    Subclasses implement :meth:`on_message`; :meth:`start` launches the
    receive loop on the running event loop, :class:`Shutdown` ends it.
    State lives inside the actor and is touched only by its own loop —
    actors communicate exclusively through the typed messages of
    :mod:`repro.serving.runtime.messages`.

    :attr:`chaos` is the fault-injection seam: when set (by the
    supervision layer only) every inbound message passes through the
    injector's ``intercept`` and every unit of work through its
    ``before_work`` — see :mod:`repro.serving.runtime.chaos`.
    """

    #: Optional chaos injector; ``None`` outside supervised runs.
    chaos: Optional[Any] = None

    def __init__(self, name: str) -> None:
        self.name = name
        self.inbox: "asyncio.Queue[Any]" = asyncio.Queue()
        self._task: Optional["asyncio.Task[None]"] = None

    def start(self) -> None:
        """Launch the actor's receive loop as an event-loop task."""
        self._task = asyncio.get_running_loop().create_task(
            self._main(), name=self.name
        )

    async def _main(self) -> None:
        while True:
            message = await self.inbox.get()
            if isinstance(message, Shutdown):
                return
            try:
                if self.chaos is not None:
                    await self.chaos.before_work(self)
                await self.on_message(message)
            except Exception as error:
                if not self.on_error(message, error):
                    raise
                return

    async def on_message(self, message: Any) -> None:
        """Handle one inbox message (subclass responsibility)."""
        raise NotImplementedError

    def on_error(self, message: Any, error: BaseException) -> bool:
        """React to ``on_message`` raising; return ``True`` if handled.

        A handled error ends the receive loop cleanly (the actor is
        dead, but whoever it reported to knows why); an unhandled one
        re-raises out of the actor task.  The base actor handles
        nothing.
        """
        return False

    def post(self, message: Any) -> None:
        """Enqueue ``message`` into the actor's inbox (never blocks)."""
        if self.chaos is not None and self.chaos.intercept(self, message):
            return
        self.inbox.put_nowait(message)

    async def stop(self, timeout_s: float = STOP_TIMEOUT_S) -> bool:
        """Send :class:`Shutdown` and wait for the loop to exit.

        The wait is bounded: an actor that has not exited within
        ``timeout_s`` (a wedged receive loop — e.g. hung inside a chaos
        delay) is force-cancelled, the incident is logged, and ``False``
        is returned.  Returns ``True`` on a clean join; a loop that
        already died on its own (reported) error also counts as
        stopped.
        """
        if self._task is None:
            return True
        self.post(Shutdown())
        try:
            await asyncio.wait_for(asyncio.shield(self._task), timeout_s)
        except asyncio.TimeoutError:
            LOG.warning(
                "actor %r did not stop within %.1fs; force-cancelling",
                self.name,
                timeout_s,
            )
            await self.cancel()
            return False
        except Exception:
            # The loop already died on an exception that was reported
            # through its own channel (outcome future / ActorCrashed);
            # as far as stopping goes, it is stopped.
            pass
        return True

    async def cancel(self) -> None:
        """Cancel the actor's task outright (used on supervisor errors)."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        except Exception:
            pass


class IngestionActor(Actor):
    """Streams ``(index, request)`` arrivals to the supervisor.

    ``arrivals`` is the full canonical-order arrival sequence;
    ``start_at`` skips a resumed run's already-processed prefix and
    ``pause_after`` (an absolute cursor) ends the stream early with a
    :class:`PauseStream` so the supervisor checkpoints.  ``pace``
    throttles emission against the wall clock — ``pace=10.0`` replays
    simulated time tenfold accelerated, batches of one — and ``None``
    streams flat out in :data:`DEFAULT_BATCH_SIZE` chunks; pacing
    affects wall-clock only, never the result.

    Failures while materialising or streaming arrivals (a malformed
    trace line, for instance) are posted to the supervisor as
    :class:`ActorCrashed` so the run fails cleanly instead of hanging; a
    chaos-injected :class:`~repro.serving.runtime.chaos.ChaosCrash`
    kills the stream silently — the supervision stall watchdog is what
    notices and restarts it.
    """

    def __init__(
        self,
        arrivals: Sequence[Tuple[int, ServingRequest]],
        supervisor: Actor,
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
        pace: Optional[float] = None,
        start_at: int = 0,
        pause_after: Optional[int] = None,
    ) -> None:
        super().__init__("ingestion")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if pace is not None and pace <= 0:
            raise ValueError("pace must be positive")
        if not 0 <= start_at <= len(arrivals):
            raise ValueError("start_at must be within the arrival sequence")
        if pause_after is not None and not (
            start_at < pause_after <= len(arrivals)
        ):
            raise ValueError(
                "pause_after must lie after start_at, within the sequence"
            )
        self.arrivals = arrivals
        self.supervisor = supervisor
        self.batch_size = 1 if pace is not None else batch_size
        self.pace = pace
        self.start_at = start_at
        self.pause_after = pause_after

    async def _main(self) -> None:
        # A pure producer: ignores its inbox and streams until done.
        try:
            await self._produce()
        except ChaosCrash:
            return
        except Exception as error:
            self.supervisor.post(
                ActorCrashed(actor=self.name, error=repr(error), cause=error)
            )

    async def _produce(self) -> None:
        stop = (
            self.pause_after
            if self.pause_after is not None
            else len(self.arrivals)
        )
        loop = asyncio.get_running_loop()
        wall_start = loop.time()
        sim_start: Optional[float] = None
        cursor = self.start_at
        while cursor < stop:
            if self.chaos is not None:
                await self.chaos.before_work(self)
            end = min(cursor + self.batch_size, stop)
            batch = tuple(
                (index, request)
                for index, request in self.arrivals[cursor:end]
            )
            if self.pace is not None and batch:
                arrival_s = batch[0][1].arrival_s
                if sim_start is None:
                    sim_start = arrival_s
                due = wall_start + (arrival_s - sim_start) / self.pace
                delay = due - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
            self.supervisor.post(ArrivalBatch(arrivals=batch, start=cursor))
            cursor += len(batch)
            # Yield so the supervisor drains concurrently with ingestion.
            await asyncio.sleep(0)
        if self.pause_after is not None:
            self.supervisor.post(PauseStream(cursor=cursor))
        else:
            self.supervisor.post(StreamEnded(total=cursor))


class ChipActor(Actor):
    """Executes the engine runs of one fleet chip.

    A :class:`RunShard` job carries its own simulator (the fleet chip,
    or a degraded-era replacement on the fault paths), so the actor is
    stateless between jobs; it answers the supervisor with
    :class:`ShardDone`.  Before each run it posts a :class:`Heartbeat`
    ("alive, starting work") so the supervision monitor can tell a busy
    actor from a hung one, and if a run raises it reports
    :class:`ActorCrashed` — naming the job — instead of dying silently.
    """

    def __init__(self, chip_id: int, supervisor: Actor) -> None:
        super().__init__(f"chip-{chip_id}")
        self.chip_id = chip_id
        self.supervisor = supervisor
        self._n_done = 0

    async def on_message(self, message: Any) -> None:
        """Run one shard job and post the result back."""
        assert isinstance(message, RunShard)
        self.supervisor.post(Heartbeat(actor=self.name, n_done=self._n_done))
        result = message.job.run()
        self._n_done += 1
        self.supervisor.post(
            ShardDone(
                chip_id=message.job.chip_id,
                result=result,
                job_id=message.job_id,
            )
        )

    def on_error(self, message: Any, error: BaseException) -> bool:
        """Report the crash (with the job it was executing) and die."""
        job_id = message.job_id if isinstance(message, RunShard) else -1
        self.supervisor.post(
            ActorCrashed(
                actor=self.name,
                error=repr(error),
                job_id=job_id,
                cause=error,
            )
        )
        return True


class SupervisorActor(Actor):
    """Owns the dispatch controller and the run's outcome.

    Applies every streamed arrival to ``controller`` in order; at
    :class:`StreamEnded` it flushes trailing fault events, fans the
    closing engine runs out to the chip actors, and resolves
    :attr:`outcome` with ``("done", result)``.  At :class:`PauseStream`
    it resolves with ``("paused", cursor, state)`` — the controller's
    serialized dynamic state, ready to become a checkpoint.  Controller
    errors (e.g. requests parked past the end of the trace), and
    :class:`ActorCrashed` reports from the other actors, resolve the
    outcome exceptionally — the run fails cleanly with the original
    error rather than hanging.  (Recovering instead of failing is the
    supervised subclass's job — see
    :mod:`repro.serving.runtime.supervision`.)
    """

    def __init__(self, controller: Any, n_chips: int) -> None:
        super().__init__("supervisor")
        self.controller = controller
        self.chips = [ChipActor(chip_id, self) for chip_id in range(n_chips)]
        self.outcome: "asyncio.Future[Tuple[Any, ...]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._results: Dict[int, ServingResult] = {}
        self._pending: Set[int] = set()
        self._seen = 0

    def start(self) -> None:
        """Launch the supervisor and its chip actors."""
        super().start()
        for chip in self.chips:
            chip.start()

    async def stop(self, timeout_s: float = STOP_TIMEOUT_S) -> bool:
        """Shut down the chip actors, then the supervisor itself."""
        clean = True
        for chip in self.chips:
            clean = await chip.stop(timeout_s) and clean
        return await super().stop(timeout_s) and clean

    async def on_message(self, message: Any) -> None:
        """Advance the run by one protocol message."""
        try:
            if isinstance(message, ArrivalBatch):
                for index, request in message.arrivals:
                    self.controller.on_arrival(index, request)
                self._seen += len(message.arrivals)
            elif isinstance(message, PauseStream):
                self.outcome.set_result(
                    ("paused", message.cursor, self.controller.state_dict())
                )
            elif isinstance(message, StreamEnded):
                self.controller.finish_events()
                jobs = self.controller.final_jobs()
                if not jobs:
                    self.outcome.set_result(
                        ("done", self.controller.collect({}))
                    )
                    return
                self._pending = {job.chip_id for job in jobs}
                for job in jobs:
                    self.chips[job.chip_id].post(RunShard(job=job))
            elif isinstance(message, ShardDone):
                self._results[message.chip_id] = message.result
                self._pending.discard(message.chip_id)
                if not self._pending:
                    self.outcome.set_result(
                        ("done", self.controller.collect(self._results))
                    )
            elif isinstance(message, ActorCrashed):
                if message.cause is not None:
                    raise message.cause
                raise RuntimeError(
                    f"actor {message.actor!r} crashed: {message.error}"
                )
            elif isinstance(message, Heartbeat):
                pass
        except Exception as error:
            if not self.outcome.done():
                self.outcome.set_exception(error)


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "STOP_TIMEOUT_S",
    "Actor",
    "ChipActor",
    "IngestionActor",
    "SupervisorActor",
]
