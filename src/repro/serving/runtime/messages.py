"""Typed messages of the live serving actor runtime.

Every inter-actor payload is a frozen dataclass defined here — the
named-types split: actors exchange *values*, never share mutable state,
so the message log of a run is a complete, replayable description of it.
Delivery order is deterministic: each actor consumes its inbox FIFO, the
ingestion actor emits arrivals in the canonical ``(arrival_s,
request_id)`` order, and the supervisor applies them in that order —
exactly the order the batch loops use, which is what makes live runs
byte-identical to batch ones.

The flow: :class:`ArrivalBatch` messages stream from the ingestion actor
to the supervisor, closed by one :class:`StreamEnded` (or
:class:`PauseStream` when a checkpoint was requested).  At end of
stream the supervisor fans :class:`RunShard` jobs out to the chip
actors, which answer :class:`ShardDone`; :class:`Shutdown` terminates
any actor's receive loop.

The supervision layer (:mod:`repro.serving.runtime.supervision`) rides
the same protocol, hardened: :class:`ArrivalBatch` carries its stream
position (``start``) so drops, delays and duplicates are detectable;
:class:`RunShard`/:class:`ShardDone` carry a ``job_id`` so a retried or
re-dispatched job's stale completions can be ignored; chip actors
announce liveness with :class:`Heartbeat` and report their own failures
with :class:`ActorCrashed` instead of dying silently.  The base runtime
leaves the sentinel defaults (``-1``) untouched, so the vanilla path is
byte-compatible with the supervised one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..dispatch import ShardJob
from ..queue import ServingRequest, ServingResult


@dataclass(frozen=True)
class ArrivalBatch:
    """A chunk of arrivals, ingestion → supervisor.

    ``arrivals`` holds ``(index, request)`` pairs — the trace position
    the dispatch controllers key on, and the request itself — already in
    the canonical ``(arrival_s, request_id)`` order.  Batching amortizes
    queue overhead when the stream runs unpaced; a paced stream sends
    batches of one.  ``start`` is the batch's cursor position in the
    canonical stream (the ordinal of its first pair); the supervision
    layer uses it to detect dropped, delayed or duplicated batches, and
    ``-1`` marks an unsequenced batch (hand-posted in tests) that the
    supervisor applies as-is.
    """

    arrivals: Tuple[Tuple[int, ServingRequest], ...]
    start: int = -1


@dataclass(frozen=True)
class StreamEnded:
    """End of the arrival stream, ingestion → supervisor.

    ``total`` is the number of arrivals emitted over the whole stream,
    letting the supervisor cross-check it dropped nothing.
    """

    total: int


@dataclass(frozen=True)
class PauseStream:
    """The stream stopped early for a checkpoint, ingestion → supervisor.

    ``cursor`` is the number of arrivals emitted before the pause — the
    resume point a :class:`~repro.serving.runtime.checkpoint.Checkpoint`
    records.
    """

    cursor: int


@dataclass(frozen=True)
class RunShard:
    """One engine run to execute, supervisor → chip actor.

    ``job_id`` identifies the job across retries (``-1`` on the
    unsupervised path) and ``attempt`` counts dispatch attempts, so the
    supervision layer can tell a fresh completion from a stale one.
    """

    job: ShardJob
    job_id: int = -1
    attempt: int = 1


@dataclass(frozen=True)
class ShardDone:
    """An executed engine run, chip actor → supervisor.

    ``job_id`` echoes the :class:`RunShard` that produced the result;
    the supervision layer ignores completions for jobs it has already
    recorded (a re-dispatched job may finish twice — shard jobs are
    pure, so either result is the same value).
    """

    chip_id: int
    result: ServingResult
    job_id: int = -1


@dataclass(frozen=True)
class Heartbeat:
    """A liveness beat, chip actor → supervisor.

    Posted when the actor picks a job up, before the (synchronous)
    engine run: "alive, starting work".  The supervision monitor treats
    an actor with a fresh heartbeat as busy rather than hung, so a
    long-running shard is not falsely re-dispatched.
    """

    actor: str
    n_done: int


@dataclass(frozen=True)
class ActorCrashed:
    """An actor's receive loop died on an exception, actor → supervisor.

    ``error`` is the ``repr`` of the exception (incident-log material);
    ``cause`` carries the exception object itself so the unsupervised
    supervisor can re-raise the original error as a clean run failure
    instead of hanging the session.  ``job_id`` names the shard job the
    actor was executing, ``-1`` if it crashed between jobs.
    """

    actor: str
    error: str
    job_id: int = -1
    cause: Optional[BaseException] = None


@dataclass(frozen=True)
class Shutdown:
    """Terminate the receiving actor's loop (any → any)."""


__all__ = [
    "ActorCrashed",
    "ArrivalBatch",
    "Heartbeat",
    "PauseStream",
    "RunShard",
    "ShardDone",
    "Shutdown",
    "StreamEnded",
]
