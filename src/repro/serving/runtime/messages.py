"""Typed messages of the live serving actor runtime.

Every inter-actor payload is a frozen dataclass defined here — the
named-types split: actors exchange *values*, never share mutable state,
so the message log of a run is a complete, replayable description of it.
Delivery order is deterministic: each actor consumes its inbox FIFO, the
ingestion actor emits arrivals in the canonical ``(arrival_s,
request_id)`` order, and the supervisor applies them in that order —
exactly the order the batch loops use, which is what makes live runs
byte-identical to batch ones.

The flow: :class:`ArrivalBatch` messages stream from the ingestion actor
to the supervisor, closed by one :class:`StreamEnded` (or
:class:`PauseStream` when a checkpoint was requested).  At end of
stream the supervisor fans :class:`RunShard` jobs out to the chip
actors, which answer :class:`ShardDone`; :class:`Shutdown` terminates
any actor's receive loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..dispatch import ShardJob
from ..queue import ServingRequest, ServingResult


@dataclass(frozen=True)
class ArrivalBatch:
    """A chunk of arrivals, ingestion → supervisor.

    ``arrivals`` holds ``(index, request)`` pairs — the trace position
    the dispatch controllers key on, and the request itself — already in
    the canonical ``(arrival_s, request_id)`` order.  Batching amortizes
    queue overhead when the stream runs unpaced; a paced stream sends
    batches of one.
    """

    arrivals: Tuple[Tuple[int, ServingRequest], ...]


@dataclass(frozen=True)
class StreamEnded:
    """End of the arrival stream, ingestion → supervisor.

    ``total`` is the number of arrivals emitted over the whole stream,
    letting the supervisor cross-check it dropped nothing.
    """

    total: int


@dataclass(frozen=True)
class PauseStream:
    """The stream stopped early for a checkpoint, ingestion → supervisor.

    ``cursor`` is the number of arrivals emitted before the pause — the
    resume point a :class:`~repro.serving.runtime.checkpoint.Checkpoint`
    records.
    """

    cursor: int


@dataclass(frozen=True)
class RunShard:
    """One engine run to execute, supervisor → chip actor."""

    job: ShardJob


@dataclass(frozen=True)
class ShardDone:
    """An executed engine run, chip actor → supervisor."""

    chip_id: int
    result: ServingResult


@dataclass(frozen=True)
class Shutdown:
    """Terminate the receiving actor's loop (any → any)."""


__all__ = [
    "ArrivalBatch",
    "PauseStream",
    "RunShard",
    "ShardDone",
    "Shutdown",
    "StreamEnded",
]
