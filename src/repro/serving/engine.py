"""Macro- and wave-stepping decode engines: compress composition runs.

The per-step event loop of :meth:`~repro.serving.queue.
ContinuousBatchingSimulator.run_step` pays one Python iteration — a batch
scan, a composition hash, a per-stream update loop — for *every* decode
step.  This module removes that scalar hot path by exploiting two
structural invariants of the continuous-batching discipline:

1. **The CC-stage is an independent serial pipeline.**  Vision encode +
   projection + prefill serve requests one at a time, FIFO, and decode
   never back-pressures it, so every request's prefill window is the
   simple recurrence ``start = max(previous end, arrival)``, ``end =
   start + latency`` — computable for the whole trace up front, before a
   single decode step runs.

2. **Between external events the batch's bucket composition is constant.**
   The decode-step latency is a pure function of the batch's
   context-bucket composition.  That composition only changes when a
   stream joins (its prefill finished and a slot is free), a stream
   leaves (it generated its last token), or a stream's growing context
   crosses a bucket boundary.  Between two such events every step has the
   *same* latency ``dt``, so ``k`` consecutive steps collapse into one
   macro step.

Bit-identity with the per-step loop is a hard guarantee, not an
approximation.  The per-step loop produces boundary timestamps by
left-fold repeated addition (``t_{i} = t_{i-1} + dt``), so the macro
engine reconstructs them the same way: short runs fold in Python, long
runs through ``np.add.accumulate`` — NumPy's accumulate is defined
element-by-element (``out[i] = out[i-1] + a[i]``), the exact left fold,
unlike ``np.sum``'s pairwise reduction.  Step latencies come from the
same :class:`~repro.serving.queue.BatchDecodeCostModel` memo
(:meth:`~repro.serving.queue.BatchDecodeCostModel.
step_latency_for_buckets`), keyed by the same order-preserving bucket
tuple, so every ``dt`` is the identical cached float.  The hypothesis
suite in ``tests/serving/test_macro_engine.py`` asserts ``==`` equality
of every record field, plus peak-batch and decode-step counters, across
randomized traces.

The one modelling assumption beyond the per-step loop: CC-stage latencies
are strictly positive (true for every real workload — prefill always
moves bytes), so two prefills never complete at the same instant.

Per-stream bookkeeping is kept in *absolute step counts* so a macro step
is O(changed streams), not O(batch): a stream admitted at step count
``N0`` with ``T`` output tokens finishes at count ``N0 + T``; its bucket
next changes at count ``N0 + (bucket - context + 1)``.  Advancing ``k``
steps just adds ``k`` to the global counter.

:func:`run_wave` keeps the macro engine's event semantics and removes its
two scale bottlenecks.  (1) The admission-cutoff walk — macro's per-step
Python loop hunting the first decode boundary at or past the next prefill
completion — becomes **one array pass per prefill wave**: the boundary
sequence is reconstructed with ``np.add.accumulate`` (the exact left
fold) and the cutoff found with ``np.searchsorted``, which stops at the
identical boundary the scalar walk stops at.  A macro walk is O(steps)
Python work per admission, so in admission-heavy regimes (a partially
filled batch of long decodes with prefills landing mid-run) it degrades
toward the per-step loop; the wave cutoff stays O(1) array calls.
(2) The wave engine consumes the columnar
:data:`repro.serving.trace.TRACE_DTYPE` format directly, so
million-request traces need no per-request objects on the way in
(records still materialise on the way out) — request shapes resolve
through a per-shape memo and the handful of distinct
``InferenceRequest`` instances are shared across records.

On top of those, the chain loop's per-event bookkeeping is incremental
rather than per-iteration: the next crossing/finish step counts are
maintained under mutation instead of re-scanned with ``min()``, and when
every active stream occupies the same context bucket — the common case
at realistic bucket widths — the composition tuple is fully determined
by ``(bucket value, batch size)``, so a two-tuple memo stands in for
building and hashing a width-``batch`` tuple every iteration.  Both are
pure work moves; every probed key and every ``dt`` float is unchanged.
"""

from __future__ import annotations

from collections import deque
from itertools import accumulate, repeat
from operator import attrgetter
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from ..models.mllm import InferenceRequest
from .metrics import RequestRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .queue import ContinuousBatchingSimulator, ServingRequest, ServingResult

#: Runs at least this long reconstruct their boundary timestamps through
#: ``np.add.accumulate`` instead of a Python fold; below it the array-call
#: overhead exceeds the fold itself.  Either path is the same left fold.
NUMPY_FOLD_MIN = 48

#: Runs at least this long (but below :data:`NUMPY_FOLD_MIN`) fold through
#: ``itertools.accumulate`` — the same element-by-element left fold, run
#: in C; shorter runs stay in a plain Python loop, whose per-call setup
#: is cheaper.  All three paths produce identical floats.
ACCUMULATE_FOLD_MIN = 12


def prefill_windows(
    chip: "ContinuousBatchingSimulator",
    pending: Sequence["ServingRequest"],
) -> tuple:
    """Prefill (start, end) arrays for ``pending`` on ``chip``, in order.

    ``pending`` must already be in dispatch order (sorted by arrival time,
    ties by request id).  Because the CC-stage is a serial FIFO pipeline
    that decode never back-pressures, each window is ``start =
    max(previous end, arrival)``, ``end = start + cc_latency`` — the exact
    floats the per-step event loop produces, since ``max`` selects an
    existing float and the addition is the single rounding the loop
    performs.  Returns two lists of floats.
    """
    starts: List[float] = []
    ends: List[float] = []
    cc_end = 0.0
    cc_latency_s = chip.cc_latency_s
    # Inline probe of the chip's shape-keyed latency memo; misses fall
    # through to cc_latency_s, which fills the same dict.
    cache_get = chip._cc_latency_cache.get
    for item in pending:
        request = item.request
        latency = cache_get((request.images, request.prompt_text_tokens))
        if latency is None:
            latency = cc_latency_s(request)
        arrival = item.arrival_s
        start = arrival if arrival > cc_end else cc_end
        cc_end = start + latency
        starts.append(start)
        ends.append(cc_end)
    return starts, ends


def run_macro(
    chip: "ContinuousBatchingSimulator", trace: Sequence["ServingRequest"]
) -> "ServingResult":
    """Simulate ``trace`` on ``chip`` by macro-stepping the decode loop.

    Returns the same :class:`~repro.serving.queue.ServingResult` —
    records, peak batch size and decode-step count — as
    :meth:`~repro.serving.queue.ContinuousBatchingSimulator.run_step`,
    bit for bit, in one macro step per composition run instead of one
    Python iteration per decode step.
    """
    from .queue import ServingResult

    if not trace:
        raise ValueError("trace must not be empty")
    pending = sorted(trace, key=lambda r: (r.arrival_s, r.request_id))
    n = len(pending)
    model = chip.model
    cost_model = chip.cost_model
    step_latency_for_buckets = cost_model.step_latency_for_buckets
    # Inlined context_bucket_for: quantization runs a few times per
    # request, and the three-deep call chain through the cost model costs
    # more than the arithmetic.  ``test_macro_engine`` pins the inlined
    # form against the canonical helper so the definitions cannot drift.
    width = cost_model.context_bucket
    max_batch = chip.max_batch_size
    chip_id = chip.chip_id

    # Stage 1: the whole CC pipeline, before any decode step.
    prefill_start, prefill_end = prefill_windows(chip, pending)
    # Prompt-token counts are a pure function of the request's shape, and
    # large traces repeat a small set of shapes — memoize per shape.
    prompt_tokens = model.prompt_tokens
    token_memo: dict = {}
    contexts0: List[int] = []
    for item in pending:
        request = item.request
        shape = (request.images, request.prompt_text_tokens)
        tokens = token_memo.get(shape)
        if tokens is None:
            tokens = prompt_tokens(request)
            token_memo[shape] = tokens
        contexts0.append(tokens)

    # Stage 2: macro-stepped decode.  Streams enter the ready queue in CC
    # completion order == ``pending`` order, so a single cursor replaces
    # the queue.  Active-stream state lives in parallel lists, in
    # admission order (the order the composition memo key preserves).
    act: List[int] = []  # index into ``pending``
    ctx_offset: List[int] = []  # context - global step count, constant per run
    buckets: List[int] = []  # current bucket per stream
    cross_at: List[int] = []  # absolute step count of the next bucket change
    finish_at: List[int] = []  # absolute step count of the last token
    first_token: List[Optional[float]] = []

    # The composition -> step-latency memo is probed inline (the engine
    # co-owns it with the cost model through seed/snapshot hooks); misses
    # fall through to the cost model, which fills the same dict.
    step_cache_get = cost_model._step_cache.get

    records: List[RequestRecord] = []
    records_append = records.append
    steps = 0  # global decode-step count (the absolute clock)
    peak = 0
    now = 0.0
    cursor = 0  # next stream not yet admitted

    while act or cursor < n:
        if not act:
            # Decode is idle; it restarts at the next prefill completion.
            restart = prefill_end[cursor]
            if restart > now:
                now = restart
        # Admission at the boundary ``now``: FIFO while a slot is free.
        fresh = 0
        while (
            cursor < n
            and len(act) < max_batch
            and prefill_end[cursor] <= now
        ):
            context = contexts0[cursor]
            bucket = ((max(context, 1) + width - 1) // width) * width
            act.append(cursor)
            ctx_offset.append(context - steps)
            buckets.append(bucket)
            cross_at.append(steps + bucket - context + 1)
            finish_at.append(steps + pending[cursor].request.output_tokens)
            first_token.append(None)
            cursor += 1
            fresh += 1
        batch = len(act)
        if fresh and batch > peak:
            peak = batch
        # Hoisted out of the chain below: neither the batch, the finish
        # schedule nor the admission deadline can change across a
        # crossing-only boundary.
        capacity = batch < max_batch and cursor < n
        admit_t = prefill_end[cursor] if capacity else 0.0
        min_finish = min(finish_at)

        # A *chain* of composition runs: bucket crossings change the step
        # latency but provably admit nobody (the cutoff below stops the
        # chain at any boundary that could), so the chain only ends at a
        # finish or at an admission boundary.
        while True:
            key = tuple(buckets)
            dt = step_cache_get(key)
            if dt is None:
                dt = step_latency_for_buckets(key)
            # Longest run with this composition: up to the earliest finish
            # or bucket crossing (both strictly ahead of the count) ...
            min_cross = min(cross_at)
            k = (min_cross if min_cross < min_finish else min_finish) - steps
            if capacity and (now + dt * k) * (1.0 + 1e-8) >= admit_t:
                # ... but with a free slot and a prefill in flight, the
                # run must stop at the first boundary that can admit it.
                # The boundaries are the left-fold sequence; walk it.  The
                # screen brackets the folded endpoint within relative
                # 1e-8, orders of magnitude above the fold's worst-case
                # accumulation error, so it can only ever *keep* a walk,
                # never skip a needed one (the walk itself stays exact).
                first_boundary = now + dt
                boundary = first_boundary
                run = 1
                while run < k and boundary < admit_t:
                    boundary += dt
                    run += 1
                k = run
            elif k >= NUMPY_FOLD_MIN:
                # Long uninterrupted run: the same left fold, vectorised.
                fold = np.full(k + 1, dt)
                fold[0] = now
                folded = np.add.accumulate(fold)
                first_boundary = float(folded[1])
                boundary = float(folded[k])
            elif k >= ACCUMULATE_FOLD_MIN:
                # Medium run: the left fold consumed in C, keeping the
                # last element only (a maxlen-1 deque drains it in C).
                first_boundary = now + dt
                boundary = deque(
                    accumulate(repeat(dt, k - 1), initial=first_boundary),
                    maxlen=1,
                )[0]
            else:
                first_boundary = now + dt
                boundary = first_boundary
                for _ in range(k - 1):
                    boundary += dt
            steps += k
            now = boundary

            # Streams admitted at the chain's start see their first token
            # at the end of its first step.  They sit at the tail of
            # ``act`` (everyone admitted earlier decoded a step already).
            if fresh:
                for position in range(batch - fresh, batch):
                    first_token[position] = first_boundary
                fresh = 0

            # Containment probes and ``index`` run at C speed, so the
            # common events — one stream finishing, one stream crossing —
            # cost two list scans, not a Python pass over the batch.
            finished = min_finish == steps
            if finished:
                # At least one stream emitted its last token here.
                while steps in finish_at:
                    position = finish_at.index(steps)
                    source = pending[act[position]]
                    records_append(
                        RequestRecord(
                            request_id=source.request_id,
                            request=source.request,
                            arrival_s=source.arrival_s,
                            prefill_start_s=prefill_start[act[position]],
                            prefill_end_s=prefill_end[act[position]],
                            first_token_s=first_token[position],
                            finish_s=boundary,
                            chip_id=chip_id,
                        )
                    )
                    del act[position]
                    del ctx_offset[position]
                    del buckets[position]
                    del cross_at[position]
                    del finish_at[position]
                    del first_token[position]
            if min_cross == steps:
                # A crosser may also have been a finisher, removed above.
                while steps in cross_at:
                    position = cross_at.index(steps)
                    context = ctx_offset[position] + steps
                    bucket = ((max(context, 1) + width - 1) // width) * width
                    buckets[position] = bucket
                    cross_at[position] = steps + bucket - context + 1
            if finished:
                break  # a slot may have opened: re-run admission
            if capacity and boundary >= admit_t:
                break  # the waiting prefill is admissible at ``boundary``

    records.sort(key=attrgetter("request_id"))
    return ServingResult(
        records=tuple(records),
        peak_batch_size=peak,
        decode_steps=steps,
    )


#: Admission walks at least this long run through the vectorised
#: fold-and-search cutoff (:func:`run_wave`); shorter walks stay in the
#: scalar loop, whose per-step cost undercuts the array-call overhead.
#: Both paths stop at the identical boundary.
SEARCH_CUTOFF_MIN = 32


def _wave_columns(chip: "ContinuousBatchingSimulator", trace) -> tuple:
    """Dispatch-ordered trace columns for :func:`run_wave`.

    Normalises either trace form (a ``ServingRequest`` sequence or a
    columnar :data:`~repro.serving.trace.TRACE_DTYPE` array) into plain
    Python column lists sorted by ``(arrival_s, request_id)`` — the exact
    dispatch order the other engines use — plus per-request CC-stage
    latencies and initial contexts gathered through the chip's memos.
    Returns ``(ids, arrivals, images, prompts, outputs, latencies,
    contexts, requests)`` where ``requests`` is the per-request
    ``InferenceRequest`` list for object traces and ``None`` for columnar
    traces (the engine materialises shared instances lazily at record
    time).
    """
    if isinstance(trace, np.ndarray):
        from .trace import validate_trace_array

        validate_trace_array(trace)
        order = np.lexsort((trace["request_id"], trace["arrival_s"]))
        rows = trace[order]
        ids = rows["request_id"].tolist()
        arrivals = rows["arrival_s"].tolist()
        images = rows["images"].tolist()
        prompts = rows["prompt_text_tokens"].tolist()
        outputs = rows["output_tokens"].tolist()
        requests = None
    else:
        pending = sorted(trace, key=lambda r: (r.arrival_s, r.request_id))
        ids = [item.request_id for item in pending]
        arrivals = [item.arrival_s for item in pending]
        requests = [item.request for item in pending]
        images = [request.images for request in requests]
        prompts = [request.prompt_text_tokens for request in requests]
        outputs = [request.output_tokens for request in requests]

    # CC latencies and prompt-token counts are pure functions of the
    # (images, prompt tokens) shape; big traces repeat a handful of
    # shapes, so resolve each shape once and gather per request.
    cc_cache_get = chip._cc_latency_cache.get
    cc_latency_s = chip.cc_latency_s
    prompt_tokens = chip.model.prompt_tokens
    shape_memo: dict = {}
    latencies: List[float] = []
    contexts: List[int] = []
    for image_count, prompt_count in zip(images, prompts):
        shape = (image_count, prompt_count)
        entry = shape_memo.get(shape)
        if entry is None:
            probe = _probe_request(image_count, prompt_count)
            latency = cc_cache_get(shape)
            if latency is None:
                latency = cc_latency_s(probe)
            entry = (latency, prompt_tokens(probe))
            shape_memo[shape] = entry
        latencies.append(entry[0])
        contexts.append(entry[1])
    return ids, arrivals, images, prompts, outputs, latencies, contexts, requests


def _probe_request(images: int, prompt_text_tokens: int) -> InferenceRequest:
    """A single-output-token probe request of the given CC-stage shape."""
    return InferenceRequest(
        images=images, prompt_text_tokens=prompt_text_tokens, output_tokens=1
    )


def run_wave(
    chip: "ContinuousBatchingSimulator", trace
) -> "ServingResult":
    """Simulate ``trace`` on ``chip`` with the wave-vectorized engine.

    Accepts either trace form — a ``ServingRequest`` sequence or a
    columnar :data:`repro.serving.trace.TRACE_DTYPE` array — and returns
    the same :class:`~repro.serving.queue.ServingResult` as
    :func:`run_macro` and the per-step oracle, bit for bit (the
    three-way hypothesis suite in ``tests/serving/test_wave_engine.py``
    asserts it).  See the module docstring for what changes versus the
    macro engine: the admission-cutoff walk batched into one
    ``np.add.accumulate`` + ``np.searchsorted`` array pass per prefill
    wave, and columnar trace ingestion with no per-request objects.
    """
    from .queue import ServingResult

    if len(trace) == 0:
        raise ValueError("trace must not be empty")
    (
        ids,
        arrivals,
        images,
        prompts,
        outputs,
        latencies,
        contexts0,
        requests,
    ) = _wave_columns(chip, trace)
    n = len(ids)
    cost_model = chip.cost_model
    step_latency_for_buckets = cost_model.step_latency_for_buckets
    step_cache_get = cost_model._step_cache.get
    width = cost_model.context_bucket
    max_batch = chip.max_batch_size
    chip_id = chip.chip_id

    # Stage 1: the serial CC pipeline over the gathered latency column —
    # the same recurrence (and the identical floats) as prefill_windows.
    prefill_start: List[float] = []
    prefill_end: List[float] = []
    cc_end = 0.0
    for arrival, latency in zip(arrivals, latencies):
        start = arrival if arrival > cc_end else cc_end
        cc_end = start + latency
        prefill_start.append(start)
        prefill_end.append(cc_end)

    # Stage 2: macro-stepped decode over the columns, with the
    # admission-cutoff walk vectorised.  Active-stream state lives in
    # parallel lists in admission order, exactly as in run_macro.
    act: List[int] = []
    ctx_offset: List[int] = []
    buckets: List[int] = []
    cross_at: List[int] = []
    finish_at: List[int] = []
    first_token: List[Optional[float]] = []
    act_append = act.append
    ctx_offset_append = ctx_offset.append
    buckets_append = buckets.append
    cross_at_append = cross_at.append
    finish_at_append = finish_at.append
    first_token_append = first_token.append

    request_memo: dict = {}
    records: List[RequestRecord] = []
    records_append = records.append
    steps = 0
    peak = 0
    now = 0.0
    cursor = 0
    # min(cross_at) / min(finish_at), maintained incrementally: appends
    # can only lower them, and they only need a rescan when the minimum
    # itself is deleted or crossed — rare events relative to chain
    # iterations, so the loop never pays an O(batch) min() per step run.
    inf = float("inf")
    next_cross = inf
    min_finish = inf
    # Uniform-composition fast path: when every active stream sits in
    # the same context bucket, the ordered composition tuple is fully
    # determined by (bucket value, batch size) — there is exactly one
    # ordering — so a two-tuple memo stands in for building and hashing
    # the full width-`batch` tuple every chain iteration.  `mixed`
    # counts streams whose bucket differs from the anchor value; the
    # fast path only fires at zero, so a stale anchor can only miss the
    # optimisation, never change a latency.
    uniform_value = 0
    mixed = 0
    uniform_memo: dict = {}
    uniform_get = uniform_memo.get

    while act or cursor < n:
        if not act:
            restart = prefill_end[cursor]
            if restart > now:
                now = restart
        fresh = 0
        while (
            cursor < n
            and len(act) < max_batch
            and prefill_end[cursor] <= now
        ):
            context = contexts0[cursor]
            bucket = ((max(context, 1) + width - 1) // width) * width
            cross = steps + bucket - context + 1
            finish = steps + outputs[cursor]
            if not act:
                uniform_value = bucket
                mixed = 0
            elif bucket != uniform_value:
                mixed += 1
            act_append(cursor)
            ctx_offset_append(context - steps)
            buckets_append(bucket)
            cross_at_append(cross)
            finish_at_append(finish)
            first_token_append(None)
            if cross < next_cross:
                next_cross = cross
            if finish < min_finish:
                min_finish = finish
            cursor += 1
            fresh += 1
        batch = len(act)
        if fresh and batch > peak:
            peak = batch
        capacity = batch < max_batch and cursor < n
        admit_t = prefill_end[cursor] if capacity else 0.0

        while True:
            if mixed:
                key = tuple(buckets)
                dt = step_cache_get(key)
                if dt is None:
                    dt = step_latency_for_buckets(key)
            else:
                dt = uniform_get((uniform_value, batch))
                if dt is None:
                    key = (uniform_value,) * batch
                    dt = step_cache_get(key)
                    if dt is None:
                        dt = step_latency_for_buckets(key)
                    uniform_memo[(uniform_value, batch)] = dt
            k = (next_cross if next_cross < min_finish else min_finish) - steps
            if capacity and (now + dt * k) * (1.0 + 1e-8) >= admit_t:
                # The admission cutoff.  The run must stop at the first
                # boundary of the left-fold sequence at or past the next
                # prefill completion; macro walks the fold step by step.
                if k < SEARCH_CUTOFF_MIN:
                    first_boundary = now + dt
                    boundary = first_boundary
                    run = 1
                    while run < k and boundary < admit_t:
                        boundary += dt
                        run += 1
                    k = run
                else:
                    # One array pass per prefill wave: rebuild the exact
                    # fold, then binary-search the cutoff.  searchsorted
                    # returns how many boundaries fall short of admit_t,
                    # so the walk's stopping index is one past that,
                    # clamped to the run length — the identical boundary
                    # the scalar walk stops at, k array ops sooner.
                    fold = np.empty(k + 1)
                    fold.fill(dt)
                    fold[0] = now
                    folded = np.add.accumulate(fold)
                    run = int(
                        folded[1:].searchsorted(admit_t, "left")
                    ) + 1
                    if run > k:
                        run = k
                    first_boundary = float(folded[1])
                    boundary = float(folded[run])
                    k = run
            elif k >= NUMPY_FOLD_MIN:
                fold = np.empty(k + 1)
                fold.fill(dt)
                fold[0] = now
                folded = np.add.accumulate(fold)
                first_boundary = float(folded[1])
                boundary = float(folded[k])
            elif k >= ACCUMULATE_FOLD_MIN:
                first_boundary = now + dt
                boundary = deque(
                    accumulate(repeat(dt, k - 1), initial=first_boundary),
                    maxlen=1,
                )[0]
            else:
                first_boundary = now + dt
                boundary = first_boundary
                for _ in range(k - 1):
                    boundary += dt
            steps += k
            now = boundary

            if fresh:
                for position in range(batch - fresh, batch):
                    first_token[position] = first_boundary
                fresh = 0

            finished = min_finish == steps
            if finished:
                while steps in finish_at:
                    position = finish_at.index(steps)
                    index = act[position]
                    if requests is not None:
                        request = requests[index]
                    else:
                        shape = (images[index], prompts[index], outputs[index])
                        request = request_memo.get(shape)
                        if request is None:
                            request = InferenceRequest(
                                images=shape[0],
                                prompt_text_tokens=shape[1],
                                output_tokens=shape[2],
                            )
                            request_memo[shape] = request
                    records_append(
                        RequestRecord(
                            request_id=ids[index],
                            request=request,
                            arrival_s=arrivals[index],
                            prefill_start_s=prefill_start[index],
                            prefill_end_s=prefill_end[index],
                            first_token_s=first_token[position],
                            finish_s=boundary,
                            chip_id=chip_id,
                        )
                    )
                    if buckets[position] != uniform_value:
                        mixed -= 1
                    del act[position]
                    del ctx_offset[position]
                    del buckets[position]
                    removed = cross_at[position]
                    del cross_at[position]
                    del finish_at[position]
                    del first_token[position]
                    if removed == next_cross:
                        next_cross = min(cross_at) if act else inf
                min_finish = min(finish_at) if act else inf
            if next_cross == steps:
                while steps in cross_at:
                    position = cross_at.index(steps)
                    context = ctx_offset[position] + steps
                    bucket = ((max(context, 1) + width - 1) // width) * width
                    if buckets[position] != uniform_value:
                        mixed -= 1
                    if bucket != uniform_value:
                        mixed += 1
                    buckets[position] = bucket
                    cross_at[position] = steps + bucket - context + 1
                next_cross = min(cross_at)
            if finished:
                break
            if capacity and boundary >= admit_t:
                break

    records.sort(key=attrgetter("request_id"))
    return ServingResult(
        records=tuple(records),
        peak_batch_size=peak,
        decode_steps=steps,
    )
