"""Macro-stepping decode engine: advance constant-composition runs at once.

The per-step event loop of :meth:`~repro.serving.queue.
ContinuousBatchingSimulator.run_step` pays one Python iteration — a batch
scan, a composition hash, a per-stream update loop — for *every* decode
step.  This module removes that scalar hot path by exploiting two
structural invariants of the continuous-batching discipline:

1. **The CC-stage is an independent serial pipeline.**  Vision encode +
   projection + prefill serve requests one at a time, FIFO, and decode
   never back-pressures it, so every request's prefill window is the
   simple recurrence ``start = max(previous end, arrival)``, ``end =
   start + latency`` — computable for the whole trace up front, before a
   single decode step runs.

2. **Between external events the batch's bucket composition is constant.**
   The decode-step latency is a pure function of the batch's
   context-bucket composition.  That composition only changes when a
   stream joins (its prefill finished and a slot is free), a stream
   leaves (it generated its last token), or a stream's growing context
   crosses a bucket boundary.  Between two such events every step has the
   *same* latency ``dt``, so ``k`` consecutive steps collapse into one
   macro step.

Bit-identity with the per-step loop is a hard guarantee, not an
approximation.  The per-step loop produces boundary timestamps by
left-fold repeated addition (``t_{i} = t_{i-1} + dt``), so the macro
engine reconstructs them the same way: short runs fold in Python, long
runs through ``np.add.accumulate`` — NumPy's accumulate is defined
element-by-element (``out[i] = out[i-1] + a[i]``), the exact left fold,
unlike ``np.sum``'s pairwise reduction.  Step latencies come from the
same :class:`~repro.serving.queue.BatchDecodeCostModel` memo
(:meth:`~repro.serving.queue.BatchDecodeCostModel.
step_latency_for_buckets`), keyed by the same order-preserving bucket
tuple, so every ``dt`` is the identical cached float.  The hypothesis
suite in ``tests/serving/test_macro_engine.py`` asserts ``==`` equality
of every record field, plus peak-batch and decode-step counters, across
randomized traces.

The one modelling assumption beyond the per-step loop: CC-stage latencies
are strictly positive (true for every real workload — prefill always
moves bytes), so two prefills never complete at the same instant.

Per-stream bookkeeping is kept in *absolute step counts* so a macro step
is O(changed streams), not O(batch): a stream admitted at step count
``N0`` with ``T`` output tokens finishes at count ``N0 + T``; its bucket
next changes at count ``N0 + (bucket - context + 1)``.  Advancing ``k``
steps just adds ``k`` to the global counter.
"""

from __future__ import annotations

from collections import deque
from itertools import accumulate, repeat
from operator import attrgetter
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from .metrics import RequestRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .queue import ContinuousBatchingSimulator, ServingRequest, ServingResult

#: Runs at least this long reconstruct their boundary timestamps through
#: ``np.add.accumulate`` instead of a Python fold; below it the array-call
#: overhead exceeds the fold itself.  Either path is the same left fold.
NUMPY_FOLD_MIN = 48

#: Runs at least this long (but below :data:`NUMPY_FOLD_MIN`) fold through
#: ``itertools.accumulate`` — the same element-by-element left fold, run
#: in C; shorter runs stay in a plain Python loop, whose per-call setup
#: is cheaper.  All three paths produce identical floats.
ACCUMULATE_FOLD_MIN = 12


def prefill_windows(
    chip: "ContinuousBatchingSimulator",
    pending: Sequence["ServingRequest"],
) -> tuple:
    """Prefill (start, end) arrays for ``pending`` on ``chip``, in order.

    ``pending`` must already be in dispatch order (sorted by arrival time,
    ties by request id).  Because the CC-stage is a serial FIFO pipeline
    that decode never back-pressures, each window is ``start =
    max(previous end, arrival)``, ``end = start + cc_latency`` — the exact
    floats the per-step event loop produces, since ``max`` selects an
    existing float and the addition is the single rounding the loop
    performs.  Returns two lists of floats.
    """
    starts: List[float] = []
    ends: List[float] = []
    cc_end = 0.0
    cc_latency_s = chip.cc_latency_s
    # Inline probe of the chip's shape-keyed latency memo; misses fall
    # through to cc_latency_s, which fills the same dict.
    cache_get = chip._cc_latency_cache.get
    for item in pending:
        request = item.request
        latency = cache_get((request.images, request.prompt_text_tokens))
        if latency is None:
            latency = cc_latency_s(request)
        arrival = item.arrival_s
        start = arrival if arrival > cc_end else cc_end
        cc_end = start + latency
        starts.append(start)
        ends.append(cc_end)
    return starts, ends


def run_macro(
    chip: "ContinuousBatchingSimulator", trace: Sequence["ServingRequest"]
) -> "ServingResult":
    """Simulate ``trace`` on ``chip`` by macro-stepping the decode loop.

    Returns the same :class:`~repro.serving.queue.ServingResult` —
    records, peak batch size and decode-step count — as
    :meth:`~repro.serving.queue.ContinuousBatchingSimulator.run_step`,
    bit for bit, in one macro step per composition run instead of one
    Python iteration per decode step.
    """
    from .queue import ServingResult

    if not trace:
        raise ValueError("trace must not be empty")
    pending = sorted(trace, key=lambda r: (r.arrival_s, r.request_id))
    n = len(pending)
    model = chip.model
    cost_model = chip.cost_model
    step_latency_for_buckets = cost_model.step_latency_for_buckets
    # Inlined context_bucket_for: quantization runs a few times per
    # request, and the three-deep call chain through the cost model costs
    # more than the arithmetic.  ``test_macro_engine`` pins the inlined
    # form against the canonical helper so the definitions cannot drift.
    width = cost_model.context_bucket
    max_batch = chip.max_batch_size
    chip_id = chip.chip_id

    # Stage 1: the whole CC pipeline, before any decode step.
    prefill_start, prefill_end = prefill_windows(chip, pending)
    # Prompt-token counts are a pure function of the request's shape, and
    # large traces repeat a small set of shapes — memoize per shape.
    prompt_tokens = model.prompt_tokens
    token_memo: dict = {}
    contexts0: List[int] = []
    for item in pending:
        request = item.request
        shape = (request.images, request.prompt_text_tokens)
        tokens = token_memo.get(shape)
        if tokens is None:
            tokens = prompt_tokens(request)
            token_memo[shape] = tokens
        contexts0.append(tokens)

    # Stage 2: macro-stepped decode.  Streams enter the ready queue in CC
    # completion order == ``pending`` order, so a single cursor replaces
    # the queue.  Active-stream state lives in parallel lists, in
    # admission order (the order the composition memo key preserves).
    act: List[int] = []  # index into ``pending``
    ctx_offset: List[int] = []  # context - global step count, constant per run
    buckets: List[int] = []  # current bucket per stream
    cross_at: List[int] = []  # absolute step count of the next bucket change
    finish_at: List[int] = []  # absolute step count of the last token
    first_token: List[Optional[float]] = []

    # The composition -> step-latency memo is probed inline (the engine
    # co-owns it with the cost model through seed/snapshot hooks); misses
    # fall through to the cost model, which fills the same dict.
    step_cache_get = cost_model._step_cache.get

    records: List[RequestRecord] = []
    records_append = records.append
    steps = 0  # global decode-step count (the absolute clock)
    peak = 0
    now = 0.0
    cursor = 0  # next stream not yet admitted

    while act or cursor < n:
        if not act:
            # Decode is idle; it restarts at the next prefill completion.
            restart = prefill_end[cursor]
            if restart > now:
                now = restart
        # Admission at the boundary ``now``: FIFO while a slot is free.
        fresh = 0
        while (
            cursor < n
            and len(act) < max_batch
            and prefill_end[cursor] <= now
        ):
            context = contexts0[cursor]
            bucket = ((max(context, 1) + width - 1) // width) * width
            act.append(cursor)
            ctx_offset.append(context - steps)
            buckets.append(bucket)
            cross_at.append(steps + bucket - context + 1)
            finish_at.append(steps + pending[cursor].request.output_tokens)
            first_token.append(None)
            cursor += 1
            fresh += 1
        batch = len(act)
        if fresh and batch > peak:
            peak = batch
        # Hoisted out of the chain below: neither the batch, the finish
        # schedule nor the admission deadline can change across a
        # crossing-only boundary.
        capacity = batch < max_batch and cursor < n
        admit_t = prefill_end[cursor] if capacity else 0.0
        min_finish = min(finish_at)

        # A *chain* of composition runs: bucket crossings change the step
        # latency but provably admit nobody (the cutoff below stops the
        # chain at any boundary that could), so the chain only ends at a
        # finish or at an admission boundary.
        while True:
            key = tuple(buckets)
            dt = step_cache_get(key)
            if dt is None:
                dt = step_latency_for_buckets(key)
            # Longest run with this composition: up to the earliest finish
            # or bucket crossing (both strictly ahead of the count) ...
            min_cross = min(cross_at)
            k = (min_cross if min_cross < min_finish else min_finish) - steps
            if capacity and (now + dt * k) * (1.0 + 1e-8) >= admit_t:
                # ... but with a free slot and a prefill in flight, the
                # run must stop at the first boundary that can admit it.
                # The boundaries are the left-fold sequence; walk it.  The
                # screen brackets the folded endpoint within relative
                # 1e-8, orders of magnitude above the fold's worst-case
                # accumulation error, so it can only ever *keep* a walk,
                # never skip a needed one (the walk itself stays exact).
                first_boundary = now + dt
                boundary = first_boundary
                run = 1
                while run < k and boundary < admit_t:
                    boundary += dt
                    run += 1
                k = run
            elif k >= NUMPY_FOLD_MIN:
                # Long uninterrupted run: the same left fold, vectorised.
                fold = np.full(k + 1, dt)
                fold[0] = now
                folded = np.add.accumulate(fold)
                first_boundary = float(folded[1])
                boundary = float(folded[k])
            elif k >= ACCUMULATE_FOLD_MIN:
                # Medium run: the left fold consumed in C, keeping the
                # last element only (a maxlen-1 deque drains it in C).
                first_boundary = now + dt
                boundary = deque(
                    accumulate(repeat(dt, k - 1), initial=first_boundary),
                    maxlen=1,
                )[0]
            else:
                first_boundary = now + dt
                boundary = first_boundary
                for _ in range(k - 1):
                    boundary += dt
            steps += k
            now = boundary

            # Streams admitted at the chain's start see their first token
            # at the end of its first step.  They sit at the tail of
            # ``act`` (everyone admitted earlier decoded a step already).
            if fresh:
                for position in range(batch - fresh, batch):
                    first_token[position] = first_boundary
                fresh = 0

            # Containment probes and ``index`` run at C speed, so the
            # common events — one stream finishing, one stream crossing —
            # cost two list scans, not a Python pass over the batch.
            finished = min_finish == steps
            if finished:
                # At least one stream emitted its last token here.
                while steps in finish_at:
                    position = finish_at.index(steps)
                    source = pending[act[position]]
                    records_append(
                        RequestRecord(
                            request_id=source.request_id,
                            request=source.request,
                            arrival_s=source.arrival_s,
                            prefill_start_s=prefill_start[act[position]],
                            prefill_end_s=prefill_end[act[position]],
                            first_token_s=first_token[position],
                            finish_s=boundary,
                            chip_id=chip_id,
                        )
                    )
                    del act[position]
                    del ctx_offset[position]
                    del buckets[position]
                    del cross_at[position]
                    del finish_at[position]
                    del first_token[position]
            if min_cross == steps:
                # A crosser may also have been a finisher, removed above.
                while steps in cross_at:
                    position = cross_at.index(steps)
                    context = ctx_offset[position] + steps
                    bucket = ((max(context, 1) + width - 1) // width) * width
                    buckets[position] = bucket
                    cross_at[position] = steps + bucket - context + 1
            if finished:
                break  # a slot may have opened: re-run admission
            if capacity and boundary >= admit_t:
                break  # the waiting prefill is admissible at ``boundary``

    records.sort(key=attrgetter("request_id"))
    return ServingResult(
        records=tuple(records),
        peak_batch_size=peak,
        decode_steps=steps,
    )
