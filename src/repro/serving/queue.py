"""Continuous-batching serving engine for one EdgeMM chip.

The engine plays an open-loop request trace against the two-stage EdgeMM
pipeline the paper describes (Fig. 9): the CC-clusters run vision encode +
projection + prefill one request at a time, while the MC-clusters decode a
*dynamic* batch — streams join the decode batch the moment their prefill
finishes (at the next token boundary) and leave the moment their last token
is generated, exactly the continuous-batching discipline of modern LLM
servers.  Decoding a batch re-uses every weight read across the batch, the
same traffic model as :class:`~repro.scheduling.batching.BatchPlanner`.

The simulation is event-driven over three event sources (request arrival,
CC-stage completion, decode-step completion) and entirely deterministic.
Its cost model leans on the memoized
:class:`~repro.core.simulator.PerformanceSimulator`: per-op cycles are
cached by shape and decode contexts are quantized to ``context_bucket``
tokens, so simulating thousands of requests costs thousands of dictionary
lookups, not thousands of full workload simulations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..core.batch import context_bucket_for
from ..core.pipeline import cc_stage_latency
from ..core.simulator import PerformanceSimulator
from ..models.mllm import InferenceRequest, MLLMConfig
from .metrics import RequestRecord, ServingReport, empty_report, summarize


@dataclass(frozen=True)
class ServingRequest:
    """One request of a serving trace: an arrival time plus a shape."""

    request_id: int
    arrival_s: float
    request: InferenceRequest

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be >= 0")


def build_trace(
    arrival_times: Sequence[float], requests: Sequence[InferenceRequest]
) -> List[ServingRequest]:
    """Zip ``arrival_times`` with request shapes (``requests``) into a trace."""
    if len(arrival_times) != len(requests):
        raise ValueError("arrival_times and requests must have equal length")
    return [
        ServingRequest(request_id=index, arrival_s=arrival, request=request)
        for index, (arrival, request) in enumerate(zip(arrival_times, requests))
    ]


class BatchDecodeCostModel:
    """Latency of one decode step for a batch of streams.

    Weight traffic (and nothing else) is shared across the batch; per-stream
    activation and KV-cache traffic and per-stream compute scale with the
    batch size.  Contexts are quantized to ``context_bucket`` tokens so the
    per-context cost triple ``(weight bytes, per-stream bytes, compute
    cycles)`` is computed once per bucket and then reused for every stream
    and every step that lands in the bucket.

    Whole steps memoize too: the step latency is a pure function of the
    batch's bucket composition, and a steady-state decode batch repeats the
    same composition for thousands of consecutive steps, so the event loop
    usually pays one tuple hash per step instead of a per-stream scan.  The
    memo key preserves stream order, which keeps the cached float identical
    to the freshly-folded one.
    """

    def __init__(
        self,
        simulator: PerformanceSimulator,
        model: MLLMConfig,
        *,
        mc_bandwidth_fraction: float = 0.5,
        context_bucket: int = 32,
    ) -> None:
        if not 0.0 < mc_bandwidth_fraction <= 1.0:
            raise ValueError("mc_bandwidth_fraction must be in (0, 1]")
        if context_bucket < 1:
            raise ValueError("context_bucket must be >= 1")
        self.simulator = simulator
        self.model = model
        self.mc_bandwidth_fraction = mc_bandwidth_fraction
        self.context_bucket = context_bucket
        self.pool = "mc" if simulator.has_mc else "cc"
        self._bucket_cost: Dict[int, Tuple[int, int, float]] = {}
        self._step_cache: Dict[Tuple[int, ...], float] = {}

    def seed_bucket_costs(
        self, bucket_costs: Dict[int, Tuple[int, int, float]]
    ) -> None:
        """Install precomputed per-bucket cost triples (fleet warm-up)."""
        self._bucket_cost.update(bucket_costs)

    def bucket_costs(self) -> Dict[int, Tuple[int, int, float]]:
        """Snapshot of the memoized per-bucket cost triples.

        The harvest side of :meth:`seed_bucket_costs`: callers replaying
        the same chip design (e.g. the capacity planner's per-design warm
        cache) copy one chip's triples into the next chip's model instead
        of re-deriving them through workload lowering.
        """
        return dict(self._bucket_cost)

    def seed_step_cache(self, step_cache: Dict[Tuple[int, ...], float]) -> None:
        """Install memoized step latencies keyed by batch composition.

        Companion of :meth:`seed_bucket_costs` for the whole-step memo;
        seeded values must come from :meth:`step_cache` of a model with the
        same chip design, bandwidth split and context bucket, in which case
        they are bit-identical to what this model would compute.
        """
        self._step_cache.update(step_cache)

    def step_cache(self) -> Dict[Tuple[int, ...], float]:
        """Snapshot of the memoized per-composition step latencies."""
        return dict(self._step_cache)

    def has_bucket_cost(self, bucket: int) -> bool:
        """True when the bucket's cost triple is already memoized."""
        return bucket in self._bucket_cost

    def bucket_for(self, context: int) -> int:
        """The context bucket a given context length quantizes to."""
        return self._bucket(context)

    def _bucket(self, context: int) -> int:
        # Shared with the analytic service-time bounds: both sides MUST
        # quantize identically or the planner's pruning floors go unsound.
        return context_bucket_for(context, self.context_bucket)

    def _cost(self, bucket: int) -> Tuple[int, int, float]:
        """(shared weight bytes, per-stream bytes, per-stream compute cycles)."""
        cached = self._bucket_cost.get(bucket)
        if cached is not None:
            return cached
        phase = self.model.decode_step(bucket)
        keep = self.simulator.effective_keep_fraction()
        weight_bytes = 0
        total_bytes = 0
        compute_cycles = 0.0
        for op in phase.ops:
            execution = self.simulator.execute_op(
                op, pool=self.pool, bandwidth_fraction=1.0
            )
            weight_bytes += op.pruned_weight_bytes(keep)
            total_bytes += execution.dram_bytes
            compute_cycles += execution.compute_cycles
        cost = (weight_bytes, total_bytes - weight_bytes, compute_cycles)
        self._bucket_cost[bucket] = cost
        return cost

    def step_latency_s(self, context_lengths: Sequence[int]) -> float:
        """Seconds to generate one token for every stream in the batch."""
        if not context_lengths:
            raise ValueError("context_lengths must not be empty")
        buckets = tuple(self._bucket(context) for context in context_lengths)
        return self.step_latency_for_buckets(buckets)

    def step_latency_for_buckets(self, buckets: Tuple[int, ...]) -> float:
        """Step latency for an already-quantized batch composition.

        The bucket-domain twin of :meth:`step_latency_s` for callers that
        track bucket compositions directly (the macro-stepping engine keeps
        every stream's bucket incrementally instead of re-quantizing the
        whole batch each step).  The fold over ``buckets`` and the memo key
        are the exact ones :meth:`step_latency_s` uses, so both entry
        points share one cache and return bit-identical floats.
        """
        if not buckets:
            raise ValueError("buckets must not be empty")
        cached = self._step_cache.get(buckets)
        if cached is not None:
            return cached
        weight_bytes = 0
        per_stream_bytes = 0
        compute_cycles = 0.0
        for bucket in buckets:
            shared, per_stream, compute = self._cost(bucket)
            # Weights are identical for every stream; read them once per step.
            weight_bytes = max(weight_bytes, shared)
            per_stream_bytes += per_stream
            compute_cycles += compute
        memory_cycles = self.simulator.memory_cycles(
            weight_bytes + per_stream_bytes, self.pool, self.mc_bandwidth_fraction
        )
        latency = self.simulator.chip.cycles_to_seconds(
            max(memory_cycles, compute_cycles)
        )
        self._step_cache[buckets] = latency
        return latency


@dataclass
class _DecodeStream:
    """Book-keeping of one request while it decodes."""

    source: ServingRequest
    prefill_start_s: float
    prefill_end_s: float
    context: int
    generated: int = 0
    first_token_s: Optional[float] = None

    @property
    def target_tokens(self) -> int:
        return self.source.request.output_tokens


@dataclass(frozen=True)
class ServingResult:
    """Outcome of one single-chip serving simulation."""

    records: Tuple[RequestRecord, ...]
    peak_batch_size: int
    decode_steps: int

    @property
    def report(self) -> ServingReport:
        """Aggregate report; all-zero for a chip that served no requests."""
        if not self.records:
            return empty_report()
        return summarize(self.records)


#: Decode-loop implementations of :class:`ContinuousBatchingSimulator`:
#: ``"macro"`` advances whole constant-composition runs of decode steps in
#: one shot (:mod:`repro.serving.engine`), ``"wave"`` additionally batches
#: the admission-cutoff walk into one array pass per prefill wave, keeps
#: the run bookkeeping (composition minima, uniform-batch step latencies)
#: incremental instead of per-iteration, and consumes columnar
#: :data:`repro.serving.trace.TRACE_DTYPE` traces directly, and ``"step"``
#: executes the original one-iteration-per-step event loop.  All three
#: produce bit-identical results; ``"step"`` is retained as the exact
#: oracle the compressed engines are tested against, ``"macro"`` as the
#: mid-tier reference.
ENGINES: Tuple[str, ...] = ("macro", "step", "wave")


class ContinuousBatchingSimulator:
    """Serves an open-loop request trace on one EdgeMM chip.

    The engine models the heterogeneous two-stage pipeline: the CC-stage
    and the decode batch own separate cluster pools and only contend for
    DRAM bandwidth.  On homogeneous chips both stages fall back to the
    single available pool and still run concurrently in simulated time, so
    compute capacity is double-booked there — an optimistic bound, not a
    faithful model of homogeneous serving.

    ``engine`` selects the decode-loop implementation (see :data:`ENGINES`);
    the default ``"macro"`` compresses constant-composition runs of decode
    steps and is typically an order of magnitude faster on large traces,
    with records bit-identical to the per-step loop.
    """

    def __init__(
        self,
        simulator: Optional[PerformanceSimulator] = None,
        model: Optional[MLLMConfig] = None,
        *,
        max_batch_size: int = 8,
        cc_bandwidth_fraction: float = 0.5,
        context_bucket: int = 32,
        chip_id: int = 0,
        engine: str = "macro",
    ) -> None:
        if model is None:
            raise ValueError("a serving simulator needs an MLLM model")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if not 0.0 < cc_bandwidth_fraction < 1.0:
            raise ValueError("cc_bandwidth_fraction must be in (0, 1)")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.simulator = simulator or PerformanceSimulator()
        self.model = model
        self.max_batch_size = max_batch_size
        self.cc_bandwidth_fraction = cc_bandwidth_fraction
        self.chip_id = chip_id
        self.engine = engine
        self.cost_model = BatchDecodeCostModel(
            self.simulator,
            model,
            mc_bandwidth_fraction=1.0 - cc_bandwidth_fraction,
            context_bucket=context_bucket,
        )
        self._cc_pool = "cc" if self.simulator.has_cc else "mc"
        self._cc_latency_cache: Dict[Tuple[int, int], float] = {}

    @property
    def cc_pool(self) -> str:
        """The pool the CC-stage runs on ('mc' only on MC-only chips)."""
        return self._cc_pool

    def seed_cc_latencies(self, latencies: Dict[Tuple[int, int], float]) -> None:
        """Install precomputed CC-stage latencies keyed by request shape."""
        self._cc_latency_cache.update(latencies)

    def cc_latencies(self) -> Dict[Tuple[int, int], float]:
        """Snapshot of the memoized CC-stage latencies (fleet warm-up)."""
        return dict(self._cc_latency_cache)

    def has_cc_latency(self, shape: Tuple[int, int]) -> bool:
        """True when the shape's CC-stage latency is already memoized."""
        return shape in self._cc_latency_cache

    # ------------------------------------------------------------------
    # Stage cost models
    # ------------------------------------------------------------------
    def cc_latency_s(self, request: InferenceRequest) -> float:
        """Encode + projector + prefill latency of one request.

        Shares :func:`~repro.core.pipeline.cc_stage_latency` with the
        pipeline model; results are cached by the request's CC-stage shape
        (the output length does not affect this stage).
        """
        key = (request.images, request.prompt_text_tokens)
        cached = self._cc_latency_cache.get(key)
        if cached is not None:
            return cached
        probe = InferenceRequest(
            images=request.images,
            prompt_text_tokens=request.prompt_text_tokens,
            output_tokens=1,
        )
        latency = cc_stage_latency(
            self.simulator,
            self.model,
            probe,
            pool=self._cc_pool,
            bandwidth_fraction=self.cc_bandwidth_fraction,
        )
        self._cc_latency_cache[key] = latency
        return latency

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def run(self, trace: Sequence[ServingRequest]) -> ServingResult:
        """Simulate the trace to completion and return per-request records.

        Dispatches to the configured :data:`ENGINES` member: the default
        macro-stepping engine (:func:`repro.serving.engine.run_macro`),
        the wave engine (:func:`repro.serving.engine.run_wave`) or the
        per-step oracle loop (:meth:`run_step`).  All return the same
        :class:`ServingResult` bit for bit.  ``trace`` may also be a
        columnar :data:`repro.serving.trace.TRACE_DTYPE` array; the wave
        engine consumes it directly, the others materialise the object
        trace first (same records either way).
        """
        if self.engine == "wave":
            from .engine import run_wave

            return run_wave(self, trace)
        if not isinstance(trace, (list, tuple)) and hasattr(trace, "dtype"):
            from .trace import array_to_trace

            trace = array_to_trace(trace)
        if self.engine == "macro":
            from .engine import run_macro

            return run_macro(self, trace)
        return self.run_step(trace)

    def run_step(self, trace: Sequence[ServingRequest]) -> ServingResult:
        """Simulate the trace with the per-step event loop (the oracle).

        One Python iteration per decode step over three event sources
        (arrival, CC-stage completion, decode-step completion).  The
        macro engine is regression-tested for ``==`` record identity
        against this loop; keep their semantics in lockstep.
        """
        if not trace:
            raise ValueError("trace must not be empty")
        pending = sorted(trace, key=lambda r: (r.arrival_s, r.request_id))
        infinity = float("inf")
        records: List[RequestRecord] = []
        cc_queue: Deque[ServingRequest] = deque()
        cc_job: Optional[Tuple[ServingRequest, float, float]] = None
        ready: Deque[_DecodeStream] = deque()
        active: List[_DecodeStream] = []
        step_end: Optional[float] = None
        now = 0.0
        arrival_index = 0
        peak_batch = 0
        decode_steps = 0

        while (
            arrival_index < len(pending)
            or cc_queue
            or cc_job is not None
            or ready
            or active
        ):
            # Start work that can start without advancing time.
            if cc_job is None and cc_queue:
                request = cc_queue.popleft()
                cc_job = (request, now, now + self.cc_latency_s(request.request))
            if step_end is None and (active or ready):
                while ready and len(active) < self.max_batch_size:
                    active.append(ready.popleft())
                peak_batch = max(peak_batch, len(active))
                step_end = now + self.cost_model.step_latency_s(
                    [stream.context for stream in active]
                )
                decode_steps += 1

            next_arrival = (
                pending[arrival_index].arrival_s
                if arrival_index < len(pending)
                else infinity
            )
            next_cc = cc_job[2] if cc_job is not None else infinity
            next_step = step_end if step_end is not None else infinity
            now = min(next_arrival, next_cc, next_step)
            if now == infinity:  # pragma: no cover - loop guard keeps this dead
                raise RuntimeError("serving simulation stalled with work pending")

            while (
                arrival_index < len(pending)
                and pending[arrival_index].arrival_s <= now
            ):
                cc_queue.append(pending[arrival_index])
                arrival_index += 1
            if cc_job is not None and cc_job[2] <= now:
                request, started, finished = cc_job
                ready.append(
                    _DecodeStream(
                        source=request,
                        prefill_start_s=started,
                        prefill_end_s=finished,
                        context=self.model.prompt_tokens(request.request),
                    )
                )
                cc_job = None
            if step_end is not None and step_end <= now:
                still_active: List[_DecodeStream] = []
                for stream in active:
                    stream.generated += 1
                    stream.context += 1
                    if stream.first_token_s is None:
                        stream.first_token_s = now
                    if stream.generated >= stream.target_tokens:
                        records.append(
                            RequestRecord(
                                request_id=stream.source.request_id,
                                request=stream.source.request,
                                arrival_s=stream.source.arrival_s,
                                prefill_start_s=stream.prefill_start_s,
                                prefill_end_s=stream.prefill_end_s,
                                first_token_s=stream.first_token_s,
                                finish_s=now,
                                chip_id=self.chip_id,
                            )
                        )
                    else:
                        still_active.append(stream)
                active = still_active
                step_end = None

        records.sort(key=lambda record: record.request_id)
        return ServingResult(
            records=tuple(records),
            peak_batch_size=peak_batch,
            decode_steps=decode_steps,
        )
