"""SLO-aware fleet autoscaling and admission control.

:class:`AutoscalingFleetSimulator` extends the static
:class:`~repro.serving.fleet.FleetSimulator` with a dispatcher-side control
loop, the way a real serving front-end scales a chip fleet:

* **observability** — for every dispatched request the controller keeps a
  dispatcher-side *estimate* of its time to first token (chip horizon +
  batch-1 prefill + one decode step, the same array-priced estimates the
  ``least_loaded`` policy uses, warmed by ``precompute_service_times``);
* **scaling** — a rolling window of recent TTFT estimates is folded into a
  p99; when it exceeds the target the controller *adds* a chip (up to
  ``max_chips``), when it falls well below the target it *drains* one
  (down to ``min_chips``).  A drained chip finishes its in-flight work but
  receives no new requests.  Scaling honours a cooldown so one burst does
  not thrash the fleet;
* **admission control** — the controller tracks the estimated number of
  in-flight requests; beyond ``max_queue_depth`` per active chip it either
  **rejects** new arrivals outright or **queues** them at the front door,
  delaying dispatch until a slot frees (the request's recorded arrival
  stays its true arrival, so the admission delay shows up as queue wait).

The control loop runs on *estimates*; the per-request records come from
the exact per-chip :class:`~repro.serving.queue.ContinuousBatchingSimulator`
replay of the resulting assignment, so reports stay grounded in the
event-driven engine.  Everything is deterministic: the same trace and
configuration reproduce bit-identical records, decisions and reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.simulator import PerformanceSimulator
from ..models.mllm import MLLMConfig
from .fleet import FleetSimulator
from .metrics import RequestRecord, ServingReport, empty_report, summarize
from .queue import ServingRequest, ServingResult

ADMISSION_POLICIES: Tuple[str, ...] = ("queue", "reject")


@dataclass(frozen=True)
class AutoscalerConfig:
    """Tuning of the SLO-aware fleet controller.

    ``target_p99_ttft_s`` is the objective the controller steers toward;
    scaling triggers when the rolling p99 of TTFT estimates crosses
    ``target * scale_up_ratio`` (up) or ``target * scale_down_ratio``
    (down).  ``max_queue_depth`` bounds the estimated in-flight requests
    *per active chip* before admission control engages with the
    ``admission`` policy ("queue" delays dispatch, "reject" drops).
    """

    target_p99_ttft_s: float
    min_chips: int = 1
    max_chips: int = 4
    #: Number of recent TTFT estimates the rolling percentile covers.
    window: int = 64
    #: Minimum observations before the controller acts at all.
    min_observations: int = 16
    cooldown_s: float = 1.0
    scale_up_ratio: float = 1.0
    scale_down_ratio: float = 0.4
    max_queue_depth: int = 64
    admission: str = "queue"

    def __post_init__(self) -> None:
        if self.target_p99_ttft_s <= 0:
            raise ValueError("target_p99_ttft_s must be positive")
        if self.min_chips < 1:
            raise ValueError("min_chips must be >= 1")
        if self.max_chips < self.min_chips:
            raise ValueError("max_chips must be >= min_chips")
        if self.window < 1 or self.min_observations < 1:
            raise ValueError("window and min_observations must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.scale_up_ratio <= 0:
            raise ValueError("scale_up_ratio must be positive")
        if not 0 <= self.scale_down_ratio < self.scale_up_ratio:
            raise ValueError(
                "scale_down_ratio must be in [0, scale_up_ratio)"
            )
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission!r}"
            )


@dataclass(frozen=True)
class ScalingEvent:
    """One controller decision: the fleet grew or shrank."""

    time_s: float
    n_chips_before: int
    n_chips_after: int
    rolling_p99_ttft_s: float

    @property
    def direction(self) -> str:
        """``"up"`` when the fleet grew, ``"down"`` when it drained."""
        return "up" if self.n_chips_after > self.n_chips_before else "down"


@dataclass(frozen=True)
class AutoscaleResult:
    """Outcome of an autoscaled fleet simulation.

    ``assignments`` uses ``-1`` for rejected requests; ``records`` covers
    admitted requests only (their ``arrival_s`` is the *true* arrival even
    when admission control delayed dispatch).  ``per_chip`` is the raw
    chip-level view: its records carry the *synthetic* per-trace-position
    ids and admission-delayed arrivals the chips actually simulated.
    """

    records: Tuple[RequestRecord, ...]
    per_chip: Tuple[ServingResult, ...]
    assignments: Tuple[int, ...]
    rejected_ids: Tuple[int, ...]
    events: Tuple[ScalingEvent, ...]
    final_chips: int

    @property
    def report(self) -> ServingReport:
        """Report over admitted requests (all-zero if all were rejected)."""
        if not self.records:
            return empty_report()
        return summarize(self.records)

    @property
    def peak_chips(self) -> int:
        """Largest active fleet size the controller ever reached."""
        peak = max((event.n_chips_after for event in self.events), default=0)
        return max(peak, self.final_chips)

    @property
    def n_rejected(self) -> int:
        """Number of arrivals admission control rejected outright."""
        return len(self.rejected_ids)

    @property
    def rejection_rate(self) -> float:
        """Rejected fraction of all arrivals (0.0 on an empty trace)."""
        total = len(self.records) + self.n_rejected
        if total == 0:
            return 0.0
        return self.n_rejected / total

    @property
    def n_scale_ups(self) -> int:
        """Number of grow decisions the controller took."""
        return sum(1 for event in self.events if event.direction == "up")

    @property
    def n_scale_downs(self) -> int:
        """Number of drain decisions the controller took."""
        return sum(1 for event in self.events if event.direction == "down")

    @property
    def requests_per_chip(self) -> Tuple[int, ...]:
        """Admitted-request count per chip, indexed by chip id."""
        counts = [0] * len(self.per_chip)
        for chip_id in self.assignments:
            if chip_id >= 0:
                counts[chip_id] += 1
        return tuple(counts)


class AutoscalingFleetSimulator(FleetSimulator):
    """A fleet whose size follows rolling TTFT percentiles.

    The full ``max_chips`` fleet is instantiated up front (so service-time
    precomputation seeds every chip once), but only the *active* prefix of
    chips receives requests; the controller grows and shrinks that prefix.
    """

    def __init__(
        self,
        model: MLLMConfig,
        *,
        autoscaler: AutoscalerConfig,
        simulator_factory: Optional[Callable[[], PerformanceSimulator]] = None,
        max_batch_size: int = 8,
        cc_bandwidth_fraction: float = 0.5,
        context_bucket: int = 32,
        precompute: bool = True,
        engine: str = "macro",
        processes: Optional[int] = None,
    ) -> None:
        super().__init__(
            model,
            n_chips=autoscaler.max_chips,
            policy="least_loaded",
            simulator_factory=simulator_factory,
            max_batch_size=max_batch_size,
            cc_bandwidth_fraction=cc_bandwidth_fraction,
            context_bucket=context_bucket,
            precompute=precompute,
            engine=engine,
            processes=processes,
        )
        self.autoscaler = autoscaler

    # ------------------------------------------------------------------
    # Controlled dispatch
    # ------------------------------------------------------------------
    def run(
        self,
        trace: Sequence[ServingRequest],
        *,
        faults=None,
        priorities: Optional[Sequence[float]] = None,
        runtime: str = "batch",
    ) -> AutoscaleResult:
        """Dispatch under the control loop, then replay chips exactly.

        ``faults`` routes the run through the event-driven degradation
        path (:func:`repro.serving.faults.run_autoscale_with_faults`) and
        ``priorities`` weights each request's admission depth; either
        being set selects the fault-aware loop (with an empty schedule
        when only priorities are given).  Both ``None`` — the default —
        keeps the historical fault-free path unchanged.  ``runtime``
        selects the execution plane: ``"live"`` streams the trace
        through the asyncio actor runtime, producing the bit-identical
        result (see :data:`repro.serving.dispatch.RUNTIMES`).

        The control loop itself is a stepwise
        :class:`~repro.serving.dispatch.AutoscaleDispatchController`
        driven over the sorted trace — the exact per-arrival arithmetic
        the live runtime's supervisor actor applies per message.  Chips
        then replay the controlled assignment under synthetic positional
        ids through :meth:`~repro.serving.fleet.FleetSimulator.
        _run_shards` (the ``processes`` fan-out applies), and the
        controller folds the per-chip results back to true ids and
        arrivals.
        """
        if runtime != "batch":
            from .dispatch import RUNTIMES

            if runtime not in RUNTIMES:
                raise ValueError(
                    f"runtime must be one of {RUNTIMES}, got {runtime!r}"
                )
            # Imported lazily: the runtime package builds on this module.
            from .runtime import run_live

            return run_live(
                self, trace, faults=faults, priorities=priorities
            )
        if faults is not None or priorities is not None:
            # Imported lazily: faults builds on this module.
            from .faults import FaultSchedule, run_autoscale_with_faults

            schedule = faults if faults is not None else FaultSchedule()
            return run_autoscale_with_faults(
                self, trace, schedule, priorities=priorities
            )
        if not trace:
            raise ValueError("trace must not be empty")
        if self.precompute:
            self.precompute_service_times(trace)
        # Imported lazily: dispatch builds on this module.
        from .dispatch import AutoscaleDispatchController, sorted_order

        controller = AutoscaleDispatchController(self)
        for index in sorted_order(trace):
            controller.on_arrival(index, trace[index])
        jobs = controller.final_jobs()
        shards: List[List[ServingRequest]] = [[] for _ in range(self.n_chips)]
        for job in jobs:
            shards[job.chip_id] = list(job.shard)
        per_chip = self._run_shards(shards)
        return controller.collect(
            {chip_id: result for chip_id, result in enumerate(per_chip)}
        )


def static_fleet_report(
    model: MLLMConfig,
    trace: Sequence[ServingRequest],
    *,
    n_chips: int,
    **kwargs,
) -> ServingReport:
    """Convenience: the report of a fixed-size fleet on the same trace.

    The comparison baseline for autoscaling studies: ``model`` and
    ``trace`` as in the autoscaled run, a static fleet of ``n_chips``
    chips, no controller; ``kwargs`` forward to :class:`FleetSimulator`.
    """
    fleet = FleetSimulator(model, n_chips=n_chips, **kwargs)
    return fleet.run(trace).report
