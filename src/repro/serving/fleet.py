"""Multi-chip fleet serving: a load balancer in front of N EdgeMM chips.

A deployment serving heavy traffic runs a fleet of EdgeMM chips behind a
dispatcher.  :class:`FleetSimulator` partitions an open-loop trace across
``n_chips`` single-chip :class:`~repro.serving.queue.ContinuousBatchingSimulator`
instances according to a load-balancing policy and merges the per-chip
records into one fleet-wide report.

Two dispatch policies are provided:

* ``round_robin`` — requests go to chips cyclically, the stateless default;
* ``least_loaded`` — each request goes to the chip whose *estimated*
  completion horizon is earliest, where the estimate is the chip's current
  horizon plus a batch-1 cost estimate of the request (prefill + decode).
  This is a dispatcher-side estimate, as a real front-end would compute —
  the dispatcher does not look inside the chips' queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.simulator import PerformanceSimulator
from ..models.mllm import InferenceRequest, MLLMConfig
from .metrics import RequestRecord, ServingReport, summarize
from .queue import ContinuousBatchingSimulator, ServingRequest, ServingResult

POLICIES: Tuple[str, ...] = ("round_robin", "least_loaded")


@dataclass(frozen=True)
class FleetResult:
    """Outcome of a fleet simulation: merged records plus per-chip results."""

    records: Tuple[RequestRecord, ...]
    per_chip: Tuple[ServingResult, ...]
    assignments: Tuple[int, ...]

    @property
    def report(self) -> ServingReport:
        return summarize(self.records)

    @property
    def requests_per_chip(self) -> Tuple[int, ...]:
        counts = [0] * len(self.per_chip)
        for chip_id in self.assignments:
            counts[chip_id] += 1
        return tuple(counts)


class FleetSimulator:
    """Dispatches a trace across a fleet of identical EdgeMM chips."""

    def __init__(
        self,
        model: MLLMConfig,
        *,
        n_chips: int = 2,
        policy: str = "round_robin",
        simulator_factory: Optional[Callable[[], PerformanceSimulator]] = None,
        max_batch_size: int = 8,
        cc_bandwidth_fraction: float = 0.5,
        context_bucket: int = 32,
    ) -> None:
        if n_chips < 1:
            raise ValueError("n_chips must be >= 1")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        self.model = model
        self.n_chips = n_chips
        self.policy = policy
        factory = simulator_factory or PerformanceSimulator
        self.chips: List[ContinuousBatchingSimulator] = [
            ContinuousBatchingSimulator(
                factory(),
                model,
                max_batch_size=max_batch_size,
                cc_bandwidth_fraction=cc_bandwidth_fraction,
                context_bucket=context_bucket,
                chip_id=chip_id,
            )
            for chip_id in range(n_chips)
        ]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _estimate_cost_s(self, chip: ContinuousBatchingSimulator,
                         request: InferenceRequest) -> float:
        """Dispatcher-side batch-1 service-time estimate of one request."""
        prefill = chip.cc_latency_s(request)
        context = self.model.prompt_tokens(request)
        per_token = chip.cost_model.step_latency_s([context])
        return prefill + per_token * request.output_tokens

    def assign(self, trace: Sequence[ServingRequest]) -> List[int]:
        """Chip index for every request of the trace, in trace order.

        Assignments are positional, so traces carrying duplicate (caller-
        supplied) request ids still dispatch every request.
        """
        order = sorted(
            range(len(trace)),
            key=lambda i: (trace[i].arrival_s, trace[i].request_id),
        )
        assignments = [0] * len(trace)
        if self.policy == "round_robin":
            for position, index in enumerate(order):
                assignments[index] = position % self.n_chips
        else:  # least_loaded
            horizon = [0.0] * self.n_chips
            for index in order:
                request = trace[index]
                chip_id = min(range(self.n_chips), key=lambda i: horizon[i])
                cost = self._estimate_cost_s(self.chips[chip_id], request.request)
                horizon[chip_id] = max(horizon[chip_id], request.arrival_s) + cost
                assignments[index] = chip_id
        return assignments

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(self, trace: Sequence[ServingRequest]) -> FleetResult:
        """Dispatch the trace, simulate every chip and merge the records."""
        if not trace:
            raise ValueError("trace must not be empty")
        assignments = self.assign(trace)
        shards: List[List[ServingRequest]] = [[] for _ in range(self.n_chips)]
        for request, chip_id in zip(trace, assignments):
            shards[chip_id].append(request)
        per_chip: List[ServingResult] = []
        records: List[RequestRecord] = []
        for chip, shard in zip(self.chips, shards):
            if not shard:
                per_chip.append(
                    ServingResult(records=(), peak_batch_size=0, decode_steps=0)
                )
                continue
            result = chip.run(shard)
            per_chip.append(result)
            records.extend(result.records)
        records.sort(key=lambda record: record.request_id)
        return FleetResult(
            records=tuple(records),
            per_chip=tuple(per_chip),
            assignments=tuple(assignments),
        )
