"""Multi-chip fleet serving: a load balancer in front of N EdgeMM chips.

A deployment serving heavy traffic runs a fleet of EdgeMM chips behind a
dispatcher.  :class:`FleetSimulator` partitions an open-loop trace across
``n_chips`` single-chip :class:`~repro.serving.queue.ContinuousBatchingSimulator`
instances according to a load-balancing policy and merges the per-chip
records into one fleet-wide report.

Two dispatch policies are provided:

* ``round_robin`` — requests go to chips cyclically, the stateless default;
* ``least_loaded`` — each request goes to the chip whose *estimated*
  completion horizon is earliest, where the estimate is the chip's current
  horizon plus a batch-1 cost estimate of the request (prefill + decode).
  This is a dispatcher-side estimate, as a real front-end would compute —
  the dispatcher does not look inside the chips' queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.batch import BatchCostEngine, DesignGrid, OpTable, ordered_sum
from ..core.config import SystemConfig
from ..core.pipeline import CC_STAGE_PHASES
from ..core.simulator import PerformanceSimulator
from ..models.mllm import InferenceRequest, MLLMConfig
from ..models.ops import merge_phases
from .metrics import RequestRecord, ServingReport, summarize
from .queue import ContinuousBatchingSimulator, ServingRequest, ServingResult

POLICIES: Tuple[str, ...] = ("round_robin", "least_loaded")


def simulate_chip_shard(
    *,
    system: SystemConfig,
    model: MLLMConfig,
    chip_id: int,
    max_batch_size: int,
    cc_bandwidth_fraction: float,
    context_bucket: int,
    engine: str,
    shard: Sequence[ServingRequest],
    cc_latencies: Dict[Tuple[int, int], float],
    bucket_costs: Dict[int, Tuple[int, int, float]],
    step_cache: Dict[Tuple[int, ...], float],
) -> ServingResult:
    """Picklable worker: rebuild one fleet chip and simulate its shard.

    ``system`` and ``model`` recreate the chip's performance simulator and
    workload; ``chip_id``, ``max_batch_size``, ``cc_bandwidth_fraction``,
    ``context_bucket`` and ``engine`` restore the serving configuration;
    ``shard`` is the chip's dispatched slice of the trace; ``cc_latencies``,
    ``bucket_costs`` and ``step_cache`` seed the rebuilt chip's cost memos
    (harvested from the dispatching fleet — they only change speed, never
    values, so the worker's result is bit-identical to an in-process run).
    """
    chip = ContinuousBatchingSimulator(
        PerformanceSimulator(system),
        model,
        max_batch_size=max_batch_size,
        cc_bandwidth_fraction=cc_bandwidth_fraction,
        context_bucket=context_bucket,
        chip_id=chip_id,
        engine=engine,
    )
    chip.seed_cc_latencies(cc_latencies)
    chip.cost_model.seed_bucket_costs(bucket_costs)
    chip.cost_model.seed_step_cache(step_cache)
    return chip.run(list(shard))


@dataclass(frozen=True)
class FleetResult:
    """Outcome of a fleet simulation: merged records plus per-chip results."""

    records: Tuple[RequestRecord, ...]
    per_chip: Tuple[ServingResult, ...]
    assignments: Tuple[int, ...]

    @property
    def report(self) -> ServingReport:
        """Aggregate statistics over the merged fleet-wide records."""
        return summarize(self.records)

    @property
    def requests_per_chip(self) -> Tuple[int, ...]:
        """Dispatched-request count per chip, indexed by chip id."""
        counts = [0] * len(self.per_chip)
        for chip_id in self.assignments:
            counts[chip_id] += 1
        return tuple(counts)


class FleetSimulator:
    """Dispatches a trace across a fleet of identical EdgeMM chips.

    ``engine`` selects every chip's decode-loop implementation (see
    :data:`repro.serving.queue.ENGINES`); ``processes`` fans independent
    chip simulations out across worker processes — chips never interact
    once dispatched, so the fan-out is trace-identical to the serial path.
    """

    def __init__(
        self,
        model: MLLMConfig,
        *,
        n_chips: int = 2,
        policy: str = "round_robin",
        simulator_factory: Optional[Callable[[], PerformanceSimulator]] = None,
        max_batch_size: int = 8,
        cc_bandwidth_fraction: float = 0.5,
        context_bucket: int = 32,
        precompute: bool = True,
        engine: str = "macro",
        processes: Optional[int] = None,
    ) -> None:
        if n_chips < 1:
            raise ValueError("n_chips must be >= 1")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1")
        self.model = model
        self.n_chips = n_chips
        self.policy = policy
        self.precompute = precompute
        self.cc_bandwidth_fraction = cc_bandwidth_fraction
        self.engine = engine
        self.processes = processes
        self._estimate_cache: Dict[Tuple[int, int, int, int], float] = {}
        factory = simulator_factory or PerformanceSimulator
        self.chips: List[ContinuousBatchingSimulator] = [
            ContinuousBatchingSimulator(
                factory(),
                model,
                max_batch_size=max_batch_size,
                cc_bandwidth_fraction=cc_bandwidth_fraction,
                context_bucket=context_bucket,
                chip_id=chip_id,
                engine=engine,
            )
            for chip_id in range(n_chips)
        ]

    # ------------------------------------------------------------------
    # Service-time precomputation (batch engine)
    # ------------------------------------------------------------------
    def _chip_groups(self) -> List[List[ContinuousBatchingSimulator]]:
        """Chips grouped by system equality (pools follow the system)."""
        groups: List[List[ContinuousBatchingSimulator]] = []
        for chip in self.chips:
            for group in groups:
                if chip.simulator.system == group[0].simulator.system:
                    group.append(chip)
                    break
            else:
                groups.append([chip])
        return groups

    def precompute_service_times(self, trace: Sequence[ServingRequest]) -> None:
        """Warm every chip's cost caches with one (chips × buckets) grid pass.

        The fleet's chips would each lazily derive the same CC-stage
        latencies and decode-bucket cost triples through the scalar
        simulator.  This precomputation prices the whole fleet at once:
        chips group by system equality, each group of systems becomes one
        :class:`~repro.core.batch.DesignGrid` point, and every missing
        request shape (or initial context bucket) becomes one phase of a
        single :class:`~repro.core.batch.OpTable` — so all (group, shape)
        CC latencies come out of one ``evaluate`` call and all
        (group, bucket) decode cost triples out of one ``op_costs`` call,
        instead of a table build and engine pass per shape.  Per-phase
        reductions slice the shared op-order array exactly as the
        single-phase tables would, and op costs are pure per unique
        signature, so seeded values are bit-identical to the scalar path
        and traces replay unchanged.

        Buckets that only appear later (contexts grow as tokens generate)
        still resolve lazily through the scalar path.
        """
        if not len(trace):
            return
        shapes = sorted(
            {(r.request.images, r.request.prompt_text_tokens) for r in trace}
        )
        probes = {
            shape: InferenceRequest(
                images=shape[0], prompt_text_tokens=shape[1], output_tokens=1
            )
            for shape in shapes
        }
        reference = self.chips[0].cost_model
        buckets = sorted(
            {
                reference.bucket_for(self.model.prompt_tokens(probe))
                for probe in probes.values()
            }
        )
        groups = self._chip_groups()

        cc_pending = [
            (group, [s for s in shapes if not group[0].has_cc_latency(s)])
            for group in groups
        ]
        cc_pending = [(g, missing) for g, missing in cc_pending if missing]
        # The batch engine prices one pool per call; a pool is a pure
        # function of the system, so groups partition cleanly by it.
        for pool in sorted({g[0].cc_pool for g, _ in cc_pending}):
            members = [
                (g, missing) for g, missing in cc_pending if g[0].cc_pool == pool
            ]
            union = sorted({s for _, missing in members for s in missing})
            grid = DesignGrid.from_systems(
                [g[0].simulator.system for g, _ in members],
                bandwidth_fraction=self.cc_bandwidth_fraction,
            )
            phases = []
            for position, shape in enumerate(union):
                workload = self.model.build_workload(probes[shape])
                merged = merge_phases(
                    "cc_stage",
                    [p for p in workload.phases if p.name in CC_STAGE_PHASES],
                )
                phases.append((f"cc_{position}", merged.ops, merged.repeat))
            table = OpTable("fleet_cc_grid", phases)
            result = BatchCostEngine(grid).evaluate(table, pool=pool)
            column = {shape: position for position, shape in enumerate(union)}
            for point, (group, missing) in enumerate(members):
                latencies: Dict[Tuple[int, int], float] = {
                    shape: float(result.phases[column[shape]].latency_s[point])
                    for shape in missing
                }
                for chip in group:
                    chip.seed_cc_latencies(latencies)

        decode_pending = [
            (
                group,
                [b for b in buckets if not group[0].cost_model.has_bucket_cost(b)],
            )
            for group in groups
        ]
        decode_pending = [(g, missing) for g, missing in decode_pending if missing]
        for pool in sorted({g[0].cost_model.pool for g, _ in decode_pending}):
            members = [
                (g, missing)
                for g, missing in decode_pending
                if g[0].cost_model.pool == pool
            ]
            union = sorted({b for _, missing in members for b in missing})
            grid = DesignGrid.from_systems(
                [g[0].simulator.system for g, _ in members],
                bandwidth_fraction=1.0,
            )
            table = OpTable(
                "fleet_decode_grid",
                [
                    (f"decode_{bucket}", phase.ops, phase.repeat)
                    for bucket, phase in (
                        (b, self.model.decode_step(b)) for b in union
                    )
                ],
            )
            matrices = BatchCostEngine(grid).op_costs(table, pool=pool)
            column = {bucket: position for position, bucket in enumerate(union)}
            for point, (group, missing) in enumerate(members):
                bucket_costs: Dict[int, Tuple[int, int, float]] = {}
                for bucket in missing:
                    slice_ = table.phases[column[bucket]]
                    index = table.order[slice_.start : slice_.stop]
                    weight = int(matrices.pruned_weight_bytes[point, index].sum())
                    total = int(matrices.traffic_bytes[point, index].sum())
                    compute = float(
                        ordered_sum(matrices.compute_cycles[:, index])[point]
                    )
                    bucket_costs[bucket] = (weight, total - weight, compute)
                for chip in group:
                    chip.cost_model.seed_bucket_costs(bucket_costs)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _estimate_cost_s(self, chip: ContinuousBatchingSimulator,
                         request: InferenceRequest) -> float:
        """Dispatcher-side batch-1 service-time estimate of one request.

        Memoized per (chip, request shape): least-loaded dispatch probes a
        chip's estimate once per request, and a large trace repeats a small
        set of shapes, so without the memo every probe would redundantly
        re-query the cost model.  The cached float is exactly the one a
        fresh computation returns (a pure function of the chip's own
        memoized latencies), so assignments are trace-identical.
        """
        key = (
            chip.chip_id,
            request.images,
            request.prompt_text_tokens,
            request.output_tokens,
        )
        cached = self._estimate_cache.get(key)
        if cached is not None:
            return cached
        prefill = chip.cc_latency_s(request)
        context = self.model.prompt_tokens(request)
        per_token = chip.cost_model.step_latency_s([context])
        cost = prefill + per_token * request.output_tokens
        self._estimate_cache[key] = cost
        return cost

    def assign(self, trace: Sequence[ServingRequest]) -> List[int]:
        """Chip index for every request of the trace, in trace order.

        Assignments are positional, so traces carrying duplicate (caller-
        supplied) request ids still dispatch every request.
        """
        if self.policy == "least_loaded" and self.precompute:
            self.precompute_service_times(trace)
        return self._assign(trace)

    def _assign(self, trace: Sequence[ServingRequest]) -> List[int]:
        """The assignment policy itself (caches assumed warm by callers).

        Drives a stepwise :class:`~repro.serving.dispatch.
        StaticDispatchController` over the sorted trace — the identical
        heap/counter arithmetic the live actor runtime applies one
        arrival message at a time, so both paths assign identically.
        """
        # Imported lazily: dispatch builds on this module.
        from .dispatch import StaticDispatchController, sorted_order

        controller = StaticDispatchController(self)
        assignments = [0] * len(trace)
        for index in sorted_order(trace):
            assignments[index] = controller.on_arrival(index, trace[index])
        return assignments

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _parallelizable(self, busy: Sequence[ContinuousBatchingSimulator]) -> bool:
        """Whether the busy chips can be rebuilt faithfully in workers.

        The worker reconstructs each chip as a plain
        :class:`~repro.core.simulator.PerformanceSimulator` over the chip's
        system config; a customised ``simulator_factory`` returning a
        subclass could behave differently, so such fleets fall back to the
        serial path.
        """
        return all(type(chip.simulator) is PerformanceSimulator for chip in busy)

    def _run_shards(
        self, shards: Sequence[Sequence[ServingRequest]]
    ) -> List[ServingResult]:
        """Simulate one shard per chip, serially or across processes.

        Chips are independent once dispatched, so with ``processes`` set
        the non-empty shards fan out through
        :class:`~repro.experiments.parallel.ParallelSweepRunner`; every
        worker rebuilds its chip from picklable state and seeds it with
        the parent chip's harvested cost memos, producing the bit-identical
        :class:`~repro.serving.queue.ServingResult` the in-process chip
        would return.
        """
        empty = ServingResult(records=(), peak_batch_size=0, decode_steps=0)
        busy = [
            (chip, shard) for chip, shard in zip(self.chips, shards) if shard
        ]
        if (
            self.processes is not None
            and self.processes > 1
            and len(busy) > 1
            and self._parallelizable([chip for chip, _ in busy])
        ):
            # Imported lazily: repro.experiments pulls in the experiment
            # registry, which serving must not depend on at import time.
            from ..experiments.parallel import ParallelSweepRunner

            runner = ParallelSweepRunner(processes=self.processes, cache=False)
            outcomes = runner.map(
                simulate_chip_shard,
                [
                    {
                        "system": chip.simulator.system,
                        "model": self.model,
                        "chip_id": chip.chip_id,
                        "max_batch_size": chip.max_batch_size,
                        "cc_bandwidth_fraction": chip.cc_bandwidth_fraction,
                        "context_bucket": chip.cost_model.context_bucket,
                        "engine": chip.engine,
                        "shard": list(shard),
                        "cc_latencies": chip.cc_latencies(),
                        "bucket_costs": chip.cost_model.bucket_costs(),
                        "step_cache": chip.cost_model.step_cache(),
                    }
                    for chip, shard in busy
                ],
            )
            by_chip = {
                chip.chip_id: outcome
                for (chip, _), outcome in zip(busy, outcomes)
            }
        else:
            by_chip = {chip.chip_id: chip.run(list(shard)) for chip, shard in busy}
        return [by_chip.get(chip.chip_id, empty) for chip in self.chips]

    def run(
        self,
        trace: Sequence[ServingRequest],
        *,
        faults=None,
        priorities: Optional[Sequence[float]] = None,
        runtime: str = "batch",
    ) -> FleetResult:
        """Dispatch the trace, simulate every chip and merge the records.

        ``faults`` optionally routes the run through the event-driven
        degradation path (:func:`repro.serving.faults.
        run_fleet_with_faults`); ``priorities`` then orders post-fault
        re-dispatch (a static fleet has no admission control, so
        priorities only matter under faults).  With ``faults=None`` the
        historical fault-free path runs unchanged.  ``runtime`` selects
        the execution plane (see :data:`repro.serving.dispatch.RUNTIMES`):
        ``"live"`` streams the trace through the asyncio actor runtime,
        producing the bit-identical result.
        """
        if runtime != "batch":
            from .dispatch import RUNTIMES

            if runtime not in RUNTIMES:
                raise ValueError(
                    f"runtime must be one of {RUNTIMES}, got {runtime!r}"
                )
            # Imported lazily: the runtime package builds on this module.
            from .runtime import run_live

            return run_live(
                self, trace, faults=faults, priorities=priorities
            )
        if faults is not None:
            # Imported lazily: faults builds on this module.
            from .faults import run_fleet_with_faults

            return run_fleet_with_faults(
                self, trace, faults, priorities=priorities
            )
        if not trace:
            raise ValueError("trace must not be empty")
        if self.precompute:
            self.precompute_service_times(trace)
        assignments = self._assign(trace)
        shards: List[List[ServingRequest]] = [[] for _ in range(self.n_chips)]
        for request, chip_id in zip(trace, assignments):
            shards[chip_id].append(request)
        per_chip = self._run_shards(shards)
        records: List[RequestRecord] = []
        for result in per_chip:
            records.extend(result.records)
        records.sort(key=lambda record: record.request_id)
        return FleetResult(
            records=tuple(records),
            per_chip=tuple(per_chip),
            assignments=tuple(assignments),
        )
