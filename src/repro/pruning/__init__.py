"""Activation-aware weight pruning: Algorithm 1, baselines and metrics."""

from .ffn import GatedFFN, build_layer_stack, gelu, silu
from .metrics import (
    TrafficSaving,
    average_pruning_ratio,
    cosine_similarity,
    kurtosis,
    pruning_ratio,
    relative_error,
    weight_traffic_saving,
)
from .topk import (
    DynamicTopKConfig,
    DynamicTopKPruner,
    LayerPruningDecision,
    TokenPruningReport,
    decode_traffic_reduction,
    prune_token,
)
from .fixed import (
    FixedRatioConfig,
    FixedRatioPruner,
    ThresholdConfig,
    ThresholdPruner,
    prune_token_fixed,
    wanda_channel_scores,
)
from .partition import (
    ChannelPartition,
    PartitionedSelection,
    energy_coverage,
    global_topk_selection,
    local_topk_selection,
    partition_channels,
    selection_overlap,
)

__all__ = [
    "GatedFFN",
    "build_layer_stack",
    "gelu",
    "silu",
    "TrafficSaving",
    "average_pruning_ratio",
    "cosine_similarity",
    "kurtosis",
    "pruning_ratio",
    "relative_error",
    "weight_traffic_saving",
    "DynamicTopKConfig",
    "DynamicTopKPruner",
    "LayerPruningDecision",
    "TokenPruningReport",
    "decode_traffic_reduction",
    "prune_token",
    "FixedRatioConfig",
    "FixedRatioPruner",
    "ThresholdConfig",
    "ThresholdPruner",
    "prune_token_fixed",
    "wanda_channel_scores",
    "ChannelPartition",
    "PartitionedSelection",
    "energy_coverage",
    "global_topk_selection",
    "local_topk_selection",
    "partition_channels",
    "selection_overlap",
]
