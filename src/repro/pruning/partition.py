"""Per-core channel partitioning for local Top-k pruning.

Section IV-A notes that, in practice, the activation vector is allocated to
cores by channels: each MC-core runs the hardware pruner only on its local
slice, avoiding an expensive global Top-k search.  This module models that
partitioned execution and quantifies how close the union of local Top-k
selections comes to the exact global Top-k.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class ChannelPartition:
    """A contiguous slice of activation channels assigned to one core."""

    core_index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.core_index < 0:
            raise ValueError("core_index must be >= 0")
        if not 0 <= self.start < self.stop:
            raise ValueError("partition bounds must satisfy 0 <= start < stop")

    @property
    def size(self) -> int:
        return self.stop - self.start

    def channels(self) -> np.ndarray:
        return np.arange(self.start, self.stop)


def partition_channels(d_model: int, n_cores: int) -> List[ChannelPartition]:
    """Split ``d_model`` channels into ``n_cores`` contiguous slices."""
    if d_model <= 0 or n_cores <= 0:
        raise ValueError("d_model and n_cores must be positive")
    if n_cores > d_model:
        raise ValueError("cannot assign more cores than channels")
    base = d_model // n_cores
    remainder = d_model % n_cores
    partitions: List[ChannelPartition] = []
    start = 0
    for core in range(n_cores):
        size = base + (1 if core < remainder else 0)
        partitions.append(ChannelPartition(core_index=core, start=start, stop=start + size))
        start += size
    return partitions


@dataclass(frozen=True)
class PartitionedSelection:
    """Result of per-core local Top-k selection."""

    kept_channels: np.ndarray
    kept_per_core: List[int]
    local_k: int

    @property
    def kept(self) -> int:
        return int(self.kept_channels.size)


def local_topk_selection(
    vx: np.ndarray, k: int, n_cores: int
) -> PartitionedSelection:
    """Select approximately ``k`` channels using per-core local Top-k.

    Each core keeps ``ceil(k / n_cores)`` channels from its own slice —
    the hardware-friendly approximation of the global Top-k.
    """
    vx = np.asarray(vx, dtype=np.float64).ravel()
    if vx.size == 0:
        raise ValueError("vx must not be empty")
    if k < 0:
        raise ValueError("k must be >= 0")
    k = min(k, vx.size)
    partitions = partition_channels(vx.size, n_cores)
    local_k = max(math.ceil(k / n_cores), 0)
    kept: List[int] = []
    kept_per_core: List[int] = []
    for partition in partitions:
        slice_values = np.abs(vx[partition.start : partition.stop])
        keep_here = min(local_k, slice_values.size)
        kept_per_core.append(keep_here)
        if keep_here == 0:
            continue
        local_indices = np.argpartition(slice_values, slice_values.size - keep_here)[
            slice_values.size - keep_here:
        ]
        kept.extend((partition.start + local_indices).tolist())
    return PartitionedSelection(
        kept_channels=np.sort(np.asarray(kept, dtype=int)),
        kept_per_core=kept_per_core,
        local_k=local_k,
    )


def global_topk_selection(vx: np.ndarray, k: int) -> np.ndarray:
    """Exact global Top-k channel selection (reference)."""
    vx = np.asarray(vx, dtype=np.float64).ravel()
    if vx.size == 0:
        raise ValueError("vx must not be empty")
    k = min(max(k, 0), vx.size)
    if k == 0:
        return np.empty(0, dtype=int)
    magnitudes = np.abs(vx)
    return np.sort(np.argpartition(magnitudes, vx.size - k)[vx.size - k:])


def selection_overlap(selected: np.ndarray, reference: np.ndarray) -> float:
    """Fraction of the reference selection recovered by ``selected``."""
    reference = np.asarray(reference, dtype=int)
    if reference.size == 0:
        return 1.0
    selected_set = set(np.asarray(selected, dtype=int).tolist())
    hits = sum(1 for channel in reference.tolist() if channel in selected_set)
    return hits / reference.size


def energy_coverage(vx: np.ndarray, selected: np.ndarray) -> float:
    """Fraction of the activation vector's L2 energy covered by a selection."""
    vx = np.asarray(vx, dtype=np.float64).ravel()
    total = float(np.sum(vx**2))
    if total == 0.0:
        return 1.0
    selected = np.asarray(selected, dtype=int)
    if selected.size == 0:
        return 0.0
    return float(np.sum(vx[selected] ** 2) / total)
