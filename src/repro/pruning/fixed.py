"""Fixed-ratio pruning baselines (the "fixed k" schemes of Fig. 12(b)).

The paper compares its dynamic Top-k scheme against fixed pruning ratios
(0.1 and 0.7).  This module provides those baselines plus two related
schemes from the literature the paper cites:

* :class:`FixedRatioPruner` — keep the Top-(1 - ratio) fraction of channels
  by activation magnitude in every layer (the paper's comparison point);
* :class:`ThresholdPruner` — CATS-style: prune channels whose magnitude
  falls below an absolute threshold;
* :func:`wanda_channel_scores` — Wanda-style importance ``|activation| *
  ||weight row||`` for channel selection when weights are available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .ffn import GatedFFN
from .metrics import cosine_similarity, pruning_ratio
from .topk import LayerPruningDecision, TokenPruningReport
from .metrics import kurtosis


@dataclass(frozen=True)
class FixedRatioConfig:
    """Configuration of the fixed-ratio baseline."""

    ratio: float
    skip_first_layer: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio < 1.0:
            raise ValueError("ratio must be in [0, 1)")


class FixedRatioPruner:
    """Keep the Top-(1 - ratio) magnitude channels of every layer."""

    def __init__(self, d_model: int, config: FixedRatioConfig) -> None:
        if d_model <= 0:
            raise ValueError("d_model must be positive")
        self.d_model = d_model
        self.config = config

    def keep_count(self, layer_index: int) -> int:
        if layer_index == 0 and self.config.skip_first_layer:
            return self.d_model
        return max(int(round(self.d_model * (1.0 - self.config.ratio))), 1)

    def prune_layer(self, vx: np.ndarray, layer_index: int) -> LayerPruningDecision:
        vx = np.asarray(vx, dtype=np.float64).ravel()
        if vx.size != self.d_model:
            raise ValueError(
                f"activation vector must have {self.d_model} channels, got {vx.size}"
            )
        k = self.keep_count(layer_index)
        magnitudes = np.abs(vx)
        if k >= self.d_model:
            kept = np.arange(self.d_model)
        else:
            kept = np.sort(
                np.argpartition(magnitudes, self.d_model - k)[self.d_model - k:]
            )
        return LayerPruningDecision(
            layer_index=layer_index,
            k_before=k,
            k_after=k,
            kept_channels=kept,
            above_threshold_count=k,
            total_channels=self.d_model,
        )


@dataclass(frozen=True)
class ThresholdConfig:
    """Configuration of the CATS-style absolute-threshold baseline."""

    threshold: float
    skip_first_layer: bool = False

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("threshold must be >= 0")


class ThresholdPruner:
    """Prune channels whose activation magnitude is below a fixed threshold."""

    def __init__(self, d_model: int, config: ThresholdConfig) -> None:
        if d_model <= 0:
            raise ValueError("d_model must be positive")
        self.d_model = d_model
        self.config = config

    def prune_layer(self, vx: np.ndarray, layer_index: int) -> LayerPruningDecision:
        vx = np.asarray(vx, dtype=np.float64).ravel()
        if vx.size != self.d_model:
            raise ValueError(
                f"activation vector must have {self.d_model} channels, got {vx.size}"
            )
        magnitudes = np.abs(vx)
        if layer_index == 0 and self.config.skip_first_layer:
            kept = np.arange(self.d_model)
        else:
            kept = np.flatnonzero(magnitudes >= self.config.threshold)
            if kept.size == 0:
                kept = np.array([int(np.argmax(magnitudes))])
        return LayerPruningDecision(
            layer_index=layer_index,
            k_before=self.d_model,
            k_after=kept.size,
            kept_channels=kept,
            above_threshold_count=kept.size,
            total_channels=self.d_model,
        )


def wanda_channel_scores(vx: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """Wanda-style channel importance: ``|activation| * ||weight row||_2``.

    ``weight`` has shape (d_model, d_ffn); the score of input channel ``i``
    multiplies its activation magnitude with the L2 norm of weight row ``i``.
    """
    vx = np.asarray(vx, dtype=np.float64).ravel()
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2 or weight.shape[0] != vx.size:
        raise ValueError("weight must have shape (d_model, d_ffn)")
    row_norms = np.linalg.norm(weight, axis=1)
    return np.abs(vx) * row_norms


def prune_token_fixed(
    activations: Sequence[np.ndarray],
    ffn_layers: Optional[Sequence[GatedFFN]] = None,
    *,
    ratio: float,
    skip_first_layer: bool = False,
) -> TokenPruningReport:
    """Apply a fixed pruning ratio to every layer of one decode step.

    Mirrors :func:`repro.pruning.topk.prune_token` so the dynamic and fixed
    schemes can be compared layer-by-layer (Fig. 12(b)).
    """
    if not activations:
        raise ValueError("activations must not be empty")
    if ffn_layers is not None and len(ffn_layers) != len(activations):
        raise ValueError("ffn_layers must match activations in length")
    d_model = np.asarray(activations[0]).size
    pruner = FixedRatioPruner(d_model, FixedRatioConfig(ratio, skip_first_layer))
    decisions: List[LayerPruningDecision] = []
    similarities: List[float] = []
    kurtoses: List[float] = []
    for layer_index, vx in enumerate(activations):
        vx = np.asarray(vx, dtype=np.float64).ravel()
        decision = pruner.prune_layer(vx, layer_index)
        decisions.append(decision)
        kurtoses.append(kurtosis(np.abs(vx)))
        if ffn_layers is not None:
            layer = ffn_layers[layer_index]
            exact = layer.forward(vx)
            pruned = layer.forward_pruned(vx, decision.kept_channels)
            similarities.append(cosine_similarity(exact, pruned))
    return TokenPruningReport(
        decisions=decisions,
        cosine_similarities=similarities,
        kurtoses=kurtoses,
    )
