"""Numeric gated-MLP FFN model (Eq. 1 of the paper).

    FFN(Vx) = ((Vx @ W_up) * act(Vx @ W_gate)) @ W_down

The FFN model executes both the exact computation and a channel-pruned
variant: pruning a set of input channels removes the matching rows of
``W_up`` and ``W_gate`` (and the matching elements of ``Vx``), which is
exactly what the hardware pruner's address generator achieves by skipping
the DRAM reads of the pruned weight rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU activation used by LLaMA-family gated MLPs."""
    return x / (1.0 + np.exp(-x))


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


@dataclass
class GatedFFN:
    """A gated-MLP FFN layer with explicit weight matrices.

    Weight layout: ``w_gate`` and ``w_up`` are (d_model x d_ffn); ``w_down``
    is (d_ffn x d_model); the input is a length-``d_model`` vector.
    """

    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray
    activation: Callable[[np.ndarray], np.ndarray] = silu

    def __post_init__(self) -> None:
        self.w_gate = np.asarray(self.w_gate, dtype=np.float64)
        self.w_up = np.asarray(self.w_up, dtype=np.float64)
        self.w_down = np.asarray(self.w_down, dtype=np.float64)
        if self.w_gate.ndim != 2 or self.w_up.ndim != 2 or self.w_down.ndim != 2:
            raise ValueError("weight matrices must be two-dimensional")
        if self.w_gate.shape != self.w_up.shape:
            raise ValueError("w_gate and w_up must have the same shape")
        d_model, d_ffn = self.w_gate.shape
        if self.w_down.shape != (d_ffn, d_model):
            raise ValueError(
                f"w_down must have shape ({d_ffn}, {d_model}), got {self.w_down.shape}"
            )

    @property
    def d_model(self) -> int:
        return self.w_gate.shape[0]

    @property
    def d_ffn(self) -> int:
        return self.w_gate.shape[1]

    @classmethod
    def random(
        cls,
        d_model: int,
        d_ffn: int,
        *,
        seed: int = 0,
        scale: float = 0.02,
        activation: Callable[[np.ndarray], np.ndarray] = silu,
    ) -> "GatedFFN":
        """Deterministic random FFN used by the pruning experiments."""
        if d_model <= 0 or d_ffn <= 0:
            raise ValueError("d_model and d_ffn must be positive")
        rng = np.random.default_rng(seed)
        return cls(
            w_gate=rng.normal(0.0, scale, size=(d_model, d_ffn)),
            w_up=rng.normal(0.0, scale, size=(d_model, d_ffn)),
            w_down=rng.normal(0.0, scale, size=(d_ffn, d_model)),
            activation=activation,
        )

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def forward(self, vx: np.ndarray) -> np.ndarray:
        """Exact FFN output for the input vector ``vx`` (Eq. 1)."""
        vx = self._check_input(vx)
        gate = self.activation(vx @ self.w_gate)
        up = vx @ self.w_up
        return (up * gate) @ self.w_down

    def forward_pruned(self, vx: np.ndarray, kept_channels: Sequence[int]) -> np.ndarray:
        """FFN output using only the kept input channels.

        ``kept_channels`` indexes the input (``d_model``) dimension; pruned
        channels contribute nothing to the ``W_gate``/``W_up`` products,
        exactly as if their weight rows were never read from DRAM.
        """
        vx = self._check_input(vx)
        kept = np.asarray(kept_channels, dtype=int)
        if kept.size == 0:
            return np.zeros(self.d_model, dtype=np.float64)
        if kept.min() < 0 or kept.max() >= self.d_model:
            raise ValueError("kept_channels out of range")
        vx_kept = vx[kept]
        gate = self.activation(vx_kept @ self.w_gate[kept, :])
        up = vx_kept @ self.w_up[kept, :]
        return (up * gate) @ self.w_down

    def weight_bytes(self, bytes_per_element: float = 1.0) -> int:
        """Total weight bytes of the layer."""
        elements = 2 * self.d_model * self.d_ffn + self.d_ffn * self.d_model
        return int(round(elements * bytes_per_element))

    def pruned_weight_bytes(
        self, kept_channels: int, bytes_per_element: float = 1.0
    ) -> int:
        """Weight bytes read when only ``kept_channels`` input channels remain."""
        if not 0 <= kept_channels <= self.d_model:
            raise ValueError("kept_channels must be in [0, d_model]")
        elements = 2 * kept_channels * self.d_ffn + self.d_ffn * self.d_model
        return int(round(elements * bytes_per_element))

    def _check_input(self, vx: np.ndarray) -> np.ndarray:
        vx = np.asarray(vx, dtype=np.float64).ravel()
        if vx.size != self.d_model:
            raise ValueError(
                f"input vector must have {self.d_model} elements, got {vx.size}"
            )
        return vx


def build_layer_stack(
    n_layers: int,
    d_model: int,
    d_ffn: int,
    *,
    seed: int = 0,
    activation: Callable[[np.ndarray], np.ndarray] = silu,
) -> list:
    """One :class:`GatedFFN` per decoder layer with distinct random weights."""
    if n_layers <= 0:
        raise ValueError("n_layers must be positive")
    return [
        GatedFFN.random(d_model, d_ffn, seed=seed + layer, activation=activation)
        for layer in range(n_layers)
    ]
