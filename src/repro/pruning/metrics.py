"""Metrics used to evaluate activation-aware pruning (Fig. 12).

* **Kurtosis** of the channel-magnitude distribution — the paper's measure
  of how prominent the outlier channels are (higher kurtosis => more
  channels can be pruned).
* **Cosine similarity** between pruned and unpruned FFN output vectors —
  the paper's per-layer accuracy proxy.
* **Pruning ratio** and **DRAM traffic saving** bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def kurtosis(values: np.ndarray, *, fisher: bool = False) -> float:
    """Kurtosis of a sample (Pearson's definition by default).

    Pearson's kurtosis of a normal distribution is 3; Fisher's ("excess")
    subtracts 3.  The paper plots Pearson-style kurtosis of the channel
    magnitudes, where heavier-tailed (more outlier-dominated) layers score
    higher.
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size < 2:
        raise ValueError("kurtosis requires at least two values")
    centered = values - values.mean()
    variance = np.mean(centered**2)
    if variance == 0:
        return 0.0 if fisher else 3.0
    fourth_moment = np.mean(centered**4)
    pearson = float(fourth_moment / variance**2)
    return pearson - 3.0 if fisher else pearson


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two vectors (1.0 = identical direction)."""
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.size != b.size:
        raise ValueError("vectors must have the same length")
    if a.size == 0:
        raise ValueError("vectors must not be empty")
    # Rescale by the max magnitude before squaring: elements near the
    # subnormal range would otherwise underflow inside the norms and the
    # dot product.  The clip bounds rounding error to the mathematical range.
    max_a = float(np.max(np.abs(a)))
    max_b = float(np.max(np.abs(b)))
    if max_a == 0.0 and max_b == 0.0:
        return 1.0
    if max_a == 0.0 or max_b == 0.0:
        return 0.0
    a = a / max_a
    b = b / max_b
    denominator = np.linalg.norm(a) * np.linalg.norm(b)
    return float(np.clip(np.dot(a, b) / denominator, -1.0, 1.0))


def pruning_ratio(kept_channels: int, total_channels: int) -> float:
    """Fraction of channels removed (the paper's "pruning ratio")."""
    if total_channels <= 0:
        raise ValueError("total_channels must be positive")
    if not 0 <= kept_channels <= total_channels:
        raise ValueError("kept_channels must be in [0, total_channels]")
    return 1.0 - kept_channels / total_channels


def relative_error(reference: np.ndarray, approximation: np.ndarray) -> float:
    """L2 relative error of an approximation against the reference."""
    reference = np.asarray(reference, dtype=float).ravel()
    approximation = np.asarray(approximation, dtype=float).ravel()
    if reference.size != approximation.size:
        raise ValueError("vectors must have the same length")
    norm = np.linalg.norm(reference)
    if norm == 0.0:
        return float(np.linalg.norm(approximation))
    return float(np.linalg.norm(reference - approximation) / norm)


@dataclass(frozen=True)
class TrafficSaving:
    """DRAM traffic accounting for one pruned GEMV (or a set of them)."""

    baseline_bytes: int
    pruned_bytes: int

    def __post_init__(self) -> None:
        if self.baseline_bytes < 0 or self.pruned_bytes < 0:
            raise ValueError("byte counts must be >= 0")

    @property
    def saved_bytes(self) -> int:
        return max(self.baseline_bytes - self.pruned_bytes, 0)

    @property
    def saving_fraction(self) -> float:
        if self.baseline_bytes == 0:
            return 0.0
        return self.saved_bytes / self.baseline_bytes


def weight_traffic_saving(
    d_model: int,
    d_ffn: int,
    kept_channels: int,
    *,
    weight_bytes: float = 1.0,
    gated: bool = True,
) -> TrafficSaving:
    """Traffic saved by pruning the FFN input channels of one decoder layer.

    Channel pruning removes rows of ``W_up``/``W_gate`` (the ``d_model``
    dimension); ``W_down``'s input dimension is ``d_ffn`` and is unaffected
    by input-channel pruning, so only the first two projections shrink —
    matching the hardware pruner's address-generation behaviour.
    """
    if kept_channels < 0 or kept_channels > d_model:
        raise ValueError("kept_channels must be in [0, d_model]")
    input_projections = 2 if gated else 1
    baseline = int(
        round((input_projections * d_model + d_ffn) * d_ffn * 0 + 0)
    )
    # Baseline: gate + up read d_model*d_ffn each; down reads d_ffn*d_model.
    baseline = int(
        round((input_projections * d_model * d_ffn + d_ffn * d_model) * weight_bytes)
    )
    pruned = int(
        round((input_projections * kept_channels * d_ffn + d_ffn * d_model) * weight_bytes)
    )
    return TrafficSaving(baseline_bytes=baseline, pruned_bytes=pruned)


def average_pruning_ratio(kept_per_layer: Sequence[int], total_channels: int) -> float:
    """Mean pruning ratio across layers."""
    if not kept_per_layer:
        raise ValueError("kept_per_layer must not be empty")
    ratios = [pruning_ratio(kept, total_channels) for kept in kept_per_layer]
    return float(np.mean(ratios))
