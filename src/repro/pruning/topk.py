"""Layer-wise dynamic Top-k activation-aware pruning (Algorithm 1).

The scheme prunes the FFN GEMVs of the decode phase channel-wise, guided by
the activation vector's magnitudes:

* layer 1 (index 0) is never pruned (``k = d``) because its distribution is
  unstable and pruning it destroys accuracy;
* for every other layer the current ``k`` selects the Top-k magnitude
  channels; only their weight rows are read from DRAM and multiplied;
* after the selection, ``n`` counts the channels within a factor ``t`` of
  the maximum (``t = 16`` in the paper); if ``n < k`` the budget shrinks to
  ``n`` for the following layers, so ``k`` decreases monotonically with
  depth as the outliers become more prominent;
* the budget resets to ``d`` at the start of every generated token.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .ffn import GatedFFN
from .metrics import cosine_similarity, kurtosis, pruning_ratio


@dataclass(frozen=True)
class DynamicTopKConfig:
    """Parameters of Algorithm 1.

    Attributes
    ----------
    threshold:
        The divisor ``t``: channels smaller than ``max|Vx| / t`` are
        considered negligible (paper default 16).
    skip_first_layer:
        Keep all channels of the first decoder layer (paper behaviour).
    min_keep:
        Lower bound on ``k`` to avoid degenerate all-pruned layers.
    monotonic:
        Enforce that ``k`` never grows with depth within one token
        (the paper's "k should decrease progressively with layer depth").
    """

    threshold: float = 16.0
    skip_first_layer: bool = True
    min_keep: int = 1
    monotonic: bool = True

    def __post_init__(self) -> None:
        if self.threshold <= 1.0:
            raise ValueError("threshold must be > 1")
        if self.min_keep < 1:
            raise ValueError("min_keep must be >= 1")


@dataclass(frozen=True)
class LayerPruningDecision:
    """The pruning decision of one layer for one token."""

    layer_index: int
    k_before: int
    k_after: int
    kept_channels: np.ndarray
    above_threshold_count: int
    total_channels: int

    @property
    def kept(self) -> int:
        return int(self.kept_channels.size)

    @property
    def ratio(self) -> float:
        return pruning_ratio(self.kept, self.total_channels)


class DynamicTopKPruner:
    """Stateful implementation of Algorithm 1 for one generated token.

    Call :meth:`start_token` at the beginning of each decode step and
    :meth:`prune_layer` once per decoder layer, in order.
    """

    def __init__(self, d_model: int, config: Optional[DynamicTopKConfig] = None) -> None:
        if d_model <= 0:
            raise ValueError("d_model must be positive")
        self.d_model = d_model
        self.config = config or DynamicTopKConfig()
        self._k = d_model
        self._next_layer = 0

    @property
    def current_k(self) -> int:
        return self._k

    def start_token(self) -> None:
        """Reset the channel budget for a new generated token."""
        self._k = self.d_model
        self._next_layer = 0

    def prune_layer(self, vx: np.ndarray, layer_index: Optional[int] = None) -> LayerPruningDecision:
        """Apply Algorithm 1 to one layer's activation vector."""
        vx = np.asarray(vx, dtype=np.float64).ravel()
        if vx.size != self.d_model:
            raise ValueError(
                f"activation vector must have {self.d_model} channels, got {vx.size}"
            )
        if layer_index is None:
            layer_index = self._next_layer
        self._next_layer = layer_index + 1

        k_before = self._k
        if layer_index == 0 and self.config.skip_first_layer:
            k_used = self.d_model
        else:
            k_used = max(min(k_before, self.d_model), self.config.min_keep)

        magnitudes = np.abs(vx)
        kept_channels = self._select_topk(magnitudes, k_used)

        # th-mask: count channels within a factor t of the maximum.
        peak = magnitudes.max()
        if peak == 0.0:
            n_above = 0
        else:
            n_above = int(np.count_nonzero(magnitudes > peak / self.config.threshold))

        k_after = k_before
        if n_above < k_before:
            k_after = max(n_above, self.config.min_keep)
        if self.config.monotonic:
            k_after = min(k_after, k_before)
        self._k = k_after

        return LayerPruningDecision(
            layer_index=layer_index,
            k_before=k_before,
            k_after=k_after,
            kept_channels=kept_channels,
            above_threshold_count=n_above,
            total_channels=self.d_model,
        )

    @staticmethod
    def _select_topk(magnitudes: np.ndarray, k: int) -> np.ndarray:
        k = min(max(k, 0), magnitudes.size)
        if k == magnitudes.size:
            return np.arange(magnitudes.size)
        if k == 0:
            return np.empty(0, dtype=int)
        partition = np.argpartition(magnitudes, magnitudes.size - k)[magnitudes.size - k:]
        return np.sort(partition)


@dataclass(frozen=True)
class TokenPruningReport:
    """Per-layer results of pruning one token's FFN computations."""

    decisions: List[LayerPruningDecision]
    cosine_similarities: List[float]
    kurtoses: List[float]

    @property
    def n_layers(self) -> int:
        return len(self.decisions)

    @property
    def mean_pruning_ratio(self) -> float:
        if not self.decisions:
            return 0.0
        return float(np.mean([decision.ratio for decision in self.decisions]))

    @property
    def mean_cosine_similarity(self) -> float:
        if not self.cosine_similarities:
            return 1.0
        return float(np.mean(self.cosine_similarities))

    def pruning_ratios(self) -> List[float]:
        return [decision.ratio for decision in self.decisions]

    def kept_per_layer(self) -> List[int]:
        return [decision.kept for decision in self.decisions]


def prune_token(
    activations: Sequence[np.ndarray],
    ffn_layers: Optional[Sequence[GatedFFN]] = None,
    *,
    config: Optional[DynamicTopKConfig] = None,
) -> TokenPruningReport:
    """Run Algorithm 1 over all layers of one decode step.

    ``activations[i]`` is the FFN input vector of layer ``i``.  If
    ``ffn_layers`` is supplied, the pruned and unpruned FFN outputs are
    compared layer-by-layer with cosine similarity (Fig. 12(b)); otherwise
    similarities are omitted.
    """
    if not activations:
        raise ValueError("activations must not be empty")
    if ffn_layers is not None and len(ffn_layers) != len(activations):
        raise ValueError("ffn_layers must match activations in length")
    d_model = np.asarray(activations[0]).size
    pruner = DynamicTopKPruner(d_model, config)
    pruner.start_token()
    decisions: List[LayerPruningDecision] = []
    similarities: List[float] = []
    kurtoses: List[float] = []
    for layer_index, vx in enumerate(activations):
        vx = np.asarray(vx, dtype=np.float64).ravel()
        decision = pruner.prune_layer(vx, layer_index)
        decisions.append(decision)
        kurtoses.append(kurtosis(np.abs(vx)))
        if ffn_layers is not None:
            layer = ffn_layers[layer_index]
            exact = layer.forward(vx)
            pruned = layer.forward_pruned(vx, decision.kept_channels)
            similarities.append(cosine_similarity(exact, pruned))
    return TokenPruningReport(
        decisions=decisions,
        cosine_similarities=similarities,
        kurtoses=kurtoses,
    )


def decode_traffic_reduction(
    report: TokenPruningReport,
    d_ffn: int,
    *,
    weight_bytes: float = 1.0,
) -> float:
    """Fraction of FFN weight traffic removed by the report's decisions.

    Gate and up projections read only the kept channels' rows; the down
    projection is unaffected.
    """
    if d_ffn <= 0:
        raise ValueError("d_ffn must be positive")
    baseline = 0.0
    pruned = 0.0
    for decision in report.decisions:
        d_model = decision.total_channels
        baseline += (2 * d_model + d_model) * d_ffn * weight_bytes
        pruned += (2 * decision.kept + d_model) * d_ffn * weight_bytes
    if baseline == 0.0:
        return 0.0
    return 1.0 - pruned / baseline
