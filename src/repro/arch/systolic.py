"""Systolic-array coprocessor model for compute-centric (CC) cores.

The paper's CC-core extension is a weight-stationary R x C systolic array of
multiply-accumulate processing elements with four R x C matrix registers, a
vector unit of element width C and an independent load/store unit.

The paper's latency model for multiplying an R x C (stationary weight tile)
by an M x R (streamed activation) matrix is Eq. 2:

    L_SA = R + (R - 1) + (C + M - 1) - 1 = 2R + C + M - 3

which accounts for weight loading (R), the array fill (R - 1) and the
systolic drain of the M activation rows over C columns.  Larger GEMMs are
tiled over the weight matrix; each (R x C) weight tile is loaded once and
streams all M activation rows before the next tile is loaded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SystolicArrayConfig:
    """Geometry and datapath parameters of the SA coprocessor.

    Attributes
    ----------
    rows:
        Number of PE rows (R); also the stationary tile's reduction depth.
    cols:
        Number of PE columns (C); also the vector-unit element width.
    matrix_registers:
        Number of architected R x C matrix registers.
    input_bits:
        Activation operand width in bits (BF16 -> 16).
    weight_bits:
        Weight operand width in bits.
    accumulator_bits:
        Accumulator width in bits.
    """

    rows: int = 16
    cols: int = 16
    matrix_registers: int = 4
    input_bits: int = 16
    weight_bits: int = 8
    accumulator_bits: int = 32

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("rows and cols must be positive")
        if self.matrix_registers < 2:
            raise ValueError("at least two matrix registers are required")
        for label, bits in (
            ("input_bits", self.input_bits),
            ("weight_bits", self.weight_bits),
            ("accumulator_bits", self.accumulator_bits),
        ):
            if bits <= 0:
                raise ValueError(f"{label} must be positive")

    @property
    def pe_count(self) -> int:
        return self.rows * self.cols

    @property
    def macs_per_cycle(self) -> int:
        """Peak multiply-accumulates per cycle (fully utilised array)."""
        return self.pe_count

    @property
    def peak_flops_per_cycle(self) -> int:
        return 2 * self.pe_count


class SystolicArray:
    """Cycle model of a single SA coprocessor."""

    def __init__(self, config: SystolicArrayConfig | None = None) -> None:
        self.config = config or SystolicArrayConfig()

    # ------------------------------------------------------------------
    # Paper Eq. 2 and its tiled generalisation
    # ------------------------------------------------------------------
    def tile_cycles(self, m: int) -> int:
        """Cycles to stream an M x R activation block through one weight tile.

        This is exactly Eq. 2 of the paper: ``2R + C + M - 3``.
        """
        if m <= 0:
            raise ValueError("m must be positive")
        cfg = self.config
        return 2 * cfg.rows + cfg.cols + m - 3

    def gemm_cycles(self, m: int, k: int, n: int) -> int:
        """Cycles for a full (m x k) @ (k x n) GEMM.

        The weight matrix is tiled into ceil(k/R) x ceil(n/C) stationary
        tiles; each tile costs ``tile_cycles(m)``.  Partial tiles cost the
        same as full tiles (the array cannot be partially re-timed), which
        models the padding inefficiency of shapes that do not divide the
        array geometry.
        """
        if m <= 0 or k <= 0 or n <= 0:
            raise ValueError("GEMM dimensions must be positive")
        cfg = self.config
        k_tiles = math.ceil(k / cfg.rows)
        n_tiles = math.ceil(n / cfg.cols)
        return k_tiles * n_tiles * self.tile_cycles(m)

    def gemv_cycles(self, k: int, n: int) -> int:
        """Cycles for a (1 x k) @ (k x n) GEMV (the m = 1 case of Eq. 2).

        Only one activation column flows through the array, so almost all
        PE slots are idle — this is the inefficiency the MC-core's CIM
        macro addresses.
        """
        return self.gemm_cycles(1, k, n)

    # ------------------------------------------------------------------
    # Derived throughput / utilisation figures
    # ------------------------------------------------------------------
    def gemm_utilization(self, m: int, k: int, n: int) -> float:
        """Achieved MACs per cycle divided by the array's peak."""
        cycles = self.gemm_cycles(m, k, n)
        macs = m * k * n
        if cycles == 0:
            return 0.0
        return (macs / cycles) / self.config.macs_per_cycle

    def effective_macs_per_cycle(self, m: int, k: int, n: int) -> float:
        cycles = self.gemm_cycles(m, k, n)
        if cycles == 0:
            return 0.0
        return (m * k * n) / cycles

    def weight_tile_bytes(self) -> int:
        """Bytes of one stationary weight tile."""
        cfg = self.config
        return cfg.rows * cfg.cols * cfg.weight_bits // 8

    def peak_flops(self, frequency_hz: float) -> float:
        """Peak FLOP/s of this array at a given clock frequency."""
        if frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")
        return self.config.peak_flops_per_cycle * frequency_hz
