"""Group- and chip-level assembly of the EdgeMM architecture (Fig. 4).

The full chip consists of ``n_groups`` groups connected through the system
AXI crossbar to the DRAM controller; each group contains a mix of CC- and
MC-clusters behind a cluster crossbar.  The default configuration matches
the paper's Fig. 10: 4 groups x (2 CC-clusters + 2 MC-clusters), CC-clusters
of 4 cores, MC-clusters of 2 cores, at 1 GHz.

The chip object aggregates the cluster cycle models and the DRAM /
interconnect models; the phase-level performance simulator in
``repro.core.simulator`` drives it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .cluster import (
    CCCluster,
    CCClusterConfig,
    MCCluster,
    MCClusterConfig,
    SnitchCluster,
    SnitchClusterConfig,
)
from .dram import DRAMConfig, DRAMModel
from .noc import InterconnectConfig, InterconnectModel


@dataclass(frozen=True)
class GroupConfig:
    """One group: a mix of CC- and MC-clusters behind a cluster crossbar."""

    n_cc_clusters: int = 2
    n_mc_clusters: int = 2
    cc_cluster: CCClusterConfig = field(default_factory=CCClusterConfig)
    mc_cluster: MCClusterConfig = field(default_factory=MCClusterConfig)

    def __post_init__(self) -> None:
        if self.n_cc_clusters < 0 or self.n_mc_clusters < 0:
            raise ValueError("cluster counts must be >= 0")
        if self.n_cc_clusters == 0 and self.n_mc_clusters == 0:
            raise ValueError("a group must contain at least one cluster")


@dataclass(frozen=True)
class ChipConfig:
    """The full EdgeMM chip."""

    n_groups: int = 4
    group: GroupConfig = field(default_factory=GroupConfig)
    frequency_hz: float = 1.0e9
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    name: str = "edgemm"

    def __post_init__(self) -> None:
        if self.n_groups <= 0:
            raise ValueError("n_groups must be positive")
        if self.frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")

    # Convenience counts -------------------------------------------------
    @property
    def n_cc_clusters(self) -> int:
        return self.n_groups * self.group.n_cc_clusters

    @property
    def n_mc_clusters(self) -> int:
        return self.n_groups * self.group.n_mc_clusters

    @property
    def n_cc_cores(self) -> int:
        return self.n_cc_clusters * self.group.cc_cluster.n_cores

    @property
    def n_mc_cores(self) -> int:
        return self.n_mc_clusters * self.group.mc_cluster.n_cores

    @property
    def total_cores(self) -> int:
        # Every cluster also has one dedicated DMA-control host core.
        return (
            self.n_cc_cores
            + self.n_mc_cores
            + self.n_cc_clusters
            + self.n_mc_clusters
        )


def homo_cc_chip_config(base: Optional[ChipConfig] = None) -> ChipConfig:
    """Homogeneous CC-only variant with the same total cluster count."""
    base = base or ChipConfig()
    group = GroupConfig(
        n_cc_clusters=base.group.n_cc_clusters + base.group.n_mc_clusters,
        n_mc_clusters=0,
        cc_cluster=base.group.cc_cluster,
        mc_cluster=base.group.mc_cluster,
    )
    return ChipConfig(
        n_groups=base.n_groups,
        group=group,
        frequency_hz=base.frequency_hz,
        dram=base.dram,
        interconnect=base.interconnect,
        name="homo_cc",
    )


def homo_mc_chip_config(base: Optional[ChipConfig] = None) -> ChipConfig:
    """Homogeneous MC-only variant with the same total cluster count."""
    base = base or ChipConfig()
    group = GroupConfig(
        n_cc_clusters=0,
        n_mc_clusters=base.group.n_cc_clusters + base.group.n_mc_clusters,
        cc_cluster=base.group.cc_cluster,
        mc_cluster=base.group.mc_cluster,
    )
    return ChipConfig(
        n_groups=base.n_groups,
        group=group,
        frequency_hz=base.frequency_hz,
        dram=base.dram,
        interconnect=base.interconnect,
        name="homo_mc",
    )


class Chip:
    """Aggregated cycle/bandwidth model of one chip configuration."""

    def __init__(self, config: Optional[ChipConfig] = None) -> None:
        self.config = config or ChipConfig()
        self.cc_cluster = CCCluster(self.config.group.cc_cluster)
        self.mc_cluster = MCCluster(self.config.group.mc_cluster)
        self.dram = DRAMModel(self.config.dram)
        self.interconnect = InterconnectModel(self.config.interconnect)

    # ------------------------------------------------------------------
    # Structural properties
    # ------------------------------------------------------------------
    @property
    def n_cc_clusters(self) -> int:
        return self.config.n_cc_clusters

    @property
    def n_mc_clusters(self) -> int:
        return self.config.n_mc_clusters

    @property
    def frequency_hz(self) -> float:
        return self.config.frequency_hz

    @property
    def peak_cc_macs_per_cycle(self) -> float:
        return self.n_cc_clusters * self.cc_cluster.peak_macs_per_cycle

    @property
    def peak_mc_macs_per_cycle(self) -> float:
        return self.n_mc_clusters * self.mc_cluster.peak_macs_per_cycle

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s of the whole chip (SA + CIM extensions)."""
        macs = self.peak_cc_macs_per_cycle + self.peak_mc_macs_per_cycle
        return 2.0 * macs * self.frequency_hz

    @property
    def cc_data_memory_bytes(self) -> int:
        return self.n_cc_clusters * self.cc_cluster.data_memory_bytes

    @property
    def mc_data_memory_bytes(self) -> int:
        return self.n_mc_clusters * self.mc_cluster.data_memory_bytes

    def dram_bytes_per_cycle(self) -> float:
        return self.config.dram.peak_bandwidth_bytes_per_s / self.frequency_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        if cycles < 0:
            raise ValueError("cycles must be >= 0")
        return cycles / self.frequency_hz

    def describe(self) -> dict:
        """Structural summary used by the Fig. 10 configuration experiment."""
        cfg = self.config
        return {
            "name": cfg.name,
            "groups": cfg.n_groups,
            "cc_clusters": cfg.n_cc_clusters,
            "mc_clusters": cfg.n_mc_clusters,
            "cc_cores": cfg.n_cc_cores,
            "mc_cores": cfg.n_mc_cores,
            "total_cores": cfg.total_cores,
            "frequency_ghz": cfg.frequency_hz / 1e9,
            "peak_tflops": self.peak_flops / 1e12,
            "dram_bandwidth_gbs": cfg.dram.peak_bandwidth_bytes_per_s / 1e9,
            "cc_data_memory_kib": self.cc_data_memory_bytes / 1024,
            "mc_data_memory_kib": self.mc_data_memory_bytes / 1024,
        }
