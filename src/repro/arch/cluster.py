"""Cluster-level models: CC-clusters, MC-clusters and the Snitch baseline.

A CC-cluster groups four CC-cores behind shared instruction and data
memories; an MC-cluster groups two MC-cores whose data memory *is* the CIM
macro, plus a small shared buffer for inter-core transfers.  Both own a DMA
engine and a shared ACU pool (Fig. 4).

Clusters expose matmul cycle counts with the work partitioned across their
cores — the granularity the phase-level performance simulator consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from .acu import ACUConfig, AuxiliaryComputeUnits
from .cores import CCCore, CCCoreConfig, HostCore, HostCoreConfig, MCCore, MCCoreConfig


@dataclass(frozen=True)
class CCClusterConfig:
    """A compute-centric cluster: 4 CC-cores + 1 DMA host core (paper Fig. 4)."""

    n_cores: int = 4
    core: CCCoreConfig = field(default_factory=CCCoreConfig)
    acu: ACUConfig = field(default_factory=ACUConfig)
    instruction_memory_bytes: int = 32 * 1024
    #: Usable double-buffered weight staging space in the cluster TCDM.
    #: Much smaller than the MC-cluster's CIM storage — the source of the
    #: DMA-efficiency gap of Fig. 6(b).
    data_memory_bytes: int = 32 * 1024
    name: str = "cc_cluster"

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if self.data_memory_bytes <= 0 or self.instruction_memory_bytes <= 0:
            raise ValueError("memory sizes must be positive")


@dataclass(frozen=True)
class MCClusterConfig:
    """A memory-centric cluster: 2 MC-cores + 1 DMA host core (paper Fig. 4)."""

    n_cores: int = 2
    core: MCCoreConfig = field(default_factory=MCCoreConfig)
    acu: ACUConfig = field(default_factory=ACUConfig)
    instruction_memory_bytes: int = 32 * 1024
    shared_buffer_bytes: int = 32 * 1024
    name: str = "mc_cluster"

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if self.shared_buffer_bytes <= 0 or self.instruction_memory_bytes <= 0:
            raise ValueError("memory sizes must be positive")

    @property
    def data_memory_bytes(self) -> int:
        """On-chip weight storage: the CIM macros plus the shared buffer.

        This is the "significantly larger data memory" of MC-clusters the
        paper credits for better DMA/DRAM efficiency (Fig. 6(b)).  The
        single source of the formula — the cluster model and the cost
        engines all read it from here.
        """
        return self.n_cores * self.core.cim.storage_bytes + self.shared_buffer_bytes


@dataclass(frozen=True)
class SnitchClusterConfig:
    """The original Snitch cluster baseline: SIMD host cores only."""

    n_cores: int = 8
    core: HostCoreConfig = field(default_factory=HostCoreConfig)
    #: Same usable weight-staging space as the CC-cluster: the baseline
    #: shares the EdgeMM cluster's TCDM organisation, only the coprocessors
    #: are absent.
    data_memory_bytes: int = 32 * 1024
    name: str = "snitch_cluster"

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("n_cores must be positive")


class CCCluster:
    """Compute-centric cluster: GEMM work split across the SA coprocessors."""

    def __init__(self, config: Optional[CCClusterConfig] = None) -> None:
        self.config = config or CCClusterConfig()
        self.core = CCCore(self.config.core)
        self.acu = AuxiliaryComputeUnits(self.config.acu)

    @property
    def n_cores(self) -> int:
        return self.config.n_cores

    @property
    def data_memory_bytes(self) -> int:
        return self.config.data_memory_bytes

    @property
    def peak_macs_per_cycle(self) -> float:
        return self.n_cores * self.core.peak_macs_per_cycle

    def gemm_cycles(self, m: int, k: int, n: int) -> float:
        """GEMM cycles with the output columns partitioned across cores."""
        if m <= 0 or k <= 0 or n <= 0:
            raise ValueError("GEMM dimensions must be positive")
        n_per_core = math.ceil(n / self.n_cores)
        return self.core.gemm_cycles(m, k, n_per_core)

    def gemv_cycles(self, k: int, n: int) -> float:
        """GEMV falls back to single-column systolic execution per core."""
        if k <= 0 or n <= 0:
            raise ValueError("GEMV dimensions must be positive")
        n_per_core = math.ceil(n / self.n_cores)
        return self.core.gemv_cycles(k, n_per_core)

    def elementwise_cycles(self, elements: int, flops_per_element: float = 1.0) -> float:
        if elements <= 0:
            raise ValueError("elements must be positive")
        per_core = math.ceil(elements / self.n_cores)
        return self.core.elementwise_cycles(per_core, flops_per_element)


class MCCluster:
    """Memory-centric cluster: GEMV work split across the CIM macros."""

    def __init__(self, config: Optional[MCClusterConfig] = None) -> None:
        self.config = config or MCClusterConfig()
        self.core = MCCore(self.config.core)
        self.acu = AuxiliaryComputeUnits(self.config.acu)

    @property
    def n_cores(self) -> int:
        return self.config.n_cores

    @property
    def data_memory_bytes(self) -> int:
        """On-chip weight storage (see :attr:`MCClusterConfig.data_memory_bytes`)."""
        return self.config.data_memory_bytes

    @property
    def peak_macs_per_cycle(self) -> float:
        return self.n_cores * self.core.peak_macs_per_cycle

    def gemv_cycles(self, k: int, n: int) -> float:
        """GEMV cycles with output channels partitioned across cores."""
        if k <= 0 or n <= 0:
            raise ValueError("GEMV dimensions must be positive")
        n_per_core = math.ceil(n / self.n_cores)
        return self.core.gemv_cycles(k, n_per_core)

    def gemm_cycles(self, m: int, k: int, n: int) -> float:
        """GEMM on CIM macros pays the bit-serial row factor (Eq. 3)."""
        if m <= 0 or k <= 0 or n <= 0:
            raise ValueError("GEMM dimensions must be positive")
        n_per_core = math.ceil(n / self.n_cores)
        return self.core.gemm_cycles(m, k, n_per_core)

    def pruned_gemv_cycles(self, k: int, n: int, keep_fraction: float) -> float:
        if k <= 0 or n <= 0:
            raise ValueError("GEMV dimensions must be positive")
        n_per_core = math.ceil(n / self.n_cores)
        return self.core.pruned_gemv_cycles(k, n_per_core, keep_fraction)

    def elementwise_cycles(self, elements: int, flops_per_element: float = 1.0) -> float:
        if elements <= 0:
            raise ValueError("elements must be positive")
        per_core = math.ceil(elements / self.n_cores)
        return self.core.elementwise_cycles(per_core, flops_per_element)


class SnitchCluster:
    """The unextended Snitch baseline cluster (SIMD cores only)."""

    def __init__(self, config: Optional[SnitchClusterConfig] = None) -> None:
        self.config = config or SnitchClusterConfig()
        self.core = HostCore(self.config.core)

    @property
    def n_cores(self) -> int:
        return self.config.n_cores

    @property
    def data_memory_bytes(self) -> int:
        return self.config.data_memory_bytes

    @property
    def peak_macs_per_cycle(self) -> float:
        return self.n_cores * self.core.config.macs_per_cycle

    def gemm_cycles(self, m: int, k: int, n: int) -> float:
        if m <= 0 or k <= 0 or n <= 0:
            raise ValueError("GEMM dimensions must be positive")
        n_per_core = math.ceil(n / self.n_cores)
        return self.core.matmul_cycles(m, k, n_per_core)

    def gemv_cycles(self, k: int, n: int) -> float:
        return self.gemm_cycles(1, k, n)

    def elementwise_cycles(self, elements: int, flops_per_element: float = 1.0) -> float:
        if elements <= 0:
            raise ValueError("elements must be positive")
        per_core = math.ceil(elements / self.n_cores)
        return self.core.elementwise_cycles(per_core, flops_per_element)
